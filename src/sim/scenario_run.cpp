#include "cts/sim/scenario_run.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>

#include "cts/atm/aal5.hpp"
#include "cts/atm/gcra.hpp"
#include "cts/atm/priority_buffer.hpp"
#include "cts/atm/smoothing.hpp"
#include "cts/core/acf_model.hpp"
#include "cts/core/heterogeneous.hpp"
#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/progress.hpp"
#include "cts/obs/trace.hpp"
#include "cts/proc/ar1.hpp"
#include "cts/proc/gaussian_acf_source.hpp"
#include "cts/stats/batch.hpp"
#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cu = cts::util;

namespace cts::sim {

namespace {

std::string number_text(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return buf;
}

/// Hosking recursion order for inline LRD sources: high enough that the
/// AR approximation error is far below the CLRs a scenario resolves,
/// small enough that per-source setup stays cheap.
constexpr std::size_t kInlineLrdMaxOrder = 1024;

/// True when the group's shaping pipeline alters its cell stream, which
/// disqualifies the feeding hop from the closed-form analytics.
bool shaped(const ScenarioSource& group) {
  return group.smooth_window > 1 || group.aal5 || group.police_scr > 0.0;
}

/// One source instance's per-replication runtime state.
struct SourceRuntime {
  std::size_t group = 0;
  std::unique_ptr<proc::FrameSource> source;
  std::optional<atm::FrameSmoother> smoother;
  std::optional<atm::Aal5Framer> framer;
  std::optional<atm::FramePolicer> policer;
};

/// Static routing derived from the validated topology: where each source
/// group and each hop delivers its cells.
struct Routing {
  /// Per source group: (consumer hop index, feeds the low-priority class).
  std::vector<std::pair<std::size_t, bool>> source_sink;
  /// Per hop: downstream hop index, or npos for an egress hop.  Upstream
  /// hop departures always enter the downstream high-priority class.
  std::vector<std::size_t> hop_sink;
};

constexpr std::size_t kNoSink = static_cast<std::size_t>(-1);

Routing build_routing(const Scenario& sc) {
  Routing routing;
  routing.source_sink.assign(sc.sources.size(), {kNoSink, false});
  routing.hop_sink.assign(sc.hops.size(), kNoSink);
  for (std::size_t h = 0; h < sc.hops.size(); ++h) {
    for (std::size_t s : sc.hops[h].source_inputs) {
      routing.source_sink[s] = {h, sc.sources[s].low_priority};
    }
    for (std::size_t up : sc.hops[h].hop_inputs) {
      routing.hop_sink[up] = h;
    }
  }
  return routing;
}

/// Runs one replication of the scenario.  `trace` is non-null only for
/// global replication 0 when the spec asked for a hop trace.
ScenarioRepSample run_scenario_rep(
    const Scenario& sc, const std::vector<fit::ModelSpec>& models,
    const Routing& routing, std::size_t rep,
    std::vector<std::vector<ScenarioTraceRow>>* trace,
    obs::ProgressReporter& reporter) {
  // Same seed derivation as run_replicated: per-instance seeds drawn from
  // the replication's SplitMix64 stream in spec order, so results are
  // independent of thread and shard layout.
  cu::SplitMix64 seeder(replication_seed_root(sc.seed, rep));
  std::vector<SourceRuntime> instances;
  for (std::size_t g = 0; g < sc.sources.size(); ++g) {
    const ScenarioSource& group = sc.sources[g];
    for (std::size_t i = 0; i < group.count; ++i) {
      SourceRuntime rt;
      rt.group = g;
      rt.source = models[g].make_source(seeder.next());
      if (group.smooth_window > 1) {
        rt.smoother.emplace(static_cast<std::size_t>(group.smooth_window));
      }
      if (group.aal5) rt.framer.emplace();
      if (group.police_scr > 0.0) {
        if (group.police_pcr > 0.0) {
          rt.policer.emplace(group.police_pcr, group.police_cdvt,
                             group.police_scr, group.police_bt, sc.Ts);
        } else {
          rt.policer.emplace(group.police_scr, group.police_bt, sc.Ts);
        }
      }
      instances.push_back(std::move(rt));
    }
  }

  ScenarioRepSample sample;
  sample.rep = rep;
  sample.frames = sc.frames;
  sample.sources.resize(sc.sources.size());
  sample.hops.resize(sc.hops.size());
  for (ScenarioHopTally& tally : sample.hops) {
    tally.occupancy.assign(sc.occupancy_buckets, 0);
  }

  const std::size_t n_hops = sc.hops.size();
  std::vector<double> w(n_hops, 0.0);    // end-of-frame workloads
  std::vector<double> ah(n_hops, 0.0);   // high-priority arrivals, per frame
  std::vector<double> al(n_hops, 0.0);   // low-priority arrivals, per frame

  const std::uint64_t total = sc.warmup + sc.frames;
  constexpr std::uint64_t kProgressBatch = 4096;
  for (std::uint64_t n = 0; n < total; ++n) {
    const bool measured = n >= sc.warmup;
    std::fill(ah.begin(), ah.end(), 0.0);
    std::fill(al.begin(), al.end(), 0.0);

    for (SourceRuntime& rt : instances) {
      double x = std::max(rt.source->next_frame(), 0.0);
      if (rt.smoother) x = rt.smoother->push(x);
      if (rt.framer) x = rt.framer->add(x);
      if (rt.policer) {
        const double quantized =
            static_cast<double>(std::llround(std::max(x, 0.0)));
        const double conforming = rt.policer->police(n, x);
        if (measured) {
          sample.sources[rt.group].policed += quantized - conforming;
        }
        x = conforming;
      }
      if (measured) sample.sources[rt.group].offered += x;
      const auto [sink, low] = routing.source_sink[rt.group];
      (low ? al : ah)[sink] += x;
    }

    // Hops in topological order: upstream departures feed the downstream
    // high-priority class within the same frame.
    for (std::size_t h : sc.hop_order) {
      const ScenarioHop& hop = sc.hops[h];
      const double w0 = w[h];
      double a_high = ah[h];
      double a_low = al[h];
      double lost_high = 0.0;
      double lost_low = 0.0;
      double w1 = 0.0;
      if (hop.priority()) {
        const atm::PriorityFrameOutcome out = atm::evolve_priority_frame(
            w0, a_high, a_low, hop.capacity_cells, hop.threshold_cells,
            hop.buffer_cells);
        w1 = out.q;
        lost_high = out.high_lost;
        lost_low = out.low_lost;
      } else {
        // Class-blind FIFO: the whole frame's fluid is one aggregate,
        // tallied on the high-priority row.
        a_high += a_low;
        a_low = 0.0;
        lost_high = std::max(
            w0 + a_high - hop.capacity_cells - hop.buffer_cells, 0.0);
        w1 = std::min(hop.buffer_cells,
                      std::max(w0 + a_high - hop.capacity_cells, 0.0));
      }
      // Departures via the exact identity w0 + admitted = departed + w1,
      // which makes per-hop cell conservation hold to the last bit.
      const double admitted = a_high + a_low - lost_high - lost_low;
      const double departed = w0 + admitted - w1;
      w[h] = w1;
      if (routing.hop_sink[h] != kNoSink) ah[routing.hop_sink[h]] += departed;

      if (!measured) continue;
      ScenarioHopTally& tally = sample.hops[h];
      if (n == sc.warmup) tally.initial_workload = w0;
      tally.arrived_high += a_high;
      tally.arrived_low += a_low;
      tally.lost_high += lost_high;
      tally.lost_low += lost_low;
      tally.departed += departed;
      tally.peak_workload = std::max(tally.peak_workload, w1);
      tally.final_workload = w1;
      std::size_t bucket = 0;
      if (hop.buffer_cells > 0.0) {
        bucket = static_cast<std::size_t>(
            w1 / hop.buffer_cells * static_cast<double>(sc.occupancy_buckets));
        bucket = std::min(bucket, sc.occupancy_buckets - 1);
      }
      ++tally.occupancy[bucket];
      if (trace != nullptr && (n - sc.warmup) % sc.hop_trace_every == 0) {
        ScenarioTraceRow row;
        row.frame = n - sc.warmup;
        row.workload = w1;
        row.arrived = a_high + a_low;
        row.lost = lost_high + lost_low;
        (*trace)[h].push_back(row);
      }
    }

    if ((n + 1) % kProgressBatch == 0) reporter.add_frames(kProgressBatch);
  }
  reporter.add_frames(total % kProgressBatch);

  // Accumulate-then-reduce: fold every instance's shaping-pipeline meters
  // and the per-hop tallies into one shard, merged into the global
  // registry once per replication.
  obs::MetricsShard shard;
  for (SourceRuntime& rt : instances) {
    if (rt.smoother) rt.smoother->flush(shard);
    if (rt.framer) rt.framer->flush(shard);
    if (rt.policer) rt.policer->flush(shard);
  }
  double arrived = 0.0;
  double lost = 0.0;
  double departed = 0.0;
  for (std::size_t h = 0; h < n_hops; ++h) {
    const ScenarioHopTally& tally = sample.hops[h];
    arrived += tally.arrived();
    lost += tally.lost();
    departed += tally.departed;
    if (sc.hops[h].priority()) {
      atm::PrioritySharingResult pr;
      pr.frames = sc.frames;
      pr.high_arrived = tally.arrived_high;
      pr.low_arrived = tally.arrived_low;
      pr.high_lost = tally.lost_high;
      pr.low_lost = tally.lost_low;
      atm::record_priority_sharing(pr, shard);
    }
  }
  shard.add("scenario.replications", 1);
  shard.add_sum("scenario.arrived_cells", arrived);
  shard.add_sum("scenario.lost_cells", lost);
  shard.add_sum("scenario.departed_cells", departed);
  obs::MetricsRegistry::global().merge(shard);
  return sample;
}

}  // namespace

fit::ModelSpec resolve_scenario_model(const ScenarioModel& model) {
  if (!model.zoo_id.empty()) return fit::model_from_id(model.zoo_id);
  fit::ModelSpec spec;
  spec.mean = model.mean;
  spec.variance = model.variance;
  const std::string moments =
      "mu=" + number_text(model.mean) + ",var=" + number_text(model.variance);
  if (model.kind == "geometric") {
    spec.acf = std::make_shared<core::GeometricAcf>(model.a);
    spec.name = "geometric(a=" + number_text(model.a) + "," + moments + ")";
    const proc::Ar1Params params{model.a, model.mean, model.variance};
    spec.make_source = [params](std::uint64_t seed) {
      return std::make_unique<proc::Ar1Source>(params, seed);
    };
  } else if (model.kind == "white") {
    spec.acf = std::make_shared<core::WhiteAcf>();
    spec.name = "white(" + moments + ")";
    const proc::Ar1Params params{0.0, model.mean, model.variance};
    spec.make_source = [params](std::uint64_t seed) {
      return std::make_unique<proc::Ar1Source>(params, seed);
    };
  } else if (model.kind == "lrd") {
    auto acf = std::make_shared<core::ExactLrdAcf>(model.hurst, model.weight);
    spec.acf = acf;
    spec.name = "lrd(H=" + number_text(model.hurst) +
                ",w=" + number_text(model.weight) + "," + moments + ")";
    const double mean = model.mean;
    const double variance = model.variance;
    spec.make_source = [acf, mean, variance](std::uint64_t seed) {
      return std::make_unique<proc::GaussianAcfHosking>(
          acf, mean, variance, seed, kInlineLrdMaxOrder);
    };
  } else {
    // The parser only admits the three kinds above; this guards direct
    // programmatic construction.
    throw cu::InvalidArgument("scenario: unknown model kind '" + model.kind +
                              "'");
  }
  return spec;
}

ScenarioRunResult run_scenario(const Scenario& scenario,
                               const ScenarioRunOptions& options) {
  CTS_TRACE_SPAN("scenario.run");
  cu::require(!scenario.sources.empty() && !scenario.hops.empty(),
              "run_scenario: scenario has no sources or no hops");

  // Resolve every model once; make_source factories are shared across the
  // pool threads (the same contract run_replicated relies on).
  std::vector<fit::ModelSpec> models;
  models.reserve(scenario.sources.size());
  std::size_t source_instances = 0;
  for (const ScenarioSource& group : scenario.sources) {
    models.push_back(resolve_scenario_model(group.model));
    cu::require(models.back().make_source != nullptr,
                "run_scenario: model '" + models.back().name +
                    "' has no simulation factory");
    source_instances += group.count;
  }
  const Routing routing = build_routing(scenario);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.gauge("scenario.hops", static_cast<double>(scenario.hops.size()));
  registry.gauge("scenario.source_instances",
                 static_cast<double>(source_instances));

  ScenarioRunResult result;
  result.shard_index = options.shard_index;
  result.shard_count = options.shard_count;
  const ShardSliceRange slice = shard_slice(
      scenario.replications, options.shard_index, options.shard_count);
  result.samples.resize(slice.size());
  const bool want_trace = scenario.hop_trace_every > 0 && slice.lo == 0;
  if (want_trace) result.traces.resize(scenario.hops.size());

  SliceDriverConfig driver;
  driver.replications = scenario.replications;
  driver.frames_per_replication = scenario.frames;
  driver.warmup_frames = scenario.warmup;
  driver.master_seed = scenario.seed;
  driver.threads = options.threads;
  driver.shard_index = options.shard_index;
  driver.shard_count = options.shard_count;
  driver.progress_label = scenario.name;
  driver.progress = options.progress;

  run_replication_slice(
      driver, [&](std::size_t rep, std::size_t local,
                  obs::ProgressReporter& reporter) {
        auto* trace = (want_trace && rep == 0) ? &result.traces : nullptr;
        result.samples[local] =
            run_scenario_rep(scenario, models, routing, rep, trace, reporter);
      });
  return result;
}

std::vector<ScenarioHopAnalytic> scenario_analytics(const Scenario& scenario) {
  std::vector<fit::ModelSpec> models;
  models.reserve(scenario.sources.size());
  for (const ScenarioSource& group : scenario.sources) {
    models.push_back(resolve_scenario_model(group.model));
  }
  std::vector<ScenarioHopAnalytic> out(scenario.hops.size());
  for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
    const ScenarioHop& hop = scenario.hops[h];
    if (!hop.hop_inputs.empty() || hop.priority()) continue;
    std::vector<core::PopulationClass> classes;
    bool qualifies = true;
    for (std::size_t s : hop.source_inputs) {
      const ScenarioSource& group = scenario.sources[s];
      if (shaped(group)) {
        qualifies = false;
        break;
      }
      core::PopulationClass cls;
      cls.acf = models[s].acf;
      cls.mean = models[s].mean;
      cls.variance = models[s].variance;
      cls.count = group.count;
      classes.push_back(std::move(cls));
    }
    if (!qualifies) continue;
    try {
      const core::BopPoint point = core::heterogeneous_br_log10_bop(
          classes, hop.capacity_cells, hop.buffer_cells);
      out[h].available = true;
      out[h].log10_bop = point.log10_bop;
      out[h].critical_m = point.critical_m;
      out[h].rate = point.rate;
    } catch (const std::exception&) {
      // Unstable aggregate or degenerate corner: report no prediction
      // rather than failing the whole run.
      out[h].available = false;
    }
  }
  return out;
}

namespace {

void write_interval(obs::JsonWriter& w, const stats::IntervalEstimate& e) {
  w.begin_object();
  w.key("mean").value(e.mean);
  w.key("half_width").value(e.half_width);
  w.key("samples").value(static_cast<std::uint64_t>(e.samples));
  w.end_object();
}

std::uint64_t parse_u64_field(const obs::JsonValue& v, const char* what) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    cu::require(!s.empty() &&
                    s.find_first_not_of("0123456789") == std::string::npos,
                std::string("scenario result: ") + what +
                    " must be a decimal string, got '" + s + "'");
    return std::strtoull(s.c_str(), nullptr, 10);
  }
  const double x = v.as_number();
  cu::require(x >= 0.0 && x == std::floor(x),
              std::string("scenario result: ") + what +
                  " must be a non-negative integer");
  return static_cast<std::uint64_t>(x);
}

double nonneg_number(const obs::JsonValue& v, const char* what) {
  const double x = v.as_number();
  cu::require(std::isfinite(x) && x >= 0.0,
              std::string("scenario result: ") + what +
                  " must be finite and >= 0");
  return x;
}

}  // namespace

std::string write_scenario_result_json(const Scenario& scenario,
                                       const ScenarioRunResult& result) {
  cu::require(!result.samples.empty(),
              "write_scenario_result_json: no replication samples");
  const std::size_t n_sources = scenario.sources.size();
  const std::size_t n_hops = scenario.hops.size();
  for (const ScenarioRepSample& sample : result.samples) {
    cu::require(sample.sources.size() == n_sources &&
                    sample.hops.size() == n_hops,
                "write_scenario_result_json: sample tally shape does not "
                "match the scenario");
  }

  std::vector<fit::ModelSpec> models;
  models.reserve(n_sources);
  for (const ScenarioSource& group : scenario.sources) {
    models.push_back(resolve_scenario_model(group.model));
  }
  const std::vector<ScenarioHopAnalytic> analytics =
      scenario_analytics(scenario);

  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kScenarioResultSchema);
  w.key("scenario").value(scenario.name);
  w.key("shard").begin_object();
  w.key("index").value(static_cast<std::uint64_t>(result.shard_index));
  w.key("count").value(static_cast<std::uint64_t>(result.shard_count));
  w.end_object();
  w.key("replications").value(static_cast<std::uint64_t>(
      scenario.replications));
  w.key("frames").value(scenario.frames);
  w.key("warmup").value(scenario.warmup);
  // Decimal string: a JSON number (double) silently rounds seeds >= 2^53.
  w.key("seed").value(std::to_string(scenario.seed));
  w.key("Ts").value(scenario.Ts);

  w.key("sources").begin_array();
  for (std::size_t g = 0; g < n_sources; ++g) {
    double offered = 0.0;
    double policed = 0.0;
    for (const ScenarioRepSample& sample : result.samples) {
      offered += sample.sources[g].offered;
      policed += sample.sources[g].policed;
    }
    w.begin_object();
    w.key("name").value(scenario.sources[g].name);
    w.key("model").value(models[g].name);
    w.key("count").value(static_cast<std::uint64_t>(
        scenario.sources[g].count));
    w.key("offered_cells").value(offered);
    w.key("policed_cells").value(policed);
    w.end_object();
  }
  w.end_array();

  w.key("hops").begin_array();
  for (std::size_t h = 0; h < n_hops; ++h) {
    const ScenarioHop& hop = scenario.hops[h];
    double arrived_high = 0.0;
    double arrived_low = 0.0;
    double lost_high = 0.0;
    double lost_low = 0.0;
    double departed = 0.0;
    double peak = 0.0;
    std::vector<std::uint64_t> occupancy(scenario.occupancy_buckets, 0);
    std::vector<double> clr_samples;
    clr_samples.reserve(result.samples.size());
    for (const ScenarioRepSample& sample : result.samples) {
      const ScenarioHopTally& tally = sample.hops[h];
      cu::require(tally.occupancy.size() == occupancy.size(),
                  "write_scenario_result_json: occupancy bucket count does "
                  "not match the scenario");
      arrived_high += tally.arrived_high;
      arrived_low += tally.arrived_low;
      lost_high += tally.lost_high;
      lost_low += tally.lost_low;
      departed += tally.departed;
      peak = std::max(peak, tally.peak_workload);
      for (std::size_t b = 0; b < occupancy.size(); ++b) {
        occupancy[b] += tally.occupancy[b];
      }
      clr_samples.push_back(
          tally.arrived() > 0.0 ? tally.lost() / tally.arrived() : 0.0);
    }
    const double arrived = arrived_high + arrived_low;
    const double lost = lost_high + lost_low;

    w.begin_object();
    w.key("name").value(hop.name);
    w.key("capacity_cells").value(hop.capacity_cells);
    w.key("buffer_cells").value(hop.buffer_cells);
    if (hop.priority()) w.key("threshold_cells").value(hop.threshold_cells);
    w.key("arrived_cells").value(arrived);
    w.key("lost_cells").value(lost);
    w.key("departed_cells").value(departed);
    if (hop.priority()) {
      w.key("high").begin_object();
      w.key("arrived_cells").value(arrived_high);
      w.key("lost_cells").value(lost_high);
      w.key("clr").value(arrived_high > 0.0 ? lost_high / arrived_high : 0.0);
      w.end_object();
      w.key("low").begin_object();
      w.key("arrived_cells").value(arrived_low);
      w.key("lost_cells").value(lost_low);
      w.key("clr").value(arrived_low > 0.0 ? lost_low / arrived_low : 0.0);
      w.end_object();
    }
    w.key("clr");
    write_interval(w, stats::replication_interval(clr_samples));
    w.key("pooled_clr").value(arrived > 0.0 ? lost / arrived : 0.0);
    w.key("peak_workload_cells").value(peak);
    w.key("occupancy").begin_object();
    w.key("edges").begin_array();
    for (std::size_t b = 0; b < occupancy.size(); ++b) {
      w.value(hop.buffer_cells * static_cast<double>(b + 1) /
              static_cast<double>(occupancy.size()));
    }
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t count : occupancy) w.value(count);
    w.end_array();
    w.end_object();
    if (analytics[h].available) {
      w.key("analytic").begin_object();
      w.key("log10_bop").value(analytics[h].log10_bop);
      w.key("critical_m").value(static_cast<std::uint64_t>(
          analytics[h].critical_m));
      w.key("rate").value(analytics[h].rate);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.key("reps").begin_array();
  for (const ScenarioRepSample& sample : result.samples) {
    w.begin_object();
    w.key("rep").value(sample.rep);
    w.key("frames").value(sample.frames);
    w.key("sources").begin_array();
    for (const ScenarioSourceTally& tally : sample.sources) {
      w.begin_object();
      w.key("offered").value(tally.offered);
      w.key("policed").value(tally.policed);
      w.end_object();
    }
    w.end_array();
    w.key("hops").begin_array();
    for (const ScenarioHopTally& tally : sample.hops) {
      w.begin_object();
      w.key("arrived_high").value(tally.arrived_high);
      w.key("arrived_low").value(tally.arrived_low);
      w.key("lost_high").value(tally.lost_high);
      w.key("lost_low").value(tally.lost_low);
      w.key("departed").value(tally.departed);
      w.key("peak").value(tally.peak_workload);
      w.key("initial").value(tally.initial_workload);
      w.key("final").value(tally.final_workload);
      w.key("occupancy").begin_array();
      for (std::uint64_t count : tally.occupancy) w.value(count);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  if (!result.traces.empty()) {
    cu::require(result.traces.size() == n_hops,
                "write_scenario_result_json: trace hop count does not match "
                "the scenario");
    w.key("trace").begin_object();
    w.key("every").value(scenario.hop_trace_every);
    w.key("rep").value(static_cast<std::uint64_t>(0));
    w.key("hops").begin_array();
    for (std::size_t h = 0; h < n_hops; ++h) {
      w.begin_object();
      w.key("name").value(scenario.hops[h].name);
      w.key("frames").begin_array();
      for (const ScenarioTraceRow& row : result.traces[h]) w.value(row.frame);
      w.end_array();
      w.key("workload").begin_array();
      for (const ScenarioTraceRow& row : result.traces[h]) {
        w.value(row.workload);
      }
      w.end_array();
      w.key("arrived").begin_array();
      for (const ScenarioTraceRow& row : result.traces[h]) {
        w.value(row.arrived);
      }
      w.end_array();
      w.key("lost").begin_array();
      for (const ScenarioTraceRow& row : result.traces[h]) w.value(row.lost);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  // Verbatim spec last: the bulky field stays out of the way of readers
  // scanning the aggregates.
  w.key("spec").value(scenario.text);
  w.end_object();
  os << "\n";
  return os.str();
}

std::string write_scenario_trace_json(const Scenario& scenario,
                                      const ScenarioRunResult& result) {
  cu::require(!result.traces.empty(),
              "write_scenario_trace_json: the run carried no hop trace "
              "(hop_trace_every = 0 or the slice did not contain "
              "replication 0)");
  cu::require(result.traces.size() == scenario.hops.size(),
              "write_scenario_trace_json: trace hop count does not match "
              "the scenario");
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kScenarioTraceSchema);
  w.key("scenario").value(scenario.name);
  w.key("every").value(scenario.hop_trace_every);
  w.key("rep").value(static_cast<std::uint64_t>(0));
  w.key("hops").begin_array();
  for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
    w.begin_object();
    w.key("name").value(scenario.hops[h].name);
    w.key("frames").begin_array();
    for (const ScenarioTraceRow& row : result.traces[h]) w.value(row.frame);
    w.end_array();
    w.key("workload").begin_array();
    for (const ScenarioTraceRow& row : result.traces[h]) w.value(row.workload);
    w.end_array();
    w.key("arrived").begin_array();
    for (const ScenarioTraceRow& row : result.traces[h]) w.value(row.arrived);
    w.end_array();
    w.key("lost").begin_array();
    for (const ScenarioTraceRow& row : result.traces[h]) w.value(row.lost);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

ScenarioResultDoc parse_scenario_result(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  cu::require(doc.is_object(), "scenario result: top level must be an object");
  cu::require(doc.at("schema").as_string() == kScenarioResultSchema,
              "scenario result: schema must be '" +
                  std::string(kScenarioResultSchema) + "', got '" +
                  doc.at("schema").as_string() + "'");
  ScenarioResultDoc out;
  out.spec_text = doc.at("spec").as_string();
  cu::require(!out.spec_text.empty(), "scenario result: empty spec echo");
  const obs::JsonValue& shard = doc.at("shard");
  out.shard_index =
      static_cast<std::size_t>(parse_u64_field(shard.at("index"), "shard index"));
  out.shard_count =
      static_cast<std::size_t>(parse_u64_field(shard.at("count"), "shard count"));
  cu::require(out.shard_count >= 1 && out.shard_index < out.shard_count,
              "scenario result: shard index " +
                  std::to_string(out.shard_index) + " out of range for " +
                  std::to_string(out.shard_count) + " shards");
  out.replications = static_cast<std::size_t>(
      parse_u64_field(doc.at("replications"), "replications"));
  cu::require(out.replications >= 1,
              "scenario result: need at least one replication");
  out.frames = parse_u64_field(doc.at("frames"), "frames");
  out.warmup = parse_u64_field(doc.at("warmup"), "warmup");
  out.seed = parse_u64_field(doc.at("seed"), "seed");

  const obs::JsonValue& reps = doc.at("reps");
  cu::require(reps.is_array() && !reps.items.empty(),
              "scenario result: reps must be a non-empty array");
  for (const obs::JsonValue& entry : reps.items) {
    cu::require(entry.is_object(), "scenario result: each rep must be an "
                                   "object");
    ScenarioRepSample sample;
    sample.rep = parse_u64_field(entry.at("rep"), "rep index");
    sample.frames = parse_u64_field(entry.at("frames"), "rep frames");
    for (const obs::JsonValue& src : entry.at("sources").items) {
      ScenarioSourceTally tally;
      tally.offered = nonneg_number(src.at("offered"), "source offered");
      tally.policed = nonneg_number(src.at("policed"), "source policed");
      sample.sources.push_back(tally);
    }
    for (const obs::JsonValue& hop : entry.at("hops").items) {
      ScenarioHopTally tally;
      tally.arrived_high = nonneg_number(hop.at("arrived_high"),
                                         "hop arrived_high");
      tally.arrived_low = nonneg_number(hop.at("arrived_low"),
                                        "hop arrived_low");
      tally.lost_high = nonneg_number(hop.at("lost_high"), "hop lost_high");
      tally.lost_low = nonneg_number(hop.at("lost_low"), "hop lost_low");
      tally.departed = nonneg_number(hop.at("departed"), "hop departed");
      tally.peak_workload = nonneg_number(hop.at("peak"), "hop peak");
      tally.initial_workload = nonneg_number(hop.at("initial"), "hop initial");
      tally.final_workload = nonneg_number(hop.at("final"), "hop final");
      for (const obs::JsonValue& count : hop.at("occupancy").items) {
        tally.occupancy.push_back(parse_u64_field(count, "occupancy count"));
      }
      sample.hops.push_back(std::move(tally));
    }
    if (!out.samples.empty()) {
      const ScenarioRepSample& prev = out.samples.back();
      cu::require(sample.rep > prev.rep,
                  "scenario result: reps must be ascending by global index");
      cu::require(sample.sources.size() == prev.sources.size() &&
                      sample.hops.size() == prev.hops.size(),
                  "scenario result: inconsistent tally shapes across reps");
    }
    out.samples.push_back(std::move(sample));
  }

  if (const obs::JsonValue* trace = doc.find("trace")) {
    const obs::JsonValue& hops = trace->at("hops");
    cu::require(hops.is_array() &&
                    hops.items.size() == out.samples.front().hops.size(),
                "scenario result: trace hop count does not match the rep "
                "tallies");
    for (const obs::JsonValue& hop : hops.items) {
      const obs::JsonValue& frames = hop.at("frames");
      const obs::JsonValue& workload = hop.at("workload");
      const obs::JsonValue& arrived = hop.at("arrived");
      const obs::JsonValue& lost = hop.at("lost");
      cu::require(workload.items.size() == frames.items.size() &&
                      arrived.items.size() == frames.items.size() &&
                      lost.items.size() == frames.items.size(),
                  "scenario result: trace column lengths disagree");
      std::vector<ScenarioTraceRow> rows;
      rows.reserve(frames.items.size());
      for (std::size_t i = 0; i < frames.items.size(); ++i) {
        ScenarioTraceRow row;
        row.frame = parse_u64_field(frames.items[i], "trace frame");
        row.workload = workload.items[i].as_number();
        row.arrived = arrived.items[i].as_number();
        row.lost = lost.items[i].as_number();
        rows.push_back(row);
      }
      out.traces.push_back(std::move(rows));
    }
  }
  return out;
}

std::string merge_scenario_result_json(
    const std::vector<ScenarioResultDoc>& parts) {
  cu::require(!parts.empty(), "scenario merge: no partials given");
  const ScenarioResultDoc& first = parts.front();
  cu::require(parts.size() == first.shard_count,
              "scenario merge: got " + std::to_string(parts.size()) +
                  " partials for a " + std::to_string(first.shard_count) +
                  "-shard run");
  std::vector<const ScenarioResultDoc*> ordered(first.shard_count, nullptr);
  for (const ScenarioResultDoc& part : parts) {
    cu::require(part.spec_text == first.spec_text,
                "scenario merge: partials ran different scenario specs");
    cu::require(part.shard_count == first.shard_count &&
                    part.replications == first.replications &&
                    part.frames == first.frames &&
                    part.warmup == first.warmup && part.seed == first.seed,
                "scenario merge: partials disagree on the run configuration");
    cu::require(ordered[part.shard_index] == nullptr,
                "scenario merge: duplicate shard index " +
                    std::to_string(part.shard_index));
    ordered[part.shard_index] = &part;
  }

  Scenario scenario = parse_scenario(first.spec_text);
  scenario.replications = first.replications;
  scenario.frames = first.frames;
  scenario.warmup = first.warmup;
  scenario.seed = first.seed;

  ScenarioRunResult merged;
  merged.shard_index = 0;
  merged.shard_count = 1;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const ScenarioResultDoc& part = *ordered[i];
    const ShardSliceRange slice =
        shard_slice(first.replications, i, first.shard_count);
    cu::require(part.samples.size() == slice.size() &&
                    part.samples.front().rep == slice.lo &&
                    part.samples.back().rep + 1 == slice.hi,
                "scenario merge: shard " + std::to_string(i) +
                    " does not cover its replication slice [" +
                    std::to_string(slice.lo) + ", " +
                    std::to_string(slice.hi) + ")");
    for (const ScenarioRepSample& sample : part.samples) {
      merged.samples.push_back(sample);
    }
    if (!part.traces.empty()) {
      cu::require(merged.traces.empty(),
                  "scenario merge: more than one partial carries a trace");
      merged.traces = part.traces;
    }
  }
  return write_scenario_result_json(scenario, merged);
}

}  // namespace cts::sim
