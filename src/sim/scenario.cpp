#include "cts/sim/scenario.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "cts/atm/link.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"

namespace cts::sim {

namespace cu = cts::util;

namespace {

std::string at_line(int line) {
  return "scenario spec line " + std::to_string(line) + ": ";
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string> section_key_names(const ScenarioSectionDoc& doc) {
  std::vector<std::string> names;
  names.reserve(doc.count);
  for (std::size_t i = 0; i < doc.count; ++i) names.emplace_back(doc.keys[i].key);
  return names;
}

const ScenarioSectionDoc& section_doc(const std::string& section) {
  for (const ScenarioSectionDoc& doc : kScenarioSections) {
    if (section == doc.section) return doc;
  }
  throw cu::InvalidArgument("scenario spec: unknown section '" + section + "'");
}

double parse_number(int line, const std::string& key,
                    const std::string& value) {
  double out = 0.0;
  cu::require(cu::try_parse_double(value, &out),
              at_line(line) + "key '" + key + "' needs a number, got '" +
                  value + "'");
  return out;
}

std::uint64_t parse_count(int line, const std::string& key,
                          const std::string& value, std::int64_t min) {
  std::int64_t out = 0;
  cu::require(cu::try_parse_int(value, &out) && out >= min,
              at_line(line) + "key '" + key + "' needs an integer >= " +
                  std::to_string(min) + ", got '" + value + "'");
  return static_cast<std::uint64_t>(out);
}

std::uint64_t parse_u64(int line, const std::string& key,
                        const std::string& value) {
  cu::require(!value.empty() &&
                  value.find_first_not_of("0123456789") == std::string::npos,
              at_line(line) + "key '" + key +
                  "' needs a decimal unsigned integer, got '" + value + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  cu::require(errno == 0 && end != nullptr && *end == '\0',
              at_line(line) + "key '" + key + "' overflows 64 bits: '" +
                  value + "'");
  return static_cast<std::uint64_t>(parsed);
}

bool parse_onoff(int line, const std::string& key, const std::string& value) {
  if (value == "on" || value == "true" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "off" || value == "false" || value == "0" || value == "no") {
    return false;
  }
  throw cu::InvalidArgument(at_line(line) + "key '" + key +
                            "' needs on or off, got '" + value + "'");
}

/// Per-section-instance parse state: which keys were set, and where.
struct SectionState {
  std::string section;  ///< "scenario", "source", "hop", "output"
  int line = 0;         ///< header line
  std::string label;    ///< "[source video]" for error messages
  std::map<std::string, int> seen;  ///< key -> line it was set on

  bool has(const std::string& key) const { return seen.count(key) != 0; }
};

void check_model(const ScenarioSource& source, const SectionState& state) {
  const std::string where = at_line(state.line) + state.label + " ";
  if (!source.model.zoo_id.empty()) {
    for (const char* key : {"kind", "mean", "variance", "a", "hurst",
                            "weight"}) {
      cu::require(!state.has(key), where + "takes either key 'model' or an "
                  "inline model, not both (remove '" + key + "')");
    }
    return;
  }
  cu::require(state.has("kind"),
              where + "needs key 'model' (a zoo id) or key 'kind' (an "
              "inline model)");
  const std::string& kind = source.model.kind;
  cu::require(kind == "geometric" || kind == "white" || kind == "lrd",
              where + "key 'kind' must be geometric, white, or lrd, got '" +
                  kind + "'");
  cu::require(state.has("mean") && state.has("variance"),
              where + "inline kind '" + kind +
                  "' requires keys 'mean' and 'variance'");
  cu::require(source.model.mean > 0.0, where + "key 'mean' must be > 0");
  cu::require(source.model.variance > 0.0,
              where + "key 'variance' must be > 0");
  if (kind == "geometric") {
    cu::require(state.has("a"), where + "kind = geometric requires key 'a'");
    cu::require(source.model.a > 0.0 && source.model.a < 1.0,
                where + "key 'a' must be in (0, 1)");
  } else {
    cu::require(!state.has("a"),
                where + "key 'a' is only meaningful for kind = geometric");
  }
  if (kind == "lrd") {
    cu::require(state.has("hurst") && state.has("weight"),
                where + "kind = lrd requires keys 'hurst' and 'weight'");
    cu::require(source.model.hurst > 0.5 && source.model.hurst < 1.0,
                where + "key 'hurst' must be in (0.5, 1)");
    cu::require(source.model.weight > 0.0 && source.model.weight <= 1.0,
                where + "key 'weight' must be in (0, 1]");
  } else {
    cu::require(!state.has("hurst") && !state.has("weight"),
                where + "keys 'hurst'/'weight' are only meaningful for "
                "kind = lrd");
  }
}

void check_source(const ScenarioSource& source, const SectionState& state) {
  const std::string where = at_line(state.line) + state.label + " ";
  check_model(source, state);
  if (state.has("police_bt") || state.has("police_pcr") ||
      state.has("police_cdvt")) {
    cu::require(state.has("police_scr"),
                where + "policing keys require key 'police_scr'");
  }
  if (state.has("police_scr")) {
    cu::require(source.police_scr > 0.0,
                where + "key 'police_scr' must be > 0");
    cu::require(source.police_bt >= 0.0,
                where + "key 'police_bt' must be >= 0");
  }
  if (state.has("police_pcr")) {
    cu::require(source.police_pcr >= source.police_scr,
                where + "key 'police_pcr' must be >= police_scr");
    cu::require(source.police_cdvt >= 0.0,
                where + "key 'police_cdvt' must be >= 0");
  } else {
    cu::require(!state.has("police_cdvt"),
                where + "key 'police_cdvt' requires key 'police_pcr'");
  }
}

void check_hop(const ScenarioHop& hop, const SectionState& state) {
  const std::string where = at_line(state.line) + state.label + " ";
  cu::require(state.has("input"), where + "requires key 'input'");
  cu::require(state.has("capacity") != state.has("link_mbps"),
              where + "needs exactly one of keys 'capacity' and "
              "'link_mbps'");
  cu::require(state.has("buffer"), where + "requires key 'buffer'");
  if (state.has("capacity")) {
    cu::require(hop.capacity_cells > 0.0,
                where + "key 'capacity' must be > 0");
  } else {
    cu::require(hop.link_mbps > 0.0, where + "key 'link_mbps' must be > 0");
  }
  cu::require(hop.buffer_cells >= 0.0, where + "key 'buffer' must be >= 0");
  if (state.has("threshold")) {
    cu::require(hop.threshold_cells >= 0.0 &&
                    hop.threshold_cells <= hop.buffer_cells,
                where + "key 'threshold' must satisfy 0 <= threshold <= "
                "buffer");
  }
}

/// Resolves hop inputs, enforces the consumption rules, and computes the
/// topological hop order (upstream first).  Throws on an unknown input,
/// a doubly-consumed source/hop, or a cycle.
void resolve_topology(Scenario& scenario,
                      const std::vector<SectionState>& hop_states) {
  std::map<std::string, std::size_t> source_index;
  for (std::size_t i = 0; i < scenario.sources.size(); ++i) {
    source_index[scenario.sources[i].name] = i;
  }
  std::map<std::string, std::size_t> hop_index;
  for (std::size_t i = 0; i < scenario.hops.size(); ++i) {
    hop_index[scenario.hops[i].name] = i;
  }

  std::vector<int> source_consumer(scenario.sources.size(), -1);
  std::vector<int> hop_consumer(scenario.hops.size(), -1);
  for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
    ScenarioHop& hop = scenario.hops[h];
    const std::string where =
        at_line(hop_states[h].line) + hop_states[h].label + " ";
    for (const std::string& input : hop.inputs) {
      auto s = source_index.find(input);
      if (s != source_index.end()) {
        // The message names the prior consumer, so it can only be built
        // on the failure path (the index is -1 otherwise).
        if (source_consumer[s->second] >= 0) {
          throw cu::InvalidArgument(
              where + "key 'input': source '" + input +
              "' already feeds hop '" +
              scenario.hops[static_cast<std::size_t>(
                  source_consumer[s->second])].name +
              "' (a source feeds exactly one hop)");
        }
        source_consumer[s->second] = static_cast<int>(h);
        hop.source_inputs.push_back(s->second);
        continue;
      }
      auto up = hop_index.find(input);
      cu::require(up != hop_index.end(),
                  where + "key 'input': unknown name '" + input +
                      "' (no such [source] or [hop])");
      cu::require(up->second != h,
                  where + "key 'input': hop '" + input + "' feeds itself");
      if (hop_consumer[up->second] >= 0) {
        throw cu::InvalidArgument(
            where + "key 'input': hop '" + input + "' already feeds hop '" +
            scenario.hops[static_cast<std::size_t>(
                hop_consumer[up->second])].name +
            "' (a hop feeds at most one downstream hop)");
      }
      hop_consumer[up->second] = static_cast<int>(h);
      hop.hop_inputs.push_back(up->second);
    }
  }

  for (std::size_t s = 0; s < scenario.sources.size(); ++s) {
    cu::require(source_consumer[s] >= 0,
                at_line(scenario.sources[s].line) + "[source " +
                    scenario.sources[s].name +
                    "] is not consumed by any hop's 'input'");
  }

  // Kahn topological sort over the hop graph.  Every hop has at most one
  // consumer, so a leftover (unordered) hop set means a cycle.
  std::vector<std::size_t> pending(scenario.hops.size(), 0);
  for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
    pending[h] = scenario.hops[h].hop_inputs.size();
  }
  std::vector<std::size_t> ready;
  for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
    if (pending[h] == 0) ready.push_back(h);
  }
  scenario.hop_order.clear();
  while (!ready.empty()) {
    // Take the lowest index so the order is deterministic for a given spec.
    const auto it = std::min_element(ready.begin(), ready.end());
    const std::size_t h = *it;
    ready.erase(it);
    scenario.hop_order.push_back(h);
    if (hop_consumer[h] >= 0) {
      const std::size_t down = static_cast<std::size_t>(hop_consumer[h]);
      if (--pending[down] == 0) ready.push_back(down);
    }
  }
  if (scenario.hop_order.size() != scenario.hops.size()) {
    for (std::size_t h = 0; h < scenario.hops.size(); ++h) {
      if (pending[h] != 0) {
        throw cu::InvalidArgument(
            at_line(hop_states[h].line) + "[hop " + scenario.hops[h].name +
            "] key 'input': topology cycle through this hop");
      }
    }
  }
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  scenario.text = text;

  SectionState* current = nullptr;
  std::vector<SectionState> states;  ///< one per section, parse order
  std::vector<int> state_section_object;  ///< index into sources/hops; -1
  bool saw_schema = false;
  bool saw_scenario_section = false;
  bool saw_output_section = false;
  std::set<std::string> names;  ///< sources and hops share one namespace

  // Sections are parsed into these and cross-checked after the last line,
  // when every key of every section is known.
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string raw =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;

    if (!saw_schema) {
      cu::require(line == kScenarioSchema,
                  at_line(line_no) + "first line must be '" +
                      std::string(kScenarioSchema) + "', got '" + line + "'");
      saw_schema = true;
      continue;
    }

    if (line.front() == '[') {
      cu::require(line.back() == ']',
                  at_line(line_no) + "unterminated section header '" + line +
                      "'");
      const std::string inside = trim(line.substr(1, line.size() - 2));
      const std::size_t space = inside.find_first_of(" \t");
      const std::string section =
          space == std::string::npos ? inside : trim(inside.substr(0, space));
      const std::string name =
          space == std::string::npos ? "" : trim(inside.substr(space + 1));

      SectionState state;
      state.section = section;
      state.line = line_no;
      int object = -1;
      if (section == "scenario" || section == "output") {
        cu::require(name.empty(), at_line(line_no) + "section [" + section +
                                      "] does not take a name");
        bool& seen =
            section == "scenario" ? saw_scenario_section : saw_output_section;
        cu::require(!seen,
                    at_line(line_no) + "duplicate [" + section + "] section");
        seen = true;
        state.label = "[" + section + "]";
      } else if (section == "source" || section == "hop") {
        cu::require(valid_name(name),
                    at_line(line_no) + "section [" + section +
                        "] needs a name: [" + section + " NAME]");
        cu::require(names.insert(name).second,
                    at_line(line_no) + "duplicate name '" + name +
                        "' (sources and hops share one namespace)");
        state.label = "[" + section + " " + name + "]";
        if (section == "source") {
          ScenarioSource source;
          source.name = name;
          source.line = line_no;
          object = static_cast<int>(scenario.sources.size());
          scenario.sources.push_back(std::move(source));
        } else {
          ScenarioHop hop;
          hop.name = name;
          hop.line = line_no;
          object = static_cast<int>(scenario.hops.size());
          scenario.hops.push_back(std::move(hop));
        }
      } else {
        std::vector<std::string> known = {"scenario", "source", "hop",
                                          "output"};
        const std::string hint = cu::Flags::suggest(section, known);
        throw cu::InvalidArgument(
            at_line(line_no) + "unknown section [" + section + "]" +
            (hint.empty() ? "" : " (did you mean [" + hint + "]?)"));
      }
      states.push_back(std::move(state));
      state_section_object.push_back(object);
      current = &states.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    cu::require(eq != std::string::npos,
                at_line(line_no) + "expected 'key = value' or a section "
                "header, got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    cu::require(!key.empty(), at_line(line_no) + "empty key");
    cu::require(current != nullptr,
                at_line(line_no) + "key '" + key +
                    "' before any section header");
    cu::require(!value.empty(),
                at_line(line_no) + "key '" + key + "' has no value");

    const ScenarioSectionDoc& doc = section_doc(current->section);
    bool known = false;
    for (std::size_t i = 0; i < doc.count; ++i) {
      if (key == doc.keys[i].key) {
        known = true;
        break;
      }
    }
    if (!known) {
      const std::string hint =
          cu::Flags::suggest(key, section_key_names(doc));
      throw cu::InvalidArgument(
          at_line(line_no) + current->label + " unknown key '" + key + "'" +
          (hint.empty() ? "" : " (did you mean '" + hint + "'?)"));
    }
    const auto inserted = current->seen.emplace(key, line_no);
    cu::require(inserted.second,
                at_line(line_no) + current->label + " duplicate key '" + key +
                    "' (first set on line " +
                    std::to_string(inserted.first->second) + ")");

    const int object = state_section_object[states.size() - 1];
    if (current->section == "scenario") {
      if (key == "name") {
        cu::require(valid_name(value),
                    at_line(line_no) + "key 'name' must be a bare "
                    "identifier, got '" + value + "'");
        scenario.name = value;
      } else if (key == "frames") {
        scenario.frames = parse_count(line_no, key, value, 1);
      } else if (key == "warmup") {
        scenario.warmup = parse_count(line_no, key, value, 0);
      } else if (key == "replications") {
        scenario.replications =
            static_cast<std::size_t>(parse_count(line_no, key, value, 1));
      } else if (key == "seed") {
        scenario.seed = parse_u64(line_no, key, value);
      } else if (key == "Ts") {
        scenario.Ts = parse_number(line_no, key, value);
        cu::require(scenario.Ts > 0.0,
                    at_line(line_no) + "key 'Ts' must be > 0");
      }
    } else if (current->section == "output") {
      if (key == "occupancy_buckets") {
        scenario.occupancy_buckets =
            static_cast<std::size_t>(parse_count(line_no, key, value, 1));
        cu::require(scenario.occupancy_buckets <= 4096,
                    at_line(line_no) +
                        "key 'occupancy_buckets' must be <= 4096");
      } else if (key == "hop_trace_every") {
        scenario.hop_trace_every = parse_count(line_no, key, value, 0);
      }
    } else if (current->section == "source") {
      ScenarioSource& source =
          scenario.sources[static_cast<std::size_t>(object)];
      if (key == "model") {
        source.model.zoo_id = value;
      } else if (key == "kind") {
        source.model.kind = value;
      } else if (key == "mean") {
        source.model.mean = parse_number(line_no, key, value);
      } else if (key == "variance") {
        source.model.variance = parse_number(line_no, key, value);
      } else if (key == "a") {
        source.model.a = parse_number(line_no, key, value);
      } else if (key == "hurst") {
        source.model.hurst = parse_number(line_no, key, value);
      } else if (key == "weight") {
        source.model.weight = parse_number(line_no, key, value);
      } else if (key == "count") {
        source.count =
            static_cast<std::size_t>(parse_count(line_no, key, value, 1));
      } else if (key == "priority") {
        cu::require(value == "high" || value == "low",
                    at_line(line_no) + "key 'priority' must be high or "
                    "low, got '" + value + "'");
        source.low_priority = value == "low";
      } else if (key == "smooth") {
        source.smooth_window = parse_count(line_no, key, value, 0);
      } else if (key == "police_scr") {
        source.police_scr = parse_number(line_no, key, value);
      } else if (key == "police_bt") {
        source.police_bt = parse_number(line_no, key, value);
      } else if (key == "police_pcr") {
        source.police_pcr = parse_number(line_no, key, value);
      } else if (key == "police_cdvt") {
        source.police_cdvt = parse_number(line_no, key, value);
      } else if (key == "aal5") {
        source.aal5 = parse_onoff(line_no, key, value);
      }
    } else {  // hop
      ScenarioHop& hop = scenario.hops[static_cast<std::size_t>(object)];
      if (key == "input") {
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string item =
              trim(value.substr(start, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - start));
          cu::require(!item.empty(),
                      at_line(line_no) + "key 'input' has an empty entry");
          hop.inputs.push_back(item);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else if (key == "capacity") {
        hop.capacity_cells = parse_number(line_no, key, value);
      } else if (key == "link_mbps") {
        hop.link_mbps = parse_number(line_no, key, value);
      } else if (key == "buffer") {
        hop.buffer_cells = parse_number(line_no, key, value);
      } else if (key == "threshold") {
        hop.threshold_cells = parse_number(line_no, key, value);
      }
    }
  }

  cu::require(saw_schema, "scenario spec: empty file (first line must be '" +
                              std::string(kScenarioSchema) + "')");
  cu::require(!scenario.sources.empty(),
              "scenario spec: no [source NAME] sections");
  cu::require(!scenario.hops.empty(), "scenario spec: no [hop NAME] sections");

  // Per-section constraint checks, then capacity resolution and topology.
  std::vector<SectionState> hop_states(scenario.hops.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const int object = state_section_object[i];
    if (states[i].section == "source") {
      check_source(scenario.sources[static_cast<std::size_t>(object)],
                   states[i]);
    } else if (states[i].section == "hop") {
      check_hop(scenario.hops[static_cast<std::size_t>(object)], states[i]);
      hop_states[static_cast<std::size_t>(object)] = states[i];
    }
  }
  for (ScenarioHop& hop : scenario.hops) {
    if (hop.link_mbps > 0.0) {
      hop.capacity_cells =
          atm::Link(hop.link_mbps * 1e6).cells_per_frame(scenario.Ts);
    }
  }
  resolve_topology(scenario, hop_states);
  return scenario;
}

}  // namespace cts::sim
