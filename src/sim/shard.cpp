#include "cts/sim/shard.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::sim {

namespace {

constexpr const char* kSchema = "cts.shard.v1";

/// Strict full-string unsigned parse for the seed / spec fields.
std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  util::require(end != text.c_str() && *end == '\0' && errno != ERANGE &&
                    text.find('-') == std::string::npos,
                what + ": expected a non-negative integer, got '" + text +
                    "'");
  return value;
}

std::uint64_t as_u64(const obs::JsonValue& v, const char* what) {
  const double d = v.as_number();
  util::require(d >= 0.0,
                std::string("cts.shard.v1: ") + what + " must be >= 0");
  return static_cast<std::uint64_t>(d);
}

void write_config(obs::JsonWriter& w, const ReplicationConfig& config) {
  w.begin_object();
  w.key("replications").value(static_cast<std::uint64_t>(config.replications));
  w.key("frames_per_replication").value(config.frames_per_replication);
  w.key("warmup_frames").value(config.warmup_frames);
  w.key("n_sources").value(static_cast<std::uint64_t>(config.n_sources));
  w.key("capacity_cells").value(config.capacity_cells);
  // Decimal string: a JSON double would silently round seeds >= 2^53.
  w.key("master_seed").value(std::to_string(config.master_seed));
  w.key("shard_index").value(static_cast<std::uint64_t>(config.shard_index));
  w.key("shard_count").value(static_cast<std::uint64_t>(config.shard_count));
  w.key("buffer_sizes_cells").begin_array();
  for (const double b : config.buffer_sizes_cells) w.value(b);
  w.end_array();
  w.key("bop_thresholds_cells").begin_array();
  for (const double t : config.bop_thresholds_cells) w.value(t);
  w.end_array();
  w.end_object();
}

ReplicationConfig parse_config(const obs::JsonValue& v) {
  ReplicationConfig config;
  config.replications =
      static_cast<std::size_t>(as_u64(v.at("replications"), "replications"));
  config.frames_per_replication =
      as_u64(v.at("frames_per_replication"), "frames_per_replication");
  config.warmup_frames = as_u64(v.at("warmup_frames"), "warmup_frames");
  config.n_sources =
      static_cast<std::size_t>(as_u64(v.at("n_sources"), "n_sources"));
  config.capacity_cells = v.at("capacity_cells").as_number();
  config.master_seed =
      parse_u64(v.at("master_seed").as_string(), "cts.shard.v1 master_seed");
  config.shard_index =
      static_cast<std::size_t>(as_u64(v.at("shard_index"), "shard_index"));
  config.shard_count =
      static_cast<std::size_t>(as_u64(v.at("shard_count"), "shard_count"));
  for (const obs::JsonValue& b : v.at("buffer_sizes_cells").items) {
    config.buffer_sizes_cells.push_back(b.as_number());
  }
  for (const obs::JsonValue& t : v.at("bop_thresholds_cells").items) {
    config.bop_thresholds_cells.push_back(t.as_number());
  }
  return config;
}

void write_sample(obs::JsonWriter& w, const ReplicationSample& sample) {
  w.begin_object();
  w.key("rep").value(sample.rep);
  w.key("frames").value(sample.run.frames);
  w.key("arrived_cells").value(sample.run.arrived_cells);
  w.key("clr").begin_array();
  for (const ClrTally& tally : sample.run.clr) {
    w.begin_object();
    w.key("buffer_cells").value(tally.buffer_cells);
    w.key("lost_cells").value(tally.lost_cells);
    w.key("loss_frames").value(tally.loss_frames);
    w.end_object();
  }
  w.end_array();
  w.key("bop").begin_array();
  for (const BopTally& tally : sample.run.bop) {
    w.begin_object();
    w.key("threshold_cells").value(tally.threshold_cells);
    w.key("exceed_frames").value(tally.exceed_frames);
    w.end_object();
  }
  w.end_array();
  w.key("peak_workload_cells").value(sample.run.peak_workload_cells);
  w.end_object();
}

ReplicationSample parse_sample(const obs::JsonValue& v) {
  ReplicationSample sample;
  sample.rep = as_u64(v.at("rep"), "rep");
  sample.run.frames = as_u64(v.at("frames"), "frames");
  sample.run.arrived_cells = v.at("arrived_cells").as_number();
  sample.run.peak_workload_cells = v.at("peak_workload_cells").as_number();
  for (const obs::JsonValue& t : v.at("clr").items) {
    ClrTally tally;
    tally.buffer_cells = t.at("buffer_cells").as_number();
    tally.lost_cells = t.at("lost_cells").as_number();
    tally.loss_frames = as_u64(t.at("loss_frames"), "loss_frames");
    sample.run.clr.push_back(tally);
  }
  for (const obs::JsonValue& t : v.at("bop").items) {
    BopTally tally;
    tally.threshold_cells = t.at("threshold_cells").as_number();
    tally.exceed_frames = as_u64(t.at("exceed_frames"), "exceed_frames");
    sample.run.bop.push_back(tally);
  }
  return sample;
}

/// The fields that must agree across shards for the merge to be meaningful.
void require_compatible(const ReplicationConfig& a, const ReplicationConfig& b,
                        const std::string& label) {
  util::require(
      a.replications == b.replications &&
          a.frames_per_replication == b.frames_per_replication &&
          a.warmup_frames == b.warmup_frames &&
          a.n_sources == b.n_sources && a.capacity_cells == b.capacity_cells &&
          a.master_seed == b.master_seed &&
          a.shard_count == b.shard_count &&
          a.buffer_sizes_cells == b.buffer_sizes_cells &&
          a.bop_thresholds_cells == b.bop_thresholds_cells,
      "merge_shard_files: experiment '" + label +
          "' was run with different configurations across shards");
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
  const auto slash = text.find('/');
  util::require(slash != std::string::npos && slash > 0 &&
                    slash + 1 < text.size(),
                "shard spec: expected INDEX/COUNT (e.g. 0/4), got '" + text +
                    "'");
  ShardSpec spec;
  spec.index = static_cast<std::size_t>(
      parse_u64(text.substr(0, slash), "shard spec '" + text + "' index"));
  spec.count = static_cast<std::size_t>(
      parse_u64(text.substr(slash + 1), "shard spec '" + text + "' count"));
  util::require(spec.count >= 1,
                "shard spec: count must be >= 1, got '" + text + "'");
  util::require(spec.index < spec.count,
                "shard spec: index must be < count, got '" + text + "'");
  return spec;
}

std::string format_shard_spec(const ShardSpec& spec) {
  return std::to_string(spec.index) + "/" + std::to_string(spec.count);
}

void write_shard_json(std::ostream& os, const ShardFile& file) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("shard").begin_object();
  w.key("index").value(static_cast<std::uint64_t>(file.shard_index));
  w.key("count").value(static_cast<std::uint64_t>(file.shard_count));
  w.end_object();
  w.key("experiments").begin_array();
  for (const ShardExperiment& experiment : file.experiments) {
    w.begin_object();
    w.key("label").value(experiment.label);
    w.key("config");
    write_config(w, experiment.config);
    w.key("reps").begin_array();
    for (const ReplicationSample& sample : experiment.samples) {
      write_sample(w, sample);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  write_metrics_snapshot(w, file.metrics);
  w.end_object();
}

ShardFile parse_shard_file(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  util::require(doc.is_object() && doc.find("schema") != nullptr &&
                    doc.at("schema").as_string() == kSchema,
                std::string("parse_shard_file: not a ") + kSchema +
                    " document");
  ShardFile file;
  file.shard_index =
      static_cast<std::size_t>(as_u64(doc.at("shard").at("index"), "index"));
  file.shard_count =
      static_cast<std::size_t>(as_u64(doc.at("shard").at("count"), "count"));
  util::require(file.shard_count >= 1 && file.shard_index < file.shard_count,
                "parse_shard_file: invalid shard header " +
                    format_shard_spec({file.shard_index, file.shard_count}));
  for (const obs::JsonValue& e : doc.at("experiments").items) {
    ShardExperiment experiment;
    experiment.label = e.at("label").as_string();
    experiment.config = parse_config(e.at("config"));
    for (const obs::JsonValue& r : e.at("reps").items) {
      experiment.samples.push_back(parse_sample(r));
    }
    // Samples must be strictly ascending by global index; the merge relies
    // on concatenation in shard order being the canonical order.
    for (std::size_t i = 1; i < experiment.samples.size(); ++i) {
      util::require(experiment.samples[i - 1].rep < experiment.samples[i].rep,
                    "parse_shard_file: replication samples out of order in "
                    "experiment '" + experiment.label + "'");
    }
    file.experiments.push_back(std::move(experiment));
  }
  file.metrics = obs::metrics_snapshot_from_json(doc.at("metrics"));
  return file;
}

ShardFile read_shard_file(const std::string& path) {
  std::ifstream in(path);
  util::require(static_cast<bool>(in),
                "read_shard_file: cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_shard_file(buffer.str());
  } catch (const util::InvalidArgument& e) {
    throw util::InvalidArgument(path + ": " + e.what());
  }
}

MergedShards merge_shard_files(const std::vector<ShardFile>& shards) {
  util::require(!shards.empty(), "merge_shard_files: no shard files");
  const std::size_t count = shards[0].shard_count;
  util::require(shards.size() == count,
                "merge_shard_files: got " + std::to_string(shards.size()) +
                    " files for a " + std::to_string(count) + "-shard run");
  std::vector<const ShardFile*> ordered(count, nullptr);
  for (const ShardFile& shard : shards) {
    util::require(shard.shard_count == count,
                  "merge_shard_files: shard files disagree on shard count");
    util::require(ordered[shard.shard_index] == nullptr,
                  "merge_shard_files: duplicate shard index " +
                      std::to_string(shard.shard_index));
    ordered[shard.shard_index] = &shard;
  }

  const std::size_t n_experiments = ordered[0]->experiments.size();
  MergedShards out;
  out.shard_count = count;
  for (const ShardFile* shard : ordered) {
    util::require(shard->experiments.size() == n_experiments,
                  "merge_shard_files: shard files disagree on the experiment "
                  "list");
  }

  for (std::size_t e = 0; e < n_experiments; ++e) {
    const ShardExperiment& first = ordered[0]->experiments[e];
    std::vector<ReplicationSample> samples;
    samples.reserve(first.config.replications);
    for (std::size_t i = 0; i < count; ++i) {
      const ShardExperiment& experiment = ordered[i]->experiments[e];
      util::require(experiment.label == first.label,
                    "merge_shard_files: experiment order differs across "
                    "shards ('" + experiment.label + "' vs '" + first.label +
                        "')");
      require_compatible(experiment.config, first.config, first.label);
      util::require(experiment.config.shard_index == i,
                    "merge_shard_files: experiment '" + first.label +
                        "' was recorded under the wrong shard index");
      samples.insert(samples.end(), experiment.samples.begin(),
                     experiment.samples.end());
    }
    util::require(samples.size() == first.config.replications,
                  "merge_shard_files: experiment '" + first.label + "' has " +
                      std::to_string(samples.size()) + " samples for " +
                      std::to_string(first.config.replications) +
                      " replications");
    for (std::size_t k = 0; k < samples.size(); ++k) {
      util::require(samples[k].rep == k,
                    "merge_shard_files: experiment '" + first.label +
                        "' is missing replication " + std::to_string(k));
    }

    MergedExperiment merged;
    merged.label = first.label;
    merged.config = first.config;
    merged.config.shard_index = 0;
    merged.config.shard_count = 1;
    merged.result = aggregate_replications(first.config.buffer_sizes_cells,
                                           first.config.bop_thresholds_cells,
                                           std::move(samples));
    out.experiments.push_back(std::move(merged));
  }

  // Registries fold in shard-index order, so the merged snapshot is
  // deterministic for any completion order of the workers.
  for (const ShardFile* shard : ordered) out.metrics.merge(shard->metrics);
  return out;
}

// ---------------------------------------------------------------------------
// ShardRecorder

ShardRecorder& ShardRecorder::global() {
  static ShardRecorder* instance = new ShardRecorder();
  return *instance;
}

void ShardRecorder::enable(std::string out_path) {
  const std::lock_guard<std::mutex> lock(mu_);
  enabled_ = true;
  path_ = std::move(out_path);
  experiments_.clear();
}

void ShardRecorder::disable() {
  const std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
  path_.clear();
  experiments_.clear();
}

bool ShardRecorder::enabled() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

std::string ShardRecorder::path() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

void ShardRecorder::record(const ReplicationConfig& config,
                           const std::vector<ReplicationSample>& samples) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  ShardExperiment experiment;
  experiment.label =
      config.progress_label.empty() ? "run" : config.progress_label;
  experiment.config = config;
  experiment.samples = samples;
  if (!experiments_.empty()) {
    util::require(
        experiments_.front().config.shard_index == config.shard_index &&
            experiments_.front().config.shard_count == config.shard_count,
        "ShardRecorder: experiments recorded under different shard specs "
        "cannot share one shard file");
  }
  experiments_.push_back(std::move(experiment));
}

bool ShardRecorder::write(const obs::MetricsRegistry& registry) const {
  ShardFile file;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return false;
    if (!experiments_.empty()) {
      file.shard_index = experiments_.front().config.shard_index;
      file.shard_count = experiments_.front().config.shard_count;
    }
    file.experiments = experiments_;
  }
  file.metrics = registry.snapshot();
  std::ofstream out(path());
  if (!out) return false;
  write_shard_json(out, file);
  out.put('\n');
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cts::sim
