#include "cts/sim/curves.hpp"

#include <algorithm>
#include <cmath>

#include "cts/core/large_n.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::sim {

namespace {

/// `span_name` attributes the whole buffer-grid scan (one span per curve,
/// not per point) to a named phase in --trace/--perf output, so the
/// analytic benches' phase tables show where the rate-function work went
/// instead of lumping everything under the "bench" root span.
AnalyticCurve asymptotic_curve(const fit::ModelSpec& model,
                               const MuxGeometry& geometry,
                               const std::vector<double>& buffer_ms,
                               bool bahadur_rao, const char* span_name) {
  obs::ScopedSpan span(span_name);
  core::RateFunction rate(model.acf, model.mean, model.variance,
                          geometry.bandwidth_per_source);
  AnalyticCurve curve;
  curve.model = model.name;
  curve.buffer_ms = buffer_ms;
  curve.log10_bop.reserve(buffer_ms.size());
  curve.critical_m.reserve(buffer_ms.size());
  // Warm-start each point's CTS scan from the previous point's m*: grids
  // sweep b upward and m*_b is non-decreasing in b (paper Thm. 2), so the
  // hint never skips the minimiser and the curve stays bit-identical to
  // per-point cold scans (asserted by test_curve_bit_identity).  A
  // non-monotone grid resets the hint, preserving correctness for
  // arbitrary buffer lists.
  std::size_t hint = 1;
  double prev_b = 0.0;
  for (const double ms : buffer_ms) {
    const double total_cells = geometry.buffer_ms_to_cells(ms);
    const double b = total_cells / static_cast<double>(geometry.n_sources);
    if (b < prev_b) hint = 1;
    const core::BopPoint point =
        bahadur_rao ? core::br_log10_bop(rate, b, geometry.n_sources, hint)
                    : core::large_n_log10_bop(rate, b, geometry.n_sources,
                                              hint);
    hint = point.critical_m;
    prev_b = b;
    curve.log10_bop.push_back(point.log10_bop);
    curve.critical_m.push_back(point.critical_m);
  }
  return curve;
}

}  // namespace

AnalyticCurve br_curve(const fit::ModelSpec& model, const MuxGeometry& geometry,
                       const std::vector<double>& buffer_ms) {
  return asymptotic_curve(model, geometry, buffer_ms, true, "curve.br");
}

AnalyticCurve large_n_curve(const fit::ModelSpec& model,
                            const MuxGeometry& geometry,
                            const std::vector<double>& buffer_ms) {
  return asymptotic_curve(model, geometry, buffer_ms, false, "curve.large_n");
}

AnalyticCurve cts_curve(const fit::ModelSpec& model,
                        const MuxGeometry& geometry,
                        const std::vector<double>& buffer_ms) {
  // The CTS is a by-product of the B-R evaluation; reuse it.
  return asymptotic_curve(model, geometry, buffer_ms, true, "curve.cts");
}

ReplicationConfig replication_config_for_grid(
    const fit::ModelSpec& model, const MuxGeometry& geometry,
    const std::vector<double>& buffer_ms, const ReplicationConfig& scale) {
  ReplicationConfig config = scale;
  config.progress_label = model.name;
  config.n_sources = geometry.n_sources;
  config.capacity_cells = geometry.total_capacity();
  config.buffer_sizes_cells.clear();
  for (const double ms : buffer_ms) {
    config.buffer_sizes_cells.push_back(geometry.buffer_ms_to_cells(ms));
  }
  return config;
}

SimulatedCurve simulated_clr_curve(const fit::ModelSpec& model,
                                   const MuxGeometry& geometry,
                                   const std::vector<double>& buffer_ms,
                                   const ReplicationConfig& scale) {
  const ReplicationConfig config =
      replication_config_for_grid(model, geometry, buffer_ms, scale);
  const ReplicationResult result = run_replicated(model, config);

  SimulatedCurve curve;
  curve.model = model.name;
  curve.buffer_ms = buffer_ms;
  curve.total_frames = result.total_frames;
  curve.replications = config.replications;
  for (const ClrEstimate& est : result.clr) {
    curve.clr.push_back(est.pooled_clr);
    curve.ci_low.push_back(std::max(est.clr.low(), 0.0));
    curve.ci_high.push_back(est.clr.high());
  }
  return curve;
}

std::vector<double> buffer_grid_ms(double lo_ms, double hi_ms,
                                   std::size_t points) {
  util::require(lo_ms > 0.0 && hi_ms > lo_ms && points >= 2,
                "buffer_grid_ms: need 0 < lo < hi and >= 2 points");
  std::vector<double> grid(points);
  const double ratio = std::pow(hi_ms / lo_ms,
                                1.0 / static_cast<double>(points - 1));
  double x = lo_ms;
  for (std::size_t i = 0; i < points; ++i) {
    // pow() rounding can push the running product past hi_ms before the
    // last point (large `points`, ratio rounded up); clamp so pinning the
    // endpoint below cannot make the grid non-monotone.
    grid[i] = std::min(x, hi_ms);
    x *= ratio;
  }
  grid.back() = hi_ms;
  return grid;
}

std::vector<double> linear_grid_ms(double lo_ms, double hi_ms,
                                   std::size_t points) {
  util::require(hi_ms > lo_ms && points >= 2,
                "linear_grid_ms: need lo < hi and >= 2 points");
  std::vector<double> grid(points);
  const double step = (hi_ms - lo_ms) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    grid[i] = lo_ms + step * static_cast<double>(i);
  }
  return grid;
}

}  // namespace cts::sim
