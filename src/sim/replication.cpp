#include "cts/sim/replication.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "cts/obs/metrics.hpp"
#include "cts/obs/progress.hpp"
#include "cts/obs/trace.hpp"
#include "cts/sim/shard.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/rng.hpp"

namespace cts::sim {

namespace {

/// Bucket edges for the per-replication wall-time histogram (ms).
const std::vector<double>& rep_wall_ms_edges() {
  static const std::vector<double> edges = {1.0, 3.0,  10.0, 30.0, 100.0,
                                            300.0, 1e3, 3e3,  1e4,  3e4,
                                            1e5,   3e5};
  return edges;
}

}  // namespace

ShardSliceRange shard_slice(std::size_t replications, std::size_t shard_index,
                            std::size_t shard_count) {
  util::require(replications >= 1,
                "shard_slice: need at least one replication");
  util::require(shard_count >= 1, "shard_slice: shard count must be >= 1");
  util::require(shard_index < shard_count,
                "shard_slice: shard index " + std::to_string(shard_index) +
                    " out of range for " + std::to_string(shard_count) +
                    " shards");
  util::require(shard_count <= replications,
                "shard_slice: " + std::to_string(shard_count) +
                    " shards need at least as many replications (got " +
                    std::to_string(replications) + ")");
  ShardSliceRange range;
  range.lo = replications * shard_index / shard_count;
  range.hi = replications * (shard_index + 1) / shard_count;
  return range;
}

ShardSliceRange run_replication_slice(
    const SliceDriverConfig& config,
    const std::function<void(std::size_t rep, std::size_t local,
                             obs::ProgressReporter& reporter)>& body) {
  const ShardSliceRange range =
      shard_slice(config.replications, config.shard_index, config.shard_count);
  const std::size_t slice = range.size();

  unsigned threads = config.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads, static_cast<unsigned>(slice));

  // Config echo into the registry: a --metrics report then records the
  // exact seed/scale/threads that produced its tallies.  The seed is split
  // into two 32-bit gauges because a double gauge silently rounds values
  // >= 2^53 — a report must never claim a seed that does not reproduce the
  // run.  Counters cover only this worker's slice so that merging all
  // shard registries reproduces the single-process totals.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.gauge("sim.threads", static_cast<double>(threads));
  registry.gauge("sim.master_seed_hi",
                 static_cast<double>(config.master_seed >> 32));
  registry.gauge("sim.master_seed_lo",
                 static_cast<double>(config.master_seed & 0xFFFFFFFFULL));
  if (config.shard_count > 1) {
    registry.gauge("sim.shard.index", static_cast<double>(config.shard_index));
    registry.gauge("sim.shard.count", static_cast<double>(config.shard_count));
  }
  registry.add("sim.replications", slice);
  // Measured and warmup frames are separate totals: the progress reporter
  // counts both, provenance needs them distinguished.
  registry.add("sim.frames_total", slice * config.frames_per_replication);
  registry.add("sim.warmup_frames_total", slice * config.warmup_frames);

  obs::ProgressReporter::Options popts;
  popts.label = config.progress_label.empty() ? "sim" : config.progress_label;
  popts.total_units = slice;
  popts.total_frames =
      slice * (config.frames_per_replication + config.warmup_frames);
  popts.force_disable = !config.progress;
  obs::ProgressReporter reporter(std::move(popts));

  std::atomic<std::size_t> next_local{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t local = next_local.fetch_add(1);
      if (local >= slice) return;
      const std::size_t rep = range.lo + local;  // global index
      {
        CTS_TRACE_SPAN("replication");
        const auto t0 = std::chrono::steady_clock::now();
        body(rep, local, reporter);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        registry.observe("sim.replication.wall_ms", wall_ms,
                         rep_wall_ms_edges());
      }
      reporter.unit_done();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  reporter.finish();
  return range;
}

ReplicationResult run_replicated(const fit::ModelSpec& model,
                                 const ReplicationConfig& config) {
  CTS_TRACE_SPAN("replication.run");
  util::require(config.n_sources >= 1,
                "run_replicated: need at least one source");

  SliceDriverConfig driver;
  driver.replications = config.replications;
  driver.frames_per_replication = config.frames_per_replication;
  driver.warmup_frames = config.warmup_frames;
  driver.master_seed = config.master_seed;
  driver.threads = config.threads;
  driver.shard_index = config.shard_index;
  driver.shard_count = config.shard_count;
  driver.progress_label = config.progress_label;
  driver.progress = config.progress;

  std::vector<FluidRunResult> per_rep(
      shard_slice(config.replications, config.shard_index, config.shard_count)
          .size());
  const ShardSliceRange range = run_replication_slice(
      driver, [&](std::size_t rep, std::size_t local,
                  obs::ProgressReporter& reporter) {
        // Deterministic per-replication seed, derived from the GLOBAL
        // replication index — independent of thread and shard layout.
        util::SplitMix64 seeder(replication_seed_root(config.master_seed, rep));
        std::vector<std::unique_ptr<proc::FrameSource>> sources;
        sources.reserve(config.n_sources);
        for (std::size_t s = 0; s < config.n_sources; ++s) {
          sources.push_back(model.make_source(seeder.next()));
        }
        FluidRunConfig run;
        run.frames = config.frames_per_replication;
        run.warmup_frames = config.warmup_frames;
        run.capacity_cells = config.capacity_cells;
        run.buffer_sizes_cells = config.buffer_sizes_cells;
        run.bop_thresholds_cells = config.bop_thresholds_cells;
        run.progress = &reporter;
        per_rep[local] = FluidMux::run(sources, run);
      });

  std::vector<ReplicationSample> samples(range.size());
  for (std::size_t local = 0; local < range.size(); ++local) {
    samples[local].rep = range.lo + local;
    samples[local].run = std::move(per_rep[local]);
  }
  ReplicationResult result = aggregate_replications(
      config.buffer_sizes_cells, config.bop_thresholds_cells,
      std::move(samples));

  if (ShardRecorder::global().enabled()) {
    ShardRecorder::global().record(config, result.samples);
  }
  return result;
}

ReplicationResult aggregate_replications(
    const std::vector<double>& buffer_sizes_cells,
    const std::vector<double>& bop_thresholds_cells,
    std::vector<ReplicationSample> samples) {
  util::require(!samples.empty(),
                "aggregate_replications: need at least one sample");
  ReplicationResult result;
  result.clr.resize(buffer_sizes_cells.size());
  result.bop.resize(bop_thresholds_cells.size());
  for (std::size_t i = 0; i < result.clr.size(); ++i) {
    result.clr[i].buffer_cells = buffer_sizes_cells[i];
  }
  for (std::size_t i = 0; i < result.bop.size(); ++i) {
    result.bop[i].threshold_cells = bop_thresholds_cells[i];
  }

  double total_arrived = 0.0;
  std::uint64_t total_frames = 0;
  std::vector<std::vector<double>> clr_samples(result.clr.size());
  std::vector<std::vector<double>> bop_samples(result.bop.size());
  std::vector<double> lost_totals(result.clr.size(), 0.0);
  std::vector<double> exceed_totals(result.bop.size(), 0.0);

  for (const ReplicationSample& sample : samples) {
    const FluidRunResult& run = sample.run;
    util::require(run.clr.size() == result.clr.size() &&
                      run.bop.size() == result.bop.size(),
                  "aggregate_replications: sample tally shape does not match "
                  "the buffer/threshold grids");
    total_arrived += run.arrived_cells;
    total_frames += run.frames;
    for (std::size_t i = 0; i < run.clr.size(); ++i) {
      clr_samples[i].push_back(run.clr[i].clr(run.arrived_cells));
      lost_totals[i] += run.clr[i].lost_cells;
    }
    for (std::size_t i = 0; i < run.bop.size(); ++i) {
      bop_samples[i].push_back(run.bop[i].bop(run.frames));
      exceed_totals[i] += static_cast<double>(run.bop[i].exceed_frames);
    }
  }

  for (std::size_t i = 0; i < result.clr.size(); ++i) {
    result.clr[i].clr = stats::replication_interval(clr_samples[i]);
    result.clr[i].pooled_clr =
        total_arrived > 0.0 ? lost_totals[i] / total_arrived : 0.0;
  }
  for (std::size_t i = 0; i < result.bop.size(); ++i) {
    result.bop[i].bop = stats::replication_interval(bop_samples[i]);
    result.bop[i].pooled_bop =
        total_frames > 0 ? exceed_totals[i] / static_cast<double>(total_frames)
                         : 0.0;
  }
  result.total_arrived_cells = total_arrived;
  result.total_frames = total_frames;
  result.samples = std::move(samples);
  return result;
}

ReplicationConfig default_scale() {
  ReplicationConfig config;
  config.replications = 12;
  config.frames_per_replication = 120000;
  config.warmup_frames = 2000;
  return config;
}

ReplicationConfig paper_scale() {
  ReplicationConfig config;
  config.replications = 60;
  config.frames_per_replication = 500000;
  config.warmup_frames = 5000;
  return config;
}

ReplicationConfig apply_env_overrides(ReplicationConfig config) {
  if (util::env_flag("REPRO_FULL")) {
    const ReplicationConfig full = paper_scale();
    config.replications = full.replications;
    config.frames_per_replication = full.frames_per_replication;
    config.warmup_frames = full.warmup_frames;
  }
  // env_int throws on malformed values; additionally validate the range
  // here — a cast of -1 to unsigned would otherwise ask for ~2^64
  // replications, and 0 would only fail deep inside run_replicated with a
  // message that never mentions the environment variable.
  const std::int64_t reps = util::env_int(
      "REPRO_REPS", static_cast<std::int64_t>(config.replications));
  util::require(reps >= 1, "env REPRO_REPS: need at least 1 replication, got "
                               "'" + std::to_string(reps) + "'");
  config.replications = static_cast<std::size_t>(reps);
  const std::int64_t frames = util::env_int(
      "REPRO_FRAMES",
      static_cast<std::int64_t>(config.frames_per_replication));
  util::require(frames >= 1,
                "env REPRO_FRAMES: need at least 1 frame per replication, "
                "got '" + std::to_string(frames) + "'");
  config.frames_per_replication = static_cast<std::uint64_t>(frames);
  if (const char* raw = std::getenv("REPRO_SHARD")) {
    try {
      const ShardSpec spec = parse_shard_spec(raw);
      config.shard_index = spec.index;
      config.shard_count = spec.count;
    } catch (const util::InvalidArgument& e) {
      throw util::InvalidArgument(std::string("env REPRO_SHARD: ") + e.what());
    }
  }
  return config;
}

}  // namespace cts::sim
