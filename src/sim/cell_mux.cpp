#include "cts/sim/cell_mux.hpp"

#include <algorithm>
#include <cmath>

#include "cts/obs/metrics.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::sim {

namespace {

/// One cell arrival instant, in units of the frame interval [0, 1).
struct Arrival {
  double time = 0.0;
};

}  // namespace

CellRunResult CellMux::run(
    std::vector<std::unique_ptr<proc::FrameSource>>& sources,
    const CellRunConfig& config) {
  CTS_TRACE_SPAN("cell_mux.run");
  util::require(!sources.empty(), "CellMux: need at least one source");
  util::require(config.capacity_cells > 0, "CellMux: capacity must be > 0");

  CellRunResult result;
  result.frames = config.frames;

  // Queue in whole cells; service completion clock in frame units.
  std::uint64_t queue = 0;
  const double service_interval =
      1.0 / static_cast<double>(config.capacity_cells);
  // Time (within the rolling frame) of the next service completion.
  double next_service = service_interval;

  std::vector<Arrival> arrivals;
  const std::uint64_t total = config.warmup_frames + config.frames;
  for (std::uint64_t n = 0; n < total; ++n) {
    const bool measuring = n >= config.warmup_frames;
    arrivals.clear();
    for (auto& source : sources) {
      const double raw = source->next_frame();
      const auto cells = static_cast<std::uint64_t>(
          std::llround(std::max(raw, 0.0)));
      // Deterministic smoothing: cell j of a size-k frame arrives at
      // (j + 1/2)/k within the frame (half-offset avoids all sources
      // colliding at t = 0 exactly).
      for (std::uint64_t j = 0; j < cells; ++j) {
        arrivals.push_back(
            {(static_cast<double>(j) + 0.5) / static_cast<double>(cells)});
      }
    }
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival& a, const Arrival& b) { return a.time < b.time; });

    for (const Arrival& cell : arrivals) {
      // Drain all service completions up to this arrival instant.
      while (next_service <= cell.time && queue > 0) {
        --queue;
        next_service += service_interval;
      }
      if (next_service <= cell.time) {
        // Server idle: align its clock to the arrival.
        next_service = cell.time + service_interval;
      }
      if (measuring) ++result.arrived_cells;
      if (queue >= config.buffer_cells) {
        if (measuring) ++result.lost_cells;
      } else {
        if (measuring) {
          // Queue seen on arrival -> waiting delay via the service rate.
          result.mean_queue_on_arrival += static_cast<double>(queue);
          const double delay_frames =
              static_cast<double>(queue + 1) * service_interval;
          result.max_delay_frames =
              std::max(result.max_delay_frames, delay_frames);
        }
        ++queue;
        result.peak_queue_cells = std::max(result.peak_queue_cells,
                                           static_cast<std::uint64_t>(queue));
      }
    }
    // Drain the rest of the frame.
    while (next_service <= 1.0 && queue > 0) {
      --queue;
      next_service += service_interval;
    }
    if (queue == 0) {
      next_service = std::max(next_service, 1.0) - 1.0 + service_interval;
      // Idle at frame end: next service departs one interval into the new
      // frame once work arrives; approximating the aligned server clock.
      next_service = service_interval;
    } else {
      next_service -= 1.0;
    }
  }
  if (result.arrived_cells > result.lost_cells) {
    result.mean_queue_on_arrival /=
        static_cast<double>(result.arrived_cells - result.lost_cells);
  }

  obs::MetricsShard shard;
  shard.add("cell_mux.runs");
  shard.add("cell_mux.frames", config.frames);
  shard.add("cell_mux.arrived_cells", result.arrived_cells);
  shard.add("cell_mux.lost_cells", result.lost_cells);
  shard.gauge("cell_mux.peak_queue_cells",
              static_cast<double>(result.peak_queue_cells),
              obs::GaugeMode::kMax);
  obs::MetricsRegistry::global().merge(shard);
  return result;
}

}  // namespace cts::sim
