#include "cts/sim/fluid_mux.hpp"

#include <algorithm>

#include "cts/util/error.hpp"

namespace cts::sim {

FluidRunResult FluidMux::run(
    std::vector<std::unique_ptr<proc::FrameSource>>& sources,
    const FluidRunConfig& config) {
  util::require(!sources.empty(), "FluidMux: need at least one source");
  util::require(config.capacity_cells > 0.0,
                "FluidMux: capacity must be > 0");
  for (const double b : config.buffer_sizes_cells) {
    util::require(b >= 0.0, "FluidMux: buffer sizes must be >= 0");
  }
  for (const double x : config.bop_thresholds_cells) {
    util::require(x >= 0.0, "FluidMux: BOP thresholds must be >= 0");
  }

  FluidRunResult result;
  result.frames = config.frames;
  result.clr.resize(config.buffer_sizes_cells.size());
  for (std::size_t i = 0; i < result.clr.size(); ++i) {
    result.clr[i].buffer_cells = config.buffer_sizes_cells[i];
  }
  result.bop.resize(config.bop_thresholds_cells.size());
  for (std::size_t i = 0; i < result.bop.size(); ++i) {
    result.bop[i].threshold_cells = config.bop_thresholds_cells[i];
  }

  // One workload per finite buffer plus one infinite-buffer workload.
  std::vector<double> w_finite(config.buffer_sizes_cells.size(), 0.0);
  double w_infinite = 0.0;
  const double c = config.capacity_cells;

  // Kahan compensation for the long loss/arrival accumulations.
  std::vector<double> loss_comp(w_finite.size(), 0.0);
  double arrived = 0.0;
  double arrived_comp = 0.0;

  const std::uint64_t total = config.warmup_frames + config.frames;
  for (std::uint64_t n = 0; n < total; ++n) {
    double a = 0.0;
    for (auto& source : sources) a += source->next_frame();
    const bool measuring = n >= config.warmup_frames;

    if (measuring) {
      const double y = a - arrived_comp;
      const double t = arrived + y;
      arrived_comp = (t - arrived) - y;
      arrived = t;
    }

    const double net = a - c;
    for (std::size_t i = 0; i < w_finite.size(); ++i) {
      const double b = config.buffer_sizes_cells[i];
      double w = w_finite[i] + net;
      if (w > b) {
        if (measuring) {
          const double loss = w - b;
          auto& tally = result.clr[i];
          const double y = loss - loss_comp[i];
          const double t = tally.lost_cells + y;
          loss_comp[i] = (t - tally.lost_cells) - y;
          tally.lost_cells = t;
          ++tally.loss_frames;
        }
        w = b;
      } else if (w < 0.0) {
        w = 0.0;
      }
      w_finite[i] = w;
    }

    w_infinite = std::max(w_infinite + net, 0.0);
    if (measuring) {
      for (std::size_t i = 0; i < result.bop.size(); ++i) {
        if (w_infinite > config.bop_thresholds_cells[i]) {
          ++result.bop[i].exceed_frames;
        }
      }
    }
  }

  result.arrived_cells = arrived;
  return result;
}

}  // namespace cts::sim
