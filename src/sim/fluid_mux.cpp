#include "cts/sim/fluid_mux.hpp"

#include <algorithm>

#include "cts/obs/metrics.hpp"
#include "cts/obs/progress.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::sim {

FluidRunResult FluidMux::run(
    std::vector<std::unique_ptr<proc::FrameSource>>& sources,
    const FluidRunConfig& config) {
  CTS_TRACE_SPAN("fluid_mux.run");
  util::require(!sources.empty(), "FluidMux: need at least one source");
  util::require(config.capacity_cells > 0.0,
                "FluidMux: capacity must be > 0");
  for (const double b : config.buffer_sizes_cells) {
    util::require(b >= 0.0, "FluidMux: buffer sizes must be >= 0");
  }
  for (const double x : config.bop_thresholds_cells) {
    util::require(x >= 0.0, "FluidMux: BOP thresholds must be >= 0");
  }

  FluidRunResult result;
  result.frames = config.frames;
  result.clr.resize(config.buffer_sizes_cells.size());
  for (std::size_t i = 0; i < result.clr.size(); ++i) {
    result.clr[i].buffer_cells = config.buffer_sizes_cells[i];
  }
  result.bop.resize(config.bop_thresholds_cells.size());
  for (std::size_t i = 0; i < result.bop.size(); ++i) {
    result.bop[i].threshold_cells = config.bop_thresholds_cells[i];
  }

  // One workload per finite buffer plus one infinite-buffer workload.
  std::vector<double> w_finite(config.buffer_sizes_cells.size(), 0.0);
  double w_infinite = 0.0;
  const double c = config.capacity_cells;

  // Kahan compensation for the long loss/arrival accumulations.
  std::vector<double> loss_comp(w_finite.size(), 0.0);
  double arrived = 0.0;
  double arrived_comp = 0.0;

  double peak_workload = 0.0;
  // Progress ticks are batched so the hot loop touches the reporter's
  // atomics only every kProgressStride frames.
  constexpr std::uint64_t kProgressStride = 8192;

  const std::uint64_t total = config.warmup_frames + config.frames;
  for (std::uint64_t n = 0; n < total; ++n) {
    double a = 0.0;
    for (auto& source : sources) a += source->next_frame();
    const bool measuring = n >= config.warmup_frames;
    if (config.progress != nullptr && (n + 1) % kProgressStride == 0) {
      config.progress->add_frames(kProgressStride);
    }

    if (measuring) {
      const double y = a - arrived_comp;
      const double t = arrived + y;
      arrived_comp = (t - arrived) - y;
      arrived = t;
    }

    const double net = a - c;
    for (std::size_t i = 0; i < w_finite.size(); ++i) {
      const double b = config.buffer_sizes_cells[i];
      double w = w_finite[i] + net;
      if (w > b) {
        if (measuring) {
          const double loss = w - b;
          auto& tally = result.clr[i];
          const double y = loss - loss_comp[i];
          const double t = tally.lost_cells + y;
          loss_comp[i] = (t - tally.lost_cells) - y;
          tally.lost_cells = t;
          ++tally.loss_frames;
        }
        w = b;
      } else if (w < 0.0) {
        w = 0.0;
      }
      w_finite[i] = w;
    }

    w_infinite = std::max(w_infinite + net, 0.0);
    if (measuring) {
      if (w_infinite > peak_workload) peak_workload = w_infinite;
      for (std::size_t i = 0; i < result.bop.size(); ++i) {
        if (w_infinite > config.bop_thresholds_cells[i]) {
          ++result.bop[i].exceed_frames;
        }
      }
    }
  }
  if (config.progress != nullptr) {
    config.progress->add_frames(total % kProgressStride);
  }

  result.arrived_cells = arrived;
  result.peak_workload_cells = peak_workload;

  // One locked merge per run; the per-frame path above never touches the
  // registry (accumulate-then-reduce, like the replication tallies).
  obs::MetricsShard shard;
  shard.add("fluid_mux.runs");
  shard.add("fluid_mux.frames", config.frames);
  shard.add_sum("fluid_mux.arrived_cells", arrived);
  double lost = 0.0;
  std::uint64_t loss_frames = 0;
  for (const ClrTally& tally : result.clr) {
    lost += tally.lost_cells;
    loss_frames += tally.loss_frames;
  }
  shard.add_sum("fluid_mux.lost_cells", lost);
  shard.add("fluid_mux.loss_frames", loss_frames);
  shard.gauge("fluid_mux.peak_workload_cells", peak_workload,
              obs::GaugeMode::kMax);
  obs::MetricsRegistry::global().merge(shard);
  return result;
}

}  // namespace cts::sim
