#include "cts/obs/progress.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cts/util/flags.hpp"

namespace cts::obs {

namespace {

std::atomic<bool> g_force_quiet{false};

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// 1234567 -> "1.23M", 4321 -> "4.3k"; keeps the status line narrow.
std::string human_count(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string format_eta(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) return "--:--";
  const auto total = static_cast<std::int64_t>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld",
                  static_cast<long long>(total / 3600),
                  static_cast<long long>((total / 60) % 60),
                  static_cast<long long>(total % 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld:%02lld",
                  static_cast<long long>(total / 60),
                  static_cast<long long>(total % 60));
  }
  return buf;
}

}  // namespace

void force_quiet(bool q) noexcept {
  g_force_quiet.store(q, std::memory_order_relaxed);
}

bool quiet() noexcept {
  if (g_force_quiet.load(std::memory_order_relaxed)) return true;
  return util::env_flag("CTS_QUIET");
}

bool ProgressReporter::stderr_is_tty() noexcept {
  return ::isatty(::fileno(stderr)) == 1;
}

ProgressReporter::ProgressReporter(Options options)
    : options_(std::move(options)), start_ns_(steady_ns()) {
  if (options_.sink == nullptr) options_.sink = stderr;
  if (options_.force_disable) {
    enabled_ = false;
  } else if (options_.force_enable) {
    enabled_ = true;
  } else {
    enabled_ = !quiet() && stderr_is_tty();
  }
}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::add_frames(std::uint64_t n) noexcept {
  if (!enabled_) return;
  frames_.fetch_add(n, std::memory_order_relaxed);
  maybe_render();
}

void ProgressReporter::unit_done() noexcept {
  if (!enabled_) return;
  units_.fetch_add(1, std::memory_order_relaxed);
  maybe_render();
}

void ProgressReporter::maybe_render() noexcept {
  const std::int64_t now = steady_ns();
  std::int64_t last = last_render_ns_.load(std::memory_order_relaxed);
  const auto interval_ns =
      static_cast<std::int64_t>(options_.min_interval_sec * 1e9);
  // kNeverRendered guarantees the very first tick draws regardless of the
  // steady clock's (arbitrary) epoch.
  if (last != kNeverRendered && now - last < interval_ns) return;
  // One worker wins the right to redraw; the rest skip.
  if (!last_render_ns_.compare_exchange_strong(last, now,
                                               std::memory_order_relaxed)) {
    return;
  }
  render();
}

void ProgressReporter::render() noexcept {
  try {
    const std::uint64_t frames = frames_.load(std::memory_order_relaxed);
    const std::uint64_t units = units_.load(std::memory_order_relaxed);
    const double elapsed =
        static_cast<double>(steady_ns() - start_ns_) / 1e9;
    const double rate = elapsed > 0.0
                            ? static_cast<double>(frames) / elapsed
                            : 0.0;

    std::string line = "[" + options_.label + "]";
    if (options_.total_units > 0) {
      line += " reps " + std::to_string(units) + "/" +
              std::to_string(options_.total_units);
    }
    line += " | " + human_count(static_cast<double>(frames)) + " frames";
    line += " | " + human_count(rate) + " f/s";
    if (options_.total_frames > 0 && rate > 0.0 &&
        frames < options_.total_frames) {
      const double remaining =
          static_cast<double>(options_.total_frames - frames) / rate;
      line += " | ETA " + format_eta(remaining);
    }

    const std::lock_guard<std::mutex> lock(render_mu_);
    if (finished_) return;
    // Pad with spaces so a shorter redraw fully overwrites the previous one.
    const std::size_t prev = last_line_.size();
    std::string padded = line;
    if (prev > padded.size()) padded.append(prev - padded.size(), ' ');
    std::fprintf(options_.sink, "\r%s", padded.c_str());
    std::fflush(options_.sink);
    last_line_ = std::move(line);
    renders_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Progress output must never take down a run.
  }
}

void ProgressReporter::finish() noexcept {
  if (!enabled_) return;
  {
    const std::lock_guard<std::mutex> lock(render_mu_);
    if (finished_) return;
  }
  // Force one final redraw bypassing the throttle, then terminate the line.
  render();
  const std::lock_guard<std::mutex> lock(render_mu_);
  if (finished_) return;
  finished_ = true;
  std::fprintf(options_.sink, "\n");
  std::fflush(options_.sink);
}

std::string ProgressReporter::last_line() const {
  const std::lock_guard<std::mutex> lock(render_mu_);
  return last_line_;
}

}  // namespace cts::obs
