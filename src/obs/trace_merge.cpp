#include "cts/obs/trace_merge.hpp"

#include <fstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::obs {

namespace cu = cts::util;

std::int64_t estimate_clock_offset_us(std::int64_t t0_send_us,
                                      std::int64_t t1_recv_us,
                                      std::int64_t t2_reply_us,
                                      std::int64_t t3_done_us) {
  // ((t1 - t0) + (t2 - t3)) / 2: the symmetric-delay assumption cancels
  // the one-way network latency; what remains is the clock offset.
  return ((t1_recv_us - t0_send_us) + (t2_reply_us - t3_done_us)) / 2;
}

void write_merged_trace_json(std::ostream& os,
                             const std::vector<ProcessTrace>& lanes) {
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const ProcessTrace& lane : lanes) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(static_cast<std::int64_t>(lane.pid));
    w.key("args").begin_object();
    w.key("name").value(lane.name);
    w.end_object();
    w.end_object();
    for (const TraceEvent& e : lane.events) {
      w.begin_object();
      w.key("name").value(e.name);
      w.key("cat").value("cts");
      w.key("ph").value("X");
      w.key("pid").value(static_cast<std::int64_t>(lane.pid));
      w.key("tid").value(static_cast<std::int64_t>(e.tid));
      w.key("ts").value(e.ts_us - lane.offset_us);
      w.key("dur").value(e.dur_us);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
}

bool write_merged_trace(const std::string& path,
                        const std::vector<ProcessTrace>& lanes) {
  std::ofstream out(path);
  if (!out) return false;
  write_merged_trace_json(out, lanes);
  out.flush();
  return static_cast<bool>(out);
}

void write_trace_events(JsonWriter& w, const std::vector<TraceEvent>& events) {
  w.begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.key("ts_us").value(e.ts_us);
    w.key("dur_us").value(e.dur_us);
    w.end_object();
  }
  w.end_array();
}

std::vector<TraceEvent> trace_events_from_json(const JsonValue& v) {
  cu::require(v.is_array(), "trace events: expected an array");
  std::vector<TraceEvent> events;
  events.reserve(v.items.size());
  for (const JsonValue& item : v.items) {
    cu::require(item.is_object(), "trace events: entry must be an object");
    TraceEvent e;
    e.name = item.at("name").as_string();
    cu::require(!e.name.empty(), "trace events: empty span name");
    e.tid = static_cast<int>(item.at("tid").as_number());
    e.ts_us = static_cast<std::int64_t>(item.at("ts_us").as_number());
    e.dur_us = static_cast<std::int64_t>(item.at("dur_us").as_number());
    cu::require(e.dur_us >= 0, "trace events: negative duration");
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace cts::obs
