#include "cts/obs/expfmt.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace cts::obs {

namespace {

// OpenMetrics sample values: decimal doubles plus the spelled infinities.
// Shortest round-trip formatting so common edges render as written
// ("0.1", not "0.10000000000000001") without losing precision.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += openmetrics_label_escape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string openmetrics_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_openmetrics(std::ostream& os, const MetricsShard& shard,
                       const OpenMetricsOptions& opts) {
  const std::string base_labels = render_labels(opts.labels);
  // One exposition never declares a family twice, even when different
  // registry sections sanitize to the same name.
  std::set<std::string> used;
  const auto family = [&used](const std::string& raw,
                              const char* collision_suffix) {
    std::string name = openmetrics_name(raw);
    if (used.count(name) > 0) name += collision_suffix;
    while (used.count(name) > 0) name += "_";
    used.insert(name);
    return name;
  };
  const auto with_extra = [&opts](const std::string& k, const std::string& v) {
    auto labels = opts.labels;
    labels.emplace_back(k, v);
    return render_labels(labels);
  };

  for (const auto& [raw, v] : shard.counters()) {
    const std::string name = family(raw, "_");
    os << "# TYPE " << name << " counter\n";
    os << name << "_total" << base_labels << " " << v << "\n";
  }

  for (const auto& [raw, s] : shard.sums()) {
    const std::string name = family(raw, "_");
    os << "# TYPE " << name << " gauge\n";
    os << name << base_labels << " " << format_value(s.value()) << "\n";
  }

  for (const auto& [raw, g] : shard.gauges()) {
    const std::string name = family(raw, "_");
    os << "# TYPE " << name << " gauge\n";
    os << name << base_labels << " " << format_value(g.value) << "\n";
  }

  for (const auto& [raw, h] : shard.histograms()) {
    const std::string name = family(raw, "_");
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      cumulative += h.buckets()[i];
      const std::string le = i < h.edges().size()
                                 ? format_value(h.edges()[i])
                                 : std::string("+Inf");
      os << name << "_bucket" << with_extra("le", le) << " " << cumulative
         << "\n";
    }
    const auto& st = h.stats();
    const double sum =
        st.count() > 0 ? st.mean() * static_cast<double>(st.count()) : 0.0;
    os << name << "_sum" << base_labels << " " << format_value(sum) << "\n";
    os << name << "_count" << base_labels << " " << st.count() << "\n";
  }

  for (const auto& [raw, h] : shard.log_histograms()) {
    // "shardd.job_wall_ms" may exist as both histogram kinds; the summary
    // then becomes "..._quantiles" rather than a duplicate declaration.
    const std::string name = family(raw, "_quantiles");
    os << "# TYPE " << name << " summary\n";
    for (const double q : {0.5, 0.95, 0.99, 0.999}) {
      os << name << with_extra("quantile", format_value(q)) << " "
         << format_value(h.percentile(q)) << "\n";
    }
    const auto& st = h.stats();
    const double sum =
        st.count() > 0 ? st.mean() * static_cast<double>(st.count()) : 0.0;
    os << name << "_sum" << base_labels << " " << format_value(sum) << "\n";
    os << name << "_count" << base_labels << " " << st.count() << "\n";
  }

  os << "# EOF\n";
}

// ---------------------------------------------------------------------------
// Validator

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool parse_sample_value(const std::string& s, double* out) {
  if (s == "+Inf") { *out = HUGE_VAL; return true; }
  if (s == "-Inf") { *out = -HUGE_VAL; return true; }
  if (s == "NaN") { *out = NAN; return true; }
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

struct Sample {
  std::string family;  ///< declared family this sample belongs to
  std::string suffix;  ///< "", "_total", "_bucket", "_sum", "_count", ...
  std::map<std::string, std::string> labels;
  double value = 0.0;
  std::size_t line = 0;
};

/// Parses `name{k="v",...} value [timestamp]`; returns false with *err set.
bool parse_sample_line(const std::string& line, std::string* name,
                       std::map<std::string, std::string>* labels,
                       double* value, std::string* err) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  *name = line.substr(0, i);
  if (!valid_metric_name(*name)) {
    *err = "invalid metric name '" + *name + "'";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos) { *err = "malformed label set"; return false; }
      const std::string key = line.substr(i, eq - i);
      if (key.empty() || !valid_metric_name(key) ||
          key.find(':') != std::string::npos) {
        *err = "invalid label name '" + key + "'";
        return false;
      }
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        *err = "label value for '" + key + "' is not quoted";
        return false;
      }
      std::string val;
      std::size_t j = eq + 2;
      bool closed = false;
      while (j < line.size()) {
        const char c = line[j];
        if (c == '\\') {
          if (j + 1 >= line.size()) break;
          const char n = line[j + 1];
          if (n == '\\') val += '\\';
          else if (n == '"') val += '"';
          else if (n == 'n') val += '\n';
          else { *err = "bad escape in label value"; return false; }
          j += 2;
        } else if (c == '"') {
          closed = true;
          ++j;
          break;
        } else {
          val += c;
          ++j;
        }
      }
      if (!closed) { *err = "unterminated label value"; return false; }
      if (labels->count(key) > 0) {
        *err = "duplicate label '" + key + "'";
        return false;
      }
      (*labels)[key] = val;
      i = j;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *err = "label set not closed";
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    *err = "expected space before sample value";
    return false;
  }
  ++i;
  const std::size_t sp = line.find(' ', i);
  const std::string value_str =
      sp == std::string::npos ? line.substr(i) : line.substr(i, sp - i);
  if (!parse_sample_value(value_str, value)) {
    *err = "unparseable sample value '" + value_str + "'";
    return false;
  }
  if (sp != std::string::npos) {
    // Optional timestamp: must itself be a number.
    double ts = 0.0;
    const std::string ts_str = line.substr(sp + 1);
    if (!parse_sample_value(ts_str, &ts)) {
      *err = "unparseable timestamp '" + ts_str + "'";
      return false;
    }
  }
  return true;
}

std::string labels_key(const std::map<std::string, std::string>& labels,
                       const std::set<std::string>& skip = {}) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (skip.count(k) > 0) continue;
    out += k;
    out += "=";
    out += v;
    out += ";";
  }
  return out;
}

}  // namespace

std::vector<std::string> validate_openmetrics(const std::string& text) {
  std::vector<std::string> errors;
  const auto fail = [&errors](std::size_t line_no, const std::string& what) {
    errors.push_back("line " + std::to_string(line_no) + ": " + what);
  };

  if (text.empty() || text.back() != '\n') {
    errors.push_back("exposition must end with a newline");
  }

  std::map<std::string, std::string> families;  // name -> type
  std::vector<Sample> samples;
  std::set<std::string> seen_sample_keys;
  bool saw_eof = false;

  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (saw_eof) {
      fail(line_no, "content after '# EOF' terminator");
      break;
    }
    if (line.empty()) {
      fail(line_no, "empty line (not allowed in OpenMetrics)");
      continue;
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (!valid_metric_name(name)) {
          fail(line_no, "invalid family name '" + name + "'");
          continue;
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "unknown" && type != "info" &&
            type != "stateset" && type != "gaugehistogram") {
          fail(line_no, "unknown metric type '" + type + "'");
          continue;
        }
        if (families.count(name) > 0) {
          fail(line_no, "family '" + name + "' declared twice");
          continue;
        }
        families[name] = type;
      } else if (kind != "HELP" && kind != "UNIT") {
        fail(line_no, "unknown comment directive '" + kind + "'");
      }
      continue;
    }

    Sample s;
    s.line = line_no;
    std::string name, err;
    if (!parse_sample_line(line, &name, &s.labels, &s.value, &err)) {
      fail(line_no, err);
      continue;
    }
    // Resolve the declared family: exact match first, then the type
    // suffixes OpenMetrics reserves.
    static const char* kSuffixes[] = {"_total", "_bucket", "_sum", "_count",
                                      "_created"};
    if (families.count(name) > 0) {
      s.family = name;
    } else {
      for (const char* suffix : kSuffixes) {
        const std::size_t len = std::string(suffix).size();
        if (name.size() > len &&
            name.compare(name.size() - len, len, suffix) == 0) {
          const std::string base = name.substr(0, name.size() - len);
          if (families.count(base) > 0) {
            s.family = base;
            s.suffix = suffix;
            break;
          }
        }
      }
    }
    if (s.family.empty()) {
      fail(line_no, "sample '" + name + "' has no preceding # TYPE family");
      continue;
    }

    const std::string& type = families[s.family];
    if (type == "counter") {
      if (s.suffix != "_total" && s.suffix != "_created") {
        fail(line_no, "counter sample must be '" + s.family + "_total'");
      }
      if (s.value < 0.0) fail(line_no, "counter value is negative");
    } else if (type == "gauge") {
      if (!s.suffix.empty()) {
        fail(line_no,
             "gauge sample must use the bare family name '" + s.family + "'");
      }
    } else if (type == "histogram") {
      if (s.suffix == "_bucket" && s.labels.count("le") == 0) {
        fail(line_no, "histogram bucket without 'le' label");
      }
      if (s.suffix.empty()) {
        fail(line_no, "histogram sample needs a _bucket/_sum/_count suffix");
      }
    } else if (type == "summary") {
      if (s.suffix.empty() && s.labels.count("quantile") == 0) {
        fail(line_no, "summary sample without 'quantile' label");
      }
      if (s.labels.count("quantile") > 0) {
        double q = 0.0;
        if (!parse_sample_value(s.labels.at("quantile"), &q) || q < 0.0 ||
            q > 1.0) {
          fail(line_no, "summary quantile outside [0, 1]");
        }
      }
    }

    const std::string key = name + "|" + labels_key(s.labels);
    if (!seen_sample_keys.insert(key).second) {
      fail(line_no, "duplicate sample '" + name + "'");
    }
    samples.push_back(std::move(s));
  }

  if (!saw_eof) {
    errors.push_back("missing '# EOF' terminator");
  }

  // Cross-sample checks per family (and per label set minus le/quantile).
  for (const auto& [fname, type] : families) {
    if (type == "histogram") {
      // group -> ordered (le, cumulative count) plus the _count value.
      std::map<std::string, std::vector<std::pair<double, double>>> buckets;
      std::map<std::string, double> counts;
      std::map<std::string, std::size_t> first_line;
      for (const Sample& s : samples) {
        if (s.family != fname) continue;
        const std::string group = labels_key(s.labels, {"le"});
        if (first_line.count(group) == 0) first_line[group] = s.line;
        if (s.suffix == "_bucket") {
          double le = 0.0;
          if (s.labels.count("le") == 0 ||
              !parse_sample_value(s.labels.at("le"), &le)) {
            continue;  // already reported above
          }
          buckets[group].emplace_back(le, s.value);
        } else if (s.suffix == "_count") {
          counts[group] = s.value;
        }
      }
      for (const auto& [group, seq] : buckets) {
        const std::size_t at = first_line[group];
        for (std::size_t i = 1; i < seq.size(); ++i) {
          if (seq[i].first <= seq[i - 1].first) {
            fail(at, "histogram '" + fname + "' le edges not increasing");
          }
          if (seq[i].second < seq[i - 1].second) {
            fail(at, "histogram '" + fname +
                         "' bucket counts not cumulative (decreasing)");
          }
        }
        if (seq.empty() || !std::isinf(seq.back().first)) {
          fail(at, "histogram '" + fname + "' missing le=\"+Inf\" bucket");
        } else if (counts.count(group) > 0 &&
                   seq.back().second != counts[group]) {
          fail(at, "histogram '" + fname + "' +Inf bucket != _count");
        }
      }
    } else if (type == "summary") {
      bool has_quantile = false;
      for (const Sample& s : samples) {
        if (s.family == fname && s.labels.count("quantile") > 0) {
          has_quantile = true;
          break;
        }
      }
      if (!has_quantile) {
        errors.push_back("summary '" + fname +
                         "' has no quantile samples (quantile gauges "
                         "required)");
      }
    }
  }

  return errors;
}

}  // namespace cts::obs
