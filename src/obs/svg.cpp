#include "cts/obs/svg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::obs {

namespace {

// Geometry: [label 220px][sparkline 380px][verdict 110px], 44px per row.
constexpr double kLabelW = 220.0;
constexpr double kPlotW = 380.0;
constexpr double kVerdictW = 110.0;
constexpr double kRowH = 44.0;
constexpr double kHeaderH = 54.0;
constexpr double kFooterH = 26.0;
constexpr double kPadY = 8.0;  ///< vertical inset inside a row

constexpr const char* kInk = "#32363f";
constexpr const char* kMuted = "#7a8089";
constexpr const char* kLine = "#3b5bdb";
constexpr const char* kBand = "#aab8f0";
constexpr const char* kDrift = "#c92a2a";
constexpr const char* kImprove = "#2b8a3e";
constexpr const char* kRule = "#e3e5e8";

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::string trend_svg(const TrendReport& report) {
  util::require(!report.series.empty(), "trend_svg: report has no series");

  const double width = kLabelW + kPlotW + kVerdictW;
  const double height =
      kHeaderH + kRowH * static_cast<double>(report.series.size()) + kFooterH;
  const std::size_t steps = report.labels.size();

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
     << height << "\" role=\"img\" font-family=\"monospace\">\n";
  std::string title = "Perf trajectory";
  if (!report.suite.empty()) title += " - suite " + report.suite;
  os << "  <title>" << json_escape(title) << "</title>\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";
  os << "  <text x=\"12\" y=\"22\" font-size=\"15\" fill=\"" << kInk << "\">"
     << json_escape(title) << "</text>\n";
  os << "  <text x=\"12\" y=\"40\" font-size=\"11\" fill=\"" << kMuted << "\">"
     << json_escape(std::to_string(steps) + " baselines: " +
                    (report.labels.empty() ? "" : report.labels.front()) +
                    " .. " +
                    (report.labels.empty() ? "" : report.labels.back()))
     << "</text>\n";

  for (std::size_t row = 0; row < report.series.size(); ++row) {
    const TrendSeries& series = report.series[row];
    const double top = kHeaderH + kRowH * static_cast<double>(row);
    const double mid = top + kRowH / 2.0;
    const double plot_top = top + kPadY;
    const double plot_h = kRowH - 2.0 * kPadY;

    os << "  <line x1=\"0\" y1=\"" << num(top) << "\" x2=\"" << width
       << "\" y2=\"" << num(top) << "\" stroke=\"" << kRule
       << "\" stroke-width=\"1\"/>\n";
    os << "  <text x=\"12\" y=\"" << num(mid + 4.0)
       << "\" font-size=\"12\" fill=\"" << kInk << "\">"
       << json_escape(series.bench + " " + series.metric) << "</text>\n";

    // Per-row normalisation over the union of the CI band and the medians.
    double lo = series.points.front().ci95_lo;
    double hi = series.points.front().ci95_hi;
    for (const TrendPoint& point : series.points) {
      lo = std::min({lo, point.ci95_lo, point.median});
      hi = std::max({hi, point.ci95_hi, point.median});
    }
    if (!(hi > lo)) {  // flat series (or NaN): pad so y() stays finite
      hi = lo + (lo == 0.0 ? 1.0 : std::fabs(lo) * 0.01);
    }
    const auto x = [&](std::size_t index_in_labels) {
      const double denom =
          steps > 1 ? static_cast<double>(steps - 1) : 1.0;
      return kLabelW +
             kPlotW * (0.06 + 0.88 * static_cast<double>(index_in_labels) /
                                  denom);
    };
    const auto y = [&](double v) {
      return plot_top + plot_h * (1.0 - (v - lo) / (hi - lo));
    };

    // Points map onto the label grid by label so a series missing from a
    // middle baseline keeps its horizontal alignment.
    std::vector<std::pair<double, const TrendPoint*>> placed;
    std::size_t next = 0;
    for (std::size_t i = 0; i < report.labels.size(); ++i) {
      if (next < series.points.size() &&
          series.points[next].label == report.labels[i]) {
        placed.emplace_back(x(i), &series.points[next]);
        ++next;
      }
    }

    // CI band polygon: upper edge left->right, lower edge right->left.
    os << "  <polygon fill=\"" << kBand << "\" fill-opacity=\"0.45\" "
       << "stroke=\"none\" points=\"";
    for (const auto& [px, point] : placed) {
      os << num(px) << "," << num(y(point->ci95_hi)) << " ";
    }
    for (auto it = placed.rbegin(); it != placed.rend(); ++it) {
      os << num(it->first) << "," << num(y(it->second->ci95_lo)) << " ";
    }
    os << "\"/>\n";

    const char* color = series.drift_regression
                            ? kDrift
                            : (series.drift_improvement ? kImprove : kLine);
    os << "  <polyline fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"1.6\" points=\"";
    for (const auto& [px, point] : placed) {
      os << num(px) << "," << num(y(point->median)) << " ";
    }
    os << "\"/>\n";
    const auto& [last_x, last_point] = placed.back();
    os << "  <circle cx=\"" << num(last_x) << "\" cy=\""
       << num(y(last_point->median)) << "\" r=\"2.8\" fill=\"" << color
       << "\"/>\n";
    os << "  <text x=\"" << num(kLabelW + kPlotW + 10.0) << "\" y=\""
       << num(mid + 4.0) << "\" font-size=\"12\" fill=\"" << color << "\">"
       << json_escape(series.verdict()) << "</text>\n";
  }

  const double footer_y = height - 8.0;
  os << "  <text x=\"12\" y=\"" << num(footer_y)
     << "\" font-size=\"10\" fill=\"" << kMuted
     << "\">median polyline over 95% CI band; rows normalised "
        "independently</text>\n";
  os << "</svg>\n";
  return os.str();
}

}  // namespace cts::obs
