#include "cts/obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/error.hpp"

namespace cts::obs {

void require_bench_schema(const JsonValue& doc) {
  util::require(doc.is_object(), "bench report: top level must be an object");
  const JsonValue* schema = doc.find("schema");
  util::require(schema != nullptr && schema->is_string() &&
                    schema->string == kBenchSchema,
                std::string("bench report: expected schema \"") +
                    kBenchSchema + "\"");
  const JsonValue* benches = doc.find("benches");
  util::require(benches != nullptr && benches->is_object(),
                "bench report: missing \"benches\" object");
}

bool CompareReport::has_regression() const noexcept {
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const MetricDelta& d) { return d.regression; });
}

CompareReport compare_bench_reports(const JsonValue& baseline,
                                    const JsonValue& candidate,
                                    const CompareOptions& options) {
  require_bench_schema(baseline);
  require_bench_schema(candidate);

  CompareReport report;
  const JsonValue& base_benches = baseline.at("benches");
  const JsonValue& cand_benches = candidate.at("benches");

  for (const auto& [bench_name, base_bench] : base_benches.members) {
    const JsonValue* cand_bench = cand_benches.find(bench_name);
    if (cand_bench == nullptr) {
      report.notes.push_back("bench '" + bench_name +
                             "' missing from candidate");
      continue;
    }
    const JsonValue* base_metrics = base_bench.find("metrics");
    const JsonValue* cand_metrics = cand_bench->find("metrics");
    if (base_metrics == nullptr || cand_metrics == nullptr) continue;

    for (const std::string& metric : options.metrics) {
      const JsonValue* bm = base_metrics->find(metric);
      const JsonValue* cm = cand_metrics->find(metric);
      if (bm == nullptr || cm == nullptr) {
        if (bm != nullptr || cm != nullptr) {
          report.notes.push_back("metric '" + bench_name + "." + metric +
                                 "' present in only one file");
        }
        continue;
      }
      MetricDelta d;
      d.bench = bench_name;
      d.metric = metric;
      d.baseline_median = bm->at("median").as_number();
      d.candidate_median = cm->at("median").as_number();
      d.baseline_mad = bm->at("mad").as_number();
      d.candidate_mad = cm->at("mad").as_number();
      const double delta = d.candidate_median - d.baseline_median;
      d.rel = d.baseline_median != 0.0 ? delta / d.baseline_median : 0.0;

      const double noise = options.k_mad *
                           std::max({d.baseline_mad, d.candidate_mad,
                                     options.abs_floor});
      const double rel_gate = options.min_rel * std::fabs(d.baseline_median);
      const bool significant =
          std::fabs(delta) > noise && std::fabs(delta) > rel_gate;
      d.regression = significant && delta > 0.0;
      d.improvement = significant && delta < 0.0;
      report.deltas.push_back(std::move(d));
    }
  }

  for (const auto& [bench_name, cand_bench] : cand_benches.members) {
    (void)cand_bench;
    if (base_benches.find(bench_name) == nullptr) {
      report.notes.push_back("bench '" + bench_name +
                             "' missing from baseline");
    }
  }
  return report;
}

}  // namespace cts::obs
