#include "cts/obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "cts/util/error.hpp"
#include "cts/util/table.hpp"

namespace cts::obs {

void require_bench_schema(const JsonValue& doc) {
  util::require(doc.is_object(), "bench report: top level must be an object");
  const JsonValue* schema = doc.find("schema");
  util::require(schema != nullptr,
                std::string("bench report: missing \"schema\" field "
                            "(expected \"") +
                    kBenchSchema + "\") — not a cts_benchd document");
  util::require(schema->is_string(),
                std::string("bench report: \"schema\" must be a string "
                            "(expected \"") +
                    kBenchSchema + "\")");
  util::require(schema->string == kBenchSchema,
                "bench report: unknown schema \"" + schema->string +
                    "\" (this tool understands \"" + kBenchSchema + "\")");
  const JsonValue* benches = doc.find("benches");
  util::require(benches != nullptr && benches->is_object(),
                "bench report: missing \"benches\" object");
}

bool CompareReport::has_regression() const noexcept {
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const MetricDelta& d) { return d.regression; });
}

CompareReport compare_bench_reports(const JsonValue& baseline,
                                    const JsonValue& candidate,
                                    const CompareOptions& options) {
  require_bench_schema(baseline);
  require_bench_schema(candidate);

  CompareReport report;
  const JsonValue& base_benches = baseline.at("benches");
  const JsonValue& cand_benches = candidate.at("benches");

  for (const auto& [bench_name, base_bench] : base_benches.members) {
    const JsonValue* cand_bench = cand_benches.find(bench_name);
    if (cand_bench == nullptr) {
      report.notes.push_back("bench '" + bench_name +
                             "' missing from candidate");
      continue;
    }
    const JsonValue* base_metrics = base_bench.find("metrics");
    const JsonValue* cand_metrics = cand_bench->find("metrics");
    if (base_metrics == nullptr || cand_metrics == nullptr) continue;

    for (int pass = 0; pass < 2; ++pass) {
      const bool informational = pass == 1;
      const std::vector<std::string>& names =
          informational ? options.info_metrics : options.metrics;
      for (const std::string& metric : names) {
        const JsonValue* bm = base_metrics->find(metric);
        const JsonValue* cm = cand_metrics->find(metric);
        if (bm == nullptr || cm == nullptr) {
          if (bm != nullptr || cm != nullptr) {
            report.notes.push_back("metric '" + bench_name + "." + metric +
                                   "' present in only one file");
          }
          continue;
        }
        MetricDelta d;
        d.bench = bench_name;
        d.metric = metric;
        d.informational = informational;
        d.baseline_median = bm->at("median").as_number();
        d.candidate_median = cm->at("median").as_number();
        d.baseline_mad = bm->at("mad").as_number();
        d.candidate_mad = cm->at("mad").as_number();
        const double delta = d.candidate_median - d.baseline_median;
        d.rel = d.baseline_median != 0.0 ? delta / d.baseline_median : 0.0;

        const double noise = options.k_mad *
                             std::max({d.baseline_mad, d.candidate_mad,
                                       options.abs_floor});
        const double rel_gate =
            options.min_rel * std::fabs(d.baseline_median);
        const bool significant = !informational &&
                                 std::fabs(delta) > noise &&
                                 std::fabs(delta) > rel_gate;
        d.regression = significant && delta > 0.0;
        d.improvement = significant && delta < 0.0;
        report.deltas.push_back(std::move(d));
      }
    }
  }

  for (const auto& [bench_name, cand_bench] : cand_benches.members) {
    (void)cand_bench;
    if (base_benches.find(bench_name) == nullptr) {
      report.notes.push_back("bench '" + bench_name +
                             "' missing from baseline");
    }
  }
  return report;
}

namespace {

std::string format_rel_pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", rel * 100.0);
  return buf;
}

}  // namespace

std::string format_compare_report(const CompareReport& report) {
  util::TextTable table(
      {"bench", "metric", "baseline", "candidate", "delta", "verdict"});
  for (const MetricDelta& d : report.deltas) {
    table.add_row({d.bench, d.metric, util::format_sci(d.baseline_median, 4),
                   util::format_sci(d.candidate_median, 4),
                   format_rel_pct(d.rel),
                   d.regression
                       ? "REGRESSION"
                       : (d.improvement ? "improvement"
                                        : (d.informational ? "info" : "ok"))});
  }
  std::ostringstream os;
  os << table.render() << '\n';
  for (const std::string& note : report.notes) {
    os << "[note: " << note << "]\n";
  }
  return os.str();
}

std::string format_regressions(const CompareReport& report,
                               const CompareOptions& options) {
  std::ostringstream os;
  for (const MetricDelta& d : report.deltas) {
    if (!d.regression) continue;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "REGRESSION: %s %s %s (median %.6g -> %.6g, > %.1f x MAD "
                  "and > %.1f%%)\n",
                  d.bench.c_str(), d.metric.c_str(),
                  format_rel_pct(d.rel).c_str(), d.baseline_median,
                  d.candidate_median, options.k_mad, options.min_rel * 100.0);
    os << line;
  }
  return os.str();
}

}  // namespace cts::obs

