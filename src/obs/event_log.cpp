#include "cts/obs/event_log.hpp"

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::obs {

namespace {

std::int64_t wall_clock_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogLevel parse_log_level(const std::string& name) {
  // Case-insensitive: --log-level=INFO and --log-level=Info are the
  // spellings other toolchains emit, and rejecting them cost real runs.
  std::string folded;
  folded.reserve(name.size());
  for (const char ch : name) {
    folded.push_back(ch >= 'A' && ch <= 'Z'
                         ? static_cast<char>(ch - 'A' + 'a')
                         : ch);
  }
  if (folded == "debug") return LogLevel::kDebug;
  if (folded == "info") return LogLevel::kInfo;
  if (folded == "warn") return LogLevel::kWarn;
  if (folded == "error") return LogLevel::kError;
  throw util::InvalidArgument(
      "log level must be debug|info|warn|error (any case), got " + name);
}

EventLog& EventLog::global() {
  static EventLog* instance = new EventLog();
  return *instance;
}

void EventLog::open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  util::require(static_cast<bool>(*file),
                "event log: cannot open " + path + " for append");
  const std::lock_guard<std::mutex> lock(mu_);
  file_ = std::move(file);
  stream_ = nullptr;
}

void EventLog::to_stream(std::ostream* os) {
  const std::lock_guard<std::mutex> lock(mu_);
  stream_ = os;
  file_.reset();
}

void EventLog::set_min_level(LogLevel level) {
  const std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel EventLog::min_level() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void EventLog::set_ring_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = capacity;
  while (ring_.size() > ring_capacity_) ring_.pop_front();
}

std::size_t EventLog::ring_capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

void EventLog::log(LogLevel level, std::string event,
                   std::vector<LogField> fields) noexcept {
  try {
    LogEvent e;
    e.level = level;
    e.event = std::move(event);
    e.fields = std::move(fields);
    e.ts_ms = wall_clock_ms();
    const std::lock_guard<std::mutex> lock(mu_);
    ++recorded_;
    if (ring_capacity_ > 0) {
      ring_.push_back(e);
      while (ring_.size() > ring_capacity_) ring_.pop_front();
    }
    if (static_cast<int>(level) >= static_cast<int>(min_level_)) {
      emit_locked(e);
    }
  } catch (...) {
    // Logging must never take down a daemon.
  }
}

void EventLog::emit_locked(const LogEvent& e) {
  std::ostream* os = file_ ? file_.get() : stream_;
  if (os == nullptr) return;
  *os << format_line(e) << '\n';
  // One flush per line: the log of a SIGKILLed process stays complete up
  // to its last event, which is the whole point of a flight log.
  os->flush();
  ++emitted_;
}

std::vector<LogEvent> EventLog::ring() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::vector<LogEvent>(ring_.begin(), ring_.end());
}

std::uint64_t EventLog::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t EventLog::emitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

void EventLog::dump_ring(std::ostream& os) const {
  for (const LogEvent& e : ring()) {
    os << format_line(e) << '\n';
  }
  os.flush();
}

bool EventLog::dump_ring_to(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  dump_ring(out);
  return static_cast<bool>(out);
}

void EventLog::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  recorded_ = 0;
  emitted_ = 0;
  min_level_ = LogLevel::kInfo;
  ring_capacity_ = 256;
  file_.reset();
  stream_ = nullptr;
}

std::string EventLog::format_line(const LogEvent& e) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kEventsSchema);
  w.key("ts_ms").value(e.ts_ms);
  w.key("pid").value(static_cast<std::int64_t>(::getpid()));
  w.key("level").value(level_name(e.level));
  w.key("event").value(e.event);
  w.key("fields").begin_object();
  for (const LogField& f : e.fields) {
    w.key(f.name);
    switch (f.kind) {
      case LogField::Kind::kString:
        w.value(f.s);
        break;
      case LogField::Kind::kInt:
        w.value(f.i);
        break;
      case LogField::Kind::kUint:
        w.value(f.u);
        break;
      case LogField::Kind::kDouble:
        w.value(f.d);
        break;
      case LogField::Kind::kBool:
        w.value(f.b);
        break;
    }
  }
  w.end_object();
  w.end_object();
  return os.str();
}

void log_debug(std::string event, std::vector<LogField> fields) {
  EventLog::global().log(LogLevel::kDebug, std::move(event), std::move(fields));
}

void log_info(std::string event, std::vector<LogField> fields) {
  EventLog::global().log(LogLevel::kInfo, std::move(event), std::move(fields));
}

void log_warn(std::string event, std::vector<LogField> fields) {
  EventLog::global().log(LogLevel::kWarn, std::move(event), std::move(fields));
}

void log_error(std::string event, std::vector<LogField> fields) {
  EventLog::global().log(LogLevel::kError, std::move(event), std::move(fields));
}

}  // namespace cts::obs
