#include "cts/obs/perf.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "cts/obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define CTS_HAVE_GETRUSAGE 1
#endif

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define CTS_HAVE_PERF_EVENT 1
#endif

namespace cts::obs {

namespace {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifdef CTS_HAVE_GETRUSAGE
double timeval_s(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}
#endif

}  // namespace

// ---------------------------------------------------------------------------
// ResourceProbe

ResourceProbe::ResourceProbe() { restart(); }

void ResourceProbe::restart() {
  wall_start_ns_ = monotonic_ns();
#ifdef CTS_HAVE_GETRUSAGE
  rusage r;
  if (getrusage(RUSAGE_SELF, &r) == 0) {
    user_start_s_ = timeval_s(r.ru_utime);
    sys_start_s_ = timeval_s(r.ru_stime);
    vol_start_ = r.ru_nvcsw;
    invol_start_ = r.ru_nivcsw;
  }
#endif
}

ResourceUsage ResourceProbe::sample() const {
  ResourceUsage u;
  u.wall_s = static_cast<double>(monotonic_ns() - wall_start_ns_) * 1e-9;
#ifdef CTS_HAVE_GETRUSAGE
  rusage r;
  if (getrusage(RUSAGE_SELF, &r) == 0) {
    u.user_s = timeval_s(r.ru_utime) - user_start_s_;
    u.sys_s = timeval_s(r.ru_stime) - sys_start_s_;
    // ru_maxrss is a lifetime high-water mark (KiB on Linux, bytes on
    // macOS — normalised to KiB here), not restartable.
#if defined(__APPLE__)
    u.max_rss_kb = r.ru_maxrss / 1024;
#else
    u.max_rss_kb = r.ru_maxrss;
#endif
    u.ctx_voluntary = r.ru_nvcsw - vol_start_;
    u.ctx_involuntary = r.ru_nivcsw - invol_start_;
  }
#endif
  return u;
}

// ---------------------------------------------------------------------------
// HwCounters

double HwCounters::ipc() const noexcept {
  const std::uint64_t cycles = value("cycles");
  const std::uint64_t instructions = value("instructions");
  if (cycles == 0 || instructions == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

std::uint64_t HwCounters::value(const std::string& name) const noexcept {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Sampler backends

namespace {

#ifdef CTS_HAVE_PERF_EVENT

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count threads spawned after open (replication pool)
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

class PerfEventBackend final : public SamplerBackend {
 public:
  PerfEventBackend() {
    struct Wanted {
      const char* name;
      std::uint64_t config;
    };
    static constexpr Wanted kWanted[] = {
        {"cycles", PERF_COUNT_HW_CPU_CYCLES},
        {"instructions", PERF_COUNT_HW_INSTRUCTIONS},
        {"cache_references", PERF_COUNT_HW_CACHE_REFERENCES},
        {"cache_misses", PERF_COUNT_HW_CACHE_MISSES},
        {"branches", PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
        {"branch_misses", PERF_COUNT_HW_BRANCH_MISSES},
    };
    int first_errno = 0;
    for (const Wanted& w : kWanted) {
      const int fd = open_counter(PERF_TYPE_HARDWARE, w.config);
      if (fd >= 0) {
        slots_.push_back({w.name, fd});
      } else if (first_errno == 0) {
        first_errno = errno;
      }
    }
    if (slots_.empty()) {
      reason_ = std::string("perf_event_open failed: ") +
                std::strerror(first_errno);
      if (first_errno == EACCES || first_errno == EPERM) {
        reason_ += " (check /proc/sys/kernel/perf_event_paranoid)";
      } else if (first_errno == ENOENT || first_errno == ENODEV) {
        reason_ += " (hardware PMU not available, e.g. inside a VM)";
      }
    }
  }

  ~PerfEventBackend() override {
    for (const Slot& s : slots_) close(s.fd);
  }

  const char* name() const noexcept override { return "perf_event"; }
  bool available() const noexcept override { return !slots_.empty(); }
  std::string unavailable_reason() const override { return reason_; }

  void start() noexcept override {
    for (const Slot& s : slots_) {
      ioctl(s.fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(s.fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }

  HwCounters stop() noexcept override {
    HwCounters out;
    out.available = available();
    out.backend = out.available ? name() : "";
    out.unavailable_reason = reason_;
    for (const Slot& s : slots_) {
      ioctl(s.fd, PERF_EVENT_IOC_DISABLE, 0);
      std::uint64_t v = 0;
      if (read(s.fd, &v, sizeof(v)) == static_cast<ssize_t>(sizeof(v))) {
        out.values.emplace_back(s.name, v);
      }
    }
    return out;
  }

 private:
  struct Slot {
    const char* name;
    int fd;
  };
  std::vector<Slot> slots_;
  std::string reason_;
};

#else  // !CTS_HAVE_PERF_EVENT

class PerfEventBackend final : public SamplerBackend {
 public:
  const char* name() const noexcept override { return "perf_event"; }
  bool available() const noexcept override { return false; }
  std::string unavailable_reason() const override {
    return "perf_event_open unavailable on this platform "
           "(hardware counters are Linux-only)";
  }
  void start() noexcept override {}
  HwCounters stop() noexcept override {
    HwCounters out;
    out.available = false;
    out.unavailable_reason = unavailable_reason();
    return out;
  }
};

#endif  // CTS_HAVE_PERF_EVENT

std::uint64_t read_cycle_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(monotonic_ns());
#endif
}

const char* cycle_tick_note() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return "cycles are raw rdtsc ticks (constant-rate TSC, not core cycles)";
#else
  return "cycles are steady-clock nanoseconds (no cycle counter available)";
#endif
}

/// Portable degraded backend: a tick delta reported as "cycles".  No
/// instruction/cache/branch counts, so ipc() stays 0 — consumers that need
/// full counters branch on HwCounters::backend.
class TscBackend final : public SamplerBackend {
 public:
  const char* name() const noexcept override { return "tsc"; }
  bool available() const noexcept override { return true; }
  std::string unavailable_reason() const override { return std::string(); }

  void start() noexcept override { start_ticks_ = read_cycle_ticks(); }

  HwCounters stop() noexcept override {
    HwCounters out;
    out.available = true;
    out.backend = name();
    out.note = cycle_tick_note();
    out.values.emplace_back("cycles", read_cycle_ticks() - start_ticks_);
    return out;
  }

 private:
  std::uint64_t start_ticks_ = 0;
};

}  // namespace

std::unique_ptr<SamplerBackend> make_perf_event_backend() {
  return std::make_unique<PerfEventBackend>();
}

std::unique_ptr<SamplerBackend> make_tsc_backend() {
  return std::make_unique<TscBackend>();
}

// ---------------------------------------------------------------------------
// PerfCounterGroup

PerfCounterGroup::PerfCounterGroup() {
  auto perf = make_perf_event_backend();
  if (perf->available()) {
    backend_ = std::move(perf);
  } else {
    note_ = perf->unavailable_reason();
    backend_ = make_tsc_backend();
  }
}

PerfCounterGroup::~PerfCounterGroup() = default;

bool PerfCounterGroup::available() const noexcept {
  return backend_ != nullptr && backend_->available();
}

const char* PerfCounterGroup::backend_name() const noexcept {
  return backend_ != nullptr ? backend_->name() : "";
}

void PerfCounterGroup::start() noexcept {
  if (backend_ != nullptr) backend_->start();
}

HwCounters PerfCounterGroup::stop() noexcept {
  if (backend_ == nullptr) {
    HwCounters out;
    out.unavailable_reason = reason_;
    return out;
  }
  HwCounters out = backend_->stop();
  if (out.available && !note_.empty()) {
    // Record why the preferred backend was passed over, alongside what the
    // degraded counter actually measures.
    out.note = note_ + (out.note.empty() ? "" : "; " + out.note);
  }
  return out;
}

// ---------------------------------------------------------------------------
// PerfReport

void PerfReport::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kSchema);

  w.key("info").begin_object();
  for (const auto& [k, v] : info) w.key(k).value(v);
  w.end_object();

  w.key("resources").begin_object();
  w.key("wall_s").value(resources.wall_s);
  w.key("user_s").value(resources.user_s);
  w.key("sys_s").value(resources.sys_s);
  w.key("max_rss_kb").value(resources.max_rss_kb);
  w.key("ctx_voluntary").value(resources.ctx_voluntary);
  w.key("ctx_involuntary").value(resources.ctx_involuntary);
  w.end_object();

  w.key("hw").begin_object();
  w.key("available").value(hw.available);
  if (hw.available) {
    w.key("backend").value(hw.backend);
    w.key("counters").begin_object();
    for (const auto& [name, v] : hw.values) w.key(name).value(v);
    w.end_object();
    w.key("ipc").value(hw.ipc());
    if (!hw.note.empty()) w.key("note").value(hw.note);
  } else {
    w.key("reason").value(hw.unavailable_reason);
  }
  w.end_object();

  w.key("spans").begin_array();
  for (const SpanAgg& s : spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("count").value(s.count);
    w.key("total_us").value(s.total_us);
    w.key("self_us").value(s.self_us);
    w.key("min_us").value(s.min_us);
    w.key("max_us").value(s.max_us);
    w.end_object();
  }
  w.end_array();

  w.key("phases").begin_array();
  for (const PhaseSelfTime& p : phase_self_times(spans)) {
    w.begin_object();
    w.key("phase").value(p.phase);
    w.key("self_us").value(p.self_us);
    w.key("spans").value(p.spans);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

bool PerfReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out.put('\n');
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cts::obs
