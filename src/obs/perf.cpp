#include "cts/obs/perf.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "cts/obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define CTS_HAVE_GETRUSAGE 1
#endif

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define CTS_HAVE_PERF_EVENT 1
#endif

namespace cts::obs {

namespace {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifdef CTS_HAVE_GETRUSAGE
double timeval_s(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}
#endif

}  // namespace

// ---------------------------------------------------------------------------
// ResourceProbe

ResourceProbe::ResourceProbe() { restart(); }

void ResourceProbe::restart() {
  wall_start_ns_ = monotonic_ns();
#ifdef CTS_HAVE_GETRUSAGE
  rusage r;
  if (getrusage(RUSAGE_SELF, &r) == 0) {
    user_start_s_ = timeval_s(r.ru_utime);
    sys_start_s_ = timeval_s(r.ru_stime);
    vol_start_ = r.ru_nvcsw;
    invol_start_ = r.ru_nivcsw;
  }
#endif
}

ResourceUsage ResourceProbe::sample() const {
  ResourceUsage u;
  u.wall_s = static_cast<double>(monotonic_ns() - wall_start_ns_) * 1e-9;
#ifdef CTS_HAVE_GETRUSAGE
  rusage r;
  if (getrusage(RUSAGE_SELF, &r) == 0) {
    u.user_s = timeval_s(r.ru_utime) - user_start_s_;
    u.sys_s = timeval_s(r.ru_stime) - sys_start_s_;
    // ru_maxrss is a lifetime high-water mark (KiB on Linux, bytes on
    // macOS — normalised to KiB here), not restartable.
#if defined(__APPLE__)
    u.max_rss_kb = r.ru_maxrss / 1024;
#else
    u.max_rss_kb = r.ru_maxrss;
#endif
    u.ctx_voluntary = r.ru_nvcsw - vol_start_;
    u.ctx_involuntary = r.ru_nivcsw - invol_start_;
  }
#endif
  return u;
}

// ---------------------------------------------------------------------------
// HwCounters

double HwCounters::ipc() const noexcept {
  const std::uint64_t cycles = value("cycles");
  const std::uint64_t instructions = value("instructions");
  if (cycles == 0 || instructions == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

std::uint64_t HwCounters::value(const std::string& name) const noexcept {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// PerfCounterGroup

#ifdef CTS_HAVE_PERF_EVENT

namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count threads spawned after open (replication pool)
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  struct Wanted {
    const char* name;
    std::uint64_t config;
  };
  static constexpr Wanted kWanted[] = {
      {"cycles", PERF_COUNT_HW_CPU_CYCLES},
      {"instructions", PERF_COUNT_HW_INSTRUCTIONS},
      {"cache_references", PERF_COUNT_HW_CACHE_REFERENCES},
      {"cache_misses", PERF_COUNT_HW_CACHE_MISSES},
      {"branches", PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
      {"branch_misses", PERF_COUNT_HW_BRANCH_MISSES},
  };
  int first_errno = 0;
  for (const Wanted& w : kWanted) {
    const int fd = open_counter(PERF_TYPE_HARDWARE, w.config);
    if (fd >= 0) {
      slots_.push_back({w.name, fd});
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  if (slots_.empty()) {
    reason_ = std::string("perf_event_open failed: ") +
              std::strerror(first_errno);
    if (first_errno == EACCES || first_errno == EPERM) {
      reason_ += " (check /proc/sys/kernel/perf_event_paranoid)";
    } else if (first_errno == ENOENT || first_errno == ENODEV) {
      reason_ += " (hardware PMU not available, e.g. inside a VM)";
    }
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (const Slot& s : slots_) close(s.fd);
}

void PerfCounterGroup::start() noexcept {
  for (const Slot& s : slots_) {
    ioctl(s.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(s.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

HwCounters PerfCounterGroup::stop() noexcept {
  HwCounters out;
  out.available = available();
  out.unavailable_reason = reason_;
  for (const Slot& s : slots_) {
    ioctl(s.fd, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t v = 0;
    if (read(s.fd, &v, sizeof(v)) == static_cast<ssize_t>(sizeof(v))) {
      out.values.emplace_back(s.name, v);
    }
  }
  return out;
}

#else  // !CTS_HAVE_PERF_EVENT

PerfCounterGroup::PerfCounterGroup()
    : reason_(
          "perf_event_open unavailable on this platform "
          "(hardware counters are Linux-only)") {}

PerfCounterGroup::~PerfCounterGroup() = default;

void PerfCounterGroup::start() noexcept {}

HwCounters PerfCounterGroup::stop() noexcept {
  HwCounters out;
  out.available = false;
  out.unavailable_reason = reason_;
  return out;
}

#endif  // CTS_HAVE_PERF_EVENT

// ---------------------------------------------------------------------------
// PerfReport

void PerfReport::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kSchema);

  w.key("info").begin_object();
  for (const auto& [k, v] : info) w.key(k).value(v);
  w.end_object();

  w.key("resources").begin_object();
  w.key("wall_s").value(resources.wall_s);
  w.key("user_s").value(resources.user_s);
  w.key("sys_s").value(resources.sys_s);
  w.key("max_rss_kb").value(resources.max_rss_kb);
  w.key("ctx_voluntary").value(resources.ctx_voluntary);
  w.key("ctx_involuntary").value(resources.ctx_involuntary);
  w.end_object();

  w.key("hw").begin_object();
  w.key("available").value(hw.available);
  if (hw.available) {
    w.key("counters").begin_object();
    for (const auto& [name, v] : hw.values) w.key(name).value(v);
    w.end_object();
    w.key("ipc").value(hw.ipc());
  } else {
    w.key("reason").value(hw.unavailable_reason);
  }
  w.end_object();

  w.key("spans").begin_array();
  for (const SpanAgg& s : spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("count").value(s.count);
    w.key("total_us").value(s.total_us);
    w.key("self_us").value(s.self_us);
    w.key("min_us").value(s.min_us);
    w.key("max_us").value(s.max_us);
    w.end_object();
  }
  w.end_array();

  w.key("phases").begin_array();
  for (const PhaseSelfTime& p : phase_self_times(spans)) {
    w.begin_object();
    w.key("phase").value(p.phase);
    w.key("self_us").value(p.self_us);
    w.key("spans").value(p.spans);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

bool PerfReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out.put('\n');
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cts::obs
