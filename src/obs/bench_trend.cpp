#include "cts/obs/bench_trend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "cts/obs/bench_compare.hpp"
#include "cts/util/error.hpp"
#include "cts/util/table.hpp"

namespace cts::obs {

namespace {

/// File stem ("dir/BENCH_2026-08-05.json" -> "BENCH_2026-08-05").
std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name.resize(dot);
  return name;
}

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// "+3.2%" for a relative delta; "-" when the reference median is zero.
std::string rel_pct(double excess, double reference) {
  if (reference == 0.0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", excess / reference * 100.0);
  return buf;
}

}  // namespace

BaselineDoc parse_baseline(const std::string& path, const std::string& text) {
  BaselineDoc doc;
  doc.path = path;
  doc.label = stem_of(path);
  try {
    doc.doc = json_parse(text);
  } catch (const util::Error& e) {
    throw util::InvalidArgument(path + ": invalid JSON: " + e.what());
  }
  try {
    require_bench_schema(doc.doc);
  } catch (const util::Error& e) {
    throw util::InvalidArgument(path + ": " + e.what());
  }
  const JsonValue* generated = doc.doc.find("generated");
  if (generated != nullptr && generated->is_string()) {
    doc.generated = generated->string;
  }
  const JsonValue* suite = doc.doc.find("suite");
  if (suite != nullptr && suite->is_string()) doc.suite = suite->string;
  return doc;
}

void sort_baselines(std::vector<BaselineDoc>& docs) {
  std::stable_sort(docs.begin(), docs.end(),
                   [](const BaselineDoc& a, const BaselineDoc& b) {
                     if (a.generated != b.generated) {
                       return a.generated < b.generated;
                     }
                     return a.label < b.label;
                   });
}

std::string TrendSeries::verdict() const {
  if (drift_regression) return "DRIFT";
  if (drift_improvement) return "improvement";
  return "ok";
}

bool TrendReport::has_drift() const noexcept {
  return std::any_of(series.begin(), series.end(), [](const TrendSeries& s) {
    return s.drift_regression;
  });
}

double theil_sen_slope(const std::vector<double>& y) {
  if (y.size() < 2) return 0.0;
  std::vector<double> slopes;
  slopes.reserve(y.size() * (y.size() - 1) / 2);
  for (std::size_t i = 0; i < y.size(); ++i) {
    for (std::size_t j = i + 1; j < y.size(); ++j) {
      slopes.push_back((y[j] - y[i]) / static_cast<double>(j - i));
    }
  }
  std::sort(slopes.begin(), slopes.end());
  const std::size_t m = slopes.size();
  return m % 2 == 1 ? slopes[m / 2]
                    : 0.5 * (slopes[m / 2 - 1] + slopes[m / 2]);
}

TrendReport build_trend(const std::vector<BaselineDoc>& docs,
                        const TrendOptions& options) {
  util::require(docs.size() >= 2,
                "build_trend: need at least two baselines for a trajectory");
  util::require(options.window >= 1, "build_trend: window must be >= 1");

  TrendReport report;
  report.suite = docs.front().suite;
  for (const BaselineDoc& doc : docs) report.labels.push_back(doc.label);

  // The union of bench ids, in first-seen (i.e. oldest-baseline) order.
  std::vector<std::string> bench_ids;
  std::set<std::string> seen;
  for (const BaselineDoc& doc : docs) {
    for (const auto& [id, bench] : doc.doc.at("benches").members) {
      (void)bench;
      if (seen.insert(id).second) bench_ids.push_back(id);
    }
  }

  for (const std::string& metric : options.metrics) {
    for (const std::string& id : bench_ids) {
      TrendSeries series;
      series.bench = id;
      series.metric = metric;
      std::size_t missing = 0;
      for (const BaselineDoc& doc : docs) {
        const JsonValue* bench = doc.doc.at("benches").find(id);
        const JsonValue* summary =
            bench != nullptr && bench->find("metrics") != nullptr
                ? bench->at("metrics").find(metric)
                : nullptr;
        if (summary == nullptr) {
          ++missing;
          continue;
        }
        TrendPoint point;
        point.label = doc.label;
        point.generated = doc.generated;
        point.n = static_cast<std::size_t>(summary->at("n").as_number());
        point.median = summary->at("median").as_number();
        point.mad = summary->at("mad").as_number();
        point.ci95_lo = summary->at("ci95_lo").as_number();
        point.ci95_hi = summary->at("ci95_hi").as_number();
        series.points.push_back(point);
      }
      if (missing > 0 && !series.points.empty()) {
        report.notes.push_back("'" + id + "." + metric + "' present in only " +
                               std::to_string(series.points.size()) + " of " +
                               std::to_string(docs.size()) + " baselines");
      }
      if (series.points.size() < 2) continue;

      const TrendPoint& first = series.points.front();
      std::vector<double> medians;
      for (TrendPoint& point : series.points) {
        point.excess = point.median - first.median;
        point.band =
            std::max(options.k_mad *
                         std::max({point.mad, first.mad, options.abs_floor}),
                     options.min_rel * std::fabs(first.median));
        point.beyond_band = std::fabs(point.excess) > point.band;
        medians.push_back(point.median);
      }
      series.slope = theil_sen_slope(medians);

      // Sustained drift: every one of the last `window` points beyond the
      // band on the same side.  The first point is its own reference and
      // can never drift, so the window is capped at n-1.
      const std::size_t window =
          std::min(options.window, series.points.size() - 1);
      bool all_above = true;
      bool all_below = true;
      for (std::size_t i = series.points.size() - window;
           i < series.points.size(); ++i) {
        const TrendPoint& point = series.points[i];
        all_above = all_above && point.excess > point.band;
        all_below = all_below && point.excess < -point.band;
      }
      series.drift_regression = all_above;
      series.drift_improvement = all_below;
      report.series.push_back(std::move(series));
    }
  }
  return report;
}

std::string trend_markdown(const TrendReport& report,
                           const TrendOptions& options) {
  std::ostringstream os;
  os << "## Perf trajectory";
  if (!report.suite.empty()) os << " — suite `" << report.suite << "`";
  os << "\n\n";
  os << report.labels.size() << " baselines, oldest first: ";
  for (std::size_t i = 0; i < report.labels.size(); ++i) {
    os << (i == 0 ? "`" : ", `") << report.labels[i] << "`";
  }
  os << ".\nDrift gate: the last " << options.window
     << " baseline(s) beyond max(" << options.k_mad << "×MAD, "
     << options.min_rel * 100.0 << "%) of the first baseline.\n";

  std::string current_metric;
  for (const TrendSeries& series : report.series) {
    if (series.metric != current_metric) {
      current_metric = series.metric;
      os << "\n### `" << current_metric << "`\n\n";
      os << "| bench |";
      for (const std::string& label : report.labels) os << " " << label << " |";
      os << " slope/step | verdict |\n";
      os << "|---|";
      for (std::size_t i = 0; i < report.labels.size(); ++i) os << "---|";
      os << "---|---|\n";
    }
    os << "| " << series.bench << " |";
    std::size_t next = 0;
    for (const std::string& label : report.labels) {
      if (next < series.points.size() && series.points[next].label == label) {
        const TrendPoint& point = series.points[next];
        os << " " << util::format_sci(point.median, 3);
        if (next > 0) {
          os << " (" << rel_pct(point.excess, series.points.front().median)
             << ")";
        }
        if (point.beyond_band && next > 0) os << " ‡";
        ++next;
      } else {
        os << " –";
      }
      os << " |";
    }
    os << " " << util::format_sci(series.slope, 2) << " | "
       << series.verdict() << " |\n";
  }
  os << "\n‡ beyond the noise band around the first baseline.\n";
  if (!report.notes.empty()) {
    os << "\n";
    for (const std::string& note : report.notes) {
      os << "- note: " << note << "\n";
    }
  }
  return os.str();
}

std::string trend_csv(const TrendReport& report) {
  std::ostringstream os;
  os << "metric,bench,index,baseline,generated,n,median,mad,ci95_lo,ci95_hi,"
        "excess,band,beyond_band,slope_per_step,verdict\n";
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (const TrendSeries& series : report.series) {
    for (std::size_t i = 0; i < series.points.size(); ++i) {
      const TrendPoint& point = series.points[i];
      os << csv_quote(series.metric) << ',' << csv_quote(series.bench) << ','
         << i << ',' << csv_quote(point.label) << ','
         << csv_quote(point.generated) << ',' << point.n << ','
         << num(point.median) << ',' << num(point.mad) << ','
         << num(point.ci95_lo) << ',' << num(point.ci95_hi) << ','
         << num(point.excess) << ',' << num(point.band) << ','
         << (point.beyond_band ? 1 : 0) << ',' << num(series.slope) << ','
         << series.verdict() << '\n';
    }
  }
  return os.str();
}

}  // namespace cts::obs
