#include "cts/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::obs {

// ---------------------------------------------------------------------------
// HistogramCell

HistogramCell::HistogramCell(std::vector<double> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1, 0) {
  util::require(!edges_.empty(), "HistogramCell: need at least one edge");
  util::require(std::is_sorted(edges_.begin(), edges_.end()),
                "HistogramCell: edges must be sorted ascending");
}

void HistogramCell::observe(double v) noexcept {
  // Upper-inclusive buckets: first edge >= v; overflow bucket otherwise.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - edges_.begin())];
  stats_.add(v);
}

void HistogramCell::merge(const HistogramCell& other) {
  if (other.stats_.count() == 0 && other.edges_.empty()) return;
  if (edges_.empty()) {
    *this = other;
    return;
  }
  util::require(edges_ == other.edges_,
                "HistogramCell: cannot merge histograms with different edges");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  stats_.merge(other.stats_);
}

std::vector<double> HistogramCell::default_edges() {
  return {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
          1e3, 3e3, 1e4, 3e4, 1e5};
}

HistogramCell HistogramCell::from_state(std::vector<double> edges,
                                        std::vector<std::uint64_t> buckets,
                                        util::MomentAccumulator stats) {
  HistogramCell cell(std::move(edges));
  util::require(buckets.size() == cell.edges_.size() + 1,
                "HistogramCell: snapshot bucket count does not match edges");
  cell.buckets_ = std::move(buckets);
  cell.stats_ = stats;
  return cell;
}

// ---------------------------------------------------------------------------
// LogHistogramCell

LogHistogramCell::LogHistogramCell(double relative_accuracy) {
  util::require(relative_accuracy > 0.0 && relative_accuracy < 1.0,
                "LogHistogramCell: relative accuracy must be in (0, 1)");
  gamma_ = (1.0 + relative_accuracy) / (1.0 - relative_accuracy);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

void LogHistogramCell::observe(double v) noexcept {
  if (v > 0.0) {
    // ceil(log_gamma v); the cast truncates toward zero, so nudge upward
    // for non-integer results.  Exact powers of gamma stay in their own
    // bucket (upper-inclusive, mirroring HistogramCell's "le" edges).
    const double raw = std::log(v) * inv_log_gamma_;
    const double up = std::ceil(raw);
    buckets_[static_cast<std::int32_t>(up)] += 1;
  } else {
    ++zero_count_;
  }
  stats_.add(v);
}

void LogHistogramCell::merge(const LogHistogramCell& other) {
  if (other.stats_.count() == 0) return;
  util::require(gamma_ == other.gamma_,
                "LogHistogramCell: cannot merge histograms with different "
                "bucket bases (relative accuracy)");
  zero_count_ += other.zero_count_;
  for (const auto& [index, count] : other.buckets_) buckets_[index] += count;
  stats_.merge(other.stats_);
}

double LogHistogramCell::percentile(double q) const noexcept {
  const std::uint64_t n = stats_.count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Matching-rank convention: the estimate targets sorted[ceil(q*n) - 1]
  // (0-based), the same rank the unit tests compute exactly.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  if (rank <= zero_count_) return 0.0;
  std::uint64_t seen = zero_count_;
  for (const auto& [index, count] : buckets_) {
    seen += count;
    if (seen >= rank) {
      // Representative value of bucket (gamma^(i-1), gamma^i]: the midpoint
      // 2*gamma^i/(gamma+1) is within (gamma-1)/(gamma+1) = alpha of every
      // value in the bucket.
      return 2.0 * std::pow(gamma_, static_cast<double>(index)) /
             (gamma_ + 1.0);
    }
  }
  return stats_.max();  // unreachable when counts are consistent
}

LogHistogramCell LogHistogramCell::from_state(
    double gamma, std::uint64_t zero_count,
    std::map<std::int32_t, std::uint64_t> buckets,
    util::MomentAccumulator stats) {
  util::require(gamma > 1.0, "LogHistogramCell: snapshot gamma must be > 1");
  LogHistogramCell cell;
  cell.gamma_ = gamma;
  cell.inv_log_gamma_ = 1.0 / std::log(gamma);
  cell.zero_count_ = zero_count;
  cell.buckets_ = std::move(buckets);
  cell.stats_ = stats;
  return cell;
}

// ---------------------------------------------------------------------------
// MetricsShard

void MetricsShard::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsShard::add_sum(const std::string& name, double delta) {
  sums_[name].add(delta);
}

void MetricsShard::gauge(const std::string& name, double v, GaugeMode mode) {
  GaugeCell& cell = gauges_[name];
  cell.mode = mode;
  cell.update(v);
}

void MetricsShard::observe(const std::string& name, double v,
                           const std::vector<double>& edges) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, HistogramCell(edges.empty()
                                              ? HistogramCell::default_edges()
                                              : edges))
             .first;
  }
  it->second.observe(v);
}

void MetricsShard::observe_log(const std::string& name, double v) {
  log_histograms_[name].observe(v);
}

void MetricsShard::merge(const MetricsShard& other) {
  for (const auto& [name, delta] : other.counters_) counters_[name] += delta;
  for (const auto& [name, s] : other.sums_) sums_[name].merge(s);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, h] : other.log_histograms_) {
    log_histograms_[name].merge(h);
  }
}

void MetricsShard::restore_sum(const std::string& name,
                               util::CompensatedSum sum) {
  sums_[name] = sum;
}

void MetricsShard::restore_gauge(const std::string& name, GaugeCell cell) {
  gauges_[name] = cell;
}

void MetricsShard::restore_histogram(const std::string& name,
                                     HistogramCell cell) {
  histograms_.insert_or_assign(name, std::move(cell));
}

void MetricsShard::restore_log_histogram(const std::string& name,
                                         LogHistogramCell cell) {
  log_histograms_.insert_or_assign(name, std::move(cell));
}

bool MetricsShard::empty() const noexcept {
  return counters_.empty() && sums_.empty() && gauges_.empty() &&
         histograms_.empty() && log_histograms_.empty();
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  data_.add(name, delta);
}

void MetricsRegistry::add_sum(const std::string& name, double delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  data_.add_sum(name, delta);
}

void MetricsRegistry::gauge(const std::string& name, double v, GaugeMode mode) {
  const std::lock_guard<std::mutex> lock(mu_);
  data_.gauge(name, v, mode);
}

void MetricsRegistry::observe(const std::string& name, double v,
                              const std::vector<double>& edges) {
  const std::lock_guard<std::mutex> lock(mu_);
  data_.observe(name, v, edges);
}

void MetricsRegistry::observe_log(const std::string& name, double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  data_.observe_log(name, v);
}

void MetricsRegistry::merge(const MetricsShard& shard) {
  if (shard.empty()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  data_.merge(shard);
}

MetricsShard MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.counters().find(name);
  return it == data_.counters().end() ? 0 : it->second;
}

double MetricsRegistry::sum(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.sums().find(name);
  return it == data_.sums().end() ? 0.0 : it->second.value();
}

double MetricsRegistry::gauge_value(const std::string& name,
                                    double fallback) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.gauges().find(name);
  return it == data_.gauges().end() ? fallback : it->second.value;
}

bool MetricsRegistry::has_gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return data_.gauges().count(name) > 0;
}

bool MetricsRegistry::histogram(const std::string& name,
                                HistogramSnapshot* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.histograms().find(name);
  if (it == data_.histograms().end()) return false;
  if (out != nullptr) {
    const HistogramCell& h = it->second;
    out->edges = h.edges();
    out->buckets = h.buckets();
    out->count = h.stats().count();
    out->mean = h.stats().mean();
    out->stddev = h.stats().stddev();
    out->min = h.stats().count() > 0 ? h.stats().min() : 0.0;
    out->max = h.stats().count() > 0 ? h.stats().max() : 0.0;
  }
  return true;
}

bool MetricsRegistry::log_histogram(const std::string& name,
                                    LogHistogramCell* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = data_.log_histograms().find(name);
  if (it == data_.log_histograms().end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, v] : data_.counters()) w.key(name).value(v);
  w.end_object();

  w.key("sums").begin_object();
  for (const auto& [name, s] : data_.sums()) w.key(name).value(s.value());
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : data_.gauges()) w.key(name).value(g.value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : data_.histograms()) {
    w.key(name).begin_object();
    const util::MomentAccumulator& st = h.stats();
    w.key("count").value(st.count());
    w.key("mean").value(st.count() > 0 ? st.mean() : 0.0);
    w.key("stddev").value(st.stddev());
    w.key("min").value(st.count() > 0 ? st.min() : 0.0);
    w.key("max").value(st.count() > 0 ? st.max() : 0.0);
    w.key("edges").begin_array();
    for (const double e : h.edges()) w.value(e);
    w.end_array();
    w.key("buckets").begin_array();
    for (const std::uint64_t b : h.buckets()) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  if (!data_.log_histograms().empty()) {
    w.key("log_histograms").begin_object();
    for (const auto& [name, h] : data_.log_histograms()) {
      w.key(name).begin_object();
      const util::MomentAccumulator& st = h.stats();
      w.key("count").value(st.count());
      w.key("mean").value(st.count() > 0 ? st.mean() : 0.0);
      w.key("min").value(st.count() > 0 ? st.min() : 0.0);
      w.key("max").value(st.count() > 0 ? st.max() : 0.0);
      w.key("p50").value(h.percentile(0.50));
      w.key("p95").value(h.percentile(0.95));
      w.key("p99").value(h.percentile(0.99));
      w.key("p999").value(h.percentile(0.999));
      w.end_object();
    }
    w.end_object();
  }

  w.end_object();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  data_ = MetricsShard();
}

// ---------------------------------------------------------------------------
// Snapshot serialization

void write_metrics_snapshot(JsonWriter& w, const MetricsShard& shard) {
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, v] : shard.counters()) w.key(name).value(v);
  w.end_object();

  w.key("sums").begin_object();
  for (const auto& [name, s] : shard.sums()) {
    w.key(name).begin_object();
    w.key("value").value(s.value());
    w.key("compensation").value(s.compensation());
    w.end_object();
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : shard.gauges()) {
    w.key(name).begin_object();
    w.key("value").value(g.value);
    w.key("mode").value(g.mode == GaugeMode::kMax ? "max" : "set");
    w.end_object();
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : shard.histograms()) {
    const util::MomentAccumulator& st = h.stats();
    w.key(name).begin_object();
    w.key("edges").begin_array();
    for (const double e : h.edges()) w.value(e);
    w.end_array();
    w.key("buckets").begin_array();
    for (const std::uint64_t b : h.buckets()) w.value(b);
    w.end_array();
    w.key("count").value(st.count());
    // min/max are +-inf for an empty accumulator, which JSON cannot carry;
    // from_state ignores every moment field when count is 0.
    w.key("mean").value(st.count() > 0 ? st.mean() : 0.0);
    w.key("m2").value(st.count() > 0 ? st.m2() : 0.0);
    w.key("min").value(st.count() > 0 ? st.min() : 0.0);
    w.key("max").value(st.count() > 0 ? st.max() : 0.0);
    w.end_object();
  }
  w.end_object();

  // Omitted when empty: older readers use at("..."), and a snapshot with
  // no latency histograms must stay byte-identical to the pre-section
  // format (the merged physics report is diffed bit for bit).
  if (!shard.log_histograms().empty()) {
    w.key("log_histograms").begin_object();
    for (const auto& [name, h] : shard.log_histograms()) {
      const util::MomentAccumulator& st = h.stats();
      w.key(name).begin_object();
      w.key("gamma").value(h.gamma());
      w.key("zero").value(h.zero_count());
      w.key("indexes").begin_array();
      for (const auto& [index, count] : h.buckets()) {
        (void)count;
        w.value(static_cast<std::int64_t>(index));
      }
      w.end_array();
      w.key("counts").begin_array();
      for (const auto& [index, count] : h.buckets()) {
        (void)index;
        w.value(count);
      }
      w.end_array();
      w.key("count").value(st.count());
      w.key("mean").value(st.count() > 0 ? st.mean() : 0.0);
      w.key("m2").value(st.count() > 0 ? st.m2() : 0.0);
      w.key("min").value(st.count() > 0 ? st.min() : 0.0);
      w.key("max").value(st.count() > 0 ? st.max() : 0.0);
      w.end_object();
    }
    w.end_object();
  }

  w.end_object();
}

namespace {

std::uint64_t as_uint(const JsonValue& v, const char* what) {
  const double d = v.as_number();
  util::require(d >= 0.0, std::string("metrics snapshot: ") + what +
                              " must be non-negative");
  return static_cast<std::uint64_t>(d);
}

}  // namespace

MetricsShard metrics_snapshot_from_json(const JsonValue& v) {
  util::require(v.is_object(), "metrics snapshot: expected an object");
  MetricsShard shard;

  for (const auto& [name, counter] : v.at("counters").members) {
    shard.add(name, as_uint(counter, "counter"));
  }
  for (const auto& [name, sum] : v.at("sums").members) {
    shard.restore_sum(name, util::CompensatedSum::from_state(
                                sum.at("value").as_number(),
                                sum.at("compensation").as_number()));
  }
  for (const auto& [name, gauge] : v.at("gauges").members) {
    const std::string& mode = gauge.at("mode").as_string();
    util::require(mode == "set" || mode == "max",
                  "metrics snapshot: unknown gauge mode '" + mode + "'");
    GaugeCell cell;
    cell.value = gauge.at("value").as_number();
    cell.mode = mode == "max" ? GaugeMode::kMax : GaugeMode::kSet;
    cell.written = true;
    shard.restore_gauge(name, cell);
  }
  for (const auto& [name, hist] : v.at("histograms").members) {
    std::vector<double> edges;
    for (const JsonValue& e : hist.at("edges").items) {
      edges.push_back(e.as_number());
    }
    std::vector<std::uint64_t> buckets;
    for (const JsonValue& b : hist.at("buckets").items) {
      buckets.push_back(as_uint(b, "histogram bucket"));
    }
    const util::MomentAccumulator stats = util::MomentAccumulator::from_state(
        as_uint(hist.at("count"), "histogram count"),
        hist.at("mean").as_number(), hist.at("m2").as_number(),
        hist.at("min").as_number(), hist.at("max").as_number());
    shard.restore_histogram(
        name, HistogramCell::from_state(std::move(edges), std::move(buckets),
                                        stats));
  }
  // Optional section: snapshots written before log histograms existed (or
  // from registries without any) simply lack it.
  if (const JsonValue* logs = v.find("log_histograms")) {
    for (const auto& [name, hist] : logs->members) {
      const auto& index_items = hist.at("indexes").items;
      const auto& count_items = hist.at("counts").items;
      util::require(index_items.size() == count_items.size(),
                    "metrics snapshot: log histogram indexes/counts length "
                    "mismatch");
      std::map<std::int32_t, std::uint64_t> buckets;
      for (std::size_t i = 0; i < index_items.size(); ++i) {
        const double raw = index_items[i].as_number();
        buckets[static_cast<std::int32_t>(raw)] =
            as_uint(count_items[i], "log histogram bucket");
      }
      const util::MomentAccumulator stats =
          util::MomentAccumulator::from_state(
              as_uint(hist.at("count"), "log histogram count"),
              hist.at("mean").as_number(), hist.at("m2").as_number(),
              hist.at("min").as_number(), hist.at("max").as_number());
      shard.restore_log_histogram(
          name, LogHistogramCell::from_state(
                    hist.at("gamma").as_number(),
                    as_uint(hist.at("zero"), "log histogram zero count"),
                    std::move(buckets), stats));
    }
  }
  return shard;
}

}  // namespace cts::obs
