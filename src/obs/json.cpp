#include "cts/obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "cts/util/error.hpp"

namespace cts::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  util::require(!top_level_done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;  // the single top-level value
  if (stack_.back() == Frame::kObject) {
    util::require(pending_key_, "JsonWriter: object member needs key() first");
    pending_key_ = false;
    return;
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  util::require(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !pending_key_,
                "JsonWriter: unbalanced end_object");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  util::require(!stack_.empty() && stack_.back() == Frame::kArray,
                "JsonWriter: unbalanced end_array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  util::require(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !pending_key_,
                "JsonWriter: key() outside object or duplicate key()");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  os_ << '"' << json_escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  before_value();
  os_ << json;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

// ---------------------------------------------------------------------------
// Validator: recursive descent over the RFC 8259 grammar.

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool run() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool parse_value() {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      if (!parse_string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string() {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool parse_number() {
    if (peek() == '-') ++pos_;
    if (eof()) return fail("expected digit");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_parse_check(const std::string& text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace cts::obs
