#include "cts/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cts/util/error.hpp"

namespace cts::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  util::require(!top_level_done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;  // the single top-level value
  if (stack_.back() == Frame::kObject) {
    util::require(pending_key_, "JsonWriter: object member needs key() first");
    pending_key_ = false;
    return;
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  util::require(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !pending_key_,
                "JsonWriter: unbalanced end_object");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  util::require(!stack_.empty() && stack_.back() == Frame::kArray,
                "JsonWriter: unbalanced end_array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  util::require(!stack_.empty() && stack_.back() == Frame::kObject &&
                    !pending_key_,
                "JsonWriter: key() outside object or duplicate key()");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  os_ << '"' << json_escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  before_value();
  os_ << json;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

// ---------------------------------------------------------------------------
// Validator / parser: recursive descent over the RFC 8259 grammar.  When
// constructed with a root JsonValue the same pass builds the DOM; with
// nullptr it only validates (no allocation beyond the error message).

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error, JsonValue* root = nullptr)
      : text_(text), error_(error), root_(root) {}

  bool run() {
    skip_ws();
    if (!parse_value(root_)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (depth_ > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        if (out != nullptr) out->type = JsonValue::Type::kString;
        return parse_string(out != nullptr ? &out->string : nullptr);
      }
      case 't':
        if (out != nullptr) { out->type = JsonValue::Type::kBool; out->boolean = true; }
        return literal("true");
      case 'f':
        if (out != nullptr) { out->type = JsonValue::Type::kBool; out->boolean = false; }
        return literal("false");
      case 'n':
        if (out != nullptr) out->type = JsonValue::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    ++pos_;  // '{'
    ++depth_;
    if (out != nullptr) out->type = JsonValue::Type::kObject;
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(out != nullptr ? &key : nullptr)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->members.emplace_back(std::move(key), JsonValue{});
        slot = &out->members.back().second;
      }
      if (!parse_value(slot)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    ++pos_;  // '['
    ++depth_;
    if (out != nullptr) out->type = JsonValue::Type::kArray;
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->items.emplace_back();
        slot = &out->items.back();
      }
      if (!parse_value(slot)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return fail("expected ',' or ']'");
    }
  }

  /// Validates a string token; when `out` is non-null also stores the
  /// unescaped contents (\uXXXX decoded to UTF-8, surrogate pairs combined,
  /// lone surrogates replaced with U+FFFD).
  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (true) {
      if (eof()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          unsigned cp = 0;
          if (!hex4(&cp)) return false;
          if (out != nullptr) {
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 2 < text_.size() &&
                text_[pos_ + 1] == '\\' && text_[pos_ + 2] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!hex4(&lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                append_utf8(out, 0xFFFD);
                cp = (lo >= 0xD800 && lo <= 0xDFFF) ? 0xFFFD : lo;
              }
            } else if (cp >= 0xD800 && cp <= 0xDFFF) {
              cp = 0xFFFD;
            }
            append_utf8(out, cp);
          } else {
            // Validation only: a paired low surrogate is consumed by the
            // next loop iteration as its own \u escape.
          }
        } else if (e == '"' || e == '\\' || e == '/') {
          if (out != nullptr) out->push_back(e);
        } else if (e == 'b') { if (out != nullptr) out->push_back('\b');
        } else if (e == 'f') { if (out != nullptr) out->push_back('\f');
        } else if (e == 'n') { if (out != nullptr) out->push_back('\n');
        } else if (e == 'r') { if (out != nullptr) out->push_back('\r');
        } else if (e == 't') { if (out != nullptr) out->push_back('\t');
        } else {
          return fail("bad escape character");
        }
      } else if (out != nullptr) {
        out->push_back(static_cast<char>(c));
      }
      ++pos_;
    }
  }

  /// Consumes the 4 hex digits of a \u escape (pos_ on the 'u' at entry,
  /// on the last digit at exit) and stores the code unit.
  bool hex4(unsigned* cp) {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      ++pos_;
      if (eof() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad \\u escape");
      }
      const char d = text_[pos_];
      v = v * 16 + static_cast<unsigned>(
                       d <= '9' ? d - '0' : (d | 0x20) - 'a' + 10);
    }
    *cp = v;
    return true;
  }

  static void append_utf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (eof()) return fail("expected digit");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    if (out != nullptr) {
      out->type = JsonValue::Type::kNumber;
      out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                nullptr);
    }
    return true;
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::string* error_;
  JsonValue* root_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_parse_check(const std::string& text, std::string* error) {
  return Parser(text, error).run();
}

JsonValue json_parse(const std::string& text) {
  JsonValue root;
  std::string error;
  if (!Parser(text, &error, &root).run()) {
    throw util::InvalidArgument("json_parse: " + error);
  }
  return root;
}

// ---------------------------------------------------------------------------
// JsonValue accessors

bool JsonValue::as_bool() const {
  util::require(is_bool(), "JsonValue: not a bool");
  return boolean;
}

double JsonValue::as_number() const {
  util::require(is_number(), "JsonValue: not a number");
  return number;
}

const std::string& JsonValue::as_string() const {
  util::require(is_string(), "JsonValue: not a string");
  return string;
}

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  util::require(v != nullptr, "JsonValue: missing member '" + key + "'");
  return *v;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  util::require(is_array() && index < items.size(),
                "JsonValue: array index out of range");
  return items[index];
}

std::size_t JsonValue::size() const noexcept {
  return is_array() ? items.size() : (is_object() ? members.size() : 0);
}

}  // namespace cts::obs
