#include "cts/obs/bench_stats.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/student_t.hpp"

namespace cts::obs {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(),
                        values.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

RobustSummary robust_summary(std::vector<double> values, double confidence) {
  RobustSummary s;
  s.n = values.size();
  if (values.empty()) return s;

  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (const double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  s.median = median_of(values);

  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::fabs(v - s.median));
  s.mad = median_of(std::move(deviations));

  if (s.n < 2) {
    s.ci95_lo = s.median;
    s.ci95_hi = s.median;
    return s;
  }
  // Normal-approximation standard error of the median, sigma from the
  // consistency-scaled MAD, t critical value for the small-sample factor.
  const double sigma = 1.4826 * s.mad;
  const double se = 1.2533 * sigma / std::sqrt(static_cast<double>(s.n));
  const double t = cts::util::student_t_critical(
      confidence, static_cast<double>(s.n - 1));
  s.ci95_lo = s.median - t * se;
  s.ci95_hi = s.median + t * se;
  return s;
}

}  // namespace cts::obs
