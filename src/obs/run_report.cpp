#include "cts/obs/run_report.hpp"

#include <fstream>
#include <sstream>

#include "cts/obs/json.hpp"

namespace cts::obs {

RunReport::Entry& RunReport::upsert(const std::string& key) {
  for (Entry& e : entries_) {
    if (e.key == key) return e;
  }
  entries_.push_back(Entry{key, Kind::kString, "", 0, 0, 0.0, false});
  return entries_.back();
}

void RunReport::set(const std::string& key, const std::string& value) {
  Entry& e = upsert(key);
  e.kind = Kind::kString;
  e.s = value;
}

void RunReport::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}

void RunReport::set(const std::string& key, std::int64_t value) {
  Entry& e = upsert(key);
  e.kind = Kind::kInt;
  e.i = value;
}

void RunReport::set(const std::string& key, std::uint64_t value) {
  Entry& e = upsert(key);
  e.kind = Kind::kUint;
  e.u = value;
}

void RunReport::set(const std::string& key, double value) {
  Entry& e = upsert(key);
  e.kind = Kind::kDouble;
  e.d = value;
}

void RunReport::set(const std::string& key, bool value) {
  Entry& e = upsert(key);
  e.kind = Kind::kBool;
  e.b = value;
}

void RunReport::write_json(std::ostream& os,
                           const MetricsRegistry& registry) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("config").begin_object();
  for (const Entry& e : entries_) {
    w.key(e.key);
    switch (e.kind) {
      case Kind::kString: w.value(e.s); break;
      case Kind::kInt: w.value(e.i); break;
      case Kind::kUint: w.value(e.u); break;
      case Kind::kDouble: w.value(e.d); break;
      case Kind::kBool: w.value(e.b); break;
    }
  }
  w.end_object();
  // The registry emits a complete JSON object; splice it in verbatim.
  std::ostringstream metrics;
  registry.write_json(metrics);
  w.key("metrics").raw(metrics.str());
  w.end_object();
}

bool RunReport::write(const std::string& path,
                      const MetricsRegistry& registry) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out, registry);
  out.put('\n');
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cts::obs
