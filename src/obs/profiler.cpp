#include "cts/obs/profiler.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <sys/time.h>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::obs {

namespace {

// ---------------------------------------------------------------------------
// Per-thread span stacks.
//
// Frames are COPIED into fixed slots so neither sampler ever dereferences
// memory owned by a span that may be destructing.  `depth` counts logical
// nesting; only the first kMaxDepth frames are stored (deeper frames are
// tracked by the counter alone so pushes and pops stay balanced).

constexpr int kMaxDepth = 32;
constexpr int kMaxFrame = 48;  ///< span-name slot, incl. NUL (longer: truncated)

struct ThreadStack {
  std::mutex mu;               ///< cross-thread reads ("thread" backend)
  std::atomic<int> depth{0};   ///< same-thread reads (SIGPROF handler)
  char frames[kMaxDepth][kMaxFrame];

  ThreadStack();
  ~ThreadStack();
};

// Registry of live thread stacks for the wall-clock sampler.  Leaked
// (never destroyed) so thread exit after static destruction stays safe.
std::mutex& registry_mu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::vector<ThreadStack*>& registry() {
  static std::vector<ThreadStack*>* reg = new std::vector<ThreadStack*>();
  return *reg;
}

// Constant-initialized pointer: safe to read from the SIGPROF handler
// (no lazy TLS wrapper call), null until this thread's first span push
// and again after the thread begins destruction.
thread_local ThreadStack* t_stack = nullptr;

ThreadStack::ThreadStack() {
  const std::lock_guard<std::mutex> lock(registry_mu());
  registry().push_back(this);
}

ThreadStack::~ThreadStack() {
  t_stack = nullptr;
  const std::lock_guard<std::mutex> lock(registry_mu());
  auto& reg = registry();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    if (reg[i] == this) {
      reg.erase(reg.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

ThreadStack& tls_stack() {
  thread_local ThreadStack stack;
  t_stack = &stack;
  return stack;
}

/// Joins frames[0..depth) with ';' into out (size cap), returns length.
std::size_t fold_key(const char frames[][kMaxFrame], int depth, char* out,
                     std::size_t out_size) noexcept {
  std::size_t n = 0;
  for (int i = 0; i < depth; ++i) {
    if (i > 0 && n + 1 < out_size) out[n++] = ';';
    for (const char* p = frames[i]; *p != '\0' && n + 1 < out_size; ++p) {
      out[n++] = *p;
    }
  }
  out[n] = '\0';
  return n;
}

// ---------------------------------------------------------------------------
// Lock-free fold table for the SIGPROF handler (async-signal-safe: fixed
// storage, CAS claims, no allocation).  Drained under Profiler::mu_.

constexpr std::size_t kTableSlots = 1024;
constexpr std::size_t kTableKey = kMaxDepth * kMaxFrame;

struct TableSlot {
  std::atomic<std::uint32_t> state{0};  ///< 0 empty, 1 claiming, 2 ready
  char key[kTableKey];
  std::atomic<std::uint64_t> count{0};
};

TableSlot g_table[kTableSlots];
std::atomic<std::uint64_t> g_itimer_samples{0};
std::atomic<std::uint64_t> g_itimer_dropped{0};
struct sigaction g_prev_sigprof;

std::uint64_t fnv1a(const char* s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ull;
  }
  return h;
}

void fold_into_table(const char* key, std::size_t len) noexcept {
  const std::uint64_t h = fnv1a(key);
  for (std::size_t probe = 0; probe < kTableSlots; ++probe) {
    TableSlot& slot = g_table[(h + probe) % kTableSlots];
    std::uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == 0) {
      std::uint32_t expected = 0;
      if (slot.state.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
        std::memcpy(slot.key, key, len + 1);  // fold_key NUL-terminates
        slot.state.store(2, std::memory_order_release);
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      state = slot.state.load(std::memory_order_acquire);
    }
    if (state == 2 && std::strcmp(slot.key, key) == 0) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // state == 1 (another thread mid-claim) or a different key: probe on.
  }
  g_itimer_dropped.fetch_add(1, std::memory_order_relaxed);
}

void on_sigprof(int /*sig*/) {
  g_itimer_samples.fetch_add(1, std::memory_order_relaxed);
  const ThreadStack* ts = t_stack;
  if (ts == nullptr) return;  // thread has no active span history
  const int depth = ts->depth.load(std::memory_order_acquire);
  if (depth <= 0) return;
  const int stored = depth < kMaxDepth ? depth : kMaxDepth;
  char key[kTableKey];
  const std::size_t len = fold_key(ts->frames, stored, key, sizeof(key));
  fold_into_table(key, len);
}

}  // namespace

// ---------------------------------------------------------------------------
// Span hooks

void profiler_push_frame(const char* name) noexcept {
  try {
    ThreadStack& ts = tls_stack();
    const std::lock_guard<std::mutex> lock(ts.mu);
    const int depth = ts.depth.load(std::memory_order_relaxed);
    if (depth < kMaxDepth) {
      std::strncpy(ts.frames[depth], name, kMaxFrame - 1);
      ts.frames[depth][kMaxFrame - 1] = '\0';
    }
    // Frame bytes are written before the depth becomes visible, so the
    // SIGPROF handler (same thread) and the sampler thread (under mu)
    // never read a half-written slot.
    ts.depth.store(depth + 1, std::memory_order_release);
  } catch (...) {
    // Profiling must never take down a run.
  }
}

void profiler_pop_frame() noexcept {
  ThreadStack* ts = t_stack;
  if (ts == nullptr) return;
  try {
    const std::lock_guard<std::mutex> lock(ts->mu);
    const int depth = ts->depth.load(std::memory_order_relaxed);
    if (depth > 0) ts->depth.store(depth - 1, std::memory_order_release);
  } catch (...) {
  }
}

// ---------------------------------------------------------------------------
// Profiler

Profiler& Profiler::global() {
  static Profiler* instance = new Profiler();
  return *instance;
}

void Profiler::start(const Options& opts) {
  util::require(opts.hz >= 1 && opts.hz <= 10000,
                "profiler: hz must be in [1, 10000]");
  util::require(opts.backend == "thread" || opts.backend == "itimer",
                "profiler: backend must be thread|itimer, got '" +
                    opts.backend + "'");
  util::require(!armed(), "profiler: already running");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    opts_ = opts;
  }
  if (opts.backend == "itimer") {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &on_sigprof;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    util::require(sigaction(SIGPROF, &sa, &g_prev_sigprof) == 0,
                  "profiler: sigaction(SIGPROF) failed");
    itimerval timer;
    const long usec = 1000000L / opts.hz;
    timer.it_interval.tv_sec = usec / 1000000L;
    timer.it_interval.tv_usec = usec % 1000000L;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
      sigaction(SIGPROF, &g_prev_sigprof, nullptr);
      util::require(false, "profiler: setitimer(ITIMER_PROF) failed");
    }
    armed_.store(true, std::memory_order_relaxed);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  armed_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Profiler::sampler_loop() {
  std::chrono::microseconds interval;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    interval = std::chrono::microseconds(1000000 / opts_.hz);
  }
  std::unique_lock<std::mutex> stop_lock(stop_mu_);
  while (!stop_requested_) {
    if (stop_cv_.wait_for(stop_lock, interval,
                          [this] { return stop_requested_; })) {
      break;
    }
    // One tick: walk every registered thread's stack.  try_lock so a
    // thread mid-push never blocks the tick; a missed thread is counted,
    // not silently skipped.
    std::vector<std::string> keys;
    std::uint64_t missed = 0;
    {
      const std::lock_guard<std::mutex> reg_lock(registry_mu());
      for (ThreadStack* ts : registry()) {
        if (!ts->mu.try_lock()) {
          ++missed;
          continue;
        }
        const int depth = ts->depth.load(std::memory_order_relaxed);
        const int stored = depth < kMaxDepth ? depth : kMaxDepth;
        if (stored > 0) {
          char key[kTableKey];
          fold_key(ts->frames, stored, key, sizeof(key));
          ts->mu.unlock();
          keys.emplace_back(key);
        } else {
          ts->mu.unlock();
        }
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++samples_;
    dropped_ += missed;
    for (const std::string& key : keys) ++folded_[key];
  }
}

void Profiler::drain_itimer_locked() {
  for (TableSlot& slot : g_table) {
    if (slot.state.load(std::memory_order_acquire) != 2) continue;
    const std::uint64_t n = slot.count.exchange(0, std::memory_order_relaxed);
    if (n > 0) folded_[slot.key] += n;
  }
  samples_ += g_itimer_samples.exchange(0, std::memory_order_relaxed);
  dropped_ += g_itimer_dropped.exchange(0, std::memory_order_relaxed);
}

void Profiler::stop() {
  if (!armed()) return;
  std::string backend;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    backend = opts_.backend;
  }
  if (backend == "itimer") {
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    sigaction(SIGPROF, &g_prev_sigprof, nullptr);
    armed_.store(false, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu_);
    drain_itimer_locked();
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  armed_.store(false, std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> Profiler::folded() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (opts_.backend == "itimer") drain_itimer_locked();
  return folded_;
}

std::uint64_t Profiler::sample_count() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (opts_.backend == "itimer") drain_itimer_locked();
  return samples_;
}

std::uint64_t Profiler::dropped_count() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (opts_.backend == "itimer") drain_itimer_locked();
  return dropped_;
}

void Profiler::write_folded(std::ostream& os) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (opts_.backend == "itimer") drain_itimer_locked();
  for (const auto& [stack, count] : folded_) {
    os << stack << " " << count << "\n";
  }
}

bool Profiler::write_folded_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_folded(out);
  out.flush();
  return static_cast<bool>(out);
}

void Profiler::write_json(std::ostream& os) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (opts_.backend == "itimer") drain_itimer_locked();
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("cts.profile.v1");
  w.key("backend").value(opts_.backend);
  w.key("hz").value(static_cast<std::int64_t>(opts_.hz));
  w.key("samples").value(samples_);
  w.key("dropped").value(dropped_);
  w.key("stacks").begin_array();
  for (const auto& [stack, count] : folded_) {
    w.begin_object();
    w.key("stack").value(stack);
    w.key("count").value(count);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

bool Profiler::write(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out.flush();
  return static_cast<bool>(out);
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (TableSlot& slot : g_table) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.state.store(0, std::memory_order_relaxed);
    slot.key[0] = '\0';
  }
  g_itimer_samples.store(0, std::memory_order_relaxed);
  g_itimer_dropped.store(0, std::memory_order_relaxed);
  folded_.clear();
  samples_ = 0;
  dropped_ = 0;
}

}  // namespace cts::obs
