#include "cts/obs/span_stats.hpp"

#include <algorithm>
#include <map>

namespace cts::obs {

std::string span_phase(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::vector<SpanAgg> aggregate_spans(const std::vector<TraceEvent>& events) {
  // Sort by (tid, start, duration desc) so that within a thread a parent
  // span precedes the spans nested inside it, even when they start on the
  // same microsecond tick.
  std::vector<const TraceEvent*> order;
  order.reserve(events.size());
  for (const TraceEvent& e : events) order.push_back(&e);
  std::sort(order.begin(), order.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->tid != b->tid) return a->tid < b->tid;
              if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
              return a->dur_us > b->dur_us;
            });

  std::map<std::string, SpanAgg> by_name;
  struct Open {
    std::int64_t end_us;
    SpanAgg* agg;
  };
  std::vector<Open> stack;
  int current_tid = 0;
  bool first = true;

  for (const TraceEvent* e : order) {
    if (first || e->tid != current_tid) {
      stack.clear();
      current_tid = e->tid;
      first = false;
    }
    // Close finished ancestors; anything still open encloses this span.
    while (!stack.empty() && stack.back().end_us <= e->ts_us) stack.pop_back();

    SpanAgg& agg = by_name[e->name];
    if (agg.count == 0) {
      agg.name = e->name;
      agg.min_us = e->dur_us;
      agg.max_us = e->dur_us;
    } else {
      agg.min_us = std::min(agg.min_us, e->dur_us);
      agg.max_us = std::max(agg.max_us, e->dur_us);
    }
    ++agg.count;
    agg.total_us += e->dur_us;
    agg.self_us += e->dur_us;
    // Nested time belongs to the child: subtract from the immediate parent.
    if (!stack.empty()) stack.back().agg->self_us -= e->dur_us;
    stack.push_back({e->ts_us + e->dur_us, &agg});
  }

  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  std::sort(out.begin(), out.end(), [](const SpanAgg& a, const SpanAgg& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    return a.name < b.name;
  });
  return out;
}

std::vector<PhaseSelfTime> phase_self_times(const std::vector<SpanAgg>& spans) {
  std::map<std::string, PhaseSelfTime> by_phase;
  for (const SpanAgg& s : spans) {
    PhaseSelfTime& p = by_phase[span_phase(s.name)];
    if (p.phase.empty()) p.phase = span_phase(s.name);
    p.self_us += s.self_us;
    p.spans += s.count;
  }
  std::vector<PhaseSelfTime> out;
  out.reserve(by_phase.size());
  for (auto& [phase, p] : by_phase) out.push_back(std::move(p));
  std::sort(out.begin(), out.end(),
            [](const PhaseSelfTime& a, const PhaseSelfTime& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.phase < b.phase;
            });
  return out;
}

}  // namespace cts::obs
