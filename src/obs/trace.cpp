#include "cts/obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/obs/profiler.hpp"

namespace cts::obs {

namespace {

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Small, stable per-thread ordinal for the Chrome "tid" field.
int current_tid() noexcept {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

std::int64_t TraceRecorder::now_us() const noexcept {
  return (steady_ns() - epoch_ns_) / 1000;
}

void TraceRecorder::record(std::string name, std::int64_t ts_us,
                           std::int64_t dur_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.tid = current_tid();
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceRecorder::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events_) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("cts");
    w.key("ph").value("X");
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.key("ts").value(e.ts_us);
    w.key("dur").value(e.dur_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  out.flush();
  return static_cast<bool>(out);
}

void TraceRecorder::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

ScopedSpan::ScopedSpan(std::string name) noexcept {
  TraceRecorder& recorder = TraceRecorder::global();
  const bool tracing = recorder.enabled();
  const bool profiling = Profiler::global().armed();
  if (!tracing && !profiling) return;  // cold span: two relaxed loads only
  if (profiling) {
    // push copies the name into a fixed per-thread slot; the profiler
    // never dereferences this object's storage.
    profiler_push_frame(name.c_str());
    pushed_ = true;
  }
  if (!tracing) return;
  try {
    name_ = std::move(name);
    start_us_ = recorder.now_us();
  } catch (...) {
    start_us_ = -1;  // allocation failure: drop the span, never throw
  }
}

ScopedSpan::~ScopedSpan() {
  // Pop even when the profiler disarmed mid-span, so stacks stay balanced
  // across a stop()/start() cycle.
  if (pushed_) profiler_pop_frame();
  if (start_us_ < 0) return;
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) return;  // disabled mid-span: drop it
  try {
    recorder.record(std::move(name_), start_us_,
                    recorder.now_us() - start_us_);
  } catch (...) {
    // Tracing must never take down a run.
  }
}

}  // namespace cts::obs
