#include "cts/core/acf_model.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::core {

GeometricAcf::GeometricAcf(double a) : a_(a) {
  util::require(a >= 0.0 && a < 1.0, "GeometricAcf: a must be in [0,1)");
}

double GeometricAcf::at(std::size_t k) const {
  return std::pow(a_, static_cast<double>(k));
}

std::string GeometricAcf::name() const {
  return "geometric(a=" + std::to_string(a_) + ")";
}

DarAcf::DarAcf(double rho, std::vector<double> lag_probs)
    : rho_(rho), lag_probs_(std::move(lag_probs)), cache_{1.0} {
  util::require(rho_ >= 0.0 && rho_ < 1.0, "DarAcf: rho must be in [0,1)");
  util::require(!lag_probs_.empty(), "DarAcf: need at least one lag prob");
  double sum = 0.0;
  for (const double a : lag_probs_) {
    util::require(a >= -1e-12, "DarAcf: lag probabilities must be >= 0");
    sum += a;
  }
  util::require(std::abs(sum - 1.0) < 1e-9,
                "DarAcf: lag probabilities must sum to 1");
}

void DarAcf::extend(std::size_t k) const {
  const std::size_t p = lag_probs_.size();
  while (cache_.size() <= k) {
    const std::size_t n = cache_.size();
    double acc = 0.0;
    for (std::size_t i = 1; i <= p; ++i) {
      const std::size_t lag = n >= i ? n - i : i - n;
      acc += lag_probs_[i - 1] * cache_[lag];
    }
    cache_.push_back(rho_ * acc);
  }
}

double DarAcf::at(std::size_t k) const {
  // The recursion r(n) = rho * sum a_i r(n-i) needs r at |n-i| which for
  // n < p references lags above n; those are themselves defined by the same
  // recursion, making the system implicit for the first p-1 lags.  We solve
  // it by fixed-point iteration over the first p lags (converges
  // geometrically at rate rho < 1), then extend explicitly.
  const std::size_t p = lag_probs_.size();
  if (cache_.size() <= p && k >= 1) {
    std::vector<double> r(p + 1, 0.0);
    r[0] = 1.0;
    for (int iter = 0; iter < 200; ++iter) {
      double delta = 0.0;
      for (std::size_t n = 1; n <= p; ++n) {
        double acc = 0.0;
        for (std::size_t i = 1; i <= p; ++i) {
          const std::size_t lag = n >= i ? n - i : i - n;
          acc += lag_probs_[i - 1] * r[lag];
        }
        const double next = rho_ * acc;
        delta = std::max(delta, std::abs(next - r[n]));
        r[n] = next;
      }
      if (delta < 1e-15) break;
    }
    cache_.assign(r.begin(), r.end());
  }
  extend(k);
  return cache_[k];
}

std::string DarAcf::name() const {
  return "dar(p=" + std::to_string(lag_probs_.size()) + ")";
}

ExactLrdAcf::ExactLrdAcf(double hurst, double weight)
    : hurst_(hurst), weight_(weight) {
  util::require(hurst > 0.5 && hurst < 1.0,
                "ExactLrdAcf: H must be in (1/2, 1)");
  util::require(weight > 0.0 && weight <= 1.0,
                "ExactLrdAcf: weight must be in (0, 1]");
}

double ExactLrdAcf::at(std::size_t k) const {
  if (k == 0) return 1.0;
  return weight_ * 0.5 *
         util::second_central_difference_pow(k, 2.0 * hurst_);
}

std::string ExactLrdAcf::name() const {
  return "exact-lrd(H=" + std::to_string(hurst_) + ")";
}

MixtureAcf::MixtureAcf(std::vector<std::shared_ptr<const AcfModel>> components,
                       std::vector<double> weights, std::string name)
    : components_(std::move(components)),
      weights_(std::move(weights)),
      name_(std::move(name)) {
  util::require(!components_.empty(), "MixtureAcf: no components");
  util::require(components_.size() == weights_.size(),
                "MixtureAcf: component/weight count mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    util::require(components_[i] != nullptr, "MixtureAcf: null component");
    util::require(weights_[i] >= 0.0, "MixtureAcf: negative weight");
    sum += weights_[i];
  }
  util::require(std::abs(sum - 1.0) < 1e-9,
                "MixtureAcf: weights must sum to 1");
}

double MixtureAcf::at(std::size_t k) const {
  if (k == 0) return 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    acc += weights_[i] * components_[i]->at(k);
  }
  return acc;
}

FarimaAcf::FarimaAcf(double d) : d_(d) {
  util::require(d > 0.0 && d < 0.5, "FarimaAcf: d must be in (0, 1/2)");
}

void FarimaAcf::extend(std::size_t k) const {
  while (cache_.size() <= k) {
    const double n = static_cast<double>(cache_.size());
    cache_.push_back(cache_.back() * (n - 1.0 + d_) / (n - d_));
  }
}

double FarimaAcf::at(std::size_t k) const {
  extend(k);
  return cache_[k];
}

std::string FarimaAcf::name() const {
  return "farima(d=" + std::to_string(d_) + ")";
}

TabulatedAcf::TabulatedAcf(std::vector<double> values)
    : values_(std::move(values)) {
  util::require(!values_.empty(), "TabulatedAcf: empty table");
  util::require(std::abs(values_[0] - 1.0) < 1e-9,
                "TabulatedAcf: r(0) must be 1");
}

double TabulatedAcf::at(std::size_t k) const {
  return k < values_.size() ? values_[k] : 0.0;
}

}  // namespace cts::core
