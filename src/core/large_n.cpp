#include "cts/core/large_n.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/error.hpp"

namespace cts::core {

BopPoint large_n_log10_bop(const RateFunction& rate, double buffer_per_source,
                           std::size_t n_sources) {
  return large_n_log10_bop(rate.evaluate(buffer_per_source), buffer_per_source,
                           n_sources);
}

BopPoint large_n_log10_bop(const RateFunction& rate, double buffer_per_source,
                           std::size_t n_sources, std::size_t m_hint) {
  return large_n_log10_bop(rate.evaluate(buffer_per_source, m_hint),
                           buffer_per_source, n_sources);
}

BopPoint large_n_log10_bop(const RateResult& r, double buffer_per_source,
                           std::size_t n_sources) {
  util::require(n_sources >= 1, "large_n_log10_bop: need at least one source");
  BopPoint point;
  point.buffer_per_source = buffer_per_source;
  point.rate = r.rate;
  point.critical_m = r.critical_m;
  point.log10_bop =
      std::min(-static_cast<double>(n_sources) * r.rate / std::log(10.0), 0.0);
  return point;
}

}  // namespace cts::core
