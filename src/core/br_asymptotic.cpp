#include "cts/core/br_asymptotic.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::core {

BopPoint br_log10_bop(const RateFunction& rate, double buffer_per_source,
                      std::size_t n_sources) {
  return br_log10_bop(rate.evaluate(buffer_per_source), buffer_per_source,
                      n_sources);
}

BopPoint br_log10_bop(const RateFunction& rate, double buffer_per_source,
                      std::size_t n_sources, std::size_t m_hint) {
  return br_log10_bop(rate.evaluate(buffer_per_source, m_hint),
                      buffer_per_source, n_sources);
}

BopPoint br_log10_bop(const RateResult& r, double buffer_per_source,
                      std::size_t n_sources) {
  util::require(n_sources >= 1, "br_log10_bop: need at least one source");
  const double n = static_cast<double>(n_sources);
  const double exponent_nats = n * r.rate;
  // ln Psi = -N I - (1/2) ln(4 pi N I).  The refinement term is only
  // meaningful when N I is bounded away from zero; at the b -> 0, c -> mu
  // corner the raw formula can cross above zero, so clamp at probability 1.
  double log_psi = -exponent_nats;
  if (exponent_nats > 0.0) {
    log_psi -= 0.5 * std::log(4.0 * util::kPi * exponent_nats);
  }
  BopPoint point;
  point.buffer_per_source = buffer_per_source;
  point.rate = r.rate;
  point.critical_m = r.critical_m;
  point.log10_bop = std::min(log_psi / std::log(10.0), 0.0);
  return point;
}

}  // namespace cts::core
