// Kernel implementations for cts/core/simd.hpp.
//
// All three variants of each kernel live in this one translation unit:
// the scalar reference (which also defines the semantics), and SSE2/AVX2
// versions compiled via GCC/Clang `target` function attributes so the
// rest of the library keeps the portable baseline ISA.  FMA is never
// enabled for these functions, so mul/add cannot be contracted and each
// element rounds identically on every path.

#include "cts/core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>

#include "cts/util/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define CTS_SIMD_X86 1
#include <immintrin.h>
#else
#define CTS_SIMD_X86 0
#endif

namespace cts::core::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels.  These define the bit-level semantics the
// vector versions must reproduce exactly.
// ---------------------------------------------------------------------------

inline double scan_objective(double b, double drift, const double* inv2v,
                             std::size_t m) {
  const double md = static_cast<double>(m);
  const double numerator = b + md * drift;
  return numerator * numerator * inv2v[m];
}

ScanPoint scan_min_scalar(double b, double drift, const double* inv2v,
                          std::size_t m_lo, std::size_t m_hi) {
  ScanPoint best;
  best.m = m_lo;
  best.value = scan_objective(b, drift, inv2v, m_lo);
  for (std::size_t m = m_lo + 1; m <= m_hi; ++m) {
    const double value = scan_objective(b, drift, inv2v, m);
    if (value < best.value) {
      best.value = value;
      best.m = m;
    }
  }
  return best;
}

double dot_reversed_scalar(const double* a, const double* b_last,
                           std::size_t n) {
  // Fixed 4-lane blocked order: lane l sums elements j % 4 == l, lanes
  // combine as (0+2)+(1+3), tail appended sequentially.  The vector
  // versions realise exactly this association.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const std::size_t n4 = n - n % 4;
  for (std::size_t j = 0; j < n4; j += 4) {
    acc0 += a[j] * b_last[-static_cast<std::ptrdiff_t>(j)];
    acc1 += a[j + 1] * b_last[-static_cast<std::ptrdiff_t>(j + 1)];
    acc2 += a[j + 2] * b_last[-static_cast<std::ptrdiff_t>(j + 2)];
    acc3 += a[j + 3] * b_last[-static_cast<std::ptrdiff_t>(j + 3)];
  }
  double sum = (acc0 + acc2) + (acc1 + acc3);
  for (std::size_t j = n4; j < n; ++j) {
    sum += a[j] * b_last[-static_cast<std::ptrdiff_t>(j)];
  }
  return sum;
}

void axpy_reversed_scalar(const double* a, const double* a_last, double r,
                          double* out, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = a[j] - r * a_last[-static_cast<std::ptrdiff_t>(j)];
  }
}

void scale_pairs_scalar(const double* s, const double* z, double* out,
                        std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    out[2 * j] = s[j] * z[2 * j];
    out[2 * j + 1] = s[j] * z[2 * j + 1];
  }
}

void scaled_real_stride2_scalar(const double* in, double norm, double* out,
                                std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    out[j] = in[2 * j] * norm;
  }
}

#if CTS_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 kernels (2-wide doubles).
// ---------------------------------------------------------------------------

__attribute__((target("sse2"))) ScanPoint scan_min_sse2(
    double b, double drift, const double* inv2v, std::size_t m_lo,
    std::size_t m_hi) {
  const std::size_t count = m_hi - m_lo + 1;
  if (count < 4) return scan_min_scalar(b, drift, inv2v, m_lo, m_hi);
  // Seed with the range's first element: on degenerate inputs where every
  // objective value is +inf, the vector lanes never improve on their
  // sentinels and the seed keeps the scalar kernel's answer (m_lo).
  ScanPoint best;
  best.m = m_lo;
  best.value = scan_objective(b, drift, inv2v, m_lo);
  const __m128d vb = _mm_set1_pd(b);
  const __m128d vdrift = _mm_set1_pd(drift);
  const __m128d inf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  // Two independent running-min accumulators (4 elements per iteration):
  // a single accumulator's compare-and-select update is a loop-carried
  // dependency chain that caps throughput far below the ALU width.  Argmin
  // under strict < with lowest-m tie-breaking is evaluation-order
  // independent, so the partition cannot change the result.  Sentinel
  // lanes carry m = +inf and lose every tie in the final combine.
  __m128d bv0 = inf, bv1 = inf;
  __m128d bm0 = inf, bm1 = inf;
  const double mlo_d = static_cast<double>(m_lo);
  __m128d m0 = _mm_setr_pd(mlo_d, mlo_d + 1.0);
  const __m128d two = _mm_set1_pd(2.0);
  const __m128d four = _mm_set1_pd(4.0);
  __m128d m1 = _mm_add_pd(m0, two);
  std::size_t m = m_lo;
  for (; m + 3 <= m_hi; m += 4) {
    const __m128d i0 = _mm_loadu_pd(inv2v + m);
    const __m128d i1 = _mm_loadu_pd(inv2v + m + 2);
    const __m128d n0 = _mm_add_pd(vb, _mm_mul_pd(m0, vdrift));
    const __m128d n1 = _mm_add_pd(vb, _mm_mul_pd(m1, vdrift));
    const __m128d v0 = _mm_mul_pd(_mm_mul_pd(n0, n0), i0);
    const __m128d v1 = _mm_mul_pd(_mm_mul_pd(n1, n1), i1);
    // Strict < keeps the first (lowest-m) occurrence per lane.
    const __m128d lt0 = _mm_cmplt_pd(v0, bv0);
    const __m128d lt1 = _mm_cmplt_pd(v1, bv1);
    bv0 = _mm_or_pd(_mm_and_pd(lt0, v0), _mm_andnot_pd(lt0, bv0));
    bm0 = _mm_or_pd(_mm_and_pd(lt0, m0), _mm_andnot_pd(lt0, bm0));
    bv1 = _mm_or_pd(_mm_and_pd(lt1, v1), _mm_andnot_pd(lt1, bv1));
    bm1 = _mm_or_pd(_mm_and_pd(lt1, m1), _mm_andnot_pd(lt1, bm1));
    m0 = _mm_add_pd(m0, four);
    m1 = _mm_add_pd(m1, four);
  }
  for (; m + 1 <= m_hi; m += 2) {  // 2-wide cleanup on accumulator 0
    const __m128d i0 = _mm_loadu_pd(inv2v + m);
    const __m128d n0 = _mm_add_pd(vb, _mm_mul_pd(m0, vdrift));
    const __m128d v0 = _mm_mul_pd(_mm_mul_pd(n0, n0), i0);
    const __m128d lt0 = _mm_cmplt_pd(v0, bv0);
    bv0 = _mm_or_pd(_mm_and_pd(lt0, v0), _mm_andnot_pd(lt0, bv0));
    bm0 = _mm_or_pd(_mm_and_pd(lt0, m0), _mm_andnot_pd(lt0, bm0));
    m0 = _mm_add_pd(m0, two);
  }
  double lane_v[4], lane_m[4];
  _mm_storeu_pd(lane_v, bv0);
  _mm_storeu_pd(lane_v + 2, bv1);
  _mm_storeu_pd(lane_m, bm0);
  _mm_storeu_pd(lane_m + 2, bm1);
  for (int l = 0; l < 4; ++l) {
    if (lane_v[l] < best.value ||
        (lane_v[l] == best.value &&
         lane_m[l] < static_cast<double>(best.m))) {
      best.value = lane_v[l];
      best.m = static_cast<std::size_t>(lane_m[l]);
    }
  }
  for (; m <= m_hi; ++m) {  // tail (at most one element; highest m)
    const double value = scan_objective(b, drift, inv2v, m);
    if (value < best.value) {
      best.value = value;
      best.m = m;
    }
  }
  return best;
}

__attribute__((target("sse2"))) double dot_reversed_sse2(const double* a,
                                                         const double* b_last,
                                                         std::size_t n) {
  const std::size_t n4 = n - n % 4;
  __m128d acc01 = _mm_setzero_pd();  // lanes j%4 == 0, 1
  __m128d acc23 = _mm_setzero_pd();  // lanes j%4 == 2, 3
  for (std::size_t j = 0; j < n4; j += 4) {
    const __m128d a01 = _mm_loadu_pd(a + j);
    const __m128d a23 = _mm_loadu_pd(a + j + 2);
    // {b[-j-1], b[-j]} -> swap -> {b[-j], b[-j-1]}
    __m128d b01 = _mm_loadu_pd(b_last - j - 1);
    __m128d b23 = _mm_loadu_pd(b_last - j - 3);
    b01 = _mm_shuffle_pd(b01, b01, 1);
    b23 = _mm_shuffle_pd(b23, b23, 1);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
  }
  double l01[2], l23[2];
  _mm_storeu_pd(l01, acc01);
  _mm_storeu_pd(l23, acc23);
  double sum = (l01[0] + l23[0]) + (l01[1] + l23[1]);
  for (std::size_t j = n4; j < n; ++j) {
    sum += a[j] * b_last[-static_cast<std::ptrdiff_t>(j)];
  }
  return sum;
}

__attribute__((target("sse2"))) void axpy_reversed_sse2(
    const double* a, const double* a_last, double r, double* out,
    std::size_t n) {
  const __m128d vr = _mm_set1_pd(r);
  const std::size_t n2 = n - n % 2;
  for (std::size_t j = 0; j < n2; j += 2) {
    const __m128d av = _mm_loadu_pd(a + j);
    __m128d rv = _mm_loadu_pd(a_last - j - 1);
    rv = _mm_shuffle_pd(rv, rv, 1);
    _mm_storeu_pd(out + j, _mm_sub_pd(av, _mm_mul_pd(vr, rv)));
  }
  for (std::size_t j = n2; j < n; ++j) {
    out[j] = a[j] - r * a_last[-static_cast<std::ptrdiff_t>(j)];
  }
}

__attribute__((target("sse2"))) void scale_pairs_sse2(const double* s,
                                                      const double* z,
                                                      double* out,
                                                      std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    const __m128d sv = _mm_set1_pd(s[j]);
    const __m128d zv = _mm_loadu_pd(z + 2 * j);
    _mm_storeu_pd(out + 2 * j, _mm_mul_pd(sv, zv));
  }
}

__attribute__((target("sse2"))) void scaled_real_stride2_sse2(
    const double* in, double norm, double* out, std::size_t n) {
  const __m128d vnorm = _mm_set1_pd(norm);
  const std::size_t n2 = n - n % 2;
  for (std::size_t j = 0; j < n2; j += 2) {
    const __m128d p0 = _mm_loadu_pd(in + 2 * j);      // {re0, im0}
    const __m128d p1 = _mm_loadu_pd(in + 2 * j + 2);  // {re1, im1}
    const __m128d re = _mm_shuffle_pd(p0, p1, 0);     // {re0, re1}
    _mm_storeu_pd(out + j, _mm_mul_pd(re, vnorm));
  }
  for (std::size_t j = n2; j < n; ++j) {
    out[j] = in[2 * j] * norm;
  }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (4-wide doubles).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) ScanPoint scan_min_avx2(double b, double drift,
                                                        const double* inv2v,
                                                        std::size_t m_lo,
                                                        std::size_t m_hi) {
  const std::size_t count = m_hi - m_lo + 1;
  if (count < 8) return scan_min_scalar(b, drift, inv2v, m_lo, m_hi);
  // Seed with the range's first element: on degenerate inputs where every
  // objective value is +inf, the vector lanes never improve on their
  // sentinels and the seed keeps the scalar kernel's answer (m_lo).
  ScanPoint best;
  best.m = m_lo;
  best.value = scan_objective(b, drift, inv2v, m_lo);
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d vdrift = _mm256_set1_pd(drift);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  // Four independent running-min accumulators (16 elements per iteration):
  // a single accumulator's cmp->blend update is a loop-carried dependency
  // chain whose ~6-cycle latency caps throughput far below the ALU width.
  // Argmin under strict < with lowest-m tie-breaking is evaluation-order
  // independent, so the partition cannot change the result.  Sentinel
  // lanes carry m = +inf and lose every tie in the final combine.
  __m256d bv0 = inf, bv1 = inf, bv2 = inf, bv3 = inf;
  __m256d bm0 = inf, bm1 = inf, bm2 = inf, bm3 = inf;
  const double mlo_d = static_cast<double>(m_lo);
  __m256d m0 = _mm256_setr_pd(mlo_d, mlo_d + 1.0, mlo_d + 2.0, mlo_d + 3.0);
  const __m256d four = _mm256_set1_pd(4.0);
  const __m256d sixteen = _mm256_set1_pd(16.0);
  __m256d m1 = _mm256_add_pd(m0, four);
  __m256d m2 = _mm256_add_pd(m1, four);
  __m256d m3 = _mm256_add_pd(m2, four);
  std::size_t m = m_lo;
  for (; m + 15 <= m_hi; m += 16) {
    const __m256d i0 = _mm256_loadu_pd(inv2v + m);
    const __m256d i1 = _mm256_loadu_pd(inv2v + m + 4);
    const __m256d i2 = _mm256_loadu_pd(inv2v + m + 8);
    const __m256d i3 = _mm256_loadu_pd(inv2v + m + 12);
    const __m256d n0 = _mm256_add_pd(vb, _mm256_mul_pd(m0, vdrift));
    const __m256d n1 = _mm256_add_pd(vb, _mm256_mul_pd(m1, vdrift));
    const __m256d n2 = _mm256_add_pd(vb, _mm256_mul_pd(m2, vdrift));
    const __m256d n3 = _mm256_add_pd(vb, _mm256_mul_pd(m3, vdrift));
    const __m256d v0 = _mm256_mul_pd(_mm256_mul_pd(n0, n0), i0);
    const __m256d v1 = _mm256_mul_pd(_mm256_mul_pd(n1, n1), i1);
    const __m256d v2 = _mm256_mul_pd(_mm256_mul_pd(n2, n2), i2);
    const __m256d v3 = _mm256_mul_pd(_mm256_mul_pd(n3, n3), i3);
    // Strict < keeps the first (lowest-m) occurrence per lane.
    const __m256d lt0 = _mm256_cmp_pd(v0, bv0, _CMP_LT_OQ);
    const __m256d lt1 = _mm256_cmp_pd(v1, bv1, _CMP_LT_OQ);
    const __m256d lt2 = _mm256_cmp_pd(v2, bv2, _CMP_LT_OQ);
    const __m256d lt3 = _mm256_cmp_pd(v3, bv3, _CMP_LT_OQ);
    bv0 = _mm256_blendv_pd(bv0, v0, lt0);
    bm0 = _mm256_blendv_pd(bm0, m0, lt0);
    bv1 = _mm256_blendv_pd(bv1, v1, lt1);
    bm1 = _mm256_blendv_pd(bm1, m1, lt1);
    bv2 = _mm256_blendv_pd(bv2, v2, lt2);
    bm2 = _mm256_blendv_pd(bm2, m2, lt2);
    bv3 = _mm256_blendv_pd(bv3, v3, lt3);
    bm3 = _mm256_blendv_pd(bm3, m3, lt3);
    m0 = _mm256_add_pd(m0, sixteen);
    m1 = _mm256_add_pd(m1, sixteen);
    m2 = _mm256_add_pd(m2, sixteen);
    m3 = _mm256_add_pd(m3, sixteen);
  }
  for (; m + 3 <= m_hi; m += 4) {  // 4-wide cleanup on accumulator 0
    const __m256d i0 = _mm256_loadu_pd(inv2v + m);
    const __m256d n0 = _mm256_add_pd(vb, _mm256_mul_pd(m0, vdrift));
    const __m256d v0 = _mm256_mul_pd(_mm256_mul_pd(n0, n0), i0);
    const __m256d lt0 = _mm256_cmp_pd(v0, bv0, _CMP_LT_OQ);
    bv0 = _mm256_blendv_pd(bv0, v0, lt0);
    bm0 = _mm256_blendv_pd(bm0, m0, lt0);
    m0 = _mm256_add_pd(m0, four);
  }
  double lane_v[16], lane_m[16];
  _mm256_storeu_pd(lane_v, bv0);
  _mm256_storeu_pd(lane_v + 4, bv1);
  _mm256_storeu_pd(lane_v + 8, bv2);
  _mm256_storeu_pd(lane_v + 12, bv3);
  _mm256_storeu_pd(lane_m, bm0);
  _mm256_storeu_pd(lane_m + 4, bm1);
  _mm256_storeu_pd(lane_m + 8, bm2);
  _mm256_storeu_pd(lane_m + 12, bm3);
  for (int l = 0; l < 16; ++l) {
    if (lane_v[l] < best.value ||
        (lane_v[l] == best.value &&
         lane_m[l] < static_cast<double>(best.m))) {
      best.value = lane_v[l];
      best.m = static_cast<std::size_t>(lane_m[l]);
    }
  }
  for (; m <= m_hi; ++m) {  // tail (at most three elements; highest m)
    const double value = scan_objective(b, drift, inv2v, m);
    if (value < best.value) {
      best.value = value;
      best.m = m;
    }
  }
  return best;
}

__attribute__((target("avx2"))) double dot_reversed_avx2(const double* a,
                                                         const double* b_last,
                                                         std::size_t n) {
  const std::size_t n4 = n - n % 4;
  __m256d acc = _mm256_setzero_pd();  // lane l holds j%4 == l partial sums
  for (std::size_t j = 0; j < n4; j += 4) {
    const __m256d av = _mm256_loadu_pd(a + j);
    // {b[-j-3], b[-j-2], b[-j-1], b[-j]} -> reverse lanes
    __m256d bv = _mm256_loadu_pd(b_last - j - 3);
    bv = _mm256_permute4x64_pd(bv, _MM_SHUFFLE(0, 1, 2, 3));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  double sum = (lane[0] + lane[2]) + (lane[1] + lane[3]);
  for (std::size_t j = n4; j < n; ++j) {
    sum += a[j] * b_last[-static_cast<std::ptrdiff_t>(j)];
  }
  return sum;
}

__attribute__((target("avx2"))) void axpy_reversed_avx2(
    const double* a, const double* a_last, double r, double* out,
    std::size_t n) {
  const __m256d vr = _mm256_set1_pd(r);
  const std::size_t n4 = n - n % 4;
  for (std::size_t j = 0; j < n4; j += 4) {
    const __m256d av = _mm256_loadu_pd(a + j);
    __m256d rv = _mm256_loadu_pd(a_last - j - 3);
    rv = _mm256_permute4x64_pd(rv, _MM_SHUFFLE(0, 1, 2, 3));
    _mm256_storeu_pd(out + j, _mm256_sub_pd(av, _mm256_mul_pd(vr, rv)));
  }
  for (std::size_t j = n4; j < n; ++j) {
    out[j] = a[j] - r * a_last[-static_cast<std::ptrdiff_t>(j)];
  }
}

__attribute__((target("avx2"))) void scale_pairs_avx2(const double* s,
                                                      const double* z,
                                                      double* out,
                                                      std::size_t n) {
  const std::size_t n2 = n - n % 2;
  for (std::size_t j = 0; j < n2; j += 2) {
    // Duplicate {s[j], s[j+1]} pairwise to {s[j], s[j], s[j+1], s[j+1]}.
    const __m128d s01 = _mm_loadu_pd(s + j);
    const __m256d sv =
        _mm256_permute4x64_pd(_mm256_castpd128_pd256(s01), 0x50);
    const __m256d zv = _mm256_loadu_pd(z + 2 * j);
    _mm256_storeu_pd(out + 2 * j, _mm256_mul_pd(sv, zv));
  }
  for (std::size_t j = n2; j < n; ++j) {
    out[2 * j] = s[j] * z[2 * j];
    out[2 * j + 1] = s[j] * z[2 * j + 1];
  }
}

__attribute__((target("avx2"))) void scaled_real_stride2_avx2(
    const double* in, double norm, double* out, std::size_t n) {
  const __m256d vnorm = _mm256_set1_pd(norm);
  const std::size_t n4 = n - n % 4;
  for (std::size_t j = 0; j < n4; j += 4) {
    const __m256d p0 = _mm256_loadu_pd(in + 2 * j);      // re0 im0 re1 im1
    const __m256d p1 = _mm256_loadu_pd(in + 2 * j + 4);  // re2 im2 re3 im3
    // unpacklo across 128-bit halves gives {re0, re1, re2, re3} after a
    // cross-lane permute: build {re0, re2, re1, re3} then fix the order.
    const __m256d lo = _mm256_unpacklo_pd(p0, p1);  // re0 re2 re1 re3
    const __m256d re = _mm256_permute4x64_pd(lo, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(out + j, _mm256_mul_pd(re, vnorm));
  }
  for (std::size_t j = n4; j < n; ++j) {
    out[j] = in[2 * j] * norm;
  }
}

#endif  // CTS_SIMD_X86

std::atomic<int> g_forced{-1};

Kind resolve_env_kind() {
  const char* env = std::getenv("CTS_SIMD");
  if (env == nullptr || *env == '\0') return best_supported();
  const Kind kind = parse_kind(env);
  if (static_cast<int>(kind) > static_cast<int>(best_supported())) {
    throw util::InvalidArgument(std::string("CTS_SIMD=") + env +
                                " is not supported by this CPU");
  }
  return kind;
}

}  // namespace

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kSse2:
      return "sse2";
    case Kind::kAvx2:
      return "avx2";
    case Kind::kScalar:
    default:
      return "scalar";
  }
}

Kind best_supported() noexcept {
#if CTS_SIMD_X86
  static const Kind kind = [] {
    if (__builtin_cpu_supports("avx2")) return Kind::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Kind::kSse2;
    return Kind::kScalar;
  }();
  return kind;
#else
  return Kind::kScalar;
#endif
}

Kind active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Kind>(forced);
  // Magic static: the env override is parsed and validated once; a throw
  // during initialisation propagates to the caller and retries next call.
  static const Kind env_kind = resolve_env_kind();
  return env_kind;
}

void force(Kind kind) {
  if (static_cast<int>(kind) > static_cast<int>(best_supported())) {
    throw util::InvalidArgument(
        std::string("simd::force: kind '") + kind_name(kind) +
        "' is not supported by this CPU");
  }
  g_forced.store(static_cast<int>(kind), std::memory_order_relaxed);
}

void clear_force() noexcept { g_forced.store(-1, std::memory_order_relaxed); }

Kind parse_kind(std::string_view name) {
  if (name == "scalar") return Kind::kScalar;
  if (name == "sse2") return Kind::kSse2;
  if (name == "avx2") return Kind::kAvx2;
  throw util::InvalidArgument("CTS_SIMD: unknown kind '" + std::string(name) +
                              "' (expected scalar, sse2, or avx2)");
}

ScanPoint scan_min(double b, double drift, const double* inv2v,
                   std::size_t m_lo, std::size_t m_hi) {
  util::require(m_lo >= 1 && m_lo <= m_hi, "simd::scan_min: need 1 <= lo <= hi");
  switch (active()) {
#if CTS_SIMD_X86
    case Kind::kAvx2:
      return scan_min_avx2(b, drift, inv2v, m_lo, m_hi);
    case Kind::kSse2:
      return scan_min_sse2(b, drift, inv2v, m_lo, m_hi);
#endif
    default:
      return scan_min_scalar(b, drift, inv2v, m_lo, m_hi);
  }
}

double dot_reversed(const double* a, const double* b_last, std::size_t n) {
  if (n == 0) return 0.0;
  switch (active()) {
#if CTS_SIMD_X86
    case Kind::kAvx2:
      return dot_reversed_avx2(a, b_last, n);
    case Kind::kSse2:
      return dot_reversed_sse2(a, b_last, n);
#endif
    default:
      return dot_reversed_scalar(a, b_last, n);
  }
}

void axpy_reversed(const double* a, const double* a_last, double r,
                   double* out, std::size_t n) {
  if (n == 0) return;
  switch (active()) {
#if CTS_SIMD_X86
    case Kind::kAvx2:
      axpy_reversed_avx2(a, a_last, r, out, n);
      return;
    case Kind::kSse2:
      axpy_reversed_sse2(a, a_last, r, out, n);
      return;
#endif
    default:
      axpy_reversed_scalar(a, a_last, r, out, n);
  }
}

void scale_pairs(const double* s, const double* z, double* out,
                 std::size_t n) {
  if (n == 0) return;
  switch (active()) {
#if CTS_SIMD_X86
    case Kind::kAvx2:
      scale_pairs_avx2(s, z, out, n);
      return;
    case Kind::kSse2:
      scale_pairs_sse2(s, z, out, n);
      return;
#endif
    default:
      scale_pairs_scalar(s, z, out, n);
  }
}

void scaled_real_stride2(const double* in, double norm, double* out,
                         std::size_t n) {
  if (n == 0) return;
  switch (active()) {
#if CTS_SIMD_X86
    case Kind::kAvx2:
      scaled_real_stride2_avx2(in, norm, out, n);
      return;
    case Kind::kSse2:
      scaled_real_stride2_sse2(in, norm, out, n);
      return;
#endif
    default:
      scaled_real_stride2_scalar(in, norm, out, n);
  }
}

}  // namespace cts::core::simd
