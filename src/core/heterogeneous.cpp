#include "cts/core/heterogeneous.hpp"

#include "cts/util/error.hpp"

namespace cts::core {

AggregateModel aggregate_population(
    const std::vector<PopulationClass>& classes) {
  util::require(!classes.empty(), "aggregate_population: empty population");
  AggregateModel aggregate;
  std::vector<std::shared_ptr<const AcfModel>> components;
  std::vector<double> weights;
  for (const PopulationClass& cls : classes) {
    util::require(cls.acf != nullptr, "aggregate_population: null acf");
    util::require(cls.variance > 0.0,
                  "aggregate_population: variance must be > 0");
    if (cls.count == 0) continue;
    const double n = static_cast<double>(cls.count);
    aggregate.mean += n * cls.mean;
    aggregate.variance += n * cls.variance;
    components.push_back(cls.acf);
    weights.push_back(n * cls.variance);
  }
  util::require(aggregate.variance > 0.0,
                "aggregate_population: no sources in population");
  for (auto& w : weights) w /= aggregate.variance;
  aggregate.acf = std::make_shared<MixtureAcf>(std::move(components),
                                               std::move(weights),
                                               "population-aggregate");
  return aggregate;
}

BopPoint heterogeneous_br_log10_bop(
    const std::vector<PopulationClass>& classes, double total_capacity,
    double total_buffer) {
  const AggregateModel aggregate = aggregate_population(classes);
  util::require(total_capacity > aggregate.mean,
                "heterogeneous_br_log10_bop: capacity must exceed the "
                "aggregate mean (stability)");
  RateFunction rate(aggregate.acf, aggregate.mean, aggregate.variance,
                    total_capacity);
  return br_log10_bop(rate, total_buffer, 1);
}

}  // namespace cts::core
