#include "cts/core/variance_growth.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::core {

VarianceGrowth::VarianceGrowth(std::shared_ptr<const AcfModel> acf,
                               double variance)
    : acf_(std::move(acf)), variance_(variance) {
  util::require(acf_ != nullptr, "VarianceGrowth: acf required");
  util::require(variance > 0.0, "VarianceGrowth: variance must be > 0");
}

void VarianceGrowth::ensure(std::size_t m) const {
  if (v_.size() > m) return;
  v_.reserve(m + 1);
  inv2v_.reserve(m + 1);
  while (v_.size() <= m) {
    const std::size_t i = v_.size();  // next lag to absorb
    const double r = acf_->at(i);
    s1_ += r;
    s2_ += static_cast<double>(i) * r;
    // sum_{j=1..i} (i - j) r(j) = i S1(i) - S2(i); the j = i term is zero
    // so including it in the running sums is harmless.
    const double id = static_cast<double>(i);
    const double weighted = id * s1_ - s2_;
    const double v = variance_ * (id + 2.0 * weighted);
    v_.push_back(v);
    inv2v_.push_back(1.0 / (2.0 * v));
  }
}

double VarianceGrowth::at(std::size_t m) const {
  util::require(m >= 1, "VarianceGrowth::at: m must be >= 1");
  ensure(m);
  return v_[m];
}

double VarianceGrowth::normalized(std::size_t m) const {
  return at(m) / (variance_ * static_cast<double>(m));
}

double lrd_variance_growth_approx(double variance, double weight, double hurst,
                                  std::size_t m) {
  util::require(hurst > 0.5 && hurst < 1.0,
                "lrd_variance_growth_approx: H must be in (1/2,1)");
  return variance * weight *
         std::pow(static_cast<double>(m), 2.0 * hurst);
}

}  // namespace cts::core
