#include "cts/core/variance_growth.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::core {

VarianceGrowth::VarianceGrowth(std::shared_ptr<const AcfModel> acf,
                               double variance)
    : acf_(std::move(acf)), variance_(variance) {
  util::require(acf_ != nullptr, "VarianceGrowth: acf required");
  util::require(variance > 0.0, "VarianceGrowth: variance must be > 0");
}

void VarianceGrowth::extend(std::size_t m) const {
  while (s1_.size() <= m) {
    const std::size_t i = s1_.size();  // next lag to absorb
    const double r = acf_->at(i);
    s1_.push_back(s1_.back() + r);
    s2_.push_back(s2_.back() + static_cast<double>(i) * r);
  }
}

double VarianceGrowth::at(std::size_t m) const {
  util::require(m >= 1, "VarianceGrowth::at: m must be >= 1");
  extend(m);
  // sum_{i=1..m} (m - i) r(i) = m S1(m) - S2(m); the i = m term is zero so
  // including it in the cached sums is harmless.
  const double md = static_cast<double>(m);
  const double weighted = md * s1_[m] - s2_[m];
  return variance_ * (md + 2.0 * weighted);
}

double VarianceGrowth::normalized(std::size_t m) const {
  return at(m) / (variance_ * static_cast<double>(m));
}

double lrd_variance_growth_approx(double variance, double weight, double hurst,
                                  std::size_t m) {
  util::require(hurst > 0.5 && hurst < 1.0,
                "lrd_variance_growth_approx: H must be in (1/2,1)");
  return variance * weight *
         std::pow(static_cast<double>(m), 2.0 * hurst);
}

}  // namespace cts::core
