#include "cts/core/weibull_lrd.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::core {

void WeibullLrdParams::validate() const {
  util::require(hurst > 0.5 && hurst < 1.0,
                "WeibullLrdParams: H must be in (1/2, 1)");
  util::require(weight > 0.0 && weight <= 1.0,
                "WeibullLrdParams: weight must be in (0, 1]");
  util::require(variance > 0.0, "WeibullLrdParams: variance must be > 0");
  util::require(bandwidth > mean,
                "WeibullLrdParams: bandwidth must exceed mean");
}

double kappa(double hurst) {
  util::require(hurst > 0.0 && hurst < 1.0, "kappa: H must be in (0,1)");
  return std::pow(hurst, hurst) * std::pow(1.0 - hurst, 1.0 - hurst);
}

double weibull_exponent(const WeibullLrdParams& params,
                        std::size_t n_sources, double total_buffer) {
  params.validate();
  util::require(n_sources >= 1, "weibull_exponent: need >= 1 source");
  util::require(total_buffer > 0.0, "weibull_exponent: buffer must be > 0");
  const double h = params.hurst;
  const double n = static_cast<double>(n_sources);
  const double k = kappa(h);
  return std::pow(n, 2.0 * h - 1.0) *
         std::pow(params.bandwidth - params.mean, 2.0 * h) /
         (2.0 * params.weight * params.variance * k * k) *
         std::pow(total_buffer, 2.0 - 2.0 * h);
}

double weibull_log10_bop(const WeibullLrdParams& params,
                         std::size_t n_sources, double total_buffer) {
  const double j = weibull_exponent(params, n_sources, total_buffer);
  double log_p = -j;
  if (j > 0.0) log_p -= 0.5 * std::log(4.0 * util::kPi * j);
  return std::min(log_p / std::log(10.0), 0.0);
}

double weibull_critical_m(const WeibullLrdParams& params,
                          double buffer_per_source) {
  params.validate();
  return params.hurst / (1.0 - params.hurst) * buffer_per_source /
         (params.bandwidth - params.mean);
}

}  // namespace cts::core
