#include "cts/core/effective_bandwidth.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::core {

double asymptotic_variance_rate(const AcfModel& acf, double variance,
                                double tol, std::size_t max_terms) {
  util::require(variance > 0.0,
                "asymptotic_variance_rate: variance must be > 0");
  double sum = 0.0;
  double prev_tail_probe = 0.0;
  bool probe_seeded = false;
  for (std::size_t k = 1; k <= max_terms; ++k) {
    const double r = acf.at(k);
    sum += r;
    // Convergence probe: compare the partial sum against itself one octave
    // earlier.  Geometric tails settle immediately; power-law (LRD) tails
    // keep drifting and trip the non-convergence error below.  The first
    // checkpoint only SEEDS the probe: comparing against an unseeded 0
    // would declare an oscillating ACF whose partial sum happens to pass
    // near zero at k=64 converged while it is still drifting.
    if ((k & (k - 1)) == 0 && k >= 64) {  // k is a power of two
      if (probe_seeded &&
          std::abs(sum - prev_tail_probe) < tol * std::max(1.0, std::abs(sum))) {
        return variance * (1.0 + 2.0 * sum);
      }
      prev_tail_probe = sum;
      probe_seeded = true;
    }
    if (std::abs(r) < tol && k >= 64) {
      return variance * (1.0 + 2.0 * sum);
    }
  }
  throw util::NumericalError(
      "asymptotic_variance_rate: sum of autocorrelations did not converge "
      "(long-range dependence: effective bandwidth does not exist)");
}

double effective_bandwidth(double mean, double variance_rate, double delta) {
  util::require(variance_rate >= 0.0,
                "effective_bandwidth: variance rate must be >= 0");
  util::require(delta >= 0.0, "effective_bandwidth: delta must be >= 0");
  return mean + delta * variance_rate / 2.0;
}

double decay_rate_for_target(double log10_eps, double total_buffer) {
  util::require(log10_eps < 0.0,
                "decay_rate_for_target: log10 target must be negative");
  util::require(total_buffer > 0.0,
                "decay_rate_for_target: buffer must be > 0");
  return -log10_eps * std::log(10.0) / total_buffer;
}

}  // namespace cts::core
