#include "cts/core/rate_function.hpp"

#include <algorithm>
#include <cmath>

#include "cts/core/simd.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::core {

RateFunction::RateFunction(std::shared_ptr<const AcfModel> acf, double mean,
                           double variance, double bandwidth)
    : growth_(std::move(acf), variance), mean_(mean), bandwidth_(bandwidth) {
  util::require(bandwidth > mean,
                "RateFunction: bandwidth must exceed the mean (stability)");
}

RateResult RateFunction::evaluate(double buffer_per_source) const {
  return evaluate(buffer_per_source, 1);
}

RateResult RateFunction::evaluate(double buffer_per_source,
                                  std::size_t m_hint) const {
  // One span per buffer point (tens per curve), not per scanned m — the
  // windowed scan below covers up to kMaxScan lags and must stay
  // allocation-free beyond the shared V(m) table growth.
  CTS_TRACE_SPAN("rate_fn.scan");
  util::require(buffer_per_source >= 0.0,
                "RateFunction::evaluate: buffer must be >= 0");
  util::require(m_hint >= 1 && m_hint <= kMaxScan,
                "RateFunction::evaluate: m_hint must be in [1, kMaxScan]");
  const double b = buffer_per_source;
  const double drift = bandwidth_ - mean_;

  // Guaranteed-coverage scan horizon: the worst-case CTS scaling over all
  // H < 1 handled in practice (H <= 0.98) plus a generous multiplicative
  // margin; combined with the "keep going while improving" rule below this
  // cannot stop before the global integer minimum for objectives whose
  // tail is eventually increasing (true since V(m) = o(m^2)).
  constexpr double kWorstCaseHurst = 0.98;
  constexpr std::size_t kMinScan = 512;
  constexpr double kScanMargin = 4.0;
  const double lrd_prediction =
      kWorstCaseHurst / (1.0 - kWorstCaseHurst) * b / drift;
  // A warm start deep into the scan still gets the full multiplicative
  // margin past the hint, so the stopping rule's coverage guarantee holds
  // unchanged.  The initial horizon is validated against kMaxScan in
  // double precision BEFORE any integer conversion: for huge b/drift the
  // old llround-first path was undefined behaviour and silently produced
  // an unclamped scan length.
  const double wanted =
      std::max({static_cast<double>(kMinScan), kScanMargin * lrd_prediction,
                kScanMargin * static_cast<double>(m_hint)});
  if (!(wanted <= static_cast<double>(kMaxScan))) {
    throw util::NumericalError(
        "RateFunction: CTS scan exceeded kMaxScan; the model may have "
        "H too close to 1 or a non-summable objective");
  }
  std::size_t horizon = static_cast<std::size_t>(std::llround(wanted));

  growth_.ensure(horizon);
  RateResult best;
  best.critical_m = m_hint;
  {
    const double md = static_cast<double>(m_hint);
    const double numerator = b + md * drift;
    best.rate = numerator * numerator * growth_.inv_table()[m_hint];
  }
  // Windowed scan: each window [lo, hi] is an argmin over the dispatched
  // SIMD kernel.  Equivalent to the sequential scan-with-extension: within
  // a window the last running-minimum update is the window argmin (strict
  // <, lowest m on ties), improvements occur at increasing m, so the
  // furthest horizon push — and the kMaxScan overflow check — happen at
  // exactly the window argmin.
  std::size_t lo = m_hint + 1;
  while (lo <= horizon) {
    const std::size_t hi = horizon;
    const simd::ScanPoint point =
        simd::scan_min(b, drift, growth_.inv_table(), lo, hi);
    if (point.value < best.rate) {
      best.rate = point.value;
      best.critical_m = point.m;
      // Push the horizon whenever the minimum keeps moving outward.
      const auto extended = static_cast<std::size_t>(
          std::llround(kScanMargin * static_cast<double>(point.m)));
      if (extended > kMaxScan) {
        throw util::NumericalError(
            "RateFunction: CTS scan exceeded kMaxScan; the model may have "
            "H too close to 1 or a non-summable objective");
      }
      if (extended > horizon) {
        horizon = extended;
        growth_.ensure(horizon);
      }
    }
    lo = hi + 1;
  }
  return best;
}

double lrd_cts_slope(double hurst, double mean, double bandwidth) {
  util::require(hurst > 0.0 && hurst < 1.0, "lrd_cts_slope: H in (0,1)");
  util::require(bandwidth > mean, "lrd_cts_slope: bandwidth must exceed mean");
  return hurst / ((1.0 - hurst) * (bandwidth - mean));
}

double markov_cts_slope(double mean, double bandwidth) {
  util::require(bandwidth > mean,
                "markov_cts_slope: bandwidth must exceed mean");
  return 1.0 / (bandwidth - mean);
}

}  // namespace cts::core
