#include "cts/core/rate_function.hpp"

#include <algorithm>
#include <cmath>

#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::core {

RateFunction::RateFunction(std::shared_ptr<const AcfModel> acf, double mean,
                           double variance, double bandwidth)
    : growth_(std::move(acf), variance), mean_(mean), bandwidth_(bandwidth) {
  util::require(bandwidth > mean,
                "RateFunction: bandwidth must exceed the mean (stability)");
}

RateResult RateFunction::evaluate(double buffer_per_source) const {
  return evaluate(buffer_per_source, 1);
}

RateResult RateFunction::evaluate(double buffer_per_source,
                                  std::size_t m_hint) const {
  // One span per buffer point (tens per curve), not per scanned m — the
  // inner loop below runs up to kMaxScan iterations and must stay
  // allocation-free.
  CTS_TRACE_SPAN("rate_fn.scan");
  util::require(buffer_per_source >= 0.0,
                "RateFunction::evaluate: buffer must be >= 0");
  util::require(m_hint >= 1 && m_hint <= kMaxScan,
                "RateFunction::evaluate: m_hint must be in [1, kMaxScan]");
  const double b = buffer_per_source;
  const double drift = bandwidth_ - mean_;

  auto objective = [&](std::size_t m) {
    const double md = static_cast<double>(m);
    const double numerator = b + md * drift;
    return numerator * numerator / (2.0 * growth_.at(m));
  };

  // Guaranteed-coverage scan horizon: the worst-case CTS scaling over all
  // H < 1 handled in practice (H <= 0.98) plus a generous multiplicative
  // margin; combined with the "keep going while improving" rule below this
  // cannot stop before the global integer minimum for objectives whose
  // tail is eventually increasing (true since V(m) = o(m^2)).
  constexpr double kWorstCaseHurst = 0.98;
  constexpr std::size_t kMinScan = 512;
  constexpr double kScanMargin = 4.0;
  const double lrd_prediction =
      kWorstCaseHurst / (1.0 - kWorstCaseHurst) * b / drift;
  std::size_t horizon = kMinScan;
  horizon = std::max(horizon, static_cast<std::size_t>(
                                  std::llround(kScanMargin * lrd_prediction)));
  // A warm start deep into the scan still gets the full multiplicative
  // margin past the hint, so the stopping rule's coverage guarantee holds
  // unchanged.
  horizon = std::max(horizon, static_cast<std::size_t>(std::llround(
                                  kScanMargin * static_cast<double>(m_hint))));

  RateResult best;
  best.critical_m = m_hint;
  best.rate = objective(m_hint);
  for (std::size_t m = m_hint + 1; m <= horizon; ++m) {
    const double value = objective(m);
    if (value < best.rate) {
      best.rate = value;
      best.critical_m = m;
      // Push the horizon whenever the minimum keeps moving outward.
      const auto extended = static_cast<std::size_t>(
          std::llround(kScanMargin * static_cast<double>(m)));
      horizon = std::max(horizon, extended);
      if (horizon > kMaxScan) {
        throw util::NumericalError(
            "RateFunction: CTS scan exceeded kMaxScan; the model may have "
            "H too close to 1 or a non-summable objective");
      }
    }
  }
  return best;
}

double lrd_cts_slope(double hurst, double mean, double bandwidth) {
  util::require(hurst > 0.0 && hurst < 1.0, "lrd_cts_slope: H in (0,1)");
  util::require(bandwidth > mean, "lrd_cts_slope: bandwidth must exceed mean");
  return hurst / ((1.0 - hurst) * (bandwidth - mean));
}

double markov_cts_slope(double mean, double bandwidth) {
  util::require(bandwidth > mean,
                "markov_cts_slope: bandwidth must exceed mean");
  return 1.0 / (bandwidth - mean);
}

}  // namespace cts::core
