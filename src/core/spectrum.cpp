#include "cts/core/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::core {

Spectrum::Spectrum(std::shared_ptr<const AcfModel> acf, double variance,
                   std::size_t truncation)
    : acf_(std::move(acf)), variance_(variance), truncation_(truncation) {
  util::require(acf_ != nullptr, "Spectrum: acf required");
  util::require(variance > 0.0, "Spectrum: variance must be > 0");
  util::require(truncation >= 16, "Spectrum: truncation too small");
}

double Spectrum::density(double w) const {
  util::require(w > 0.0 && w <= util::kPi,
                "Spectrum::density: w must be in (0, pi]");
  // Cesaro (Fejer) weighting suppresses the Gibbs ripple of the hard
  // truncation while preserving the w -> 0 divergence rate of LRD models.
  double acc = 1.0;
  const double n = static_cast<double>(truncation_);
  for (std::size_t k = 1; k <= truncation_; ++k) {
    const double kd = static_cast<double>(k);
    const double fejer = 1.0 - kd / (n + 1.0);
    acc += 2.0 * fejer * acf_->at(k) * std::cos(w * kd);
  }
  return std::max(variance_ * acc, 0.0);
}

double Spectrum::integrated(double w, std::size_t grid_points) const {
  util::require(w > 0.0 && w <= util::kPi,
                "Spectrum::integrated: w must be in (0, pi]");
  util::require(grid_points >= 8, "Spectrum::integrated: grid too coarse");
  // Log-spaced trapezoid from w_min to w: LRD densities vary over decades
  // near zero, so uniform grids waste points.
  const double w_min = w / 1e6;
  const double ratio =
      std::pow(w / w_min, 1.0 / static_cast<double>(grid_points));
  double total = 0.0;
  double prev_w = w_min;
  double prev_s = density(prev_w);
  for (std::size_t i = 1; i <= grid_points; ++i) {
    // Clamp the last grid point: pow round-off can overshoot w (and pi).
    const double cur_w =
        std::min(w, w_min * std::pow(ratio, static_cast<double>(i)));
    const double cur_s = density(cur_w);
    total += 0.5 * (prev_s + cur_s) * (cur_w - prev_w);
    prev_w = cur_w;
    prev_s = cur_s;
  }
  return total;
}

double Spectrum::cutoff_frequency(double fraction) const {
  util::require(fraction > 0.0 && fraction < 1.0,
                "Spectrum::cutoff_frequency: fraction must be in (0,1)");
  // One pass over a log grid builds the cumulative power curve; the cutoff
  // is then interpolated.  (Bisecting on integrated() directly would
  // re-evaluate the O(truncation) density thousands of times.)
  constexpr std::size_t kGrid = 1024;
  const double w_min = 1e-6 * util::kPi;
  const double ratio =
      std::pow(util::kPi / w_min, 1.0 / static_cast<double>(kGrid));
  std::vector<double> ws(kGrid + 1);
  std::vector<double> cumulative(kGrid + 1, 0.0);
  ws[0] = w_min;
  double prev_s = density(w_min);
  for (std::size_t i = 1; i <= kGrid; ++i) {
    ws[i] = std::min(util::kPi, w_min * std::pow(ratio,
                                                 static_cast<double>(i)));
    const double cur_s = density(ws[i]);
    cumulative[i] =
        cumulative[i - 1] + 0.5 * (prev_s + cur_s) * (ws[i] - ws[i - 1]);
    prev_s = cur_s;
  }
  const double total = cumulative[kGrid];
  util::require(total > 0.0, "Spectrum::cutoff_frequency: zero total power");
  const double target = fraction * total;
  for (std::size_t i = 1; i <= kGrid; ++i) {
    if (cumulative[i] >= target) {
      const double span = cumulative[i] - cumulative[i - 1];
      const double alpha =
          span > 0.0 ? (target - cumulative[i - 1]) / span : 0.0;
      return ws[i - 1] + alpha * (ws[i] - ws[i - 1]);
    }
  }
  return util::kPi;
}

double cutoff_time_scale(double cutoff_frequency) {
  util::require(cutoff_frequency > 0.0,
                "cutoff_time_scale: frequency must be > 0");
  return 2.0 * util::kPi / cutoff_frequency;
}

}  // namespace cts::core
