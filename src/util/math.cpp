#include "cts/util/math.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cts/util/error.hpp"

namespace cts::util {

double second_central_difference_pow(std::size_t k, double exponent) {
  require(k >= 1, "second_central_difference_pow: k must be >= 1");
  const double kd = static_cast<double>(k);
  // For large k the three powers agree to many digits and the naive
  // difference loses precision; switch to the series expansion
  // e*(e-1)*k^(e-2) * (1 + (e-2)(e-3)/(12 k^2) + ...) once the naive form
  // would cancel below ~1e-10 relative accuracy.
  if (kd > 1e4) {
    const double e = exponent;
    const double lead = e * (e - 1.0) * std::pow(kd, e - 2.0);
    const double corr = 1.0 + (e - 2.0) * (e - 3.0) / (12.0 * kd * kd);
    return lead * corr;
  }
  return std::pow(kd + 1.0, exponent) - 2.0 * std::pow(kd, exponent) +
         std::pow(kd - 1.0, exponent);
}

double log1mexp(double x) {
  require(x < 0.0, "log1mexp: argument must be negative");
  // Two-branch form from Maechler (2012): accurate for both tiny and large
  // magnitude x.
  static const double kLogHalf = std::log(0.5);
  if (x > kLogHalf) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double logaddexp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * kPi);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  require(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0,1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol, int max_iter) {
  require(lo < hi, "bisect: lo must be < hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  require(std::signbit(flo) != std::signbit(fhi),
          "bisect: f(lo) and f(hi) must bracket a root");
  for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

LinearFit linear_least_squares(const std::vector<double>& x,
                               const std::vector<double>& y) {
  require(x.size() == y.size(), "linear_least_squares: size mismatch");
  require(x.size() >= 2, "linear_least_squares: need at least two points");
  const double n = static_cast<double>(x.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0, "linear_least_squares: all x identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double stable_sum(const std::vector<double>& values) {
  double sum = 0.0;
  double comp = 0.0;
  for (const double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

bool is_finite(double value) { return std::isfinite(value); }

}  // namespace cts::util
