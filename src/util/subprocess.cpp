#include "cts/util/subprocess.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace cts::util {

namespace {

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_ms(long ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  nanosleep(&ts, nullptr);
}

WaitOutcome from_status(int status, double waited_s) {
  WaitOutcome out;
  out.waited_s = waited_s;
  if (WIFEXITED(status)) {
    out.kind = WaitOutcome::Kind::kExited;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.kind = WaitOutcome::Kind::kSignaled;
    out.signal = WTERMSIG(status);
  } else {
    out.kind = WaitOutcome::Kind::kError;
    out.error = "unexpected wait status " + std::to_string(status);
  }
  return out;
}

}  // namespace

std::string WaitOutcome::describe() const {
  char buf[128];
  switch (kind) {
    case Kind::kExited:
      std::snprintf(buf, sizeof(buf), "exited with status %d", exit_code);
      return buf;
    case Kind::kSignaled: {
      const char* name = strsignal(signal);
      std::snprintf(buf, sizeof(buf), "killed by signal %d (%s)", signal,
                    name != nullptr ? name : "unknown");
      return buf;
    }
    case Kind::kTimeout:
      std::snprintf(buf, sizeof(buf), "timed out after %.1fs (killed)",
                    waited_s);
      return buf;
    case Kind::kError:
      return "wait failed: " + error;
  }
  return "unknown";
}

WaitOutcome wait_child(pid_t pid, double timeout_s) {
  const double start = monotonic_s();
  if (timeout_s < 0) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      WaitOutcome out;
      out.kind = WaitOutcome::Kind::kError;
      out.error = std::strerror(errno);
      out.waited_s = monotonic_s() - start;
      return out;
    }
    return from_status(status, monotonic_s() - start);
  }

  const double deadline = start + timeout_s;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r < 0) {
      WaitOutcome out;
      out.kind = WaitOutcome::Kind::kError;
      out.error = std::strerror(errno);
      out.waited_s = monotonic_s() - start;
      return out;
    }
    if (r == pid) return from_status(status, monotonic_s() - start);
    if (monotonic_s() >= deadline) break;
    sleep_ms(10);
  }

  // Deadline expired: kill and reap so the child can never outlive us.
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  WaitOutcome out;
  out.kind = WaitOutcome::Kind::kTimeout;
  out.waited_s = monotonic_s() - start;
  return out;
}

}  // namespace cts::util
