#include "cts/util/file.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "cts/util/error.hpp"

namespace cts::util {

namespace {

std::string errno_text() {
  return std::strerror(errno);
}

}  // namespace

std::string read_text_file(const std::string& path) {
  std::string out;
  std::string error;
  if (!read_text_file(path, &out, &error)) throw InvalidArgument(error);
  return out;
}

bool read_text_file(const std::string& path, std::string* out,
                    std::string* error) {
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot read " + path + ": " + errno_text();
    }
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error != nullptr) {
      *error = "cannot read " + path + ": " + errno_text();
    }
    return false;
  }
  if (out != nullptr) *out = std::move(text);
  return true;
}

void make_dirs(const std::string& path) {
  require(!path.empty(), "make_dirs: empty path");
  std::string prefix;
  prefix.reserve(path.size());
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    prefix.assign(path, 0, end);
    pos = end + 1;
    if (prefix.empty() || prefix == ".") continue;  // leading "/" or "./"
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw InvalidArgument("cannot create directory " + prefix + ": " +
                            errno_text());
    }
    if (slash == std::string::npos) break;
  }
  // An existing non-directory (or EEXIST on a file) must still fail.
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw InvalidArgument("cannot create directory " + path +
                          ": not a directory");
  }
}

}  // namespace cts::util
