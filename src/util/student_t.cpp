#include "cts/util/student_t.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::util {

double log_gamma(double x) {
  require(x > 0.0, "log_gamma: argument must be positive");
  // Lanczos approximation with g = 7, n = 9 coefficients.
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small arguments.
    return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = coeffs[0];
  for (int i = 1; i < 9; ++i) sum += coeffs[i] / (z + static_cast<double>(i));
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

// Continued-fraction evaluation of the incomplete beta (Lentz's method).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = static_cast<double>(m) * (b - static_cast<double>(m)) * x /
                ((qam + static_cast<double>(m2)) * (a + static_cast<double>(m2)));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + static_cast<double>(m)) * (qab + static_cast<double>(m)) * x /
         ((a + static_cast<double>(m2)) * (qap + static_cast<double>(m2)));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) return h;
  }
  throw NumericalError("regularized_incomplete_beta: no convergence");
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  require(a > 0.0 && b > 0.0,
          "regularized_incomplete_beta: a, b must be positive");
  require(x >= 0.0 && x <= 1.0,
          "regularized_incomplete_beta: x must be in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to stay in the rapidly-converging region.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double dof) {
  require(dof > 0.0, "student_t_cdf: dof must be positive");
  if (t == 0.0) return 0.5;
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double student_t_critical(double confidence, double dof) {
  require(confidence > 0.0 && confidence < 1.0,
          "student_t_critical: confidence must be in (0,1)");
  require(dof > 0.0, "student_t_critical: dof must be positive");
  const double target = 0.5 + confidence / 2.0;
  // The t quantile is bounded by a few multiples of the normal quantile for
  // dof >= 1; expand the bracket geometrically to be safe for tiny dof.
  double hi = 2.0;
  while (student_t_cdf(hi, dof) < target && hi < 1e8) hi *= 2.0;
  return bisect([&](double t) { return student_t_cdf(t, dof) - target; }, 0.0,
                hi, 1e-12);
}

double confidence_half_width(double stddev, std::size_t n, double confidence) {
  if (n < 2) return 0.0;
  const double tcrit =
      student_t_critical(confidence, static_cast<double>(n - 1));
  return tcrit * stddev / std::sqrt(static_cast<double>(n));
}

}  // namespace cts::util
