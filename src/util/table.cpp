#include "cts/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "cts/util/error.hpp"

namespace cts::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "TextTable::add_row: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string format_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace cts::util
