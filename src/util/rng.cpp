#include "cts/util/rng.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      operator()();
    }
  }
  state_ = {s0, s1, s2, s3};
}

Xoshiro256pp Xoshiro256pp::split() noexcept {
  // Derive a child seed from fresh output, then perturb the child through
  // SplitMix64 so parent and child state words share no linear structure.
  const std::uint64_t child_seed = operator()() ^ 0xA3EC647659359ACDULL;
  return Xoshiro256pp(child_seed);
}

double NormalSampler::operator()(Xoshiro256pp& rng) noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = 2.0 * rng.uniform01() - 1.0;
    v = 2.0 * rng.uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * factor;
  has_cached_ = true;
  return u * factor;
}

namespace {

// Inversion by sequential search; fine for mean <= 30.
std::uint64_t poisson_small(Xoshiro256pp& rng, double mean) {
  const double l = std::exp(-mean);
  std::uint64_t k = 0;
  double p = rng.uniform01();
  while (p > l) {
    ++k;
    p *= rng.uniform01();
  }
  return k;
}

double log_factorial(double k) { return std::lgamma(k + 1.0); }

// PTRS transformed rejection (W. Hormann, "The transformed rejection method
// for generating Poisson random variables", 1993).  Valid for mean >= 10.
std::uint64_t poisson_ptrs(Xoshiro256pp& rng, double mean) {
  const double slam = std::sqrt(mean);
  const double loglam = std::log(mean);
  const double b = 0.931 + 2.53 * slam;
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    const double u = rng.uniform01() - 0.5;
    const double v = rng.uniform01();
    const double us = 0.5 - std::abs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= vr) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * loglam - mean - log_factorial(k)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

}  // namespace

std::uint64_t poisson_sample(Xoshiro256pp& rng, double mean) {
  require(mean >= 0.0 && std::isfinite(mean),
          "poisson_sample: mean must be finite and non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) return poisson_small(rng, mean);
  return poisson_ptrs(rng, mean);
}

double gamma_sample(Xoshiro256pp& rng, double shape, double scale) {
  require(shape > 0.0 && scale > 0.0,
          "gamma_sample: shape and scale must be positive");
  if (shape < 1.0) {
    // Boost: G(shape) = G(shape + 1) * U^{1/shape}.
    const double u = rng.uniform01();
    return gamma_sample(rng, shape + 1.0, scale) *
           std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  NormalSampler normal;
  while (true) {
    double x;
    double v;
    do {
      x = normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

}  // namespace cts::util
