#include "cts/util/fft.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::util {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_impl(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  require(is_pow2(n), "fft: length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { fft_impl(data, false); }

void ifft(std::vector<std::complex<double>>& data) { fft_impl(data, true); }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace cts::util
