#include "cts/util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "cts/util/error.hpp"

namespace cts::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;  // ignore positionals
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      const std::string key = token.substr(0, eq);
      require(!key.empty(), "Flags: empty flag name in '--" + token + "'");
      values_[key] = token.substr(eq + 1);
      continue;
    }
    require(!token.empty(), "Flags: bare '--' is not a flag");
    // "--key value" when the next token is not itself a flag; otherwise a
    // boolean "--key".
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[i + 1];
      ++i;
    } else {
      values_[token] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t value = 0;
  // Strict full-string parse (the env_int treatment): "--reps=12abc" would
  // otherwise run 12 replications, and an overflowing value would wrap.
  if (!try_parse_int(it->second, &value)) {
    throw InvalidArgument("Flags: --" + key + " expects an integer, got '" +
                          it->second + "'");
  }
  return value;
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double value = 0.0;
  // Strict full-string parse: std::stod would silently accept "1.5abc" and
  // a threshold typo would gate on the wrong number.
  if (!try_parse_double(it->second, &value)) {
    throw InvalidArgument("Flags: --" + key + " expects a number, got '" +
                          it->second + "'");
  }
  return value;
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Flags::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);  // values_ is sorted, so unknown is too
    }
  }
  return unknown;
}

namespace {

/// Levenshtein distance with early exit once the best achievable distance
/// exceeds `limit` (flag names are short, so the O(a*b) matrix is cheap).
std::size_t edit_distance(const std::string& a, const std::string& b,
                          std::size_t limit) {
  if (a.size() > b.size() + limit || b.size() > a.size() + limit) {
    return limit + 1;
  }
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    std::size_t row_min = curr[0];
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > limit) return limit + 1;
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

}  // namespace

std::string Flags::suggest(const std::string& key,
                           const std::vector<std::string>& known) {
  // A typo plausibly maps back when it is within 2 edits and the edits do
  // not rewrite most of the word (--x is never "close to" --csv).
  const std::size_t limit = 2;
  std::string best;
  std::size_t best_distance = limit + 1;
  for (const std::string& candidate : known) {
    const std::size_t d = edit_distance(key, candidate, limit);
    if (d < best_distance && 2 * d < std::max(key.size(), candidate.size())) {
      best = candidate;
      best_distance = d;
    }
  }
  return best;
}

std::size_t Flags::warn_unknown(std::ostream& os,
                                const std::vector<std::string>& known) const {
  const std::vector<std::string> unknown = unknown_keys(known);
  if (unknown.empty()) return 0;
  for (const auto& key : unknown) {
    os << "[warning: unknown flag --" << key << " ignored";
    const std::string near = suggest(key, known);
    if (!near.empty()) os << " (did you mean --" << near << "?)";
    os << "]\n";
  }
  os << "[known flags:";
  for (const auto& key : known) os << " --" << key;
  os << "]\n";
  return unknown.size();
}

bool try_parse_double(const std::string& text, double* out) noexcept {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  // Overflow is an error; underflow to zero/denormal is an acceptable
  // representation of a tiny input.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return false;
  }
  if (out != nullptr) *out = value;
  return true;
}

bool try_parse_int(const std::string& text, std::int64_t* out) noexcept {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  if (errno == ERANGE) return false;
  if (out != nullptr) *out = value;
  return true;
}

bool env_flag(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return false;
  std::string v = raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  // A set-but-malformed value is a user error, never a silent fallback:
  // "REPRO_REPS=12abc" would otherwise run 12 replications (std::stoll
  // accepts partial parses) and an overflowing value would silently run at
  // default scale.  Require one full-string integer.
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') {
    throw InvalidArgument("env " + name + ": expected an integer, got '" +
                          raw + "'");
  }
  if (errno == ERANGE) {
    throw InvalidArgument("env " + name + ": value '" + raw +
                          "' is out of range for a 64-bit integer");
  }
  return value;
}

}  // namespace cts::util
