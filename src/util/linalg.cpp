#include "cts/util/linalg.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::util {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  require(v.size() == cols_, "Matrix::multiply: dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> solve_dense(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "solve_dense: matrix must be square");
  require(b.size() == n, "solve_dense: rhs size mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: find the largest magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw NumericalError("solve_dense: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a(ri, c) * x[c];
    x[ri] = acc / a(ri, ri);
  }
  return x;
}

std::vector<double> solve_toeplitz(const std::vector<double>& t,
                                   const std::vector<double>& b) {
  const std::size_t n = b.size();
  require(!t.empty() && t.size() >= n,
          "solve_toeplitz: need t[0..n-1] for an n-dimensional system");
  require(n >= 1, "solve_toeplitz: empty system");
  if (std::abs(t[0]) < 1e-300) {
    throw NumericalError("solve_toeplitz: t[0] is zero");
  }

  // Levinson recursion for symmetric Toeplitz T(i,j) = t[|i-j|].
  std::vector<double> x(n, 0.0);   // solution of the growing system
  std::vector<double> f(n, 0.0);   // forward vector
  x[0] = b[0] / t[0];
  f[0] = 1.0 / t[0];

  for (std::size_t k = 1; k < n; ++k) {
    // Error of the forward vector extended by zero.
    double ef = 0.0;
    for (std::size_t i = 0; i < k; ++i) ef += t[k - i] * f[i];
    const double denom = 1.0 - ef * ef;
    if (std::abs(denom) < 1e-300) {
      throw NumericalError("solve_toeplitz: singular leading minor");
    }
    // New forward vector (symmetric case: backward = reversed forward).
    std::vector<double> fnew(k + 1, 0.0);
    for (std::size_t i = 0; i <= k; ++i) {
      const double fi = i < k ? f[i] : 0.0;
      const double fbi = i >= 1 ? f[k - i] : 0.0;  // reversed, shifted
      fnew[i] = (fi - ef * fbi) / denom;
    }
    // Error of the current solution extended by zero.
    double ex = 0.0;
    for (std::size_t i = 0; i < k; ++i) ex += t[k - i] * x[i];
    const double scale = b[k] - ex;
    for (std::size_t i = 0; i <= k; ++i) {
      const double backward = fnew[k - i];  // reversal of fnew
      x[i] += scale * backward;
    }
    for (std::size_t i = 0; i <= k; ++i) f[i] = fnew[i];
  }
  return x;
}

}  // namespace cts::util
