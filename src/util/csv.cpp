#include "cts/util/csv.hpp"

#include <fstream>
#include <sstream>

#include "cts/util/error.hpp"

namespace cts::util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "CsvWriter: need at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "CsvWriter::add_row: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvWriter::write(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << render();
  return static_cast<bool>(file);
}

}  // namespace cts::util
