#include "cts/atm/aal5.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "cts/obs/metrics.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

namespace {

constexpr std::size_t kTrailerBytes = 8;

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t aal5_cells_for_payload(std::uint64_t payload_bytes) {
  const std::uint64_t total = payload_bytes + kTrailerBytes;
  return (total + kPayloadBytes - 1) / kPayloadBytes;
}

std::vector<Cell> aal5_segment(const std::vector<std::uint8_t>& payload,
                               std::uint8_t vpi, std::uint16_t vci) {
  CTS_TRACE_SPAN("atm.aal5.segment");
  util::require(payload.size() <= 65535,
                "aal5_segment: CPCS-PDU payload limited to 65535 bytes");
  const std::uint64_t cells = aal5_cells_for_payload(payload.size());
  const std::size_t pdu_bytes = static_cast<std::size_t>(cells) *
                                kPayloadBytes;
  std::vector<std::uint8_t> pdu(pdu_bytes, 0);
  std::copy(payload.begin(), payload.end(), pdu.begin());
  // Trailer: CPCS-UU (0), CPI (0), length (16 bits), CRC-32 over the whole
  // PDU including the trailer with the CRC field zeroed.
  const std::size_t t = pdu_bytes - kTrailerBytes;
  pdu[t + 0] = 0;  // CPCS-UU
  pdu[t + 1] = 0;  // CPI
  pdu[t + 2] = static_cast<std::uint8_t>((payload.size() >> 8) & 0xFF);
  pdu[t + 3] = static_cast<std::uint8_t>(payload.size() & 0xFF);
  const std::uint32_t crc = crc32_ieee(pdu.data(), pdu_bytes - 4);
  pdu[t + 4] = static_cast<std::uint8_t>((crc >> 24) & 0xFF);
  pdu[t + 5] = static_cast<std::uint8_t>((crc >> 16) & 0xFF);
  pdu[t + 6] = static_cast<std::uint8_t>((crc >> 8) & 0xFF);
  pdu[t + 7] = static_cast<std::uint8_t>(crc & 0xFF);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.add("atm.aal5.segmented_pdus");
  registry.add("atm.aal5.segmented_cells", cells);

  std::vector<Cell> out(static_cast<std::size_t>(cells));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].header.vpi = vpi;
    out[i].header.vci = vci;
    out[i].header.pt = (i + 1 == out.size()) ? 0b001 : 0b000;
    for (std::size_t b = 0; b < kPayloadBytes; ++b) {
      out[i].payload[b] = pdu[i * kPayloadBytes + b];
    }
  }
  return out;
}

namespace {

std::optional<std::vector<std::uint8_t>> reassemble_impl(
    const std::vector<Cell>& cells) {
  if (cells.empty()) return std::nullopt;
  // End-of-PDU marker must be on the last cell and only there.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool aau = (cells[i].header.pt & 0b001) != 0;
    if (aau != (i + 1 == cells.size())) return std::nullopt;
  }
  std::vector<std::uint8_t> pdu;
  pdu.reserve(cells.size() * kPayloadBytes);
  for (const Cell& cell : cells) {
    pdu.insert(pdu.end(), cell.payload.begin(), cell.payload.end());
  }
  const std::size_t t = pdu.size() - kTrailerBytes;
  const std::size_t length = (static_cast<std::size_t>(pdu[t + 2]) << 8) |
                             pdu[t + 3];
  if (length > t) return std::nullopt;  // impossible payload length
  // Pad region between payload and trailer must fit in the PDU.
  const std::uint32_t expected =
      (static_cast<std::uint32_t>(pdu[t + 4]) << 24) |
      (static_cast<std::uint32_t>(pdu[t + 5]) << 16) |
      (static_cast<std::uint32_t>(pdu[t + 6]) << 8) |
      static_cast<std::uint32_t>(pdu[t + 7]);
  if (crc32_ieee(pdu.data(), pdu.size() - 4) != expected) {
    return std::nullopt;
  }
  pdu.resize(length);
  return pdu;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> aal5_reassemble(
    const std::vector<Cell>& cells) {
  CTS_TRACE_SPAN("atm.aal5.reassemble");
  std::optional<std::vector<std::uint8_t>> pdu = reassemble_impl(cells);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.add(pdu ? "atm.aal5.reassembled_pdus"
                   : "atm.aal5.reassembly_errors");
  return pdu;
}

double Aal5Framer::add(double frame_cells) {
  const std::uint64_t payload_cells = static_cast<std::uint64_t>(
      std::llround(std::max(frame_cells, 0.0)));
  if (payload_cells == 0) return 0.0;  // an empty frame sends no PDU
  const std::uint64_t wire_cells =
      aal5_cells_for_payload(payload_cells * kPayloadBytes);
  ++pdus_;
  payload_cells_ += payload_cells;
  wire_cells_ += wire_cells;
  return static_cast<double>(wire_cells);
}

void Aal5Framer::flush(obs::MetricsShard& shard) {
  if (pdus_ == 0) return;
  shard.add("atm.aal5.pdus", pdus_);
  shard.add("atm.aal5.payload_cells", payload_cells_);
  shard.add("atm.aal5.cells", wire_cells_);
  pdus_ = 0;
  payload_cells_ = 0;
  wire_cells_ = 0;
}

}  // namespace cts::atm
