#include "cts/atm/cac_cache.hpp"

#include <cmath>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/effective_bandwidth.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

core::RateResult CacCache::rate_point(const fit::ModelSpec& model,
                                      double bandwidth, double buffer) {
  const RateKey key{model.name, bandwidth, buffer};
  std::size_t hint = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = rates_.find(key);
    if (it != rates_.end()) {
      ++stats_.rate_hits;
      return it->second;
    }
    // Warm start: the cached point with the largest b' <= b on the same
    // (model, c) curve.  Its m* lower-bounds ours (CTS monotonicity in b),
    // so starting the scan there is bit-identical to a cold scan.
    auto bound = rates_.lower_bound(key);
    if (bound != rates_.begin()) {
      --bound;
      if (bound->first.model == key.model &&
          bound->first.bandwidth == key.bandwidth) {
        hint = bound->second.critical_m;
      }
    }
  }
  // The scan runs outside the lock; a concurrent miss on the same key
  // computes the same deterministic value.
  core::RateFunction rate(model.acf, model.mean, model.variance, bandwidth);
  const core::RateResult result = rate.evaluate(buffer, hint);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rate_misses;
    if (hint > 1) ++stats_.warm_starts;
    rates_.emplace(key, result);
    stats_.rate_entries = rates_.size();
  }
  return result;
}

double CacCache::log10_bop(const fit::ModelSpec& model,
                           const CacProblem& problem, std::size_t n) {
  util::require(n >= 1, "CacCache::log10_bop: need at least one connection");
  const double c = problem.capacity_cells_per_frame / static_cast<double>(n);
  if (c <= model.mean) return 0.0;  // unstable: probability ~1, log10 = 0
  const double b = problem.buffer_cells / static_cast<double>(n);
  const core::RateResult r = rate_point(model, c, b);
  return core::br_log10_bop(r, b, n).log10_bop;
}

double CacCache::log10_bop_interpolated(const fit::ModelSpec& model,
                                        const CacProblem& problem,
                                        std::size_t n) {
  util::require(n >= 1,
                "CacCache::log10_bop_interpolated: need at least one "
                "connection");
  const double c = problem.capacity_cells_per_frame / static_cast<double>(n);
  if (c <= model.mean) return 0.0;
  const double b = problem.buffer_cells / static_cast<double>(n);
  const RateKey key{model.name, c, b};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto exact = rates_.find(key);
    if (exact == rates_.end()) {
      // Bracket: the cached neighbours just below and just above b on the
      // same (model, c) curve.
      auto above = rates_.lower_bound(key);
      auto below = above;
      const bool have_above = above != rates_.end() &&
                              above->first.model == key.model &&
                              above->first.bandwidth == key.bandwidth;
      bool have_below = false;
      if (below != rates_.begin()) {
        --below;
        have_below = below->first.model == key.model &&
                     below->first.bandwidth == key.bandwidth;
      }
      if (have_below && have_above) {
        const double b0 = below->first.buffer;
        const double b1 = above->first.buffer;
        const double y0 =
            core::br_log10_bop(below->second, b0, n).log10_bop;
        const double y1 =
            core::br_log10_bop(above->second, b1, n).log10_bop;
        ++stats_.interpolations;
        return y0 + (y1 - y0) * (b - b0) / (b1 - b0);
      }
    }
  }
  return log10_bop(model, problem, n);
}

CacResult CacCache::admissible_br(const fit::ModelSpec& model,
                                  const CacProblem& problem) {
  problem.validate();
  util::require(model.mean > 0.0, "CacCache::admissible_br: bad model");

  // Hard upper bound: stability requires N < C/mu.
  const auto n_max = static_cast<std::size_t>(
      std::floor(problem.capacity_cells_per_frame / model.mean));
  CacResult result;
  if (n_max == 0) return result;
  if (log10_bop(model, problem, 1) > problem.log10_target_clr) {
    return result;  // even one connection misses the QOS target
  }
  // Binary search for the largest feasible N; BOP is monotone increasing
  // in N on this fixed link.
  std::size_t lo = 1;      // feasible
  std::size_t hi = n_max;  // possibly infeasible
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (log10_bop(model, problem, mid) <= problem.log10_target_clr) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  result.admissible = lo;
  // The search evaluated N = lo on its way here (lo is only ever assigned
  // from an evaluated, feasible probe), so this lookup is a guaranteed
  // cache hit -- the "reuse, don't re-scan" contract of the admission
  // service.
  result.log10_bop_at_max = log10_bop(model, problem, lo);
  return result;
}

CacResult CacCache::admissible_eb(const fit::ModelSpec& model,
                                  const CacProblem& problem) {
  problem.validate();
  util::require(problem.buffer_cells > 0.0,
                "CacCache::admissible_eb: EB needs a positive buffer");
  EbEntry entry;
  bool cached = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = eb_.find(model.name);
    if (it != eb_.end()) {
      ++stats_.eb_hits;
      entry = it->second;
      cached = true;
    }
  }
  if (!cached) {
    try {
      entry.variance_rate =
          core::asymptotic_variance_rate(*model.acf, model.variance);
      entry.converged = true;
    } catch (const util::NumericalError& e) {
      entry.converged = false;
      entry.error = e.what();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.eb_misses;
    eb_.emplace(model.name, entry);
  }
  if (!entry.converged) throw util::NumericalError(entry.error);
  const double delta = core::decay_rate_for_target(problem.log10_target_clr,
                                                   problem.buffer_cells);
  const double eb =
      core::effective_bandwidth(model.mean, entry.variance_rate, delta);
  CacResult result;
  result.admissible = static_cast<std::size_t>(
      std::floor(problem.capacity_cells_per_frame / eb));
  if (result.admissible > 0) {
    result.log10_bop_at_max = -delta * problem.buffer_cells / std::log(10.0);
  }
  return result;
}

CacCache::Stats CacCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CacCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rates_.clear();
  eb_.clear();
  stats_.rate_entries = 0;
}

}  // namespace cts::atm
