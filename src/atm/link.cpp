#include "cts/atm/link.hpp"

#include "cts/atm/cell.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

Link::Link(double bits_per_second) : bits_per_second_(bits_per_second) {
  util::require(bits_per_second > 0.0, "Link: rate must be > 0");
}

double Link::cells_per_second() const noexcept {
  return bits_per_second_ / (static_cast<double>(kCellBytes) * 8.0);
}

double Link::cells_per_frame(double Ts) const {
  util::require(Ts > 0.0, "Link::cells_per_frame: Ts must be > 0");
  return cells_per_second() * Ts;
}

double Link::buffer_delay_ms(double buffer_cells) const {
  util::require(buffer_cells >= 0.0,
                "Link::buffer_delay_ms: buffer must be >= 0");
  return buffer_cells / cells_per_second() * 1000.0;
}

double Link::buffer_cells_for_delay_ms(double ms) const {
  util::require(ms >= 0.0,
                "Link::buffer_cells_for_delay_ms: delay must be >= 0");
  return ms / 1000.0 * cells_per_second();
}

double Link::cell_time() const noexcept { return 1.0 / cells_per_second(); }

}  // namespace cts::atm
