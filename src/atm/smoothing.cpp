#include "cts/atm/smoothing.hpp"

#include <algorithm>

#include "cts/atm/cell.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

std::vector<double> smoothing_schedule(std::uint64_t cells, double Ts) {
  CTS_TRACE_SPAN("atm.smoothing.schedule");
  util::require(Ts > 0.0, "smoothing_schedule: Ts must be > 0");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.add("atm.smoothing.schedules");
  registry.add("atm.smoothing.scheduled_cells", cells);
  std::vector<double> times;
  times.reserve(cells);
  for (std::uint64_t j = 0; j < cells; ++j) {
    times.push_back((static_cast<double>(j) + 0.5) * Ts /
                    static_cast<double>(cells));
  }
  return times;
}

double smoothing_gap(std::uint64_t cells, double Ts) {
  util::require(Ts > 0.0, "smoothing_gap: Ts must be > 0");
  return cells == 0 ? 0.0 : Ts / static_cast<double>(cells);
}

std::uint64_t cells_for_payload(std::uint64_t payload_bytes) {
  return (payload_bytes + kPayloadBytes - 1) / kPayloadBytes;
}

FrameSmoother::FrameSmoother(std::size_t window)
    : window_(std::max<std::size_t>(window, 1)), ring_(window_, 0.0) {}

double FrameSmoother::push(double frame_cells) {
  ++frames_;
  cells_in_ += frame_cells;
  if (window_ == 1) {
    cells_out_ += frame_cells;
    return frame_cells;
  }
  ring_[pos_] = frame_cells;
  pos_ = (pos_ + 1) % window_;
  if (filled_ < window_) ++filled_;
  // Direct summation over the (small) window: no running-sum drift, so
  // the output is bit-identical however the frames were batched.
  double sum = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) sum += ring_[i];
  const double out = sum / static_cast<double>(filled_);
  cells_out_ += out;
  return out;
}

void FrameSmoother::flush(obs::MetricsShard& shard) {
  if (frames_ == 0) return;
  shard.add("atm.smoothing.frames", frames_);
  shard.add_sum("atm.smoothing.cells_in", cells_in_);
  shard.add_sum("atm.smoothing.cells_out", cells_out_);
  frames_ = 0;
  cells_in_ = 0.0;
  cells_out_ = 0.0;
}

}  // namespace cts::atm
