#include "cts/atm/smoothing.hpp"

#include "cts/atm/cell.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

std::vector<double> smoothing_schedule(std::uint64_t cells, double Ts) {
  util::require(Ts > 0.0, "smoothing_schedule: Ts must be > 0");
  std::vector<double> times;
  times.reserve(cells);
  for (std::uint64_t j = 0; j < cells; ++j) {
    times.push_back((static_cast<double>(j) + 0.5) * Ts /
                    static_cast<double>(cells));
  }
  return times;
}

double smoothing_gap(std::uint64_t cells, double Ts) {
  util::require(Ts > 0.0, "smoothing_gap: Ts must be > 0");
  return cells == 0 ? 0.0 : Ts / static_cast<double>(cells);
}

std::uint64_t cells_for_payload(std::uint64_t payload_bytes) {
  return (payload_bytes + kPayloadBytes - 1) / kPayloadBytes;
}

}  // namespace cts::atm
