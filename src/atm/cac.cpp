#include "cts/atm/cac.hpp"

#include <cmath>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/effective_bandwidth.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

void CacProblem::validate() const {
  util::require(capacity_cells_per_frame > 0.0,
                "CacProblem: capacity must be > 0");
  util::require(buffer_cells >= 0.0, "CacProblem: buffer must be >= 0");
  util::require(log10_target_clr < 0.0,
                "CacProblem: target CLR must be below 1 (log10 < 0)");
}

namespace {

/// log10 BOP for N connections of `model` on the problem's link, or +inf
/// when N is infeasible (c <= mu).
double log10_bop_for_n(const fit::ModelSpec& model, const CacProblem& problem,
                       std::size_t n) {
  const double c =
      problem.capacity_cells_per_frame / static_cast<double>(n);
  if (c <= model.mean) return 0.0;  // unstable: probability ~1
  const double b = problem.buffer_cells / static_cast<double>(n);
  core::RateFunction rate(model.acf, model.mean, model.variance, c);
  return core::br_log10_bop(rate, b, n).log10_bop;
}

}  // namespace

CacResult admissible_connections_br(const fit::ModelSpec& model,
                                    const CacProblem& problem) {
  problem.validate();
  util::require(model.mean > 0.0, "admissible_connections_br: bad model");

  // Hard upper bound: stability requires N < C/mu.
  const auto n_max = static_cast<std::size_t>(
      std::floor(problem.capacity_cells_per_frame / model.mean));
  CacResult result;
  if (n_max == 0) return result;
  if (log10_bop_for_n(model, problem, 1) > problem.log10_target_clr) {
    return result;  // even one connection misses the QOS target
  }
  // Binary search for the largest feasible N; BOP is monotone increasing
  // in N on this fixed link.
  std::size_t lo = 1;        // feasible
  std::size_t hi = n_max;    // possibly infeasible
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (log10_bop_for_n(model, problem, mid) <= problem.log10_target_clr) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  result.admissible = lo;
  result.log10_bop_at_max = log10_bop_for_n(model, problem, lo);
  return result;
}

CacResult admissible_connections_eb(const fit::ModelSpec& model,
                                    const CacProblem& problem) {
  problem.validate();
  util::require(problem.buffer_cells > 0.0,
                "admissible_connections_eb: EB needs a positive buffer");
  const double v_rate =
      core::asymptotic_variance_rate(*model.acf, model.variance);
  const double delta = core::decay_rate_for_target(problem.log10_target_clr,
                                                   problem.buffer_cells);
  const double eb = core::effective_bandwidth(model.mean, v_rate, delta);
  CacResult result;
  result.admissible = static_cast<std::size_t>(
      std::floor(problem.capacity_cells_per_frame / eb));
  if (result.admissible > 0) {
    result.log10_bop_at_max =
        -delta * problem.buffer_cells / std::log(10.0);
  }
  return result;
}

}  // namespace cts::atm
