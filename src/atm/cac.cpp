#include "cts/atm/cac.hpp"

#include <cmath>

#include "cts/atm/cac_cache.hpp"
#include "cts/core/effective_bandwidth.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

void CacProblem::validate() const {
  util::require(capacity_cells_per_frame > 0.0,
                "CacProblem: capacity must be > 0");
  util::require(buffer_cells >= 0.0, "CacProblem: buffer must be >= 0");
  util::require(log10_target_clr < 0.0,
                "CacProblem: target CLR must be below 1 (log10 < 0)");
}

CacResult admissible_connections_br(const fit::ModelSpec& model,
                                    const CacProblem& problem) {
  // One-shot convenience wrapper over the memoizing path: the binary
  // search probes distinct N (hence distinct per-connection operating
  // points), and the final BOP report reuses the cached probe for the
  // answering N instead of re-running its CTS scan.  An infeasible N
  // (c <= mean) reports log10 BOP = 0.0 -- log10 of probability ~1, NOT
  // +inf: the log10 scale is clamped at certainty.
  CacCache cache;
  return cache.admissible_br(model, problem);
}

CacResult admissible_connections_eb(const fit::ModelSpec& model,
                                    const CacProblem& problem) {
  problem.validate();
  util::require(problem.buffer_cells > 0.0,
                "admissible_connections_eb: EB needs a positive buffer");
  const double v_rate =
      core::asymptotic_variance_rate(*model.acf, model.variance);
  const double delta = core::decay_rate_for_target(problem.log10_target_clr,
                                                   problem.buffer_cells);
  const double eb = core::effective_bandwidth(model.mean, v_rate, delta);
  CacResult result;
  result.admissible = static_cast<std::size_t>(
      std::floor(problem.capacity_cells_per_frame / eb));
  if (result.admissible > 0) {
    result.log10_bop_at_max =
        -delta * problem.buffer_cells / std::log(10.0);
  }
  return result;
}

}  // namespace cts::atm
