#include "cts/atm/priority_buffer.hpp"

#include <algorithm>

#include "cts/obs/metrics.hpp"
#include "cts/obs/trace.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

void PrioritySharingConfig::validate() const {
  util::require(capacity_cells > 0.0,
                "PrioritySharingConfig: capacity must be > 0");
  util::require(buffer_cells >= 0.0,
                "PrioritySharingConfig: buffer must be >= 0");
  util::require(threshold_cells >= 0.0 &&
                    threshold_cells <= buffer_cells,
                "PrioritySharingConfig: need 0 <= threshold <= buffer");
}

// Exact within-frame fluid dynamics for the two-priority policy.
//
// Rates are constant over the frame (deterministic smoothing): high fluid
// at rate `ah`, low fluid at rate `al`, service at rate `c` (all in
// cells/frame over t in [0,1]).  Low fluid is blocked while q >= S, high
// fluid while q >= B.  Piecewise-linear evolution with sliding modes at S
// (low partially admitted) and B (high partially admitted); at most a few
// segments per frame.
PriorityFrameOutcome evolve_priority_frame(double q0, double ah, double al,
                                           double c, double s, double b) {
  PriorityFrameOutcome out;
  double q = std::clamp(q0, 0.0, b);
  double t = 0.0;
  const double r_low = ah + al - c;  // slope while q < s (everything in)
  const double r_high = ah - c;      // slope while s <= q <= b (low dropped)

  // With constant rates the trajectory has at most a few linear segments;
  // each loop iteration completes one segment or finishes the frame.  All
  // boundary decisions are explicit (no epsilon nudges), so every
  // iteration makes strict progress in t.
  for (int iter = 0; iter < 8 && t < 1.0; ++iter) {
    const double remaining = 1.0 - t;
    if (q < s) {
      // Region LOW: everything admitted.
      if (r_low > 0.0) {
        const double dt = std::min(remaining, (s - q) / r_low);
        q += r_low * dt;
        t += dt;
        continue;  // may reach the S boundary
      }
      if (r_low < 0.0) {
        const double dt = std::min(remaining, q / (-r_low));
        q += r_low * dt;
        t += dt;
        if (t < 1.0) {  // hit empty; stays empty under constant rates
          q = 0.0;
          t = 1.0;
        }
        continue;
      }
      t = 1.0;  // parked below S; nothing lost
      break;
    }
    if (q <= s) {  // exactly at the S boundary
      if (r_high > 0.0) {
        // Pushes up into the HIGH region: handled below as q in (s, b].
      } else if (r_low > 0.0) {
        // Sliding mode at S: queue pinned; low admitted at rate (c - ah)
        // (which is >= 0 here because r_high <= 0), remainder lost.
        out.low_lost += (al - (c - ah)) * remaining;
        t = 1.0;
        q = s;
        break;
      } else {
        // Drains into the LOW region: one LOW segment from q = s.
        if (r_low < 0.0) {
          const double dt = std::min(remaining, q / (-r_low));
          q += r_low * dt;
          t += dt;
          if (t < 1.0) {
            q = 0.0;
            t = 1.0;
          }
        } else {
          t = 1.0;  // r_low == 0: parked at S, nothing lost
        }
        continue;
      }
    }
    // Region HIGH: s <= q <= b, low fluid dropped at rate al.
    if (q >= b && r_high >= 0.0) {
      // Stuck full: excess high lost too.
      out.high_lost += r_high * remaining;
      out.low_lost += al * remaining;
      t = 1.0;
      q = b;
      break;
    }
    if (r_high > 0.0) {
      const double dt = std::min(remaining, (b - q) / r_high);
      out.low_lost += al * dt;
      q += r_high * dt;
      t += dt;
      continue;  // may reach B; the stuck branch finishes the frame
    }
    if (r_high < 0.0) {
      const double dt = std::min(remaining, (q - s) / (-r_high));
      out.low_lost += al * dt;
      q += r_high * dt;
      t += dt;
      continue;  // may reach S; boundary logic decides next
    }
    // r_high == 0: parked in the HIGH region; low lost for the rest.
    out.low_lost += al * remaining;
    t = 1.0;
    break;
  }
  out.q = std::clamp(q, 0.0, b);
  return out;
}

PrioritySharingResult run_partial_buffer_sharing(
    std::vector<std::unique_ptr<proc::FrameSource>>& high_sources,
    std::vector<std::unique_ptr<proc::FrameSource>>& low_sources,
    const PrioritySharingConfig& config) {
  CTS_TRACE_SPAN("atm.priority.run");
  config.validate();
  util::require(!high_sources.empty() || !low_sources.empty(),
                "run_partial_buffer_sharing: no sources");

  PrioritySharingResult result;
  result.frames = config.frames;
  double w = 0.0;

  const std::uint64_t total = config.warmup_frames + config.frames;
  for (std::uint64_t n = 0; n < total; ++n) {
    double high = 0.0;
    for (auto& s : high_sources) high += std::max(s->next_frame(), 0.0);
    double low = 0.0;
    for (auto& s : low_sources) low += std::max(s->next_frame(), 0.0);

    const PriorityFrameOutcome outcome =
        evolve_priority_frame(w, high, low, config.capacity_cells,
                              config.threshold_cells, config.buffer_cells);
    w = outcome.q;
    if (n >= config.warmup_frames) {
      result.high_arrived += high;
      result.low_arrived += low;
      result.high_lost += outcome.high_lost;
      result.low_lost += outcome.low_lost;
    }
  }

  // One registry merge per run (never per frame), matching the
  // accumulate-then-reduce idiom of the obs layer.
  obs::MetricsShard shard;
  record_priority_sharing(result, shard);
  obs::MetricsRegistry::global().merge(shard);
  return result;
}

void record_priority_sharing(const PrioritySharingResult& result,
                             obs::MetricsShard& shard) {
  shard.add("atm.priority.frames", result.frames);
  shard.add_sum("atm.priority.high_arrived", result.high_arrived);
  shard.add_sum("atm.priority.high_lost", result.high_lost);
  shard.add_sum("atm.priority.low_arrived", result.low_arrived);
  shard.add_sum("atm.priority.low_lost", result.low_lost);
}

}  // namespace cts::atm
