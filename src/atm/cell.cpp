#include "cts/atm/cell.hpp"

#include "cts/util/error.hpp"

namespace cts::atm {

void CellHeader::validate() const {
  util::require(gfc <= 0x0F, "CellHeader: GFC is 4 bits");
  util::require(pt <= 0x07, "CellHeader: PT is 3 bits");
  // vpi is naturally bounded by uint8 for UNI; vci by uint16.
}

std::uint8_t hec_crc8(const std::uint8_t* data, std::size_t len) {
  // Bitwise CRC with generator 0x07 (x^8 + x^2 + x + 1), MSB-first.
  std::uint8_t crc = 0;
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint8_t>((crc & 0x80) ? (crc << 1) ^ 0x07
                                                   : (crc << 1));
    }
  }
  return static_cast<std::uint8_t>(crc ^ 0x55);  // ITU I.432 coset
}

std::array<std::uint8_t, kHeaderBytes> encode_header(const CellHeader& h) {
  h.validate();
  std::array<std::uint8_t, kHeaderBytes> bytes{};
  bytes[0] = static_cast<std::uint8_t>((h.gfc << 4) | (h.vpi >> 4));
  bytes[1] = static_cast<std::uint8_t>(((h.vpi & 0x0F) << 4) |
                                       ((h.vci >> 12) & 0x0F));
  bytes[2] = static_cast<std::uint8_t>((h.vci >> 4) & 0xFF);
  bytes[3] = static_cast<std::uint8_t>(((h.vci & 0x0F) << 4) | (h.pt << 1) |
                                       (h.clp ? 1 : 0));
  bytes[4] = hec_crc8(bytes.data(), 4);
  return bytes;
}

std::optional<CellHeader> decode_header(
    const std::array<std::uint8_t, kHeaderBytes>& bytes) {
  if (hec_crc8(bytes.data(), 4) != bytes[4]) return std::nullopt;
  CellHeader h;
  h.gfc = static_cast<std::uint8_t>(bytes[0] >> 4);
  h.vpi = static_cast<std::uint8_t>(((bytes[0] & 0x0F) << 4) |
                                    (bytes[1] >> 4));
  h.vci = static_cast<std::uint16_t>(((bytes[1] & 0x0F) << 12) |
                                     (bytes[2] << 4) | (bytes[3] >> 4));
  h.pt = static_cast<std::uint8_t>((bytes[3] >> 1) & 0x07);
  h.clp = (bytes[3] & 0x01) != 0;
  return h;
}

std::array<std::uint8_t, kCellBytes> encode_cell(const Cell& cell) {
  std::array<std::uint8_t, kCellBytes> bytes{};
  const auto header = encode_header(cell.header);
  for (std::size_t i = 0; i < kHeaderBytes; ++i) bytes[i] = header[i];
  for (std::size_t i = 0; i < kPayloadBytes; ++i) {
    bytes[kHeaderBytes + i] = cell.payload[i];
  }
  return bytes;
}

std::optional<Cell> decode_cell(
    const std::array<std::uint8_t, kCellBytes>& bytes) {
  std::array<std::uint8_t, kHeaderBytes> header_bytes{};
  for (std::size_t i = 0; i < kHeaderBytes; ++i) header_bytes[i] = bytes[i];
  const auto header = decode_header(header_bytes);
  if (!header) return std::nullopt;
  Cell cell;
  cell.header = *header;
  for (std::size_t i = 0; i < kPayloadBytes; ++i) {
    cell.payload[i] = bytes[kHeaderBytes + i];
  }
  return cell;
}

}  // namespace cts::atm
