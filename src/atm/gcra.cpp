#include "cts/atm/gcra.hpp"

#include <algorithm>
#include <cmath>

#include "cts/atm/smoothing.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/util/error.hpp"

namespace cts::atm {

Gcra::Gcra(double increment, double limit)
    : increment_(increment), limit_(limit) {
  util::require(increment > 0.0, "Gcra: increment must be > 0");
  util::require(limit >= 0.0, "Gcra: limit must be >= 0");
}

bool Gcra::conforms(double t) {
  if (first_) {
    first_ = false;
    tat_ = t + increment_;
    return true;
  }
  if (t < tat_ - limit_) {
    return false;  // too early: non-conforming, state unchanged
  }
  tat_ = std::max(tat_, t) + increment_;
  return true;
}

void Gcra::reset() {
  tat_ = 0.0;
  first_ = true;
}

DualLeakyBucket::DualLeakyBucket(double peak_rate, double cdv_tolerance,
                                 double sustainable_rate,
                                 double burst_tolerance)
    : peak_(1.0 / peak_rate, cdv_tolerance),
      sustainable_(1.0 / sustainable_rate, burst_tolerance) {
  util::require(peak_rate >= sustainable_rate,
                "DualLeakyBucket: PCR must be >= SCR");
}

bool DualLeakyBucket::conforms(double t) {
  // Conformance requires both buckets; evaluate both so a cell rejected by
  // one does not advance the other asymmetrically.  Per I.371, a
  // non-conforming cell advances neither bucket: test first, then commit.
  const bool peak_early = [&] {
    Gcra probe = peak_;
    return !probe.conforms(t);
  }();
  const bool scr_early = [&] {
    Gcra probe = sustainable_;
    return !probe.conforms(t);
  }();
  if (peak_early || scr_early) return false;
  peak_.conforms(t);
  sustainable_.conforms(t);
  return true;
}

void DualLeakyBucket::reset() {
  peak_.reset();
  sustainable_.reset();
}

FramePolicer::FramePolicer(double sustainable_rate, double burst_tolerance,
                           double Ts)
    : Ts_(Ts) {
  util::require(sustainable_rate > 0.0,
                "FramePolicer: sustainable rate must be > 0");
  util::require(Ts > 0.0, "FramePolicer: Ts must be > 0");
  single_.emplace(1.0 / sustainable_rate, burst_tolerance);
}

FramePolicer::FramePolicer(double peak_rate, double cdv_tolerance,
                           double sustainable_rate, double burst_tolerance,
                           double Ts)
    : Ts_(Ts) {
  util::require(Ts > 0.0, "FramePolicer: Ts must be > 0");
  dual_.emplace(peak_rate, cdv_tolerance, sustainable_rate, burst_tolerance);
}

double FramePolicer::police(std::uint64_t frame_index, double frame_cells) {
  const std::uint64_t cells = static_cast<std::uint64_t>(
      std::llround(std::max(frame_cells, 0.0)));
  if (cells == 0) return 0.0;
  const double t0 = static_cast<double>(frame_index) * Ts_;
  const double gap = smoothing_gap(cells, Ts_);
  std::uint64_t conforming = 0;
  for (std::uint64_t j = 0; j < cells; ++j) {
    const double t = t0 + (static_cast<double>(j) + 0.5) * gap;
    const bool ok = single_ ? single_->conforms(t) : dual_->conforms(t);
    if (ok) ++conforming;
  }
  tally_.cells += cells;
  tally_.nonconforming += cells - conforming;
  return static_cast<double>(conforming);
}

void FramePolicer::flush(obs::MetricsShard& shard) {
  if (tally_.cells == 0) return;
  shard.add("atm.gcra.cells", tally_.cells);
  shard.add("atm.gcra.nonconforming", tally_.nonconforming);
  tally_ = PolicingResult{};
}

double DualLeakyBucket::max_burst_size() const {
  const double t_scr = sustainable_.increment();
  const double t_pcr = peak_.increment();
  util::require(t_scr > t_pcr,
                "DualLeakyBucket: MBS undefined when SCR == PCR");
  return 1.0 + std::floor(sustainable_.limit() / (t_scr - t_pcr));
}

}  // namespace cts::atm
