#include "cts/fit/tail_fit.hpp"

#include <cmath>
#include <vector>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::fit {

TailFit fit_lrd_tail(const std::function<double(std::size_t)>& target_acf,
                     double weight, std::size_t lag_lo, std::size_t lag_hi,
                     double alpha_lo, double alpha_hi) {
  util::require(weight > 0.0 && weight <= 1.0,
                "fit_lrd_tail: weight must be in (0,1]");
  util::require(lag_lo >= 1 && lag_hi > lag_lo,
                "fit_lrd_tail: need lag_lo >= 1 and lag_hi > lag_lo");
  util::require(alpha_lo > 0.0 && alpha_hi < 1.0 && alpha_lo < alpha_hi,
                "fit_lrd_tail: alpha bounds must satisfy 0 < lo < hi < 1");

  // Geometric lag grid so decades of the tail are weighted equally.
  std::vector<std::size_t> lags;
  double x = static_cast<double>(lag_lo);
  while (x <= static_cast<double>(lag_hi)) {
    const auto lag = static_cast<std::size_t>(std::llround(x));
    if (lags.empty() || lag > lags.back()) lags.push_back(lag);
    x *= 1.15;
  }

  std::vector<double> log_target(lags.size());
  for (std::size_t i = 0; i < lags.size(); ++i) {
    const double r = target_acf(lags[i]);
    util::require(r > 0.0,
                  "fit_lrd_tail: target ACF must be positive on the window");
    log_target[i] = std::log(r);
  }

  auto objective = [&](double alpha) {
    double acc = 0.0;
    for (std::size_t i = 0; i < lags.size(); ++i) {
      const double model =
          weight * 0.5 *
          util::second_central_difference_pow(lags[i], alpha + 1.0);
      const double d = std::log(model) - log_target[i];
      acc += d * d;
    }
    return acc;
  };

  // Golden-section search (the objective is smooth and unimodal in alpha on
  // any window where the target is a clean power law).
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = alpha_lo;
  double hi = alpha_hi;
  double x1 = hi - gr * (hi - lo);
  double x2 = lo + gr * (hi - lo);
  double f1 = objective(x1);
  double f2 = objective(x2);
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-10; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - gr * (hi - lo);
      f1 = objective(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + gr * (hi - lo);
      f2 = objective(x2);
    }
  }
  TailFit fit;
  fit.alpha = 0.5 * (lo + hi);
  fit.hurst = (fit.alpha + 1.0) / 2.0;
  fit.objective = objective(fit.alpha);
  return fit;
}

}  // namespace cts::fit
