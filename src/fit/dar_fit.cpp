#include "cts/fit/dar_fit.hpp"

#include <cmath>

#include "cts/core/acf_model.hpp"
#include "cts/util/error.hpp"
#include "cts/util/linalg.hpp"

namespace cts::fit {

DarFit fit_dar(const std::vector<double>& target_acf) {
  util::require(!target_acf.empty(), "fit_dar: need at least one target lag");
  const std::size_t p = target_acf.size();
  for (const double r : target_acf) {
    util::require(std::abs(r) < 1.0, "fit_dar: |r(k)| must be < 1");
  }

  // Toeplitz system T c = r with T(i,j) = r(|i-j|), r(0) = 1.
  std::vector<double> t(p, 0.0);
  t[0] = 1.0;
  for (std::size_t i = 1; i < p; ++i) t[i] = target_acf[i - 1];
  const std::vector<double> c = util::solve_toeplitz(t, target_acf);

  DarFit fit;
  fit.rho = 0.0;
  for (const double ci : c) fit.rho += ci;
  util::require(fit.rho >= 0.0 && fit.rho < 1.0,
                "fit_dar: targets not DAR-representable (rho outside [0,1))");
  fit.lag_probs.resize(p);
  if (fit.rho == 0.0) {
    // Zero correlations: any lag distribution works; pick lag 1.
    fit.lag_probs.assign(p, 0.0);
    fit.lag_probs[0] = 1.0;
  } else {
    for (std::size_t i = 0; i < p; ++i) {
      const double a = c[i] / fit.rho;
      util::require(a >= -1e-9,
                    "fit_dar: targets not DAR-representable (a_i < 0)");
      fit.lag_probs[i] = std::max(a, 0.0);
    }
    // Renormalise away the clamping slack.
    double sum = 0.0;
    for (const double a : fit.lag_probs) sum += a;
    for (auto& a : fit.lag_probs) a /= sum;
  }

  // Verify the fit through the exact DAR ACF recursion.
  const core::DarAcf model(fit.rho, fit.lag_probs);
  double residual = 0.0;
  for (std::size_t k = 1; k <= p; ++k) {
    residual = std::max(residual, std::abs(model.at(k) - target_acf[k - 1]));
  }
  fit.residual = residual;
  return fit;
}

proc::DarParams fit_dar_params(const std::vector<double>& target_acf,
                               double mean, double variance) {
  const DarFit fit = fit_dar(target_acf);
  proc::DarParams params;
  params.rho = fit.rho;
  params.lag_probs = fit.lag_probs;
  params.mean = mean;
  params.variance = variance;
  params.validate();
  return params;
}

}  // namespace cts::fit
