#include "cts/fit/fbndp_calibration.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::fit {

void FbndpTarget::validate() const {
  util::require(mean > 0.0, "FbndpTarget: mean must be > 0");
  util::require(variance > mean,
                "FbndpTarget: variance must exceed mean (FBNDP counts are "
                "over-dispersed)");
  util::require(alpha > 0.0 && alpha < 1.0,
                "FbndpTarget: alpha must be in (0,1)");
  util::require(M >= 1, "FbndpTarget: M must be >= 1");
  util::require(Ts > 0.0, "FbndpTarget: Ts must be > 0");
}

double implied_fractal_onset_time(const FbndpTarget& target) {
  target.validate();
  // sigma^2 = [1 + (Ts/T0)^alpha] mu  =>  T0 = Ts (sigma^2/mu - 1)^{-1/alpha}.
  const double dispersion_excess = target.variance / target.mean - 1.0;
  return target.Ts * std::pow(dispersion_excess, -1.0 / target.alpha);
}

proc::FbndpParams calibrate_fbndp(const FbndpTarget& target) {
  target.validate();
  proc::FbndpParams params;
  params.alpha = target.alpha;
  params.M = target.M;
  params.Ts = target.Ts;
  const double lambda = target.mean / target.Ts;
  params.R = 2.0 * lambda / static_cast<double>(target.M);
  // Invert the closed-form T0 for A:
  //   T0^alpha = F / R * A^{alpha-1},
  //   F = alpha(alpha+1)(2-alpha)^{-1} [(1-alpha) e^{2-alpha} + 1],
  // so A = (T0^alpha R / F)^{1/(alpha-1)} (negative exponent).
  const double t0 = implied_fractal_onset_time(target);
  const double a = target.alpha;
  const double f = a * (a + 1.0) / (2.0 - a) *
                   ((1.0 - a) * std::exp(2.0 - a) + 1.0);
  params.A =
      std::pow(std::pow(t0, a) * params.R / f, 1.0 / (a - 1.0));
  params.validate();

  // Round-trip check: the calibrated parameters must reproduce the target
  // moments to numerical precision.
  const double mu_err = std::abs(params.frame_mean() - target.mean);
  const double var_err = std::abs(params.frame_variance() - target.variance);
  if (mu_err > 1e-6 * target.mean || var_err > 1e-6 * target.variance) {
    throw util::NumericalError("calibrate_fbndp: round-trip check failed");
  }
  return params;
}

}  // namespace cts::fit
