#include "cts/fit/model_zoo.hpp"

#include <cmath>
#include <cstdio>

#include "cts/fit/fbndp_calibration.hpp"
#include "cts/fit/tail_fit.hpp"
#include "cts/fit/vv_calibration.hpp"
#include "cts/proc/ar1.hpp"
#include "cts/proc/dar.hpp"
#include "cts/proc/fbndp.hpp"
#include "cts/proc/gaussian_acf_source.hpp"
#include "cts/proc/marginal.hpp"
#include "cts/proc/mginf.hpp"
#include "cts/proc/superposition.hpp"
#include "cts/util/error.hpp"
#include "cts/util/flags.hpp"
#include "cts/util/rng.hpp"

namespace cts::fit {

namespace {

/// Compact number formatting for model names ("0.67", "0.975").
std::string util_name_number(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return buf;
}

/// Moments of the FBNDP component of a mixture with variance ratio v:
/// sigma_X^2 = v/(v+1) * sigma^2, and mu_X chosen to keep the index of
/// dispersion sigma_X^2/mu_X equal to the total sigma^2/mu -- the paper's
/// convention, which makes T_0 identical across the V^v family (3.48 ms).
struct MixtureSplit {
  double mean_x = 0.0;
  double var_x = 0.0;
  double mean_y = 0.0;
  double var_y = 0.0;
};

MixtureSplit split_moments(double v, const PaperConstants& k) {
  MixtureSplit s;
  s.var_x = k.variance * v / (v + 1.0);
  const double dispersion = k.variance / k.mean;  // 10 for the paper values
  s.mean_x = s.var_x / dispersion;
  s.mean_y = k.mean - s.mean_x;
  s.var_y = k.variance - s.var_x;
  util::require(s.mean_y > 0.0 && s.var_y > 0.0,
                "split_moments: infeasible variance ratio v");
  return s;
}

/// Builds the analytic mixture ACF of eq. (5).
std::shared_ptr<const core::AcfModel> mixture_acf(double v, double alpha,
                                                  double weight, double a,
                                                  const std::string& name) {
  auto lrd = std::make_shared<core::ExactLrdAcf>((alpha + 1.0) / 2.0, weight);
  auto geo = std::make_shared<core::GeometricAcf>(a);
  std::vector<std::shared_ptr<const core::AcfModel>> parts{lrd, geo};
  std::vector<double> weights{v / (v + 1.0), 1.0 / (v + 1.0)};
  return std::make_shared<core::MixtureAcf>(std::move(parts),
                                            std::move(weights), name);
}

/// Builds the simulation factory for an FBNDP + DAR(1) mixture.
std::function<std::unique_ptr<proc::FrameSource>(std::uint64_t)>
mixture_factory(const proc::FbndpParams& fbndp, const proc::DarParams& dar,
                std::string name) {
  return [fbndp, dar, name = std::move(name)](std::uint64_t seed) {
    util::SplitMix64 seeder(seed);
    std::vector<std::unique_ptr<proc::FrameSource>> parts;
    parts.push_back(std::make_unique<proc::FbndpSource>(fbndp, seeder.next()));
    parts.push_back(std::make_unique<proc::DarSource>(dar, seeder.next()));
    return std::make_unique<proc::SuperposedSource>(std::move(parts), name);
  };
}

/// DAR(1) coefficient for a V^v member: pins the mixture first lag to the
/// v = 1 anchor row with a = anchor_a.
double vv_dar_coefficient(double v, const PaperConstants& k) {
  const double weight = 1.0 - k.mean / k.variance;  // = 1 - mu_X/sigma_X^2
  const double rx1 = fbndp_first_lag(weight, k.alpha_v);
  const double anchor_r1 = 0.5 * rx1 + 0.5 * k.anchor_a;  // v = 1 anchor
  return calibrate_dar1_coefficient(v, rx1, anchor_r1);
}

}  // namespace

ModelSpec make_vv(double v, const PaperConstants& constants) {
  util::require(v > 0.0, "make_vv: v must be > 0");
  const MixtureSplit split = split_moments(v, constants);
  const double weight = 1.0 - split.mean_x / split.var_x;
  const double a = vv_dar_coefficient(v, constants);

  FbndpTarget target;
  target.mean = split.mean_x;
  target.variance = split.var_x;
  target.alpha = constants.alpha_v;
  target.M = constants.M_mixture;
  target.Ts = constants.Ts;
  const proc::FbndpParams fbndp = calibrate_fbndp(target);

  proc::DarParams dar;
  dar.rho = a;
  dar.lag_probs = {1.0};
  dar.mean = split.mean_y;
  dar.variance = split.var_y;

  ModelSpec spec;
  spec.name = "V^" + util_name_number(v);
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = mixture_acf(v, constants.alpha_v, weight, a, spec.name);
  spec.make_source = mixture_factory(fbndp, dar, spec.name);
  return spec;
}

ModelSpec make_za(double a, const PaperConstants& constants) {
  util::require(a >= 0.0 && a < 1.0, "make_za: a must be in [0,1)");
  const double v = 1.0;
  const MixtureSplit split = split_moments(v, constants);
  const double weight = 1.0 - split.mean_x / split.var_x;

  FbndpTarget target;
  target.mean = split.mean_x;
  target.variance = split.var_x;
  target.alpha = constants.alpha_z;
  target.M = constants.M_mixture;
  target.Ts = constants.Ts;
  const proc::FbndpParams fbndp = calibrate_fbndp(target);

  proc::DarParams dar;
  dar.rho = a;
  dar.lag_probs = {1.0};
  dar.mean = split.mean_y;
  dar.variance = split.var_y;

  ModelSpec spec;
  spec.name = "Z^" + util_name_number(a);
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = mixture_acf(v, constants.alpha_z, weight, a, spec.name);
  spec.make_source = mixture_factory(fbndp, dar, spec.name);
  return spec;
}

ModelSpec make_dar_matched_to_za(double a, std::size_t p,
                                 const PaperConstants& constants) {
  util::require(p >= 1, "make_dar_matched_to_za: p must be >= 1");
  const ModelSpec za = make_za(a, constants);
  std::vector<double> targets(p);
  for (std::size_t k = 1; k <= p; ++k) targets[k - 1] = za.acf->at(k);
  const proc::DarParams dar =
      fit_dar_params(targets, constants.mean, constants.variance);

  ModelSpec spec;
  spec.name = "DAR(" + std::to_string(p) + ")~" + za.name;
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = std::make_shared<core::DarAcf>(dar.rho, dar.lag_probs);
  spec.make_source = [dar, name = spec.name](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::DarSource>(dar, seed);
  };
  return spec;
}

ModelSpec make_l(const PaperConstants& constants) {
  // Fit alpha to the ACF tail of Z^a with a = 0.9 (geometric part is
  // ~1e-5 at lag 100, so the tail is the clean FBNDP power law).
  const ModelSpec za = make_za(0.9, constants);
  const double weight = 1.0 - constants.mean / constants.variance;
  const TailFit tail = fit_lrd_tail(
      [&](std::size_t k) { return za.acf->at(k); }, weight, 100, 1000);

  FbndpTarget target;
  target.mean = constants.mean;
  target.variance = constants.variance;
  target.alpha = tail.alpha;
  target.M = constants.M_pure;
  target.Ts = constants.Ts;
  const proc::FbndpParams fbndp = calibrate_fbndp(target);

  ModelSpec spec;
  spec.name = "L";
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = std::make_shared<core::ExactLrdAcf>(tail.hurst, weight);
  spec.make_source = [fbndp](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::FbndpSource>(fbndp, seed);
  };
  return spec;
}

ModelSpec make_white(const PaperConstants& constants) {
  ModelSpec spec;
  spec.name = "white";
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = std::make_shared<core::WhiteAcf>();
  proc::Ar1Params params;
  params.phi = 0.0;
  params.mean = constants.mean;
  params.variance = constants.variance;
  spec.make_source = [params](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::Ar1Source>(params, seed);
  };
  return spec;
}

ModelSpec make_ar1(double phi, const PaperConstants& constants) {
  ModelSpec spec;
  spec.name = "AR1(" + util_name_number(phi) + ")";
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = std::make_shared<core::GeometricAcf>(phi);
  proc::Ar1Params params;
  params.phi = phi;
  params.mean = constants.mean;
  params.variance = constants.variance;
  spec.make_source = [params](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::Ar1Source>(params, seed);
  };
  return spec;
}

ModelSpec make_farima(double d, const PaperConstants& constants) {
  ModelSpec spec;
  spec.name = "FARIMA(d=" + util_name_number(d) + ")";
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = std::make_shared<core::FarimaAcf>(d);
  const auto acf = spec.acf;
  const double mean = constants.mean;
  const double variance = constants.variance;
  spec.make_source = [acf, mean, variance](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::GaussianAcfDaviesHarte>(acf, mean, variance,
                                                          1u << 13, seed);
  };
  return spec;
}

ModelSpec make_mginf(double beta, const PaperConstants& constants) {
  const proc::MgInfParams params =
      proc::MgInfParams::for_moments(constants.mean, constants.variance,
                                     beta);
  ModelSpec spec;
  spec.name = "MGinf(beta=" + util_name_number(beta) + ")";
  spec.mean = constants.mean;
  spec.variance = constants.variance;
  spec.acf = std::make_shared<proc::MgInfAcf>(params);
  spec.make_source = [params](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::MgInfSource>(params, seed);
  };
  return spec;
}

ModelSpec make_dar_negbinom(double a, std::size_t p,
                            const PaperConstants& constants) {
  ModelSpec spec = make_dar_matched_to_za(a, p, constants);
  spec.name += "/negbinom";
  const ModelSpec za = make_za(a, constants);
  std::vector<double> targets(p);
  for (std::size_t k = 1; k <= p; ++k) targets[k - 1] = za.acf->at(k);
  const proc::DarParams dar =
      fit_dar_params(targets, constants.mean, constants.variance);
  auto marginal = std::make_shared<proc::NegativeBinomialMarginal>(
      constants.mean, constants.variance);
  spec.make_source = [dar, marginal](std::uint64_t seed)
      -> std::unique_ptr<proc::FrameSource> {
    return std::make_unique<proc::DarSource>(dar, marginal, seed);
  };
  return spec;
}

MixtureReport report_vv(double v, const PaperConstants& constants) {
  const MixtureSplit split = split_moments(v, constants);
  FbndpTarget target;
  target.mean = split.mean_x;
  target.variance = split.var_x;
  target.alpha = constants.alpha_v;
  target.M = constants.M_mixture;
  target.Ts = constants.Ts;
  MixtureReport report;
  report.v = v;
  report.alpha = constants.alpha_v;
  report.a = vv_dar_coefficient(v, constants);
  report.lambda = split.mean_x / constants.Ts;
  report.t0_msec = implied_fractal_onset_time(target) * 1000.0;
  report.M = constants.M_mixture;
  return report;
}

MixtureReport report_za(double a, const PaperConstants& constants) {
  const MixtureSplit split = split_moments(1.0, constants);
  FbndpTarget target;
  target.mean = split.mean_x;
  target.variance = split.var_x;
  target.alpha = constants.alpha_z;
  target.M = constants.M_mixture;
  target.Ts = constants.Ts;
  MixtureReport report;
  report.v = 1.0;
  report.alpha = constants.alpha_z;
  report.a = a;
  report.lambda = split.mean_x / constants.Ts;
  report.t0_msec = implied_fractal_onset_time(target) * 1000.0;
  report.M = constants.M_mixture;
  return report;
}

MixtureReport report_l(const PaperConstants& constants) {
  const ModelSpec za = make_za(0.9, constants);
  const double weight = 1.0 - constants.mean / constants.variance;
  const TailFit tail = fit_lrd_tail(
      [&](std::size_t k) { return za.acf->at(k); }, weight, 100, 1000);
  FbndpTarget target;
  target.mean = constants.mean;
  target.variance = constants.variance;
  target.alpha = tail.alpha;
  target.M = constants.M_pure;
  target.Ts = constants.Ts;
  MixtureReport report;
  report.v = 0.0;  // pure FBNDP
  report.alpha = tail.alpha;
  report.a = 0.0;
  report.lambda = constants.mean / constants.Ts;
  report.t0_msec = implied_fractal_onset_time(target) * 1000.0;
  report.M = constants.M_pure;
  return report;
}

DarFit report_dar_fit(double a, std::size_t p,
                      const PaperConstants& constants) {
  const ModelSpec za = make_za(a, constants);
  std::vector<double> targets(p);
  for (std::size_t k = 1; k <= p; ++k) targets[k - 1] = za.acf->at(k);
  return fit_dar(targets);
}

ModelSpec model_from_id(const std::string& id,
                        const PaperConstants& constants) {
  // Split on ':' into family + parameter fields.
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = id.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(id.substr(start));
      break;
    }
    parts.push_back(id.substr(start, colon - start));
    start = colon + 1;
  }
  const std::string& family = parts[0];
  const std::size_t arity = parts.size() - 1;

  auto bad = [&](const std::string& why) -> util::InvalidArgument {
    return util::InvalidArgument("model id '" + id + "': " + why);
  };
  auto number = [&](std::size_t i) {
    double value = 0.0;
    if (!util::try_parse_double(parts[i], &value)) {
      throw bad("expected a number, got '" + parts[i] + "'");
    }
    return value;
  };
  auto expect_arity = [&](std::size_t want) {
    if (arity != want) {
      throw bad("family '" + family + "' takes " + std::to_string(want) +
                " parameter(s), got " + std::to_string(arity));
    }
  };

  if (family == "za") {
    expect_arity(1);
    return make_za(number(1), constants);
  }
  if (family == "vv") {
    expect_arity(1);
    return make_vv(number(1), constants);
  }
  if (family == "dar") {
    expect_arity(2);
    const double a = number(1);
    std::int64_t p = 0;
    if (!util::try_parse_int(parts[2], &p) || p < 1) {
      throw bad("DAR order must be a positive integer, got '" + parts[2] +
                "'");
    }
    return make_dar_matched_to_za(a, static_cast<std::size_t>(p), constants);
  }
  if (family == "l") {
    expect_arity(0);
    return make_l(constants);
  }
  if (family == "white") {
    expect_arity(0);
    return make_white(constants);
  }
  if (family == "ar1") {
    expect_arity(1);
    return make_ar1(number(1), constants);
  }
  if (family == "farima") {
    expect_arity(1);
    return make_farima(number(1), constants);
  }
  if (family == "mginf") {
    expect_arity(1);
    return make_mginf(number(1), constants);
  }
  throw bad(
      "unknown family (known: za, vv, dar, l, white, ar1, farima, mginf)");
}

}  // namespace cts::fit
