#include "cts/fit/order_selection.hpp"

#include <cmath>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/fit/dar_fit.hpp"
#include "cts/util/error.hpp"

namespace cts::fit {

void OrderSelectionProblem::validate() const {
  util::require(variance > 0.0,
                "OrderSelectionProblem: variance must be > 0");
  util::require(bandwidth > mean,
                "OrderSelectionProblem: bandwidth must exceed mean");
  util::require(buffer_per_source >= 0.0,
                "OrderSelectionProblem: buffer must be >= 0");
  util::require(n_sources >= 1, "OrderSelectionProblem: need >= 1 source");
  util::require(tolerance_decades > 0.0,
                "OrderSelectionProblem: tolerance must be > 0");
  util::require(max_order >= 2, "OrderSelectionProblem: max_order >= 2");
}

namespace {

double bop_for_acf(std::shared_ptr<const core::AcfModel> acf,
                   const OrderSelectionProblem& problem) {
  core::RateFunction rate(std::move(acf), problem.mean, problem.variance,
                          problem.bandwidth);
  return core::br_log10_bop(rate, problem.buffer_per_source,
                            problem.n_sources)
      .log10_bop;
}

}  // namespace

OrderSelection select_dar_order(const core::AcfModel& target,
                                const OrderSelectionProblem& problem) {
  problem.validate();

  OrderSelection result;
  {
    // Reference prediction with the full target ACF (shared-ptr aliasing a
    // caller-owned object; the rate function does not outlive this call).
    std::shared_ptr<const core::AcfModel> alias(&target,
                                                [](const core::AcfModel*) {});
    result.target_log10_bop = bop_for_acf(alias, problem);
  }

  std::vector<double> targets;
  double prev = 0.0;
  for (std::size_t p = 1; p <= problem.max_order; ++p) {
    targets.push_back(target.at(p));
    const DarFit fit = fit_dar(targets);
    auto acf = std::make_shared<core::DarAcf>(fit.rho, fit.lag_probs);
    const double bop = bop_for_acf(acf, problem);
    result.trace.push_back(bop);
    if (p >= 2 && std::abs(bop - prev) < problem.tolerance_decades) {
      result.order = p - 1;  // the previous order already sufficed
      result.log10_bop = prev;
      return result;
    }
    prev = bop;
  }
  throw util::NumericalError(
      "select_dar_order: no order below max_order stabilised the BOP "
      "prediction");
}

}  // namespace cts::fit
