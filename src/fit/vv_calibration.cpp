#include "cts/fit/vv_calibration.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::fit {

double fbndp_first_lag(double weight, double alpha) {
  util::require(weight > 0.0 && weight <= 1.0,
                "fbndp_first_lag: weight must be in (0,1]");
  util::require(alpha > 0.0 && alpha < 1.0,
                "fbndp_first_lag: alpha must be in (0,1)");
  // r(1) = w * (1/2)[2^{alpha+1} - 2] = w (2^alpha - 1).
  return weight * (std::pow(2.0, alpha) - 1.0);
}

double calibrate_dar1_coefficient(double v, double fbndp_r1,
                                  double target_r1) {
  util::require(v > 0.0, "calibrate_dar1_coefficient: v must be > 0");
  // r(1) = v/(v+1) rX1 + a/(v+1)  =>  a = (v+1) r1* - v rX1.
  const double a = (v + 1.0) * target_r1 - v * fbndp_r1;
  util::require(a >= 0.0 && a < 1.0,
                "calibrate_dar1_coefficient: infeasible pinning (a outside "
                "[0,1))");
  return a;
}

}  // namespace cts::fit
