#include "cts/proc/gaussian_acf_source.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/fft.hpp"

namespace cts::proc {

GaussianAcfHosking::GaussianAcfHosking(
    std::shared_ptr<const core::AcfModel> acf, double mean, double variance,
    std::uint64_t seed, std::size_t max_order)
    : acf_(std::move(acf)),
      mean_(mean),
      variance_(variance),
      max_order_(max_order),
      rng_(seed) {
  util::require(acf_ != nullptr, "GaussianAcfHosking: acf required");
  util::require(variance > 0.0, "GaussianAcfHosking: variance must be > 0");
  util::require(max_order >= 1, "GaussianAcfHosking: max_order must be >= 1");
}

double GaussianAcfHosking::next_frame() {
  const std::size_t n = history_.size();
  double conditional_mean = 0.0;
  if (n > 0 && n <= max_order_) {
    const double rn = acf_->at(n);
    double num = rn;
    for (std::size_t k = 1; k < n; ++k) {
      num -= phi_[k - 1] * acf_->at(n - k);
    }
    const double reflection = num / prediction_variance_;
    std::vector<double> updated(n, 0.0);
    for (std::size_t k = 1; k < n; ++k) {
      updated[k - 1] = phi_[k - 1] - reflection * phi_[n - 1 - k];
    }
    updated[n - 1] = reflection;
    phi_ = std::move(updated);
    prediction_variance_ *= (1.0 - reflection * reflection);
    if (prediction_variance_ < 1e-12) prediction_variance_ = 1e-12;
    for (std::size_t k = 1; k <= n; ++k) {
      conditional_mean += phi_[k - 1] * history_[n - k];
    }
  } else if (n > max_order_) {
    for (std::size_t k = 1; k <= phi_.size(); ++k) {
      conditional_mean += phi_[k - 1] * history_[n - k];
    }
  }
  const double x =
      conditional_mean + std::sqrt(prediction_variance_) * normal_(rng_);
  history_.push_back(x);
  return mean_ + std::sqrt(variance_) * x;
}

std::unique_ptr<FrameSource> GaussianAcfHosking::clone(
    std::uint64_t seed) const {
  return std::make_unique<GaussianAcfHosking>(acf_, mean_, variance_, seed,
                                              max_order_);
}

std::string GaussianAcfHosking::name() const {
  return "gauss-hosking[" + acf_->name() + "]";
}

GaussianAcfDaviesHarte::GaussianAcfDaviesHarte(
    std::shared_ptr<const core::AcfModel> acf, double mean, double variance,
    std::size_t block_len, std::uint64_t seed, double tolerance)
    : acf_(std::move(acf)),
      mean_(mean),
      variance_(variance),
      block_len_(util::next_pow2(block_len)),
      rng_(seed) {
  util::require(acf_ != nullptr, "GaussianAcfDaviesHarte: acf required");
  util::require(variance > 0.0,
                "GaussianAcfDaviesHarte: variance must be > 0");
  util::require(block_len >= 2,
                "GaussianAcfDaviesHarte: block length must be >= 2");
  const std::size_t n = block_len_;
  std::vector<std::complex<double>> c(2 * n, 0.0);
  for (std::size_t j = 0; j <= n; ++j) c[j] = acf_->at(j);
  for (std::size_t j = 1; j < n; ++j) c[2 * n - j] = c[j];
  util::fft(c);
  eigenvalues_.resize(2 * n);
  for (std::size_t j = 0; j < 2 * n; ++j) {
    const double ev = c[j].real();
    if (ev < -tolerance) {
      throw util::NumericalError(
          "GaussianAcfDaviesHarte: circulant embedding of '" + acf_->name() +
          "' is not non-negative definite at this block length; use "
          "GaussianAcfHosking");
    }
    eigenvalues_[j] = ev > 0.0 ? ev : 0.0;
  }
  pos_ = block_len_;
}

void GaussianAcfDaviesHarte::refill() {
  const std::size_t n = block_len_;
  const std::size_t m = 2 * n;
  std::vector<std::complex<double>> y(m);
  y[0] = std::sqrt(eigenvalues_[0]) * normal_(rng_);
  y[n] = std::sqrt(eigenvalues_[n]) * normal_(rng_);
  for (std::size_t k = 1; k < n; ++k) {
    const double scale = std::sqrt(eigenvalues_[k] / 2.0);
    y[k] = scale * std::complex<double>(normal_(rng_), normal_(rng_));
    y[m - k] = std::conj(y[k]);
  }
  util::fft(y);
  block_.resize(n);
  const double norm = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t j = 0; j < n; ++j) block_[j] = y[j].real() * norm;
  pos_ = 0;
}

double GaussianAcfDaviesHarte::next_frame() {
  if (pos_ >= block_len_) refill();
  return mean_ + std::sqrt(variance_) * block_[pos_++];
}

std::unique_ptr<FrameSource> GaussianAcfDaviesHarte::clone(
    std::uint64_t seed) const {
  return std::make_unique<GaussianAcfDaviesHarte>(acf_, mean_, variance_,
                                                  block_len_, seed);
}

std::string GaussianAcfDaviesHarte::name() const {
  return "gauss-dh[" + acf_->name() + "]";
}

}  // namespace cts::proc
