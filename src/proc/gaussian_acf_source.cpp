#include "cts/proc/gaussian_acf_source.hpp"

#include <cmath>

#include "cts/core/simd.hpp"
#include "cts/util/error.hpp"
#include "cts/util/fft.hpp"

namespace cts::proc {

GaussianAcfHosking::GaussianAcfHosking(
    std::shared_ptr<const core::AcfModel> acf, double mean, double variance,
    std::uint64_t seed, std::size_t max_order)
    : acf_(std::move(acf)),
      mean_(mean),
      variance_(variance),
      max_order_(max_order),
      rng_(seed) {
  util::require(acf_ != nullptr, "GaussianAcfHosking: acf required");
  util::require(variance > 0.0, "GaussianAcfHosking: variance must be > 0");
  util::require(max_order >= 1, "GaussianAcfHosking: max_order must be >= 1");
}

double GaussianAcfHosking::next_frame() {
  const std::size_t n = history_.size();
  double conditional_mean = 0.0;
  if (n > 0 && n <= max_order_) {
    while (acf_table_.size() <= n) {
      acf_table_.push_back(acf_->at(acf_table_.size()));
    }
    const double rn = acf_table_[n];
    // num = r(n) - sum_{k=1..n-1} phi_k r(n - k): phi forward against the
    // ACF table reversed from lag n-1 downward.
    const double num =
        rn - core::simd::dot_reversed(phi_.data(), &acf_table_[n - 1], n - 1);
    const double reflection = num / prediction_variance_;
    phi_scratch_.resize(n);
    // updated_k = phi_k - reflection * phi_{n-k} for k = 1..n-1.
    if (n >= 2) {
      core::simd::axpy_reversed(phi_.data(), &phi_[n - 2], reflection,
                                phi_scratch_.data(), n - 1);
    }
    phi_scratch_[n - 1] = reflection;
    std::swap(phi_, phi_scratch_);
    prediction_variance_ *= (1.0 - reflection * reflection);
    if (prediction_variance_ < 1e-12) prediction_variance_ = 1e-12;
    conditional_mean =
        core::simd::dot_reversed(phi_.data(), &history_[n - 1], n);
  } else if (n > max_order_) {
    conditional_mean = core::simd::dot_reversed(phi_.data(), &history_[n - 1],
                                                phi_.size());
  }
  const double x =
      conditional_mean + std::sqrt(prediction_variance_) * normal_(rng_);
  history_.push_back(x);
  return mean_ + std::sqrt(variance_) * x;
}

std::unique_ptr<FrameSource> GaussianAcfHosking::clone(
    std::uint64_t seed) const {
  return std::make_unique<GaussianAcfHosking>(acf_, mean_, variance_, seed,
                                              max_order_);
}

std::string GaussianAcfHosking::name() const {
  return "gauss-hosking[" + acf_->name() + "]";
}

GaussianAcfDaviesHarte::GaussianAcfDaviesHarte(
    std::shared_ptr<const core::AcfModel> acf, double mean, double variance,
    std::size_t block_len, std::uint64_t seed, double tolerance)
    : acf_(std::move(acf)),
      mean_(mean),
      variance_(variance),
      block_len_(util::next_pow2(block_len)),
      tolerance_(tolerance),
      rng_(seed) {
  util::require(acf_ != nullptr, "GaussianAcfDaviesHarte: acf required");
  util::require(variance > 0.0,
                "GaussianAcfDaviesHarte: variance must be > 0");
  util::require(block_len >= 2,
                "GaussianAcfDaviesHarte: block length must be >= 2");
  const std::size_t n = block_len_;
  std::vector<std::complex<double>> c(2 * n, 0.0);
  for (std::size_t j = 0; j <= n; ++j) c[j] = acf_->at(j);
  for (std::size_t j = 1; j < n; ++j) c[2 * n - j] = c[j];
  util::fft(c);
  eigenvalues_.resize(2 * n);
  for (std::size_t j = 0; j < 2 * n; ++j) {
    const double ev = c[j].real();
    if (ev < -tolerance) {
      throw util::NumericalError(
          "GaussianAcfDaviesHarte: circulant embedding of '" + acf_->name() +
          "' is not non-negative definite at this block length; use "
          "GaussianAcfHosking");
    }
    eigenvalues_[j] = ev > 0.0 ? ev : 0.0;
  }
  sqrt_ev0_ = std::sqrt(eigenvalues_[0]);
  sqrt_evn_ = std::sqrt(eigenvalues_[n]);
  scale_.resize(n >= 1 ? n - 1 : 0);
  for (std::size_t k = 1; k < n; ++k) {
    scale_[k - 1] = std::sqrt(eigenvalues_[k] / 2.0);
  }
  pos_ = block_len_;
}

void GaussianAcfDaviesHarte::refill() {
  const std::size_t n = block_len_;
  const std::size_t m = 2 * n;
  spectrum_.resize(m);
  // Draw every normal for the block up front (fixed order: the two real
  // modes, then the interleaved re/im pairs for modes 1..n-1), then apply
  // the precomputed spectral scales as one batch kernel.
  spectrum_[0] = sqrt_ev0_ * normal_(rng_);
  spectrum_[n] = sqrt_evn_ * normal_(rng_);
  normals_.resize(2 * (n - 1));
  for (double& z : normals_) z = normal_(rng_);
  // std::complex<double> is array-compatible with double pairs, so the
  // kernel writes re/im in place for modes 1..n-1.
  core::simd::scale_pairs(scale_.data(), normals_.data(),
                          reinterpret_cast<double*>(&spectrum_[1]), n - 1);
  for (std::size_t k = 1; k < n; ++k) {
    spectrum_[m - k] = std::conj(spectrum_[k]);
  }
  util::fft(spectrum_);
  block_.resize(n);
  const double norm = 1.0 / std::sqrt(static_cast<double>(m));
  core::simd::scaled_real_stride2(
      reinterpret_cast<const double*>(spectrum_.data()), norm, block_.data(),
      n);
  pos_ = 0;
}

double GaussianAcfDaviesHarte::next_frame() {
  if (pos_ >= block_len_) refill();
  return mean_ + std::sqrt(variance_) * block_[pos_++];
}

std::unique_ptr<FrameSource> GaussianAcfDaviesHarte::clone(
    std::uint64_t seed) const {
  // Pass the construction tolerance through: a clone must accept exactly
  // the embeddings the original accepted (rebuilding with the default
  // tolerance used to throw for ACFs admitted under a looser one).
  return std::make_unique<GaussianAcfDaviesHarte>(acf_, mean_, variance_,
                                                  block_len_, seed,
                                                  tolerance_);
}

std::string GaussianAcfDaviesHarte::name() const {
  return "gauss-dh[" + acf_->name() + "]";
}

}  // namespace cts::proc
