#include "cts/proc/fgn.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/fft.hpp"
#include "cts/util/math.hpp"

namespace cts::proc {

double fgn_acf(std::size_t k, double hurst) {
  util::require(hurst > 0.0 && hurst < 1.0, "fgn_acf: H must be in (0,1)");
  if (k == 0) return 1.0;
  return 0.5 * util::second_central_difference_pow(k, 2.0 * hurst);
}

void FgnParams::validate() const {
  util::require(hurst > 0.0 && hurst < 1.0, "FgnParams: H must be in (0,1)");
  util::require(variance > 0.0, "FgnParams: variance must be > 0");
}

// ---------------------------------------------------------------------------
// Hosking recursion
// ---------------------------------------------------------------------------

FgnHosking::FgnHosking(const FgnParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  params_.validate();
}

double FgnHosking::next_frame() {
  // Durbin-Levinson step: extend the best-linear-predictor coefficients by
  // one order, then sample the next value from its exact conditional law.
  const std::size_t n = history_.size();
  // Memory/work cap: past this order the partial correlations of FGN are
  // tiny and the AR approximation at fixed order is statistically
  // indistinguishable for our run lengths.
  constexpr std::size_t kMaxOrder = 16384;
  double conditional_mean = 0.0;
  if (n > 0 && n <= kMaxOrder) {
    const double rn = fgn_acf(n, params_.hurst);
    double num = rn;
    for (std::size_t k = 1; k < n; ++k) {
      num -= phi_[k - 1] * fgn_acf(n - k, params_.hurst);
    }
    const double reflection = num / prediction_variance_;
    std::vector<double> updated(n, 0.0);
    for (std::size_t k = 1; k < n; ++k) {
      updated[k - 1] = phi_[k - 1] - reflection * phi_[n - 1 - k];
    }
    updated[n - 1] = reflection;
    phi_ = std::move(updated);
    prediction_variance_ *= (1.0 - reflection * reflection);
    for (std::size_t k = 1; k <= n; ++k) {
      conditional_mean += phi_[k - 1] * history_[n - k];
    }
  } else if (n > kMaxOrder) {
    // Fixed-order AR approximation using the capped coefficient vector.
    for (std::size_t k = 1; k <= phi_.size(); ++k) {
      conditional_mean += phi_[k - 1] * history_[n - k];
    }
  }
  const double sd = std::sqrt(std::max(prediction_variance_, 1e-12));
  const double x = conditional_mean + sd * normal_(rng_);
  history_.push_back(x);
  return params_.mean + std::sqrt(params_.variance) * x;
}

std::unique_ptr<FrameSource> FgnHosking::clone(std::uint64_t seed) const {
  return std::make_unique<FgnHosking>(params_, seed);
}

std::string FgnHosking::name() const {
  return "FGN-Hosking(H=" + std::to_string(params_.hurst) + ")";
}

// ---------------------------------------------------------------------------
// Davies-Harte circulant embedding
// ---------------------------------------------------------------------------

FgnDaviesHarte::FgnDaviesHarte(const FgnParams& params, std::size_t block_len,
                               std::uint64_t seed)
    : params_(params), block_len_(util::next_pow2(block_len)), rng_(seed) {
  params_.validate();
  util::require(block_len >= 2, "FgnDaviesHarte: block length must be >= 2");
  // Circulant embedding of the covariance sequence r(0..n) into length 2n;
  // its DFT gives the (provably non-negative for FGN) eigenvalues.
  const std::size_t n = block_len_;
  std::vector<std::complex<double>> c(2 * n, 0.0);
  for (std::size_t j = 0; j <= n; ++j) {
    c[j] = fgn_acf(j, params_.hurst);
  }
  for (std::size_t j = 1; j < n; ++j) {
    c[2 * n - j] = c[j];
  }
  util::fft(c);
  eigenvalues_.resize(2 * n);
  for (std::size_t j = 0; j < 2 * n; ++j) {
    // Clamp tiny negative round-off to zero; genuine negatives would mean
    // the embedding failed (cannot happen for FGN covariances).
    eigenvalues_[j] = std::max(c[j].real(), 0.0);
  }
  pos_ = block_len_;  // trigger refill on first sample
}

void FgnDaviesHarte::refill() {
  const std::size_t n = block_len_;
  const std::size_t m = 2 * n;
  std::vector<std::complex<double>> y(m);
  y[0] = std::sqrt(eigenvalues_[0]) * normal_(rng_);
  y[n] = std::sqrt(eigenvalues_[n]) * normal_(rng_);
  for (std::size_t k = 1; k < n; ++k) {
    const double scale = std::sqrt(eigenvalues_[k] / 2.0);
    const std::complex<double> g(normal_(rng_), normal_(rng_));
    y[k] = scale * g;
    y[m - k] = std::conj(y[k]);
  }
  util::fft(y);
  block_.resize(n);
  const double norm = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t j = 0; j < n; ++j) {
    block_[j] = y[j].real() * norm;
  }
  pos_ = 0;
}

double FgnDaviesHarte::next_frame() {
  if (pos_ >= block_len_) refill();
  const double x = block_[pos_++];
  return params_.mean + std::sqrt(params_.variance) * x;
}

std::unique_ptr<FrameSource> FgnDaviesHarte::clone(std::uint64_t seed) const {
  return std::make_unique<FgnDaviesHarte>(params_, block_len_, seed);
}

std::string FgnDaviesHarte::name() const {
  return "FGN-DH(H=" + std::to_string(params_.hurst) + ")";
}

}  // namespace cts::proc
