#include "cts/proc/trace.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "cts/util/error.hpp"

namespace cts::proc {

std::vector<double> load_trace(const std::string& path) {
  std::ifstream file(path);
  util::require(static_cast<bool>(file),
                "load_trace: cannot open '" + path + "'");
  std::vector<double> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      try {
        std::size_t consumed = 0;
        const double value = std::stod(token, &consumed);
        util::require(consumed == token.size(),
                      "load_trace: bad token '" + token + "' at line " +
                          std::to_string(line_no));
        trace.push_back(value);
      } catch (const std::invalid_argument&) {
        throw util::InvalidArgument("load_trace: bad token '" + token +
                                    "' at line " + std::to_string(line_no));
      }
    }
  }
  util::require(!trace.empty(), "load_trace: '" + path + "' has no samples");
  return trace;
}

bool save_trace(const std::string& path, const std::vector<double>& trace,
                const std::string& comment) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  if (!comment.empty()) file << "# " << comment << '\n';
  for (const double x : trace) file << x << '\n';
  return static_cast<bool>(file);
}

TraceSource::TraceSource(std::vector<double> trace, std::uint64_t seed,
                         bool randomize_phase)
    : trace_(std::make_shared<const std::vector<double>>(std::move(trace))),
      mean_(0.0),
      variance_(0.0),
      randomize_phase_(randomize_phase) {
  util::require(!trace_->empty(), "TraceSource: empty trace");
  double acc = 0.0;
  for (const double x : *trace_) acc += x;
  mean_ = acc / static_cast<double>(trace_->size());
  double ss = 0.0;
  for (const double x : *trace_) ss += (x - mean_) * (x - mean_);
  variance_ = ss / static_cast<double>(trace_->size());
  if (randomize_phase_) {
    util::Xoshiro256pp rng(seed);
    pos_ = static_cast<std::size_t>(rng() % trace_->size());
  }
}

double TraceSource::next_frame() {
  const double x = (*trace_)[pos_];
  pos_ = (pos_ + 1) % trace_->size();
  return x;
}

std::unique_ptr<FrameSource> TraceSource::clone(std::uint64_t seed) const {
  // Clones share the recording (no copy) but start at independent phases.
  auto copy = std::unique_ptr<TraceSource>(new TraceSource(*this));
  if (randomize_phase_) {
    util::Xoshiro256pp rng(seed);
    copy->pos_ = static_cast<std::size_t>(rng() % trace_->size());
  }
  return copy;
}

std::string TraceSource::name() const {
  return "trace[" + std::to_string(trace_->size()) + " frames]";
}

}  // namespace cts::proc
