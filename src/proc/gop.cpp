#include "cts/proc/gop.hpp"

#include <cmath>
#include <numeric>

#include "cts/util/error.hpp"

namespace cts::proc {

void GopPattern::validate() const {
  util::require(!scales.empty(), "GopPattern: empty pattern");
  for (const double s : scales) {
    util::require(s > 0.0, "GopPattern: scales must be positive");
  }
}

GopPattern GopPattern::ibbpbb12() {
  // IBBPBBPBBPBB with I:P:B ~ 5:3:1, normalised to mean 1.
  std::vector<double> raw = {5, 1, 1, 3, 1, 1, 3, 1, 1, 3, 1, 1};
  const double mean =
      std::accumulate(raw.begin(), raw.end(), 0.0) /
      static_cast<double>(raw.size());
  for (auto& s : raw) s /= mean;
  return GopPattern{std::move(raw)};
}

GopModulatedSource::GopModulatedSource(std::unique_ptr<FrameSource> base,
                                       GopPattern pattern, std::uint32_t phase)
    : base_(std::move(base)), pattern_(std::move(pattern)), phase_(phase) {
  util::require(base_ != nullptr, "GopModulatedSource: base source required");
  pattern_.validate();
  // Normalise the pattern mean to exactly 1 so the long-run rate of the
  // base source is preserved.
  const double mean =
      std::accumulate(pattern_.scales.begin(), pattern_.scales.end(), 0.0) /
      static_cast<double>(pattern_.scales.size());
  for (auto& s : pattern_.scales) s /= mean;
  phase_ %= static_cast<std::uint32_t>(pattern_.scales.size());
}

double GopModulatedSource::next_frame() {
  const double scale = pattern_.scales[phase_];
  phase_ = (phase_ + 1) % static_cast<std::uint32_t>(pattern_.scales.size());
  return scale * base_->next_frame();
}

double GopModulatedSource::mean() const { return base_->mean(); }

double GopModulatedSource::variance() const {
  // Over a uniformly random phase with E[s] = 1:
  //   Var = E[s^2] E[X^2] - (E[s] E[X])^2 = E[s^2](sig^2 + mu^2) - mu^2.
  double s2 = 0.0;
  for (const double s : pattern_.scales) s2 += s * s;
  s2 /= static_cast<double>(pattern_.scales.size());
  const double mu = base_->mean();
  const double var = base_->variance();
  return s2 * (var + mu * mu) - mu * mu;
}

std::unique_ptr<FrameSource> GopModulatedSource::clone(
    std::uint64_t seed) const {
  return std::make_unique<GopModulatedSource>(base_->clone(seed), pattern_,
                                              phase_);
}

std::string GopModulatedSource::name() const {
  return "GoP(" + base_->name() + ")";
}

}  // namespace cts::proc
