#include "cts/proc/fbn.hpp"

#include "cts/util/error.hpp"

namespace cts::proc {

FractalBinomialNoise::FractalBinomialNoise(const OnOffParams& params,
                                           std::uint32_t m,
                                           util::Xoshiro256pp rng) {
  util::require(m >= 1, "FractalBinomialNoise: M must be >= 1");
  sources_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    sources_.emplace_back(params, rng.split());
  }
}

double FractalBinomialNoise::aggregate_on_time(double dt) noexcept {
  double total = 0.0;
  for (auto& source : sources_) total += source.on_time_in(dt);
  return total;
}

std::uint32_t FractalBinomialNoise::on_count() const noexcept {
  std::uint32_t count = 0;
  for (const auto& source : sources_) count += source.is_on() ? 1u : 0u;
  return count;
}

}  // namespace cts::proc
