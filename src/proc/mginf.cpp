#include "cts/proc/mginf.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/error.hpp"

namespace cts::proc {

namespace {

/// Tail sum approximation: sum_{j >= k} (x_m/j)^beta for k > x_m via
/// Euler-Maclaurin (integral + half endpoint).
double pareto_tail_sum(double x_m, double beta, double k) {
  const double scale = std::pow(x_m, beta);
  return scale * (std::pow(k, 1.0 - beta) / (beta - 1.0) +
                  0.5 * std::pow(k, -beta));
}

constexpr std::size_t kHeadCache = 1u << 16;

}  // namespace

void MgInfParams::validate() const {
  util::require(session_rate > 0.0, "MgInfParams: session_rate must be > 0");
  util::require(beta > 1.0 && beta < 2.0,
                "MgInfParams: beta must be in (1, 2) for LRD with finite "
                "mean");
  util::require(min_duration >= 1.0,
                "MgInfParams: min_duration must be >= 1 frame");
  util::require(cells_per_session > 0.0,
                "MgInfParams: cells_per_session must be > 0");
}

double MgInfParams::duration_survival(std::uint64_t j) const {
  const double jd = static_cast<double>(j);
  if (jd < min_duration) return 1.0;
  return std::pow(min_duration / jd, beta);
}

double MgInfParams::mean_duration() const {
  validate();
  double head = 0.0;
  const std::uint64_t head_limit = 1u << 14;
  for (std::uint64_t j = 0; j < head_limit; ++j) {
    head += duration_survival(j);
  }
  return head + pareto_tail_sum(min_duration, beta,
                                static_cast<double>(head_limit));
}

double MgInfParams::frame_mean() const {
  return session_rate * mean_duration() * cells_per_session;
}

double MgInfParams::frame_variance() const {
  // Active-session count is Poisson(session_rate * E[tau]).
  return cells_per_session * cells_per_session * session_rate *
         mean_duration();
}

MgInfParams MgInfParams::for_moments(double mean, double variance,
                                     double beta, double min_duration) {
  util::require(mean > 0.0 && variance > mean,
                "MgInfParams::for_moments: need variance > mean > 0");
  MgInfParams params;
  params.beta = beta;
  params.min_duration = min_duration;
  params.cells_per_session = variance / mean;
  const double target_sessions = mean / params.cells_per_session;
  params.session_rate = 1.0;  // placeholder for mean_duration()
  const double e_tau = params.mean_duration();
  params.session_rate = target_sessions / e_tau;
  params.validate();
  return params;
}

MgInfAcf::MgInfAcf(const MgInfParams& params)
    : params_(params), mean_duration_(params.mean_duration()) {
  params_.validate();
}

void MgInfAcf::extend(std::size_t k) const {
  while (head_cumulative_.size() <= std::min(k, kHeadCache)) {
    const std::uint64_t j = head_cumulative_.size() - 1;
    head_cumulative_.push_back(head_cumulative_.back() +
                               params_.duration_survival(j));
  }
}

double MgInfAcf::at(std::size_t k) const {
  if (k == 0) return 1.0;
  if (k > kHeadCache) {
    // Pure tail regime: closed form.
    return pareto_tail_sum(params_.min_duration, params_.beta,
                           static_cast<double>(k)) /
           mean_duration_;
  }
  extend(k);
  const double tail = mean_duration_ - head_cumulative_[k];
  return std::max(tail, 0.0) / mean_duration_;
}

std::string MgInfAcf::name() const {
  return "mginf(beta=" + std::to_string(params_.beta) + ")";
}

MgInfSource::MgInfSource(const MgInfParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  params_.validate();
  // Stationary start: Poisson(session_rate * E[tau]) sessions with
  // equilibrium residual lifetimes.
  const double e_tau = params_.mean_duration();
  const std::uint64_t initial =
      util::poisson_sample(rng_, params_.session_rate * e_tau);
  for (std::uint64_t i = 0; i < initial; ++i) {
    ++active_;
    schedule(now_ + sample_equilibrium_residual());
  }
}

std::uint64_t MgInfSource::sample_duration() {
  // tau = ceil(x_m * u^{-1/beta}) matches the survival function exactly.
  const double u = rng_.uniform01();
  const double raw =
      params_.min_duration * std::pow(1.0 - u, -1.0 / params_.beta);
  return static_cast<std::uint64_t>(std::ceil(std::min(raw, 1e15)));
}

std::uint64_t MgInfSource::sample_equilibrium_residual() {
  // P(R > r) = T(r) / E[tau], T(r) = sum_{j >= r} S(j).  Invert via the
  // tail closed form; exact enough because residuals below x_m are handled
  // by the r <= x_m branch.
  const double e_tau = params_.mean_duration();
  const double u = rng_.uniform01();
  const double target = u * e_tau;  // find smallest r with T(r) <= target
  // Head scan (T decreases from E[tau]); rare residuals land in the tail.
  double tail = e_tau;
  for (std::uint64_t r = 0; r < (1u << 12); ++r) {
    if (tail <= target) return std::max<std::uint64_t>(r, 1);
    tail -= params_.duration_survival(r);
  }
  // Deep tail: T(r) ~ x_m^beta r^{1-beta}/(beta-1).
  const double r = std::pow(
      target * (params_.beta - 1.0) / std::pow(params_.min_duration,
                                               params_.beta),
      1.0 / (1.0 - params_.beta));
  return static_cast<std::uint64_t>(
      std::ceil(std::min(std::max(r, 1.0), 1e15)));
}

void MgInfSource::schedule(std::uint64_t expiry_frame) {
  ++expirations_[expiry_frame];
}

double MgInfSource::next_frame() {
  // Expire sessions whose lifetime ends at this frame boundary.
  const auto it = expirations_.find(now_);
  if (it != expirations_.end()) {
    active_ -= it->second;
    expirations_.erase(it);
  }
  // New arrivals this frame.
  const std::uint64_t arrivals =
      util::poisson_sample(rng_, params_.session_rate);
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    ++active_;
    schedule(now_ + sample_duration());
  }
  ++now_;
  return static_cast<double>(active_) * params_.cells_per_session;
}

std::unique_ptr<FrameSource> MgInfSource::clone(std::uint64_t seed) const {
  return std::make_unique<MgInfSource>(params_, seed);
}

std::string MgInfSource::name() const {
  return "M/G/inf(beta=" + std::to_string(params_.beta) + ")";
}

}  // namespace cts::proc
