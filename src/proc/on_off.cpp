#include "cts/proc/on_off.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::proc {

void OnOffParams::validate() const {
  util::require(alpha > 0.0 && alpha < 1.0,
                "OnOffParams: alpha must be in (0,1)");
  util::require(A > 0.0 && std::isfinite(A), "OnOffParams: A must be > 0");
}

double OnOffParams::mean_sojourn() const noexcept {
  const double g = gamma();
  // E[T] = (A/g)(1 - e^-g) + e^-g A/(g-1): integrate the survival function
  // over the exponential body and the Pareto tail separately.
  return (A / g) * (1.0 - std::exp(-g)) + std::exp(-g) * A / (g - 1.0);
}

double OnOffParams::sojourn_survival(double t) const noexcept {
  if (t <= 0.0) return 1.0;
  const double g = gamma();
  if (t <= A) return std::exp(-g * t / A);
  return std::exp(-g) * std::pow(A / t, g);
}

double OnOffParams::sample_sojourn(util::Xoshiro256pp& rng) const noexcept {
  const double g = gamma();
  const double u = rng.uniform01();
  const double survival = 1.0 - u;  // uniform, so use either side
  const double body_mass = 1.0 - std::exp(-g);
  if (u < body_mass) {
    // Exponential body: S(t) = e^{-g t/A} -> t = -(A/g) ln(1-u).
    return -(A / g) * std::log1p(-u);
  }
  // Pareto tail: S(t) = e^{-g}(A/t)^g -> t = A (e^{-g}/S)^{1/g}.
  return A * std::pow(std::exp(-g) / survival, 1.0 / g);
}

double OnOffParams::sample_equilibrium_residual(
    util::Xoshiro256pp& rng) const noexcept {
  // Equilibrium residual CDF: G(t) = (1/E) \int_0^t S(s) ds with
  //   \int_0^t S = (A/g)(1 - e^{-g t/A})                       for t <= A,
  //              = (A/g)(1-e^{-g}) + e^{-g} A (1-(A/t)^{g-1})/(g-1)  t > A.
  const double g = gamma();
  const double mean = mean_sojourn();
  const double u = rng.uniform01();
  const double target = u * mean;
  const double body_integral = (A / g) * (1.0 - std::exp(-g));
  if (target <= body_integral) {
    // Invert (A/g)(1 - e^{-g t/A}) = target.
    const double inner = 1.0 - g * target / A;
    return -(A / g) * std::log(inner);
  }
  // Invert the tail branch for t.
  const double rest = target - body_integral;
  const double coeff = std::exp(-g) * A / (g - 1.0);
  // rest = coeff (1 - (A/t)^{g-1})  ->  (A/t)^{g-1} = 1 - rest/coeff.
  const double ratio_pow = 1.0 - rest / coeff;
  // ratio_pow in (0,1] because rest < coeff = total tail integral.
  return A * std::pow(ratio_pow, -1.0 / (g - 1.0));
}

FractalOnOff::FractalOnOff(const OnOffParams& params, util::Xoshiro256pp rng)
    : params_(params), rng_(rng) {
  params_.validate();
  const double g = params_.gamma();
  body_mass_ = 1.0 - std::exp(-g);
  neg_a_over_g_ = -params_.A / g;
  exp_neg_g_ = std::exp(-g);
  inv_g_ = 1.0 / g;
  // Stationary start: ON/OFF symmetric, so ON with probability 1/2, and
  // the time to the next transition follows the equilibrium residual law.
  on_ = rng_.uniform01() < 0.5;
  residual_ = params_.sample_equilibrium_residual(rng_);
}

double FractalOnOff::sample_sojourn_fast() noexcept {
  const double u = rng_.uniform01();
  if (u < body_mass_) {
    // Exponential body: t = -(A/g) ln(1-u).
    return neg_a_over_g_ * std::log1p(-u);
  }
  // Pareto tail: t = A (e^{-g}/(1-u))^{1/g} = A exp((-g - ln(1-u))/g).
  return params_.A * std::exp((std::log(exp_neg_g_ / (1.0 - u))) * inv_g_);
}

double FractalOnOff::on_time_in(double dt) noexcept {
  double on_time = 0.0;
  double remaining = dt;
  while (remaining > 0.0) {
    if (residual_ > remaining) {
      if (on_) on_time += remaining;
      residual_ -= remaining;
      return on_time;
    }
    if (on_) on_time += residual_;
    remaining -= residual_;
    on_ = !on_;
    residual_ = sample_sojourn_fast();
  }
  return on_time;
}

}  // namespace cts::proc
