#include "cts/proc/gaussian_quantizer.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::proc {

GaussianQuantizer::GaussianQuantizer(std::unique_ptr<FrameSource> inner)
    : inner_(std::move(inner)) {
  util::require(inner_ != nullptr, "GaussianQuantizer: inner source required");
}

double GaussianQuantizer::next_frame() {
  const double raw = inner_->next_frame();
  if (raw <= 0.0) {
    ++clamp_count_;
    return 0.0;
  }
  return std::round(raw);
}

std::unique_ptr<FrameSource> GaussianQuantizer::clone(
    std::uint64_t seed) const {
  return std::make_unique<GaussianQuantizer>(inner_->clone(seed));
}

std::string GaussianQuantizer::name() const {
  return "quantized(" + inner_->name() + ")";
}

double GaussianQuantizer::clamp_probability() const {
  const double mu = inner_->mean();
  const double sd = std::sqrt(inner_->variance());
  return util::normal_cdf(-mu / sd);
}

}  // namespace cts::proc
