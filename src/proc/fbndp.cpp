#include "cts/proc/fbndp.hpp"

#include <cmath>

#include "cts/obs/metrics.hpp"
#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::proc {

void FbndpParams::validate() const {
  util::require(alpha > 0.0 && alpha < 1.0,
                "FbndpParams: alpha must be in (0,1)");
  util::require(A > 0.0, "FbndpParams: A must be > 0");
  util::require(M >= 1, "FbndpParams: M must be >= 1");
  util::require(R > 0.0, "FbndpParams: R must be > 0");
  util::require(Ts > 0.0, "FbndpParams: Ts must be > 0");
}

double FbndpParams::fractal_onset_time() const {
  validate();
  const double factor = alpha * (alpha + 1.0) / (2.0 - alpha) *
                        ((1.0 - alpha) * std::exp(2.0 - alpha) + 1.0);
  return std::pow(factor / R * std::pow(A, alpha - 1.0), 1.0 / alpha);
}

double FbndpParams::frame_variance() const {
  const double t0 = fractal_onset_time();
  return (1.0 + std::pow(Ts / t0, alpha)) * lambda() * Ts;
}

double FbndpParams::acf_weight() const {
  const double t0 = fractal_onset_time();
  const double ts_a = std::pow(Ts, alpha);
  const double t0_a = std::pow(t0, alpha);
  return ts_a / (ts_a + t0_a);
}

double FbndpParams::acf(std::size_t k) const {
  if (k == 0) return 1.0;
  return acf_weight() * 0.5 *
         util::second_central_difference_pow(k, alpha + 1.0);
}

FbndpSource::FbndpSource(const FbndpParams& params, std::uint64_t seed)
    : params_(params),
      rng_(seed),
      fbn_(OnOffParams{params.alpha, params.A}, params.M, rng_.split()) {
  params_.validate();
}

FbndpSource::~FbndpSource() {
  // Sources live for exactly one replication, so this is one locked merge
  // per (replication, source) — never on the per-frame path.
  if (frames_generated_ == 0) return;
  try {
    obs::MetricsRegistry::global().add("proc.fbndp.frames",
                                       frames_generated_);
  } catch (...) {
    // Metrics flushing must never throw from a destructor.
  }
}

double FbndpSource::next_frame() {
  ++frames_generated_;
  // Conditional on the rate path, arrivals in the frame window are Poisson
  // with mean R * (aggregate ON time of the M sources in the window).
  const double integrated_rate =
      params_.R * fbn_.aggregate_on_time(params_.Ts);
  return static_cast<double>(util::poisson_sample(rng_, integrated_rate));
}

std::unique_ptr<FrameSource> FbndpSource::clone(std::uint64_t seed) const {
  return std::make_unique<FbndpSource>(params_, seed);
}

std::string FbndpSource::name() const {
  return "FBNDP(alpha=" + std::to_string(params_.alpha) + ")";
}

}  // namespace cts::proc
