#include "cts/proc/ar1.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::proc {

void Ar1Params::validate() const {
  util::require(std::abs(phi) < 1.0, "Ar1Params: |phi| must be < 1");
  util::require(variance > 0.0, "Ar1Params: variance must be > 0");
}

Ar1Source::Ar1Source(const Ar1Params& params, std::uint64_t seed)
    : params_(params), rng_(seed), state_(0.0) {
  params_.validate();
  // Stationary start: X_0 ~ N(mu, sigma^2).
  state_ = params_.mean + std::sqrt(params_.variance) * normal_(rng_);
}

double Ar1Source::next_frame() {
  const double innovation_sd =
      std::sqrt(params_.variance * (1.0 - params_.phi * params_.phi));
  state_ = params_.mean + params_.phi * (state_ - params_.mean) +
           innovation_sd * normal_(rng_);
  return state_;
}

std::unique_ptr<FrameSource> Ar1Source::clone(std::uint64_t seed) const {
  return std::make_unique<Ar1Source>(params_, seed);
}

std::string Ar1Source::name() const {
  return "AR1(phi=" + std::to_string(params_.phi) + ")";
}

}  // namespace cts::proc
