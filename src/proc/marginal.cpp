#include "cts/proc/marginal.hpp"

#include <cmath>

#include "cts/util/error.hpp"

namespace cts::proc {

GaussianMarginal::GaussianMarginal(double mean, double variance)
    : mean_(mean), variance_(variance) {
  util::require(variance > 0.0, "GaussianMarginal: variance must be > 0");
}

double GaussianMarginal::sample(util::Xoshiro256pp& rng) const {
  // Box-Muller-free polar sampling without cached state (marginals are
  // shared across sources, so the sampler must be stateless).
  double u, v, s;
  do {
    u = 2.0 * rng.uniform01() - 1.0;
    v = 2.0 * rng.uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double z = u * std::sqrt(-2.0 * std::log(s) / s);
  return mean_ + std::sqrt(variance_) * z;
}

std::string GaussianMarginal::name() const {
  return "gaussian(" + std::to_string(mean_) + "," +
         std::to_string(variance_) + ")";
}

NegativeBinomialMarginal::NegativeBinomialMarginal(double mean,
                                                   double variance)
    : mean_(mean), variance_(variance) {
  util::require(mean > 0.0, "NegativeBinomialMarginal: mean must be > 0");
  util::require(variance > mean,
                "NegativeBinomialMarginal: variance must exceed mean "
                "(over-dispersion)");
  shape_ = mean * mean / (variance - mean);
}

double NegativeBinomialMarginal::sample(util::Xoshiro256pp& rng) const {
  const double lambda =
      util::gamma_sample(rng, shape_, mean_ / shape_);
  return static_cast<double>(util::poisson_sample(rng, lambda));
}

std::string NegativeBinomialMarginal::name() const {
  return "negbinom(" + std::to_string(mean_) + "," +
         std::to_string(variance_) + ")";
}

LogNormalMarginal::LogNormalMarginal(double mean, double variance)
    : mean_(mean), variance_(variance) {
  util::require(mean > 0.0, "LogNormalMarginal: mean must be > 0");
  util::require(variance > 0.0, "LogNormalMarginal: variance must be > 0");
  const double sigma2 = std::log1p(variance / (mean * mean));
  sigma_log_ = std::sqrt(sigma2);
  mu_log_ = std::log(mean) - 0.5 * sigma2;
}

double LogNormalMarginal::sample(util::Xoshiro256pp& rng) const {
  // Stateless polar normal (see GaussianMarginal).
  double u, v, s;
  do {
    u = 2.0 * rng.uniform01() - 1.0;
    v = 2.0 * rng.uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double z = u * std::sqrt(-2.0 * std::log(s) / s);
  return std::exp(mu_log_ + sigma_log_ * z);
}

std::string LogNormalMarginal::name() const {
  return "lognormal(" + std::to_string(mean_) + "," +
         std::to_string(variance_) + ")";
}

}  // namespace cts::proc
