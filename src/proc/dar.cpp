#include "cts/proc/dar.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cts/obs/metrics.hpp"
#include "cts/util/error.hpp"

namespace cts::proc {

void DarParams::validate() const {
  util::require(rho >= 0.0 && rho < 1.0, "DarParams: rho must be in [0,1)");
  util::require(!lag_probs.empty(), "DarParams: need at least one lag prob");
  double sum = 0.0;
  for (const double a : lag_probs) {
    util::require(a >= -1e-12, "DarParams: lag probabilities must be >= 0");
    sum += a;
  }
  util::require(std::abs(sum - 1.0) < 1e-9,
                "DarParams: lag probabilities must sum to 1");
  util::require(variance > 0.0, "DarParams: variance must be > 0");
}

std::vector<double> DarParams::acf(std::size_t max_lag) const {
  validate();
  const std::size_t p = order();
  std::vector<double> r(std::max(max_lag, p) + 1, 0.0);
  r[0] = 1.0;
  // Yule-Walker-shaped recursion with symmetric extension r(-m) = r(m):
  //   r(k) = rho * sum_i a_i r(|k - i|).
  // For k < p this references lags above k, so the first p lags form an
  // implicit linear system; fixed-point iteration converges geometrically
  // at rate rho < 1.
  for (int iter = 0; iter < 400; ++iter) {
    double delta = 0.0;
    for (std::size_t k = 1; k <= p; ++k) {
      double acc = 0.0;
      for (std::size_t i = 1; i <= p; ++i) {
        const std::size_t lag = k >= i ? k - i : i - k;
        acc += lag_probs[i - 1] * r[lag];
      }
      const double next = rho * acc;
      delta = std::max(delta, std::abs(next - r[k]));
      r[k] = next;
    }
    if (delta < 1e-15) break;
  }
  // Lags beyond p are explicit in earlier values.
  for (std::size_t k = p + 1; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 1; i <= p; ++i) {
      acc += lag_probs[i - 1] * r[k - i];
    }
    r[k] = rho * acc;
  }
  r.resize(max_lag + 1);
  return r;
}

DarSource::DarSource(const DarParams& params, std::uint64_t seed)
    : DarSource(params, nullptr, seed) {}

DarSource::DarSource(const DarParams& params,
                     std::shared_ptr<const MarginalDistribution> marginal,
                     std::uint64_t seed)
    : params_(params),
      marginal_(std::move(marginal)),
      rng_(seed),
      history_(params.lag_probs.size(), 0.0) {
  params_.validate();
  lag_cdf_.resize(params_.lag_probs.size());
  double cum = 0.0;
  for (std::size_t i = 0; i < params_.lag_probs.size(); ++i) {
    cum += params_.lag_probs[i];
    lag_cdf_[i] = cum;
  }
  lag_cdf_.back() = 1.0;  // guard against rounding
  // Start the chain stationary: the marginal of DAR(p) equals the
  // innovation marginal for every n, so filling the history with i.i.d.
  // draws gives the correct marginal immediately; the correlation structure
  // converges within a few multiples of p (handled by simulator warmup).
  for (auto& h : history_) h = sample_innovation();
}

double DarSource::sample_innovation() {
  if (marginal_) return marginal_->sample(rng_);
  return params_.mean + std::sqrt(params_.variance) * normal_(rng_);
}

double DarSource::mean() const {
  return marginal_ ? marginal_->mean() : params_.mean;
}

double DarSource::variance() const {
  return marginal_ ? marginal_->variance() : params_.variance;
}

DarSource::~DarSource() {
  if (frames_generated_ == 0) return;
  try {
    obs::MetricsRegistry::global().add("proc.dar.frames", frames_generated_);
  } catch (...) {
    // Metrics flushing must never throw from a destructor.
  }
}

double DarSource::next_frame() {
  ++frames_generated_;
  const std::size_t p = history_.size();
  double value;
  if (rng_.uniform01() < params_.rho) {
    // Repeat the value from a random one of the last p frames.
    const double u = rng_.uniform01();
    std::size_t lag_index = 0;
    while (lag_index + 1 < p && u > lag_cdf_[lag_index]) ++lag_index;
    // history_ is a ring: head_ points at S_{n-1}; S_{n-1-j} sits at
    // (head_ + j) mod p.
    value = history_[(head_ + lag_index) % p];
  } else {
    value = sample_innovation();
  }
  // Push the new value: it becomes S_{n-1} for the next step.
  head_ = (head_ + p - 1) % p;
  history_[head_] = value;
  return value;
}

std::unique_ptr<FrameSource> DarSource::clone(std::uint64_t seed) const {
  return std::make_unique<DarSource>(params_, marginal_, seed);
}

std::string DarSource::name() const {
  std::string base = "DAR(" + std::to_string(params_.order()) + ")";
  if (marginal_) {
    base += '/';
    base += marginal_->name();
  }
  return base;
}

}  // namespace cts::proc
