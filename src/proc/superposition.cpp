#include "cts/proc/superposition.hpp"

#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

SuperposedSource::SuperposedSource(
    std::vector<std::unique_ptr<FrameSource>> components, std::string name)
    : components_(std::move(components)), name_(std::move(name)) {
  util::require(!components_.empty(),
                "SuperposedSource: need at least one component");
  for (const auto& c : components_) {
    util::require(c != nullptr, "SuperposedSource: null component");
  }
}

double SuperposedSource::next_frame() {
  double total = 0.0;
  for (auto& c : components_) total += c->next_frame();
  return total;
}

double SuperposedSource::mean() const {
  double total = 0.0;
  for (const auto& c : components_) total += c->mean();
  return total;
}

double SuperposedSource::variance() const {
  // Components are independent by construction, so variances add.
  double total = 0.0;
  for (const auto& c : components_) total += c->variance();
  return total;
}

std::unique_ptr<FrameSource> SuperposedSource::clone(std::uint64_t seed) const {
  // Derive decorrelated per-component seeds deterministically.
  util::SplitMix64 seeder(seed);
  std::vector<std::unique_ptr<FrameSource>> clones;
  clones.reserve(components_.size());
  for (const auto& c : components_) {
    clones.push_back(c->clone(seeder.next()));
  }
  return std::make_unique<SuperposedSource>(std::move(clones), name_);
}

}  // namespace cts::proc
