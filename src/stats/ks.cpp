#include "cts/stats/ks.hpp"

#include <algorithm>
#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::stats {

KsResult ks_test_normal(std::vector<double> sample, double mean,
                        double variance) {
  util::require(!sample.empty(), "ks_test_normal: empty sample");
  util::require(variance > 0.0, "ks_test_normal: variance must be > 0");
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  const double sd = std::sqrt(variance);
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double cdf = util::normal_cdf((sample[i] - mean) / sd);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(cdf - lo), std::abs(hi - cdf)));
  }
  KsResult result;
  result.statistic = d;
  result.p_value = kolmogorov_q(std::sqrt(n) * d);
  return result;
}

double kolmogorov_q(double x) {
  if (x <= 0.0) return 1.0;
  // Alternating series; converges fast for x > 0.2.  For tiny x the
  // complementary form is unnecessary here because Q ~ 1 anyway.
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * static_cast<double>(j) *
                                 static_cast<double>(j) * x * x);
    sum += (j % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace cts::stats
