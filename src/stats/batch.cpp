#include "cts/stats/batch.hpp"

#include <cmath>

#include "cts/util/error.hpp"
#include "cts/util/student_t.hpp"

namespace cts::stats {

IntervalEstimate replication_interval(const std::vector<double>& estimates,
                                      double confidence) {
  util::require(!estimates.empty(), "replication_interval: no estimates");
  IntervalEstimate out;
  out.samples = estimates.size();
  double mean = 0.0;
  for (const double e : estimates) mean += e;
  mean /= static_cast<double>(estimates.size());
  out.mean = mean;
  if (estimates.size() < 2) return out;
  double ss = 0.0;
  for (const double e : estimates) ss += (e - mean) * (e - mean);
  const double stddev =
      std::sqrt(ss / static_cast<double>(estimates.size() - 1));
  out.half_width =
      util::confidence_half_width(stddev, estimates.size(), confidence);
  return out;
}

IntervalEstimate batch_means_interval(const std::vector<double>& series,
                                      std::size_t batches, double confidence) {
  util::require(batches >= 2, "batch_means_interval: need >= 2 batches");
  util::require(series.size() >= batches,
                "batch_means_interval: series shorter than batch count");
  const std::size_t len = series.size() / batches;
  std::vector<double> means(batches, 0.0);
  for (std::size_t b = 0; b < batches; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < len; ++i) acc += series[b * len + i];
    means[b] = acc / static_cast<double>(len);
  }
  return replication_interval(means, confidence);
}

}  // namespace cts::stats
