#include "cts/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cts/util/error.hpp"

namespace cts::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  util::require(hi > lo, "Histogram: hi must exceed lo");
  util::require(bins >= 1, "Histogram: need at least one bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge guard
  ++counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  util::require(bin < counts_.size(), "Histogram: bin out of range");
  return lo_ + static_cast<double>(bin) * width_;
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + width_;
}

double Histogram::density(std::size_t bin) const {
  util::require(bin < counts_.size(), "Histogram: bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[b]) /
                     static_cast<double>(peak) *
                     static_cast<double>(bar_width)));
    out << "[" << bin_low(b) << ", " << bin_high(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << '\n';
  }
  return out.str();
}

}  // namespace cts::stats
