#include "cts/stats/acf.hpp"

#include "cts/util/error.hpp"

namespace cts::stats {

double sample_mean(const std::vector<double>& series) {
  util::require(!series.empty(), "sample_mean: empty series");
  double acc = 0.0;
  for (const double x : series) acc += x;
  return acc / static_cast<double>(series.size());
}

double sample_variance(const std::vector<double>& series) {
  const double m = sample_mean(series);
  double acc = 0.0;
  for (const double x : series) acc += (x - m) * (x - m);
  return acc / static_cast<double>(series.size());
}

std::vector<double> autocovariance(const std::vector<double>& series,
                                   std::size_t max_lag) {
  util::require(series.size() > max_lag,
                "autocovariance: series shorter than max_lag");
  const std::size_t n = series.size();
  const double m = sample_mean(series);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = series[i] - m;
  std::vector<double> gamma(max_lag + 1, 0.0);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) acc += centered[t] * centered[t + k];
    gamma[k] = acc / static_cast<double>(n);
  }
  return gamma;
}

std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag) {
  std::vector<double> gamma = autocovariance(series, max_lag);
  util::require(gamma[0] > 0.0, "autocorrelation: zero variance");
  const double inv = 1.0 / gamma[0];
  for (auto& g : gamma) g *= inv;
  return gamma;
}

std::vector<double> aggregate_series(const std::vector<double>& series,
                                     std::size_t m) {
  util::require(m >= 1, "aggregate_series: m must be >= 1");
  const std::size_t blocks = series.size() / m;
  std::vector<double> out(blocks, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += series[b * m + i];
    out[b] = acc / static_cast<double>(m);
  }
  return out;
}

}  // namespace cts::stats
