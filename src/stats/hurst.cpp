#include "cts/stats/hurst.hpp"

#include <algorithm>
#include <cmath>

#include "cts/stats/acf.hpp"
#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cts::stats {

namespace {

/// Geometrically spaced integer levels in [lo, hi], deduplicated.
std::vector<std::size_t> geometric_levels(std::size_t lo, std::size_t hi,
                                          double factor = 1.5) {
  std::vector<std::size_t> levels;
  double x = static_cast<double>(lo);
  while (x <= static_cast<double>(hi)) {
    const auto level = static_cast<std::size_t>(std::llround(x));
    if (levels.empty() || level > levels.back()) levels.push_back(level);
    x *= factor;
  }
  return levels;
}

}  // namespace

HurstEstimate hurst_variance_time(const std::vector<double>& series,
                                  std::size_t min_m, std::size_t min_blocks) {
  util::require(series.size() >= min_m * min_blocks,
                "hurst_variance_time: series too short");
  const std::size_t max_m = series.size() / min_blocks;
  std::vector<double> log_m;
  std::vector<double> log_var;
  for (const std::size_t m : geometric_levels(min_m, max_m)) {
    const std::vector<double> agg = aggregate_series(series, m);
    if (agg.size() < 2) break;
    const double v = sample_variance(agg);
    if (v <= 0.0) continue;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(v));
  }
  const util::LinearFit fit = util::linear_least_squares(log_m, log_var);
  HurstEstimate est;
  est.slope = fit.slope;
  est.r_squared = fit.r_squared;
  est.points = log_m.size();
  // Var(X^{(m)}) ~ m^{2H-2}  =>  H = 1 + slope/2, clamped to (0, 1).
  est.hurst = std::clamp(1.0 + fit.slope / 2.0, 0.01, 0.99);
  return est;
}

HurstEstimate hurst_rescaled_range(const std::vector<double>& series,
                                   std::size_t min_n) {
  util::require(series.size() >= 2 * min_n,
                "hurst_rescaled_range: series too short");
  std::vector<double> log_n;
  std::vector<double> log_rs;
  for (const std::size_t n : geometric_levels(min_n, series.size() / 2)) {
    const std::size_t blocks = series.size() / n;
    if (blocks == 0) break;
    double rs_sum = 0.0;
    std::size_t rs_count = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t off = b * n;
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += series[off + i];
      mean /= static_cast<double>(n);
      double cum = 0.0;
      double cmin = 0.0;
      double cmax = 0.0;
      double ss = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d = series[off + i] - mean;
        cum += d;
        cmin = std::min(cmin, cum);
        cmax = std::max(cmax, cum);
        ss += d * d;
      }
      const double s = std::sqrt(ss / static_cast<double>(n));
      if (s <= 0.0) continue;
      rs_sum += (cmax - cmin) / s;
      ++rs_count;
    }
    if (rs_count == 0) continue;
    log_n.push_back(std::log(static_cast<double>(n)));
    log_rs.push_back(std::log(rs_sum / static_cast<double>(rs_count)));
  }
  const util::LinearFit fit = util::linear_least_squares(log_n, log_rs);
  HurstEstimate est;
  est.slope = fit.slope;
  est.r_squared = fit.r_squared;
  est.points = log_n.size();
  est.hurst = std::clamp(fit.slope, 0.01, 0.99);
  return est;
}

HurstEstimate hurst_gph(const std::vector<double>& series, double power) {
  util::require(power > 0.0 && power < 1.0, "hurst_gph: power must be in (0,1)");
  const std::size_t n = series.size();
  util::require(n >= 64, "hurst_gph: series too short");
  const auto m = static_cast<std::size_t>(
      std::floor(std::pow(static_cast<double>(n), power)));
  const double mean = sample_mean(series);
  std::vector<double> log_freq_term;
  std::vector<double> log_periodogram;
  for (std::size_t j = 1; j <= m; ++j) {
    const double w = 2.0 * util::kPi * static_cast<double>(j) /
                     static_cast<double>(n);
    // Direct DFT at the j-th Fourier frequency (m ~ sqrt(n) frequencies, so
    // O(n sqrt n) total -- cheap next to trace generation).
    double re = 0.0;
    double im = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double x = series[t] - mean;
      const double phase = w * static_cast<double>(t);
      re += x * std::cos(phase);
      im += x * std::sin(phase);
    }
    const double periodogram =
        (re * re + im * im) / (2.0 * util::kPi * static_cast<double>(n));
    if (periodogram <= 0.0) continue;
    // GPH regressor: log(4 sin^2(w/2)); slope is -d with H = d + 1/2.
    log_freq_term.push_back(std::log(4.0 * std::sin(w / 2.0) *
                                     std::sin(w / 2.0)));
    log_periodogram.push_back(std::log(periodogram));
  }
  const util::LinearFit fit =
      util::linear_least_squares(log_freq_term, log_periodogram);
  HurstEstimate est;
  est.slope = fit.slope;
  est.r_squared = fit.r_squared;
  est.points = log_freq_term.size();
  est.hurst = std::clamp(0.5 - fit.slope, 0.01, 0.99);
  return est;
}

HurstEstimate hurst_local_whittle(const std::vector<double>& series,
                                  double power) {
  util::require(power > 0.0 && power < 1.0,
                "hurst_local_whittle: power must be in (0,1)");
  const std::size_t n = series.size();
  util::require(n >= 128, "hurst_local_whittle: series too short");
  const auto m = static_cast<std::size_t>(
      std::floor(std::pow(static_cast<double>(n), power)));
  const double mean = sample_mean(series);

  // Periodogram at the lowest m Fourier frequencies (direct DFT: m ~ n^0.65
  // frequencies keeps this O(n^1.65), trivial next to trace generation).
  std::vector<double> lambda(m);
  std::vector<double> periodogram(m);
  for (std::size_t j = 1; j <= m; ++j) {
    const double w = 2.0 * util::kPi * static_cast<double>(j) /
                     static_cast<double>(n);
    double re = 0.0;
    double im = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double x = series[t] - mean;
      const double phase = w * static_cast<double>(t);
      re += x * std::cos(phase);
      im += x * std::sin(phase);
    }
    lambda[j - 1] = w;
    periodogram[j - 1] =
        (re * re + im * im) / (2.0 * util::kPi * static_cast<double>(n));
  }
  double mean_log_lambda = 0.0;
  for (const double l : lambda) mean_log_lambda += std::log(l);
  mean_log_lambda /= static_cast<double>(m);

  auto objective = [&](double h) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      acc += periodogram[j] * std::pow(lambda[j], 2.0 * h - 1.0);
    }
    return std::log(acc / static_cast<double>(m)) -
           (2.0 * h - 1.0) * mean_log_lambda;
  };

  // Golden-section minimisation over H.
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.01;
  double hi = 0.99;
  double x1 = hi - gr * (hi - lo);
  double x2 = lo + gr * (hi - lo);
  double f1 = objective(x1);
  double f2 = objective(x2);
  for (int iter = 0; iter < 100 && (hi - lo) > 1e-7; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - gr * (hi - lo);
      f1 = objective(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + gr * (hi - lo);
      f2 = objective(x2);
    }
  }
  HurstEstimate est;
  est.hurst = 0.5 * (lo + hi);
  est.slope = 2.0 * est.hurst - 1.0;
  est.r_squared = 1.0;  // not regression-based
  est.points = m;
  return est;
}

HurstEstimate hurst_wavelet(const std::vector<double>& series,
                            std::size_t min_scale) {
  util::require(series.size() >= 256, "hurst_wavelet: series too short");
  util::require(min_scale >= 1, "hurst_wavelet: min_scale must be >= 1");
  // Haar pyramid: at each level, details d_k = (a_{2k} - a_{2k+1})/sqrt(2),
  // approximations a'_k = (a_{2k} + a_{2k+1})/sqrt(2).
  std::vector<double> approx = series;
  std::vector<double> log2_scale;
  std::vector<double> log2_energy;
  std::vector<double> weights;  // ~ coefficient count per scale
  std::size_t scale = 1;
  while (approx.size() >= 32) {
    const std::size_t half = approx.size() / 2;
    std::vector<double> next(half);
    double energy = 0.0;
    for (std::size_t k = 0; k < half; ++k) {
      const double d = (approx[2 * k] - approx[2 * k + 1]) / std::sqrt(2.0);
      next[k] = (approx[2 * k] + approx[2 * k + 1]) / std::sqrt(2.0);
      energy += d * d;
    }
    energy /= static_cast<double>(half);
    if (scale >= min_scale && energy > 0.0) {
      log2_scale.push_back(static_cast<double>(scale));
      log2_energy.push_back(std::log2(energy));
      weights.push_back(static_cast<double>(half));
    }
    approx = std::move(next);
    ++scale;
  }
  util::require(log2_scale.size() >= 3,
                "hurst_wavelet: not enough usable scales (series too short "
                "or min_scale too high)");
  // Abry-Veitch weighted regression: Var(log2 mu_j) ~ 1/n_j, so weight each
  // scale by its coefficient count (unweighted fits are dominated by the
  // noisy coarse scales and biased low).
  double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0, swyy = 0.0;
  for (std::size_t i = 0; i < log2_scale.size(); ++i) {
    const double w = weights[i];
    const double x = log2_scale[i];
    const double y = log2_energy[i];
    sw += w;
    swx += w * x;
    swy += w * y;
    swxx += w * x * x;
    swxy += w * x * y;
    swyy += w * y * y;
  }
  const double sxx = swxx - swx * swx / sw;
  const double sxy = swxy - swx * swy / sw;
  const double syy = swyy - swy * swy / sw;
  util::require(sxx > 0.0, "hurst_wavelet: degenerate scale grid");
  HurstEstimate est;
  est.slope = sxy / sxx;
  est.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  est.points = log2_scale.size();
  // Detail energy of an LRD process scales as 2^{j(2H-1)}.
  est.hurst = std::clamp((est.slope + 1.0) / 2.0, 0.01, 0.99);
  return est;
}

}  // namespace cts::stats
