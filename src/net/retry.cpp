#include "cts/net/retry.hpp"

namespace cts::net {

double RetryPolicy::delay_s(int attempt) const {
  if (attempt <= 1) return 0.0;
  double delay = base_delay_s;
  for (int i = 2; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= max_delay_s) return max_delay_s;
  }
  return delay < max_delay_s ? delay : max_delay_s;
}

}  // namespace cts::net
