#include "cts/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "cts/net/frame.hpp"

namespace cts::net {

namespace {

std::string errno_text() { return std::strerror(errno); }

double monotonic_s() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Polls `fd` for `events` until `deadline`; false on expiry.  Throws
/// NetError when poll itself fails.
bool poll_until(int fd, short events, double deadline) {
  for (;;) {
    const double remaining = deadline - monotonic_s();
    if (remaining <= 0) return false;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int timeout_ms =
        remaining > 3600 ? 3600 * 1000 : static_cast<int>(remaining * 1e3) + 1;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) continue;  // re-check the deadline
    if (errno == EINTR) continue;
    throw NetError("poll: " + errno_text());
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<Endpoint> parse_worker_list(const std::string& csv) {
  std::vector<Endpoint> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string entry = csv.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (comma == std::string::npos) break;
      throw util::InvalidArgument("--workers: empty entry in \"" + csv + "\"");
    }
    const std::size_t colon = entry.rfind(':');
    util::require(colon != std::string::npos && colon > 0,
                  "--workers: \"" + entry + "\" is not host:port");
    const std::string port_text = entry.substr(colon + 1);
    char* endp = nullptr;
    errno = 0;
    const unsigned long port = std::strtoul(port_text.c_str(), &endp, 10);
    util::require(endp != nullptr && *endp == '\0' && !port_text.empty() &&
                      errno == 0 && port >= 1 && port <= 65535,
                  "--workers: \"" + entry + "\" has an invalid port");
    out.push_back({entry.substr(0, colon), static_cast<std::uint16_t>(port)});
    if (comma == std::string::npos) break;
  }
  util::require(!out.empty(), "--workers: no worker endpoints in \"" + csv +
                                  "\"");
  return out;
}

Socket listen_on(std::uint16_t port, std::uint16_t* actual_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw NetError("socket: " + errno_text());
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw NetError("bind to port " + std::to_string(port) + ": " +
                   errno_text());
  }
  if (::listen(sock.fd(), 16) != 0) {
    throw NetError("listen: " + errno_text());
  }
  if (actual_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      throw NetError("getsockname: " + errno_text());
    }
    *actual_port = ntohs(bound.sin_port);
  }
  set_nonblocking(sock.fd());
  return sock;
}

Socket accept_connection(const Socket& listener, double timeout_s) {
  const double deadline = monotonic_s() + timeout_s;
  for (;;) {
    if (!poll_until(listener.fd(), POLLIN, deadline)) return Socket();
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nonblocking(fd);
      return Socket(fd);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // the pending connection vanished; keep waiting
    }
    throw NetError("accept: " + errno_text());
  }
}

Socket connect_to(const Endpoint& ep, double timeout_s) {
  const double deadline = monotonic_s() + timeout_s;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_text = std::to_string(ep.port);
  const int gai = ::getaddrinfo(ep.host.c_str(), port_text.c_str(), &hints,
                                &res);
  if (gai != 0) {
    throw NetError("resolve " + ep.str() + ": " + ::gai_strerror(gai));
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last_error = "socket: " + errno_text();
      continue;
    }
    set_nonblocking(sock.fd());
    if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return sock;
    }
    if (errno != EINPROGRESS) {
      last_error = "connect " + ep.str() + ": " + errno_text();
      continue;
    }
    try {
      if (!poll_until(sock.fd(), POLLOUT, deadline)) {
        ::freeaddrinfo(res);
        throw NetTimeout("connect " + ep.str() + ": timed out");
      }
    } catch (...) {
      ::freeaddrinfo(res);
      throw;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 &&
        so_error == 0) {
      ::freeaddrinfo(res);
      return sock;
    }
    last_error =
        "connect " + ep.str() + ": " + std::strerror(so_error);
  }
  ::freeaddrinfo(res);
  throw NetError(last_error);
}

void send_frame(const Socket& sock, const std::string& payload,
                double timeout_s) {
  const std::string bytes = encode_frame(payload);
  const double deadline = monotonic_s() + timeout_s;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(sock.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_until(sock.fd(), POLLOUT, deadline)) {
        throw NetTimeout("send: timed out after " +
                         std::to_string(timeout_s) + "s");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw NetError("send: " + (n == 0 ? std::string("connection closed")
                                      : errno_text()));
  }
}

std::string recv_frame(const Socket& sock, double timeout_s) {
  const double deadline = monotonic_s() + timeout_s;
  FrameDecoder decoder;
  std::string payload;
  char buf[1 << 16];
  for (;;) {
    if (decoder.next(&payload)) return payload;
    if (!poll_until(sock.fd(), POLLIN, deadline)) {
      throw NetTimeout("recv: timed out after " + std::to_string(timeout_s) +
                       "s");
    }
    const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      throw NetError("recv: connection closed mid-frame (" +
                     std::to_string(decoder.buffered()) + " bytes buffered)");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    throw NetError("recv: " + errno_text());
  }
}

}  // namespace cts::net
