#include "cts/net/frame.hpp"

#include <cstdint>

#include "cts/util/error.hpp"

namespace cts::net {

std::string encode_frame(const std::string& payload) {
  util::require(payload.size() <= kMaxFrameBytes,
                "frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame limit");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

void FrameDecoder::feed(const std::string& bytes) {
  buf_ += bytes;
}

bool FrameDecoder::next(std::string* payload) {
  if (buf_.size() < 4) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[i]));
  };
  const std::uint32_t n = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  util::require(n <= kMaxFrameBytes,
                "frame header announces " + std::to_string(n) +
                    " bytes, above the " + std::to_string(kMaxFrameBytes) +
                    "-byte frame limit (protocol corruption?)");
  if (buf_.size() < 4 + static_cast<std::size_t>(n)) return false;
  payload->assign(buf_, 4, n);
  buf_.erase(0, 4 + static_cast<std::size_t>(n));
  return true;
}

}  // namespace cts::net
