#include "cts/net/stats.hpp"

#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::net {

namespace obs = cts::obs;
namespace cu = cts::util;

std::string write_stats_request_json(StatsFormat format) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kStatsRequestSchema);
  if (format == StatsFormat::kOpenMetrics) {
    w.key("format").value("openmetrics");
  }
  w.end_object();
  return os.str();
}

StatsFormat parse_stats_request(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema = doc.find("schema");
  cu::require(schema != nullptr && schema->is_string() &&
                  schema->as_string() == kStatsRequestSchema,
              std::string("stats request: expected schema \"") +
                  kStatsRequestSchema + "\"");
  const obs::JsonValue* format = doc.find("format");
  if (format == nullptr) return StatsFormat::kJson;
  cu::require(format->is_string(), "stats request: format must be a string");
  const std::string& name = format->as_string();
  if (name == "json") return StatsFormat::kJson;
  if (name == "openmetrics") return StatsFormat::kOpenMetrics;
  cu::require(false, "stats request: format must be json|openmetrics, got '" +
                         name + "'");
  return StatsFormat::kJson;  // unreachable
}

std::string write_stats_json(const WorkerStats& stats) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kStatsSchema);
  w.key("worker").value(stats.worker);
  w.key("pid").value(stats.pid);
  w.key("uptime_s").value(stats.uptime_s);
  w.key("jobs").begin_object();
  w.key("in_flight").value(stats.jobs_in_flight);
  w.key("ok").value(stats.jobs_ok);
  w.key("failed").value(stats.jobs_failed);
  w.key("retried").value(stats.jobs_retried);
  w.end_object();
  w.key("stats_served").value(stats.stats_served);
  w.key("metrics");
  obs::write_metrics_snapshot(w, stats.metrics);
  w.key("spans").begin_array();
  for (const obs::SpanAgg& s : stats.spans) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("count").value(s.count);
    w.key("total_us").value(s.total_us);
    w.key("self_us").value(s.self_us);
    w.key("min_us").value(s.min_us);
    w.key("max_us").value(s.max_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

WorkerStats parse_stats(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema = doc.find("schema");
  cu::require(schema != nullptr && schema->is_string() &&
                  schema->as_string() == kStatsSchema,
              std::string("stats: expected schema \"") + kStatsSchema + "\"");
  WorkerStats stats;
  stats.worker = doc.at("worker").as_string();
  cu::require(!stats.worker.empty(), "stats: empty worker identity");
  stats.pid = static_cast<std::int64_t>(doc.at("pid").as_number());
  stats.uptime_s = doc.at("uptime_s").as_number();
  cu::require(stats.uptime_s >= 0, "stats: negative uptime_s");
  const obs::JsonValue& jobs = doc.at("jobs");
  cu::require(jobs.is_object(), "stats: jobs must be an object");
  const auto count_of = [&jobs](const char* key) {
    const double v = jobs.at(key).as_number();
    cu::require(v >= 0, std::string("stats: negative jobs.") + key);
    return static_cast<std::uint64_t>(v);
  };
  stats.jobs_in_flight = count_of("in_flight");
  stats.jobs_ok = count_of("ok");
  stats.jobs_failed = count_of("failed");
  stats.jobs_retried = count_of("retried");
  stats.stats_served =
      static_cast<std::uint64_t>(doc.at("stats_served").as_number());
  stats.metrics = obs::metrics_snapshot_from_json(doc.at("metrics"));
  const obs::JsonValue& spans = doc.at("spans");
  cu::require(spans.is_array(), "stats: spans must be an array");
  for (const obs::JsonValue& item : spans.items) {
    cu::require(item.is_object(), "stats: span entry must be an object");
    obs::SpanAgg agg;
    agg.name = item.at("name").as_string();
    cu::require(!agg.name.empty(), "stats: empty span name");
    agg.count = static_cast<std::uint64_t>(item.at("count").as_number());
    agg.total_us = static_cast<std::int64_t>(item.at("total_us").as_number());
    agg.self_us = static_cast<std::int64_t>(item.at("self_us").as_number());
    agg.min_us = static_cast<std::int64_t>(item.at("min_us").as_number());
    agg.max_us = static_cast<std::int64_t>(item.at("max_us").as_number());
    stats.spans.push_back(std::move(agg));
  }
  return stats;
}

WorkerStats query_stats(const Endpoint& ep, double timeout_s) {
  return query_stats(ep, timeout_s, nullptr);
}

WorkerStats query_stats(const Endpoint& ep, double timeout_s,
                        std::string* raw_reply) {
  Socket sock = connect_to(ep, timeout_s);
  send_frame(sock, write_stats_request_json(), timeout_s);
  const std::string reply = recv_frame(sock, timeout_s);
  WorkerStats stats = parse_stats(reply);
  if (raw_reply != nullptr) *raw_reply = reply;
  return stats;
}

std::string query_stats_openmetrics(const Endpoint& ep, double timeout_s) {
  Socket sock = connect_to(ep, timeout_s);
  send_frame(sock, write_stats_request_json(StatsFormat::kOpenMetrics),
             timeout_s);
  return recv_frame(sock, timeout_s);
}

}  // namespace cts::net
