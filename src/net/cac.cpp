#include "cts/net/cac.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/util/error.hpp"

namespace cts::net {

namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

const char* kind_name(CacQueryKind kind) {
  switch (kind) {
    case CacQueryKind::kAdmitBr: return "admit_br";
    case CacQueryKind::kAdmitEb: return "admit_eb";
    case CacQueryKind::kBop: return "bop";
  }
  return "?";
}

CacQueryKind kind_from_name(const std::string& name) {
  if (name == "admit_br") return CacQueryKind::kAdmitBr;
  if (name == "admit_eb") return CacQueryKind::kAdmitEb;
  if (name == "bop") return CacQueryKind::kBop;
  throw cu::InvalidArgument(
      "cac: unknown query kind '" + name +
      "' (known: admit_br, admit_eb, bop)");
}

std::string number_text(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", x);
  return buf;
}

}  // namespace

std::string write_cac_request_json(const CacRequest& request) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kCacSchema);
  w.key("model").begin_object();
  if (!request.model.zoo_id.empty()) {
    w.key("id").value(request.model.zoo_id);
  } else {
    w.key("kind").value(request.model.kind);
    w.key("mean").value(request.model.mean);
    w.key("variance").value(request.model.variance);
    if (request.model.kind == "geometric") {
      w.key("a").value(request.model.a);
    } else if (request.model.kind == "lrd") {
      w.key("hurst").value(request.model.hurst);
      w.key("weight").value(request.model.weight);
    }
  }
  w.end_object();
  w.key("deadline_s").value(request.deadline_s);
  w.key("queries").begin_array();
  for (const CacQuery& q : request.queries) {
    w.begin_object();
    w.key("kind").value(kind_name(q.kind));
    w.key("capacity").value(q.capacity);
    w.key("buffer").value(q.buffer);
    w.key("log10_clr").value(q.log10_clr);
    if (q.kind == CacQueryKind::kBop) {
      w.key("n").value(static_cast<std::uint64_t>(q.n));
      w.key("interp").value(q.interpolate);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

CacRequest parse_cac_request(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema = doc.find("schema");
  cu::require(schema != nullptr && schema->is_string() &&
                  schema->as_string() == kCacSchema,
              std::string("cac: expected schema \"") + kCacSchema + "\"");
  CacRequest request;

  const obs::JsonValue& model = doc.at("model");
  cu::require(model.is_object(), "cac: model must be an object");
  const obs::JsonValue* zoo_id = model.find("id");
  if (zoo_id != nullptr) {
    request.model.zoo_id = zoo_id->as_string();
    cu::require(!request.model.zoo_id.empty(), "cac: empty model id");
    cu::require(model.find("kind") == nullptr,
                "cac: model takes either an id or an inline kind, not both");
  } else {
    request.model.kind = model.at("kind").as_string();
    cu::require(request.model.kind == "geometric" ||
                    request.model.kind == "white" ||
                    request.model.kind == "lrd",
                "cac: unknown model kind '" + request.model.kind +
                    "' (known: geometric, white, lrd)");
    request.model.mean = model.at("mean").as_number();
    request.model.variance = model.at("variance").as_number();
    cu::require(request.model.mean > 0.0, "cac: model mean must be > 0");
    cu::require(request.model.variance > 0.0,
                "cac: model variance must be > 0");
    if (request.model.kind == "geometric") {
      request.model.a = model.at("a").as_number();
    } else if (request.model.kind == "lrd") {
      request.model.hurst = model.at("hurst").as_number();
      request.model.weight = model.at("weight").as_number();
    }
  }

  // Optional: absent means "use the daemon default".
  const obs::JsonValue* deadline = doc.find("deadline_s");
  if (deadline != nullptr) {
    request.deadline_s = deadline->as_number();
    cu::require(request.deadline_s >= 0, "cac: negative deadline_s");
  }

  const obs::JsonValue& queries = doc.at("queries");
  cu::require(queries.is_array(), "cac: queries must be an array");
  cu::require(!queries.items.empty(), "cac: empty query batch");
  for (const obs::JsonValue& entry : queries.items) {
    cu::require(entry.is_object(), "cac: each query must be an object");
    CacQuery q;
    q.kind = kind_from_name(entry.at("kind").as_string());
    q.capacity = entry.at("capacity").as_number();
    q.buffer = entry.at("buffer").as_number();
    q.log10_clr = entry.at("log10_clr").as_number();
    cu::require(q.capacity > 0.0, "cac: capacity must be > 0");
    cu::require(q.buffer >= 0.0, "cac: buffer must be >= 0");
    cu::require(q.log10_clr < 0.0,
                "cac: log10_clr must be < 0 (a loss target below 1)");
    if (q.kind == CacQueryKind::kBop) {
      const double n = entry.at("n").as_number();
      cu::require(n >= 1.0 && n == std::floor(n),
                  "cac: bop query needs an integer n >= 1");
      q.n = static_cast<std::size_t>(n);
      const obs::JsonValue* interp = entry.find("interp");
      if (interp != nullptr) q.interpolate = interp->as_bool();
    } else {
      cu::require(entry.find("n") == nullptr,
                  "cac: n is only meaningful on bop queries");
    }
    request.queries.push_back(q);
  }
  return request;
}

fit::ModelSpec resolve_cac_model(const CacModel& model) {
  if (!model.zoo_id.empty()) return fit::model_from_id(model.zoo_id);
  fit::ModelSpec spec;
  spec.mean = model.mean;
  spec.variance = model.variance;
  cu::require(spec.mean > 0.0, "cac: model mean must be > 0");
  cu::require(spec.variance > 0.0, "cac: model variance must be > 0");
  // The canonical name doubles as the admission cache key, so it must
  // encode every parameter that shapes the analytics.
  const std::string moments =
      "mu=" + number_text(model.mean) + ",var=" + number_text(model.variance);
  if (model.kind == "geometric") {
    spec.acf = std::make_shared<core::GeometricAcf>(model.a);
    spec.name = "geometric(a=" + number_text(model.a) + "," + moments + ")";
  } else if (model.kind == "white") {
    spec.acf = std::make_shared<core::WhiteAcf>();
    spec.name = "white(" + moments + ")";
  } else if (model.kind == "lrd") {
    spec.acf = std::make_shared<core::ExactLrdAcf>(model.hurst, model.weight);
    spec.name = "lrd(H=" + number_text(model.hurst) +
                ",w=" + number_text(model.weight) + "," + moments + ")";
  } else {
    throw cu::InvalidArgument("cac: unknown model kind '" + model.kind + "'");
  }
  // Analytic-only model: admission control never simulates.
  spec.make_source = nullptr;
  return spec;
}

std::string write_cac_response_json(const CacResponse& response) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kCacResultSchema);
  w.key("ok").value(response.ok);
  if (!response.ok) {
    w.key("error").value(response.error);
    w.end_object();
    return os.str();
  }
  w.key("model").value(response.model_name);
  w.key("elapsed_s").value(response.elapsed_s);
  w.key("answers").begin_array();
  for (const CacAnswer& answer : response.answers) {
    w.begin_object();
    w.key("ok").value(answer.ok);
    if (answer.ok) {
      w.key("admissible").value(static_cast<std::uint64_t>(answer.admissible));
      w.key("log10_bop").value(answer.log10_bop);
      if (answer.interpolated) w.key("interpolated").value(true);
    } else {
      w.key("error").value(answer.error);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

CacResponse parse_cac_response(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema = doc.find("schema");
  cu::require(schema != nullptr && schema->is_string() &&
                  schema->as_string() == kCacResultSchema,
              std::string("cac result: expected schema \"") +
                  kCacResultSchema + "\"");
  CacResponse response;
  response.ok = doc.at("ok").as_bool();
  if (!response.ok) {
    response.error = doc.at("error").as_string();
    cu::require(!response.error.empty(),
                "cac result: failed but no error message");
    return response;
  }
  response.model_name = doc.at("model").as_string();
  response.elapsed_s = doc.at("elapsed_s").as_number();
  const obs::JsonValue& answers = doc.at("answers");
  cu::require(answers.is_array(), "cac result: answers must be an array");
  for (const obs::JsonValue& entry : answers.items) {
    CacAnswer answer;
    answer.ok = entry.at("ok").as_bool();
    if (answer.ok) {
      const double admissible = entry.at("admissible").as_number();
      cu::require(admissible >= 0.0 && admissible == std::floor(admissible),
                  "cac result: admissible must be a non-negative integer");
      answer.admissible = static_cast<std::size_t>(admissible);
      answer.log10_bop = entry.at("log10_bop").as_number();
      const obs::JsonValue* interp = entry.find("interpolated");
      if (interp != nullptr) answer.interpolated = interp->as_bool();
    } else {
      answer.error = entry.at("error").as_string();
      cu::require(!answer.error.empty(),
                  "cac result: failed answer but no error message");
    }
    response.answers.push_back(answer);
  }
  return response;
}

}  // namespace cts::net
