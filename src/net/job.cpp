#include "cts/net/job.hpp"

#include <sstream>

#include "cts/obs/json.hpp"
#include "cts/obs/trace_merge.hpp"
#include "cts/util/error.hpp"

namespace cts::net {

namespace obs = cts::obs;
namespace cu = cts::util;

const std::vector<std::string>& job_env_allowlist() {
  static const std::vector<std::string> kAllowlist = {
      "REPRO_FULL", "REPRO_REPS", "REPRO_FRAMES"};
  return kAllowlist;
}

std::string write_job_json(const JobRequest& job) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kJobSchema);
  w.key("bench").value(job.bench_id);
  w.key("shard").begin_object();
  w.key("index").value(static_cast<std::uint64_t>(job.shard_index));
  w.key("count").value(static_cast<std::uint64_t>(job.shard_count));
  w.end_object();
  w.key("env").begin_object();
  for (const auto& [name, value] : job.env) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("timeout_s").value(job.timeout_s);
  w.key("attempt").value(static_cast<std::int64_t>(job.attempt));
  w.end_object();
  return os.str();
}

JobRequest parse_job(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema = doc.find("schema");
  cu::require(schema != nullptr && schema->is_string() &&
                  schema->as_string() == kJobSchema,
              std::string("job: expected schema \"") + kJobSchema + "\"");
  JobRequest job;
  job.bench_id = doc.at("bench").as_string();
  cu::require(!job.bench_id.empty(), "job: empty bench id");
  const obs::JsonValue& shard = doc.at("shard");
  job.shard_index = static_cast<std::size_t>(shard.at("index").as_number());
  job.shard_count = static_cast<std::size_t>(shard.at("count").as_number());
  cu::require(job.shard_count >= 1 && job.shard_index < job.shard_count,
              "job: invalid shard " + std::to_string(job.shard_index) + "/" +
                  std::to_string(job.shard_count));
  const obs::JsonValue& env = doc.at("env");
  cu::require(env.is_object(), "job: env must be an object");
  for (const auto& [name, value] : env.members) {
    bool allowed = false;
    for (const std::string& ok : job_env_allowlist()) {
      allowed = allowed || name == ok;
    }
    cu::require(allowed, "job: env var " + name +
                             " is not in the REPRO_* allowlist");
    job.env.emplace_back(name, value.as_string());
  }
  job.timeout_s = doc.at("timeout_s").as_number();
  cu::require(job.timeout_s >= 0, "job: negative timeout_s");
  // Optional: absent on pre-obs clients, which parse as attempt 0.
  const obs::JsonValue* attempt = doc.find("attempt");
  if (attempt != nullptr) {
    job.attempt = static_cast<int>(attempt->as_number());
    cu::require(job.attempt >= 0, "job: negative attempt");
  }
  return job;
}

std::string write_job_result_json(const JobResult& result) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kJobResultSchema);
  w.key("ok").value(result.ok);
  w.key("elapsed_s").value(result.elapsed_s);
  if (result.ok) {
    w.key("shard").value(result.shard_json);
  } else {
    w.key("error").value(result.error);
  }
  if (result.has_obs) {
    w.key("obs").begin_object();
    w.key("recv_us").value(result.obs.recv_us);
    w.key("send_us").value(result.obs.send_us);
    w.key("metrics");
    obs::write_metrics_snapshot(w, result.obs.metrics);
    w.key("spans");
    obs::write_trace_events(w, result.obs.spans);
    w.end_object();
  }
  w.end_object();
  return os.str();
}

JobResult parse_job_result(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* schema = doc.find("schema");
  cu::require(schema != nullptr && schema->is_string() &&
                  schema->as_string() == kJobResultSchema,
              std::string("job result: expected schema \"") +
                  kJobResultSchema + "\"");
  JobResult result;
  result.ok = doc.at("ok").as_bool();
  result.elapsed_s = doc.at("elapsed_s").as_number();
  if (result.ok) {
    result.shard_json = doc.at("shard").as_string();
    cu::require(!result.shard_json.empty(), "job result: ok but empty shard");
  } else {
    result.error = doc.at("error").as_string();
    cu::require(!result.error.empty(),
                "job result: failed but no error message");
  }
  // Optional: a pre-obs worker's reply simply has no obs section.
  const obs::JsonValue* job_obs = doc.find("obs");
  if (job_obs != nullptr) {
    cu::require(job_obs->is_object(), "job result: obs must be an object");
    result.has_obs = true;
    result.obs.recv_us =
        static_cast<std::int64_t>(job_obs->at("recv_us").as_number());
    result.obs.send_us =
        static_cast<std::int64_t>(job_obs->at("send_us").as_number());
    cu::require(result.obs.send_us >= result.obs.recv_us,
                "job result: obs send_us before recv_us");
    result.obs.metrics = obs::metrics_snapshot_from_json(job_obs->at("metrics"));
    result.obs.spans = obs::trace_events_from_json(job_obs->at("spans"));
  }
  return result;
}

}  // namespace cts::net
