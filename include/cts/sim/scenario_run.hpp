// Scenario execution: a network of fluid muxes driven by a parsed
// cts.scenario.v1 spec (cts/sim/scenario.hpp), run through the generic
// sharded replication driver (run_replication_slice), so --shard=i/n
// splitting and bit-identical merging work exactly as they do for the
// single-mux harness.
//
// Per replication, every source instance draws its seed from the same
// SplitMix64 stream as run_replicated (replication_seed_root), in spec
// order, then emits one fluid cell count per frame through its shaping
// pipeline (smooth -> AAL5 -> police).  Hops are processed in topological
// order each frame; a FIFO hop applies the single-class fluid recursion
//
//   lost = (w + A - C - B)^+ ,  w' = min(B, (w + A - C)^+)
//
// and a threshold hop applies the exact two-priority kernel
// (atm::evolve_priority_frame).  Departures are computed as
// w + admitted - w', an exact floating-point identity, so per-hop cell
// conservation (arrived = departed + lost + queue growth) holds by
// construction and is asserted by tests/test_scenario_run.cpp.
//
// The result serializes as a cts.scenarioresult.v1 JSON document carrying
// only physics-derived values (no wall-clock), the verbatim spec text and
// the shard slice, so merging n partials byte-for-byte reproduces the
// single-process document.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cts/fit/model_zoo.hpp"
#include "cts/sim/replication.hpp"
#include "cts/sim/scenario.hpp"

namespace cts::sim {

/// Schema tag of the JSON report emitted by write_scenario_result_json.
inline constexpr const char* kScenarioResultSchema = "cts.scenarioresult.v1";

/// Schema tag of the per-hop trace document.
inline constexpr const char* kScenarioTraceSchema = "cts.scenariotrace.v1";

/// Per-hop tallies of one replication, measured frames only.  All values
/// are exact sums of per-frame quantities, accumulated in frame order.
struct ScenarioHopTally {
  double arrived_high = 0.0;  ///< high-priority cells offered (all, if FIFO)
  double arrived_low = 0.0;   ///< low-priority cells offered
  double lost_high = 0.0;
  double lost_low = 0.0;
  double departed = 0.0;          ///< cells serviced downstream
  double peak_workload = 0.0;     ///< max end-of-frame queue
  double initial_workload = 0.0;  ///< queue when measurement started
  double final_workload = 0.0;    ///< queue after the last measured frame
  /// End-of-frame occupancy histogram: Scenario::occupancy_buckets equal
  /// buckets over [0, B], counts of measured frames.
  std::vector<std::uint64_t> occupancy;

  double arrived() const { return arrived_high + arrived_low; }
  double lost() const { return lost_high + lost_low; }
};

/// Per-source-group tallies of one replication, measured frames only.
struct ScenarioSourceTally {
  double offered = 0.0;  ///< cells offered downstream, post-pipeline
  double policed = 0.0;  ///< cells discarded by the GCRA policer
};

/// One replication's raw tallies, tagged with the GLOBAL index.
struct ScenarioRepSample {
  std::uint64_t rep = 0;
  std::uint64_t frames = 0;  ///< measured frames
  std::vector<ScenarioSourceTally> sources;  ///< parallel to spec sources
  std::vector<ScenarioHopTally> hops;        ///< parallel to spec hops
};

/// One row of the per-hop trace (replication 0, every
/// Scenario::hop_trace_every measured frames).
struct ScenarioTraceRow {
  std::uint64_t frame = 0;  ///< measured-frame index
  double workload = 0.0;    ///< end-of-frame queue
  double arrived = 0.0;     ///< cells offered this frame
  double lost = 0.0;        ///< cells dropped this frame
};

/// Outcome of running one worker's shard slice of a scenario.
struct ScenarioRunResult {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Raw per-replication tallies, ascending global index.
  std::vector<ScenarioRepSample> samples;
  /// Per-hop trace rows (parallel to spec hops); non-empty only when
  /// hop_trace_every > 0 and this slice contains replication 0.
  std::vector<std::vector<ScenarioTraceRow>> traces;
};

/// Execution knobs that are not part of the spec.
struct ScenarioRunOptions {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  bool progress = true;
};

/// Resolves a spec source model to the analytics + simulation bundle:
/// zoo ids via fit::model_from_id, inline kinds to GeometricAcf + AR(1),
/// WhiteAcf + AR(0) or ExactLrdAcf + Hosking.  Throws
/// util::InvalidArgument on an unknown zoo id.
fit::ModelSpec resolve_scenario_model(const ScenarioModel& model);

/// Runs this worker's slice of the scenario's replications.  Sharding is
/// bit-identical: seeds derive from the global replication index, samples
/// are returned in ascending global order.
ScenarioRunResult run_scenario(const Scenario& scenario,
                               const ScenarioRunOptions& options = {});

/// Analytic CTS / Bahadur-Rao prediction for one hop, where applicable.
/// A hop qualifies only when every input is an unshaped source group (no
/// upstream hops, no smoothing / policing / AAL5): the prediction is the
/// heterogeneous B-R overflow probability of the aggregate population at
/// threshold B, with critical_m the aggregate CTS.
struct ScenarioHopAnalytic {
  bool available = false;
  double log10_bop = 0.0;
  std::size_t critical_m = 0;  ///< critical time scale (frames)
  double rate = 0.0;           ///< large-deviations rate I(c, b)
};

/// Computes the per-hop analytic predictions (parallel to spec hops).
/// Hops that do not qualify, or whose analytic evaluation fails (e.g. an
/// unstable aggregate), are returned with available = false.
std::vector<ScenarioHopAnalytic> scenario_analytics(const Scenario& scenario);

/// Serializes a run (or merged) result as a cts.scenarioresult.v1
/// document: config echo, verbatim spec text, per-source and per-hop
/// aggregates over the contained samples (CLR replication CIs, pooled
/// CLR, occupancy histograms, analytic predictions where available), the
/// raw per-replication tallies, and the trace block when present.  The
/// output is deterministic: two results with equal samples serialize
/// byte-identically.
std::string write_scenario_result_json(const Scenario& scenario,
                                       const ScenarioRunResult& result);

/// A parsed cts.scenarioresult.v1 document (the merge input: aggregates
/// are recomputed, not parsed).
struct ScenarioResultDoc {
  std::string spec_text;  ///< verbatim cts.scenario.v1 spec
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t replications = 0;  ///< global count, echoed
  std::uint64_t frames = 0;
  std::uint64_t warmup = 0;
  std::uint64_t seed = 0;
  std::vector<ScenarioRepSample> samples;
  std::vector<std::vector<ScenarioTraceRow>> traces;
};

/// Parses a cts.scenarioresult.v1 document (strict: schema tag, shard
/// slice consistency, per-sample tally shapes).
ScenarioResultDoc parse_scenario_result(const std::string& text);

/// Merges a complete set of shard partials into the single-process
/// document.  All partials must carry the same spec text, scale and shard
/// count, and their slices must tile [0, replications) exactly.  The
/// merged document is byte-identical to what a shard_count = 1 run of the
/// same spec writes.
std::string merge_scenario_result_json(
    const std::vector<ScenarioResultDoc>& parts);

/// Serializes the per-hop trace of `result` as a cts.scenariotrace.v1
/// document.  Requires a non-empty trace (hop_trace_every > 0 and the
/// slice contained replication 0).
std::string write_scenario_trace_json(const Scenario& scenario,
                                      const ScenarioRunResult& result);

}  // namespace cts::sim
