// Process-level replication sharding: the cts.shard.v1 file format and its
// write/parse/merge entry points.
//
// A worker process configured as shard i of n runs only its contiguous
// slice of global replication indices (see cts/sim/replication.hpp) and
// serializes what the merger needs to reconstruct the single-process
// result exactly:
//
//   {"schema":"cts.shard.v1",
//    "shard":{"index":i,"count":n},
//    "experiments":[{"label":...,
//                    "config":{...,"master_seed":"<decimal string>",...},
//                    "reps":[{"rep":g,"frames":F,"arrived_cells":A,
//                             "clr":[{"buffer_cells":B,"lost_cells":L,
//                                     "loss_frames":K},...],
//                             "bop":[{"threshold_cells":T,
//                                     "exceed_frames":E},...],
//                             "peak_workload_cells":P},...]},...],
//    "metrics":{<lossless registry snapshot, see cts/obs/metrics.hpp>}}
//
// All doubles are serialized at full round-trip precision (%.17g) and the
// master seed as a decimal string, so merging the n shard files through
// aggregate_replications — samples ordered by global replication index —
// is bit-identical to a single-process run at the same seed and scale.
// tools/cts_simd is the orchestrator: it fork/execs the worker shards,
// merges their files, and emits the merged --metrics report.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "cts/obs/metrics.hpp"
#include "cts/sim/replication.hpp"

namespace cts::sim {

/// A worker's position in the shard layout: index in [0, count).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses "I/N" (e.g. "0/4") into a ShardSpec; throws util::InvalidArgument
/// naming the offending value unless 0 <= I < N with a full-string parse.
ShardSpec parse_shard_spec(const std::string& text);

/// Formats a spec back to "I/N".
std::string format_shard_spec(const ShardSpec& spec);

/// One replication experiment as recorded by a worker: the configuration
/// it ran under (shard fields included) and its slice of per-replication
/// tallies, ascending by global index.
struct ShardExperiment {
  std::string label;
  ReplicationConfig config;
  std::vector<ReplicationSample> samples;
};

/// Parsed contents of one cts.shard.v1 file.
struct ShardFile {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::vector<ShardExperiment> experiments;
  obs::MetricsShard metrics;
};

/// Serializes `file` as a cts.shard.v1 JSON document.
void write_shard_json(std::ostream& os, const ShardFile& file);

/// Parses a cts.shard.v1 document; throws util::InvalidArgument on schema
/// or consistency violations (including a wrong "schema" field).
ShardFile parse_shard_file(const std::string& text);

/// Reads and parses `path`; throws util::InvalidArgument when unreadable.
ShardFile read_shard_file(const std::string& path);

/// One experiment recomputed from all shards.
struct MergedExperiment {
  std::string label;
  ReplicationConfig config;  ///< shard fields normalized back to 0/1
  ReplicationResult result;  ///< identical to a single-process run
};

/// Result of merging a complete shard set.
struct MergedShards {
  std::size_t shard_count = 1;
  std::vector<MergedExperiment> experiments;
  obs::MetricsShard metrics;  ///< registries folded in shard-index order
};

/// Merges a complete set of shard files (every index 0..n-1 exactly once,
/// matching experiment lists and configurations; a single file with
/// count == 1 is the degenerate single-process case).  Replication CIs are
/// recomputed from the pooled per-rep samples and pooled CLR/BOP from the
/// summed tallies via aggregate_replications, so the merged result is
/// bit-identical to a single-process run.  Throws util::InvalidArgument on
/// an incomplete or inconsistent shard set.
MergedShards merge_shard_files(const std::vector<ShardFile>& shards);

/// Process-global recorder that collects every run_replicated invocation's
/// per-replication tallies while enabled, then serializes them (plus a
/// registry snapshot taken at write time) as one cts.shard.v1 file.  The
/// bench ObsGuard enables it when --shard / --shard-out is passed and
/// writes the file at exit.
class ShardRecorder {
 public:
  static ShardRecorder& global();

  /// Starts recording; experiments recorded so far are discarded.
  void enable(std::string out_path);
  /// Stops recording and discards state (tests; between harness phases).
  void disable();
  bool enabled() const;
  std::string path() const;

  /// Appends one experiment (called by run_replicated when enabled); the
  /// label is taken from config.progress_label ("run" when empty).
  void record(const ReplicationConfig& config,
              const std::vector<ReplicationSample>& samples);

  /// Writes the cts.shard.v1 file with a snapshot of `registry`; returns
  /// false on I/O failure.  The recorder stays enabled (ObsGuard calls
  /// disable() afterwards).
  bool write(const obs::MetricsRegistry& registry =
                 obs::MetricsRegistry::global()) const;

 private:
  ShardRecorder() = default;

  mutable std::mutex mu_;
  bool enabled_ = false;
  std::string path_;
  std::vector<ShardExperiment> experiments_;
};

}  // namespace cts::sim
