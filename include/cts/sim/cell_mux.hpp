// Cell-granularity ATM multiplexer (validation reference).
//
// Discrete-event simulation at the individual-cell level: each source's
// per-frame cells are equispaced over the frame (deterministic smoothing,
// frame-aligned sources, exactly the paper's assumption), the server emits
// one cell every Ts/C seconds, and an arriving cell finding the buffer full
// is lost.  O(total cells) per frame -- used at small scale to validate
// the fluid recursion, which it converges to as counts grow.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cts/proc/frame_source.hpp"

namespace cts::sim {

/// Result of a cell-level run.
struct CellRunResult {
  std::uint64_t frames = 0;
  std::uint64_t arrived_cells = 0;
  std::uint64_t lost_cells = 0;
  std::uint64_t peak_queue_cells = 0;
  /// Mean queue length seen by admitted cells (cells); by Little's law,
  /// mean waiting delay = mean_queue_on_arrival / service rate.
  double mean_queue_on_arrival = 0.0;
  /// Maximum queueing delay experienced by any admitted cell, in frame
  /// units (multiply by Ts for seconds) -- the "maximum delay" the paper
  /// equates with buffer size.
  double max_delay_frames = 0.0;

  double clr() const {
    return arrived_cells > 0
               ? static_cast<double>(lost_cells) /
                     static_cast<double>(arrived_cells)
               : 0.0;
  }
};

/// Configuration of a cell-level run.
struct CellRunConfig {
  std::uint64_t frames = 1000;
  std::uint64_t warmup_frames = 100;
  std::uint64_t capacity_cells = 16140; ///< service cells per frame
  std::uint64_t buffer_cells = 1000;    ///< finite buffer (cells)
};

/// Cell-level multiplexer.  Frame sizes from the sources are rounded to
/// non-negative integers internally (wrap sources in GaussianQuantizer to
/// control this explicitly).
class CellMux {
 public:
  static CellRunResult run(
      std::vector<std::unique_ptr<proc::FrameSource>>& sources,
      const CellRunConfig& config);
};

}  // namespace cts::sim
