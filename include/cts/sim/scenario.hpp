// Scenario spec files (cts.scenario.v1): networks of muxes as data.
//
// A scenario spec is a line-oriented text file describing sources (model
// zoo ids or inline Gaussian models, with optional smoothing, GCRA
// policing and AAL5 overhead), a topology of fluid multiplexer hops
// (single, tandem, priority two-class), the replication/seed scale, and
// output knobs.  tools/cts_scenariod parses and executes it through the
// replication harness (cts/sim/scenario_run.hpp), so a new topology is a
// text file, not a new bench binary.
//
//   cts.scenario.v1
//   [scenario]
//   name = tandem
//   frames = 20000
//   [source video]
//   model = za:0.9
//   count = 20
//   [hop edge]
//   input = video
//   capacity = 11000
//   buffer = 2000
//
// The parser is STRICT: the first non-comment line must be exactly
// `cts.scenario.v1`, every key must be known in its section, and every
// violation throws util::InvalidArgument naming the line number and the
// offending key (with a did-you-mean suggestion for near-miss keys).  The
// key tables below are the single source of truth shared by the parser
// and the docs/scenarios.md drift gate (tests/test_scenario_docs.cpp), so
// a key cannot be added without documenting it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cts::sim {

/// First line of every spec file.
inline constexpr const char* kScenarioSchema = "cts.scenario.v1";

/// One documented spec key: the parser's known-key list and the
/// docs/scenarios.md reference table are both generated from these.
struct ScenarioKeyDoc {
  const char* key;
  const char* value_hint;
  const char* doc;
};

/// Keys of the [scenario] section.
inline constexpr ScenarioKeyDoc kScenarioSectionKeys[] = {
    {"name", "ID", "scenario name echoed into every emitted artifact"},
    {"frames", "N", "measured frames per replication (default 20000)"},
    {"warmup", "N", "unmeasured warmup frames per replication (default 1000)"},
    {"replications", "N", "independent replications (default 4)"},
    {"seed", "U64", "master seed, decimal (default 1592639710)"},
    {"Ts", "SECS", "frame duration in seconds (default 0.04)"},
};

/// Keys of a [source NAME] section.
inline constexpr ScenarioKeyDoc kSourceSectionKeys[] = {
    {"model", "ID",
     "model-zoo id (za:A, vv:V, dar:A:P, l, white, ar1:PHI, farima:D, "
     "mginf:BETA); exclusive with `kind`"},
    {"kind", "K", "inline model kind: geometric, white, or lrd"},
    {"mean", "CELLS", "inline model mean, cells/frame (required with kind)"},
    {"variance", "V", "inline model variance (required with kind)"},
    {"a", "A", "geometric ACF decay, r(k) = a^k (kind = geometric only)"},
    {"hurst", "H", "Hurst parameter of the LRD ACF (kind = lrd only)"},
    {"weight", "W", "LRD mixture weight in [0, 1] (kind = lrd only)"},
    {"count", "N", "number of i.i.d. copies of this source (default 1)"},
    {"priority", "high|low",
     "space priority class at a threshold hop (default high)"},
    {"smooth", "W",
     "moving-average smoother window in frames (default 0 = off)"},
    {"police_scr", "CELLS/S",
     "GCRA sustainable cell rate; enables policing"},
    {"police_bt", "SECS",
     "GCRA burst tolerance for the SCR bucket (default 0)"},
    {"police_pcr", "CELLS/S",
     "peak cell rate for a dual leaky bucket (requires police_scr)"},
    {"police_cdvt", "SECS",
     "CDV tolerance for the PCR bucket (default 0)"},
    {"aal5", "on|off",
     "add AAL5 encapsulation overhead (pad + 8-byte trailer) per frame "
     "(default off)"},
};

/// Keys of a [hop NAME] section.
inline constexpr ScenarioKeyDoc kHopSectionKeys[] = {
    {"input", "NAME,NAME,...",
     "comma list of source and upstream-hop names feeding this mux"},
    {"capacity", "CELLS",
     "service capacity in cells/frame; exclusive with `link_mbps`"},
    {"link_mbps", "MBPS",
     "service capacity as a link rate in Mb/s (converted via Ts); "
     "exclusive with `capacity`"},
    {"buffer", "CELLS", "buffer size B in cells (required)"},
    {"threshold", "CELLS",
     "partial-buffer-sharing threshold S for low-priority admission "
     "(0 <= S <= buffer); absent = single-class FIFO"},
};

/// Keys of the [output] section.
inline constexpr ScenarioKeyDoc kOutputSectionKeys[] = {
    {"occupancy_buckets", "N",
     "per-hop end-of-frame occupancy histogram buckets over [0, B] "
     "(default 16)"},
    {"hop_trace_every", "N",
     "record a per-hop trace row every N measured frames of replication 0 "
     "(default 0 = no trace)"},
};

/// One section's documented key set.
struct ScenarioSectionDoc {
  const char* section;  ///< "scenario", "source", "hop", "output"
  const ScenarioKeyDoc* keys;
  std::size_t count;
};

inline constexpr ScenarioSectionDoc kScenarioSections[] = {
    {"scenario", kScenarioSectionKeys,
     sizeof(kScenarioSectionKeys) / sizeof(kScenarioSectionKeys[0])},
    {"source", kSourceSectionKeys,
     sizeof(kSourceSectionKeys) / sizeof(kSourceSectionKeys[0])},
    {"hop", kHopSectionKeys,
     sizeof(kHopSectionKeys) / sizeof(kHopSectionKeys[0])},
    {"output", kOutputSectionKeys,
     sizeof(kOutputSectionKeys) / sizeof(kOutputSectionKeys[0])},
};

/// A source's traffic model: a model-zoo id or an inline Gaussian model.
struct ScenarioModel {
  std::string zoo_id;  ///< non-empty = zoo model; inline fields unused
  std::string kind;    ///< inline: "geometric", "white", "lrd"
  double mean = 0.0;
  double variance = 0.0;
  double a = 0.0;       ///< geometric
  double hurst = 0.0;   ///< lrd
  double weight = 0.0;  ///< lrd
};

/// One [source NAME] group: `count` i.i.d. copies of one model pushed
/// through an optional per-copy shaping pipeline (smooth -> AAL5 ->
/// police).
struct ScenarioSource {
  std::string name;
  int line = 0;  ///< section header line, for error messages
  ScenarioModel model;
  std::size_t count = 1;
  bool low_priority = false;
  std::uint64_t smooth_window = 0;  ///< frames; 0/1 = off
  bool aal5 = false;
  double police_scr = 0.0;   ///< cells/s; 0 = no policing
  double police_bt = 0.0;    ///< seconds
  double police_pcr = 0.0;   ///< cells/s; 0 = single bucket
  double police_cdvt = 0.0;  ///< seconds
};

/// One [hop NAME] multiplexer.
struct ScenarioHop {
  std::string name;
  int line = 0;
  std::vector<std::string> inputs;  ///< source and hop names, spec order
  double capacity_cells = 0.0;      ///< resolved (link_mbps converted)
  double link_mbps = 0.0;           ///< as written; 0 = capacity given
  double buffer_cells = 0.0;
  double threshold_cells = -1.0;  ///< < 0 = single-class FIFO
  /// Resolved input indices (filled by the parser's topology validation).
  std::vector<std::size_t> source_inputs;  ///< indices into sources
  std::vector<std::size_t> hop_inputs;     ///< indices into hops

  bool priority() const noexcept { return threshold_cells >= 0.0; }
};

/// A parsed, validated scenario.
struct Scenario {
  std::string name = "scenario";
  std::uint64_t frames = 20000;
  std::uint64_t warmup = 1000;
  std::size_t replications = 4;
  std::uint64_t seed = 0x5EEDC0DEULL;
  double Ts = 0.04;
  std::vector<ScenarioSource> sources;
  std::vector<ScenarioHop> hops;
  std::size_t occupancy_buckets = 16;
  std::uint64_t hop_trace_every = 0;
  /// Hop indices in topological (upstream-first) order; the executor
  /// processes each frame in this order so tandem departures feed the next
  /// hop within the same frame.
  std::vector<std::size_t> hop_order;
  /// The verbatim spec text, echoed into cts.scenarioresult.v1 documents
  /// so a shard merge can verify every partial ran the same scenario.
  std::string text;
};

/// Parses and validates a cts.scenario.v1 spec.  Throws
/// util::InvalidArgument on any violation, naming the line number and the
/// offending key or name ("scenario spec line 12: ...").
Scenario parse_scenario(const std::string& text);

}  // namespace cts::sim
