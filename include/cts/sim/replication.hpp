// Multithreaded independent-replication harness.
//
// The paper estimates each CLR point from 60 replications of 500k frames.
// This harness runs R independent replications of a fluid-mux experiment
// across a thread pool.  Seeds are derived deterministically from
// (master_seed, replication index, source index), so the results are
// bit-identical for any thread count.
//
// Replications can additionally be sharded across worker PROCESSES: a
// worker configured as shard i of n runs only the replications whose
// global index falls in its contiguous slice [i*R/n, (i+1)*R/n).  Seeds
// still derive from the global index, and aggregate_replications consumes
// per-replication tallies in ascending global order, so merging the n
// shard slices reproduces the single-process ReplicationResult bit for
// bit (see cts/sim/shard.hpp for the cts.shard.v1 file format and the
// merge entry points used by tools/cts_simd).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cts/fit/model_zoo.hpp"
#include "cts/sim/fluid_mux.hpp"
#include "cts/stats/batch.hpp"

namespace cts::sim {

/// Configuration of a replication experiment.
struct ReplicationConfig {
  std::size_t replications = 12;  ///< GLOBAL replication count, all shards
  std::uint64_t frames_per_replication = 120000;
  std::uint64_t warmup_frames = 2000;
  std::size_t n_sources = 30;
  double capacity_cells = 16140.0;  ///< total C (cells/frame)
  std::vector<double> buffer_sizes_cells;
  std::vector<double> bop_thresholds_cells;
  std::uint64_t master_seed = 0x5EEDC0DEULL;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  /// Process-level sharding: this worker runs global replication indices
  /// in [shard_index*R/shard_count, (shard_index+1)*R/shard_count).  The
  /// default 0/1 runs everything (single-process mode).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Label shown on the stderr progress line; empty = "sim".
  std::string progress_label;
  /// Progress reporting opt-out for library callers (the reporter itself
  /// additionally disables when stderr is not a TTY or CTS_QUIET is set).
  bool progress = true;
};

/// Aggregated outcome for one buffer size.
struct ClrEstimate {
  double buffer_cells = 0.0;
  stats::IntervalEstimate clr;      ///< mean CLR across replications
  double pooled_clr = 0.0;          ///< total lost / total arrived
};

/// Aggregated outcome for one BOP threshold.
struct BopEstimate {
  double threshold_cells = 0.0;
  stats::IntervalEstimate bop;
  double pooled_bop = 0.0;
};

/// One replication's raw fluid-mux tallies, tagged with its GLOBAL
/// replication index so shard slices can be merged in canonical order.
struct ReplicationSample {
  std::uint64_t rep = 0;  ///< global replication index
  FluidRunResult run;
};

/// Full result of a replication experiment.  For a sharded run this covers
/// only the worker's slice; merging all slices (cts/sim/shard.hpp)
/// reproduces the single-process result exactly.
struct ReplicationResult {
  std::vector<ClrEstimate> clr;
  std::vector<BopEstimate> bop;
  double total_arrived_cells = 0.0;
  std::uint64_t total_frames = 0;
  /// Raw per-replication tallies (ascending global index) — the shard
  /// serialization payload, and what aggregate_replications consumes.
  std::vector<ReplicationSample> samples;
};

/// One worker's contiguous slice [lo, hi) of global replication indices
/// (shard i of n owns [i*R/n, (i+1)*R/n)).
struct ShardSliceRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const { return hi - lo; }
};

/// Computes shard `shard_index`-of-`shard_count`'s slice of `replications`
/// global indices.  Validates the shard layout (index < count,
/// count <= replications) so every caller fails with the same message.
ShardSliceRange shard_slice(std::size_t replications, std::size_t shard_index,
                            std::size_t shard_count);

/// Deterministic per-replication seed root, derived from the GLOBAL
/// replication index only — independent of thread layout and shard layout.
/// Seed a util::SplitMix64 with this and draw per-source seeds from it in a
/// fixed order; that is the whole bit-identical-sharding contract.
inline std::uint64_t replication_seed_root(std::uint64_t master_seed,
                                           std::size_t rep) {
  return master_seed +
         0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(rep) + 1);
}

/// Harness-level knobs of a generic sharded replication run: everything
/// run_replicated needs that is not specific to the fluid-mux experiment.
/// Shared by run_replicated and the scenario executor
/// (cts/sim/scenario_run.hpp) so both inherit the same slice math, thread
/// pool, config-echo gauges, progress wiring, and wall-time histogram.
struct SliceDriverConfig {
  std::size_t replications = 1;  ///< GLOBAL replication count, all shards
  std::uint64_t frames_per_replication = 0;
  std::uint64_t warmup_frames = 0;
  std::uint64_t master_seed = 0x5EEDC0DEULL;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string progress_label;  ///< empty = "sim"
  bool progress = true;
};

/// Runs `body(rep, local, reporter)` for every global replication index
/// `rep` in this worker's slice (`local` = rep - slice.lo) on a thread
/// pool.  Handles validation, sim.* config-echo gauges/counters, the
/// stderr progress reporter (body may tick frames on it), the per-
/// replication "replication" trace span and sim.replication.wall_ms
/// histogram.  Returns the slice so callers can size result arrays (call
/// shard_slice first when sizing must happen before the run).  The body
/// must be thread-safe across distinct `local` indices.
ShardSliceRange run_replication_slice(
    const SliceDriverConfig& config,
    const std::function<void(std::size_t rep, std::size_t local,
                             obs::ProgressReporter& reporter)>& body);

/// Runs `config.replications` independent fluid-mux runs of N i.i.d. copies
/// of `model` and aggregates the tallies.  With shard_count > 1 only this
/// worker's slice is run (and recorded into the global ShardRecorder when
/// one is enabled).
ReplicationResult run_replicated(const fit::ModelSpec& model,
                                 const ReplicationConfig& config);

/// Aggregates per-replication tallies into estimates: replication CIs from
/// the per-rep CLR/BOP samples, pooled CLR/BOP from the summed tallies.
/// `samples` must be ordered ascending by global index; both run_replicated
/// and the shard merger call this, which is what makes any shard layout
/// bit-identical to a single-process run.
ReplicationResult aggregate_replications(
    const std::vector<double>& buffer_sizes_cells,
    const std::vector<double>& bop_thresholds_cells,
    std::vector<ReplicationSample> samples);

/// Scale presets: `paper_scale()` reproduces the paper's 60 x 500k frames;
/// `default_scale()` is the CI-friendly default.  REPRO_FULL=1 in the
/// environment switches the bench harness to paper scale.
ReplicationConfig default_scale();
ReplicationConfig paper_scale();

/// Applies REPRO_FULL / REPRO_REPS / REPRO_FRAMES / REPRO_SHARD environment
/// overrides to a base configuration.  Malformed or out-of-range values
/// throw util::InvalidArgument naming the variable and the offending value.
ReplicationConfig apply_env_overrides(ReplicationConfig config);

}  // namespace cts::sim
