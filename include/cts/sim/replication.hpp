// Multithreaded independent-replication harness.
//
// The paper estimates each CLR point from 60 replications of 500k frames.
// This harness runs R independent replications of a fluid-mux experiment
// across a thread pool.  Seeds are derived deterministically from
// (master_seed, replication index, source index), so the results are
// bit-identical for any thread count.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cts/fit/model_zoo.hpp"
#include "cts/sim/fluid_mux.hpp"
#include "cts/stats/batch.hpp"

namespace cts::sim {

/// Configuration of a replication experiment.
struct ReplicationConfig {
  std::size_t replications = 12;
  std::uint64_t frames_per_replication = 120000;
  std::uint64_t warmup_frames = 2000;
  std::size_t n_sources = 30;
  double capacity_cells = 16140.0;  ///< total C (cells/frame)
  std::vector<double> buffer_sizes_cells;
  std::vector<double> bop_thresholds_cells;
  std::uint64_t master_seed = 0x5EEDC0DEULL;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  /// Label shown on the stderr progress line; empty = "sim".
  std::string progress_label;
  /// Progress reporting opt-out for library callers (the reporter itself
  /// additionally disables when stderr is not a TTY or CTS_QUIET is set).
  bool progress = true;
};

/// Aggregated outcome for one buffer size.
struct ClrEstimate {
  double buffer_cells = 0.0;
  stats::IntervalEstimate clr;      ///< mean CLR across replications
  double pooled_clr = 0.0;          ///< total lost / total arrived
};

/// Aggregated outcome for one BOP threshold.
struct BopEstimate {
  double threshold_cells = 0.0;
  stats::IntervalEstimate bop;
  double pooled_bop = 0.0;
};

/// Full result of a replication experiment.
struct ReplicationResult {
  std::vector<ClrEstimate> clr;
  std::vector<BopEstimate> bop;
  double total_arrived_cells = 0.0;
  std::uint64_t total_frames = 0;
};

/// Runs `config.replications` independent fluid-mux runs of N i.i.d. copies
/// of `model` and aggregates the tallies.
ReplicationResult run_replicated(const fit::ModelSpec& model,
                                 const ReplicationConfig& config);

/// Scale presets: `paper_scale()` reproduces the paper's 60 x 500k frames;
/// `default_scale()` is the CI-friendly default.  REPRO_FULL=1 in the
/// environment switches the bench harness to paper scale.
ReplicationConfig default_scale();
ReplicationConfig paper_scale();

/// Applies REPRO_FULL / REPRO_REPS / REPRO_FRAMES environment overrides to
/// a base configuration.
ReplicationConfig apply_env_overrides(ReplicationConfig config);

}  // namespace cts::sim
