// Multithreaded independent-replication harness.
//
// The paper estimates each CLR point from 60 replications of 500k frames.
// This harness runs R independent replications of a fluid-mux experiment
// across a thread pool.  Seeds are derived deterministically from
// (master_seed, replication index, source index), so the results are
// bit-identical for any thread count.
//
// Replications can additionally be sharded across worker PROCESSES: a
// worker configured as shard i of n runs only the replications whose
// global index falls in its contiguous slice [i*R/n, (i+1)*R/n).  Seeds
// still derive from the global index, and aggregate_replications consumes
// per-replication tallies in ascending global order, so merging the n
// shard slices reproduces the single-process ReplicationResult bit for
// bit (see cts/sim/shard.hpp for the cts.shard.v1 file format and the
// merge entry points used by tools/cts_simd).

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cts/fit/model_zoo.hpp"
#include "cts/sim/fluid_mux.hpp"
#include "cts/stats/batch.hpp"

namespace cts::sim {

/// Configuration of a replication experiment.
struct ReplicationConfig {
  std::size_t replications = 12;  ///< GLOBAL replication count, all shards
  std::uint64_t frames_per_replication = 120000;
  std::uint64_t warmup_frames = 2000;
  std::size_t n_sources = 30;
  double capacity_cells = 16140.0;  ///< total C (cells/frame)
  std::vector<double> buffer_sizes_cells;
  std::vector<double> bop_thresholds_cells;
  std::uint64_t master_seed = 0x5EEDC0DEULL;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  /// Process-level sharding: this worker runs global replication indices
  /// in [shard_index*R/shard_count, (shard_index+1)*R/shard_count).  The
  /// default 0/1 runs everything (single-process mode).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Label shown on the stderr progress line; empty = "sim".
  std::string progress_label;
  /// Progress reporting opt-out for library callers (the reporter itself
  /// additionally disables when stderr is not a TTY or CTS_QUIET is set).
  bool progress = true;
};

/// Aggregated outcome for one buffer size.
struct ClrEstimate {
  double buffer_cells = 0.0;
  stats::IntervalEstimate clr;      ///< mean CLR across replications
  double pooled_clr = 0.0;          ///< total lost / total arrived
};

/// Aggregated outcome for one BOP threshold.
struct BopEstimate {
  double threshold_cells = 0.0;
  stats::IntervalEstimate bop;
  double pooled_bop = 0.0;
};

/// One replication's raw fluid-mux tallies, tagged with its GLOBAL
/// replication index so shard slices can be merged in canonical order.
struct ReplicationSample {
  std::uint64_t rep = 0;  ///< global replication index
  FluidRunResult run;
};

/// Full result of a replication experiment.  For a sharded run this covers
/// only the worker's slice; merging all slices (cts/sim/shard.hpp)
/// reproduces the single-process result exactly.
struct ReplicationResult {
  std::vector<ClrEstimate> clr;
  std::vector<BopEstimate> bop;
  double total_arrived_cells = 0.0;
  std::uint64_t total_frames = 0;
  /// Raw per-replication tallies (ascending global index) — the shard
  /// serialization payload, and what aggregate_replications consumes.
  std::vector<ReplicationSample> samples;
};

/// Runs `config.replications` independent fluid-mux runs of N i.i.d. copies
/// of `model` and aggregates the tallies.  With shard_count > 1 only this
/// worker's slice is run (and recorded into the global ShardRecorder when
/// one is enabled).
ReplicationResult run_replicated(const fit::ModelSpec& model,
                                 const ReplicationConfig& config);

/// Aggregates per-replication tallies into estimates: replication CIs from
/// the per-rep CLR/BOP samples, pooled CLR/BOP from the summed tallies.
/// `samples` must be ordered ascending by global index; both run_replicated
/// and the shard merger call this, which is what makes any shard layout
/// bit-identical to a single-process run.
ReplicationResult aggregate_replications(
    const std::vector<double>& buffer_sizes_cells,
    const std::vector<double>& bop_thresholds_cells,
    std::vector<ReplicationSample> samples);

/// Scale presets: `paper_scale()` reproduces the paper's 60 x 500k frames;
/// `default_scale()` is the CI-friendly default.  REPRO_FULL=1 in the
/// environment switches the bench harness to paper scale.
ReplicationConfig default_scale();
ReplicationConfig paper_scale();

/// Applies REPRO_FULL / REPRO_REPS / REPRO_FRAMES / REPRO_SHARD environment
/// overrides to a base configuration.  Malformed or out-of-range values
/// throw util::InvalidArgument naming the variable and the offending value.
ReplicationConfig apply_env_overrides(ReplicationConfig config);

}  // namespace cts::sim
