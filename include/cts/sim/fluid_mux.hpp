// Frame-level fluid ATM multiplexer.
//
// The paper's simulation assumes frame-aligned sources with cells
// equispaced over the frame (deterministic smoothing) and a constant-rate
// server.  Within one frame both the aggregate arrival rate and the service
// rate are then constant, so the queue moves linearly and the per-frame
// loss has the exact closed form
//
//   loss_n  = (W_n + A_n - C - B)^+                      (finite buffer B)
//   W_{n+1} = min(B, (W_n + A_n - C)^+),
//
// where A_n is the total cells arriving in frame n and C the service
// capacity in cells/frame.  The same recursion with B = infinity yields the
// workload used for buffer-overflow probabilities.  Because the recursion
// for every buffer size consumes the same arrival sequence, one pass
// evaluates a whole vector of buffer sizes (and BOP thresholds) at once --
// this is what makes the paper-scale sweeps affordable.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cts/proc/frame_source.hpp"

namespace cts::obs {
class ProgressReporter;
}

namespace cts::sim {

/// Per-buffer-size tallies of one finite-buffer run.
struct ClrTally {
  double buffer_cells = 0.0;   ///< B (total cells)
  double lost_cells = 0.0;     ///< cells lost at this buffer size
  std::uint64_t loss_frames = 0;  ///< frames in which any loss occurred

  /// Cell loss rate given total arrivals.
  double clr(double arrived_cells) const {
    return arrived_cells > 0.0 ? lost_cells / arrived_cells : 0.0;
  }
};

/// Per-threshold tallies of one infinite-buffer run.
struct BopTally {
  double threshold_cells = 0.0;    ///< x
  std::uint64_t exceed_frames = 0; ///< frames with W > x

  double bop(std::uint64_t frames) const {
    return frames > 0 ? static_cast<double>(exceed_frames) /
                            static_cast<double>(frames)
                      : 0.0;
  }
};

/// Result of one FluidMux run.
struct FluidRunResult {
  std::uint64_t frames = 0;
  double arrived_cells = 0.0;
  std::vector<ClrTally> clr;  ///< one entry per requested buffer size
  std::vector<BopTally> bop;  ///< one entry per requested threshold
  /// Peak infinite-buffer workload over the measured frames (cells) —
  /// observability only; it feeds the obs registry's queue-peak gauge.
  double peak_workload_cells = 0.0;
};

/// Configuration of a fluid multiplexer run.
struct FluidRunConfig {
  std::uint64_t frames = 100000;   ///< measured frames
  std::uint64_t warmup_frames = 1000;
  double capacity_cells = 16140.0; ///< C, total cells/frame (= N * c)
  std::vector<double> buffer_sizes_cells;   ///< finite-buffer sizes to track
  std::vector<double> bop_thresholds_cells; ///< infinite-buffer thresholds
  /// Optional progress sink, ticked every few thousand frames.  Not owned.
  obs::ProgressReporter* progress = nullptr;
};

/// Fluid frame-level multiplexer over a set of homogeneous (or not)
/// sources.  The sources are owned by the caller and advanced in lockstep.
class FluidMux {
 public:
  /// Runs the recursion over `sources`, which must be non-empty.
  static FluidRunResult run(
      std::vector<std::unique_ptr<proc::FrameSource>>& sources,
      const FluidRunConfig& config);
};

}  // namespace cts::sim
