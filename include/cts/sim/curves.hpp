// High-level experiment curves: CLR-vs-buffer and BOP-vs-buffer series.
//
// Glue between the model zoo, the asymptotics and the simulator; every
// figure bench is a thin formatter over these.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cts/core/br_asymptotic.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/sim/replication.hpp"

namespace cts::sim {

/// Link/multiplexer geometry shared by the figures: N sources, per-source
/// bandwidth c (cells/frame), frame duration Ts.
struct MuxGeometry {
  std::size_t n_sources = 30;
  double bandwidth_per_source = 538.0;  ///< c, cells/frame
  double Ts = 0.04;                     ///< seconds/frame

  double total_capacity() const { return static_cast<double>(n_sources) * bandwidth_per_source; }

  /// Total-buffer conversion between milliseconds of maximum delay and
  /// cells: B_cells = B_ms/1000 * (C/Ts) where C/Ts is the drain rate in
  /// cells/second.
  double buffer_ms_to_cells(double ms) const {
    return ms / 1000.0 * total_capacity() / Ts;
  }
  double buffer_cells_to_ms(double cells) const {
    return cells * Ts / total_capacity() * 1000.0;
  }
};

/// One analytic BOP series (B-R asymptotic) over a buffer grid.
struct AnalyticCurve {
  std::string model;
  std::vector<double> buffer_ms;        ///< total buffer (msec of delay)
  std::vector<double> log10_bop;
  std::vector<std::size_t> critical_m;  ///< CTS at each point
};

/// Evaluates the B-R asymptotic of `model` on a grid of total-buffer sizes
/// (msec).  Per-source values b = B/N and the model's own (mu, sigma^2,
/// r) feed the rate function.
AnalyticCurve br_curve(const fit::ModelSpec& model, const MuxGeometry& geometry,
                       const std::vector<double>& buffer_ms);

/// Same grid evaluated with the Large-N asymptotic.
AnalyticCurve large_n_curve(const fit::ModelSpec& model,
                            const MuxGeometry& geometry,
                            const std::vector<double>& buffer_ms);

/// CTS (m*) as a function of total buffer.
AnalyticCurve cts_curve(const fit::ModelSpec& model, const MuxGeometry& geometry,
                        const std::vector<double>& buffer_ms);

/// One simulated CLR series over a buffer grid.
struct SimulatedCurve {
  std::string model;
  std::vector<double> buffer_ms;
  std::vector<double> clr;         ///< pooled CLR estimates
  std::vector<double> ci_low;      ///< replication CI bounds (mean-based)
  std::vector<double> ci_high;
  std::uint64_t total_frames = 0;  ///< measured frames in this worker's slice
  std::size_t replications = 0;    ///< GLOBAL replication count (all shards)
};

/// The exact ReplicationConfig that simulated_clr_curve runs for `model`
/// over the buffer grid: `scale` with the label, geometry and buffer grid
/// (converted to cells) filled in.  Exposed so the shard merger and the
/// tests can reconstruct a curve's configuration without re-deriving the
/// conversion.
ReplicationConfig replication_config_for_grid(
    const fit::ModelSpec& model, const MuxGeometry& geometry,
    const std::vector<double>& buffer_ms, const ReplicationConfig& scale);

/// Runs the replication harness for `model` over the buffer grid.
SimulatedCurve simulated_clr_curve(const fit::ModelSpec& model,
                                   const MuxGeometry& geometry,
                                   const std::vector<double>& buffer_ms,
                                   const ReplicationConfig& scale);

/// Geometric buffer grid in msec, inclusive of both endpoints.
std::vector<double> buffer_grid_ms(double lo_ms, double hi_ms,
                                   std::size_t points);

/// Linear buffer grid in msec.
std::vector<double> linear_grid_ms(double lo_ms, double hi_ms,
                                   std::size_t points);

}  // namespace cts::sim
