// Classical Gaussian effective bandwidth (the pre-LRD toolbox).
//
// For an SRD Gaussian source the asymptotic variance rate
// v_inf = sigma^2 (1 + 2 sum_{k>=1} r(k)) is finite, the BOP decays as
// exp(-delta B), and the effective bandwidth at decay rate delta is
//
//   EB(delta) = mu + delta v_inf / 2.
//
// Admission control then fits N = floor(C / EB(delta)) sources with
// delta = -ln(eps) / B.  The paper's point is that applying this toolbox
// via a well-chosen Markov model remains sound for LRD video at practical
// buffer sizes; the CAC module (atm/cac) exposes both this and the exact
// B-R inversion for comparison.

#pragma once

#include <cstddef>
#include <memory>

#include "cts/core/acf_model.hpp"

namespace cts::core {

/// Asymptotic variance rate v_inf = sigma^2 (1 + 2 sum r(k)).  The sum is
/// truncated once the tail contribution is provably below `tol` for
/// geometric-type ACFs, or after `max_terms` lags otherwise; LRD ACFs (for
/// which the sum diverges) are detected by non-convergence and reported via
/// util::NumericalError -- effective bandwidth does not exist for them.
double asymptotic_variance_rate(const AcfModel& acf, double variance,
                                double tol = 1e-12,
                                std::size_t max_terms = 1u << 22);

/// Gaussian effective bandwidth at exponential decay rate delta >= 0.
double effective_bandwidth(double mean, double variance_rate, double delta);

/// Decay rate delta implied by target log10 CLR `log10_eps` at total buffer
/// B (cells): delta = -ln(10^log10_eps)/B.
double decay_rate_for_target(double log10_eps, double total_buffer);

}  // namespace cts::core
