// Power spectra of frame processes and the Li-Hwang cutoff frequency.
//
// Section 6.2 connects the Critical Time Scale to the CUTOFF FREQUENCY
// omega_c of Li & Hwang's spectral analysis of queues: traffic power below
// omega_c drives queueing, power above it is filtered out by the buffer.
// For a WSS frame process the (one-sided, discrete-time) spectral density
// is
//
//   S(w) = sigma^2 [ 1 + 2 sum_{k>=1} r(k) cos(w k) ],   w in (0, pi],
//
// LRD processes have S(w) ~ w^{1-2H} -> infinity as w -> 0: the divergence
// is exactly the "cumulative effect" of claim 1 -- and the cutoff argument
// shows why it does not matter at small buffers.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cts/core/acf_model.hpp"

namespace cts::core {

/// Spectral density evaluator for an AcfModel.
class Spectrum {
 public:
  /// `truncation` bounds the cosine-series length; the tail beyond it is
  /// ignored (LRD ACFs need a large truncation near w = 0; callers choose).
  Spectrum(std::shared_ptr<const AcfModel> acf, double variance,
           std::size_t truncation = 1u << 15);

  /// S(w) for w in (0, pi].  Clamped at 0 (truncation can produce small
  /// negative ripples).
  double density(double w) const;

  /// Integrated spectrum P(w) = integral_0^w S(u) du, approximated on a
  /// log-spaced grid; total power P(pi) ~ sigma^2 * pi (Parseval).
  double integrated(double w, std::size_t grid_points = 512) const;

  /// The Li-Hwang-style cutoff frequency: the smallest w such that the
  /// power below w is `fraction` of the total, found by bisection on the
  /// integrated spectrum.  LRD models concentrate power near 0, giving a
  /// small cutoff; SRD models spread it, giving a large one.
  double cutoff_frequency(double fraction = 0.5) const;

  double variance() const noexcept { return variance_; }

 private:
  std::shared_ptr<const AcfModel> acf_;
  double variance_;
  std::size_t truncation_;
};

/// The time scale 2*pi/omega_c implied by a cutoff frequency, in frames.
double cutoff_time_scale(double cutoff_frequency);

}  // namespace cts::core
