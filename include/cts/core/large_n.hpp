// Courcoubetis-Weber Large-N asymptotic: Psi(c,b,N) ~ exp(-N I(c,b)).
//
// Identical to Bahadur-Rao with the g1 refinement term dropped; the paper's
// Fig. 10 compares the two against simulation (B-R is roughly one order of
// magnitude tighter at the paper's operating point).

#pragma once

#include <cstddef>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"

namespace cts::core {

/// log10 of the Large-N overflow probability (no refinement term).
BopPoint large_n_log10_bop(const RateFunction& rate, double buffer_per_source,
                           std::size_t n_sources);

/// Warm-started variant: forwards `m_hint` to RateFunction::evaluate.
/// Bit-identical to the cold overload whenever m_hint <= m*_b (m*_b is
/// non-decreasing in b; see RateFunction::evaluate).
BopPoint large_n_log10_bop(const RateFunction& rate, double buffer_per_source,
                           std::size_t n_sources, std::size_t m_hint);

/// Closed-form tail from an already-evaluated rate-function point.
/// Bit-identical to the RateFunction overloads for the same (I, m*).
BopPoint large_n_log10_bop(const RateResult& rate_point,
                           double buffer_per_source, std::size_t n_sources);

}  // namespace cts::core
