// Weibull asymptotic for N Gaussian exact-LRD sources (paper eq. 6).
//
//   P(W > B) ~ exp( -J - (1/2) log(4 pi J) ),
//   J(N,b,c) = N^{2H-1} (c-mu)^{2H} / (2 g sigma^2 kappa(H)^2) * B^{2-2H},
//   kappa(H) = H^H (1-H)^{1-H},  B = N b.
//
// Derived in the paper's appendix by substituting the closed-form LRD
// variance growth V(m) ~ sigma^2 g m^{2H} into the Bahadur-Rao rate
// function.  For H = 1/2 it collapses to the classical log-linear
// (exponential) decay of Markov effective-bandwidth theory -- the formula
// that fuelled both "myths" the paper debunks.

#pragma once

#include <cstddef>

namespace cts::core {

/// Parameters of the Weibull LRD bound.
struct WeibullLrdParams {
  double hurst = 0.9;       ///< H in (1/2, 1)
  double weight = 1.0;      ///< g(Ts) of eq. (2); 1 for FGN
  double mean = 500.0;      ///< mu, cells/frame per source
  double variance = 5000.0; ///< sigma^2 per source
  double bandwidth = 538.0; ///< c, cells/frame per source (c > mu)

  void validate() const;
};

/// kappa(H) = H^H (1-H)^{1-H}.
double kappa(double hurst);

/// The exponent J(N, b, c) with total buffer B = N * b (cells).
double weibull_exponent(const WeibullLrdParams& params,
                        std::size_t n_sources, double total_buffer);

/// log10 P(W > B) by eq. (6); clamped at 0.
double weibull_log10_bop(const WeibullLrdParams& params,
                         std::size_t n_sources, double total_buffer);

/// The closed-form CTS along the Weibull asymptotic (paper appendix):
/// m* ~ H b / ((1-H)(c - mu)).
double weibull_critical_m(const WeibullLrdParams& params,
                          double buffer_per_source);

}  // namespace cts::core
