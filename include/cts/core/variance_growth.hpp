// Aggregate variance V(m) = Var(Y_1 + ... + Y_m).
//
// This is the only statistic through which correlations enter the
// Bahadur-Rao rate function (paper eq. 10):
//
//   V(m) = sigma^2 [ m + 2 sum_{i=1..m} (m - i) r(i) ].
//
// The class materialises V as a dense table extended in bulk (one tight
// loop over new lags, running prefix sums S1(m) = sum r(i) and
// S2(m) = sum i r(i)), so a sweep over m (the CTS search) costs O(1)
// amortised per step and the SIMD scan kernels can read V(m) directly
// from contiguous memory.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cts/core/acf_model.hpp"

namespace cts::core {

/// Incrementally evaluated aggregate variance of a correlated sum.
class VarianceGrowth {
 public:
  /// `acf` must outlive this object (shared ownership).
  VarianceGrowth(std::shared_ptr<const AcfModel> acf, double variance);

  /// V(m) for m >= 1; extends the internal table as needed.
  double at(std::size_t m) const;

  /// Bulk-extends the table so every V(1..m) is materialised.  One ACF
  /// evaluation and a handful of flops per new lag; values are identical
  /// to what repeated `at()` calls would produce (same summation order).
  void ensure(std::size_t m) const;

  /// Dense table with table()[m] == V(m) for 1 <= m <= table_size() - 1;
  /// index 0 is unused.  Valid until the next `ensure`/`at` call that
  /// grows the table.
  const double* table() const noexcept { return v_.data(); }
  std::size_t table_size() const noexcept { return v_.size(); }

  /// Companion reciprocal table: inv_table()[m] == 1 / (2 V(m)), same
  /// indexing and lifetime as `table()`.  The CTS scan objective is
  /// (b + m drift)^2 * inv_table()[m]; precomputing the reciprocal once
  /// per lag keeps the per-element scan free of divisions (the divider's
  /// throughput would otherwise bound the SIMD speedup).
  const double* inv_table() const noexcept { return inv2v_.data(); }

  /// Index-of-dispersion-style normalised growth V(m)/(sigma^2 m); tends to
  /// 1 + 2*sum r(i) for SRD and grows like m^{2H-1} for LRD.
  double normalized(std::size_t m) const;

  double variance() const noexcept { return variance_; }
  const AcfModel& acf() const noexcept { return *acf_; }

 private:
  std::shared_ptr<const AcfModel> acf_;
  double variance_;
  // v_[m] = V(m), inv2v_[m] = 1/(2 V(m)); index 0 unused.  s1_/s2_ are the
  // running prefix sums S1(m) and S2(m) over the lags absorbed so far
  // (m = v_.size() - 1).
  mutable std::vector<double> v_{0.0};
  mutable std::vector<double> inv2v_{0.0};
  mutable double s1_ = 0.0;
  mutable double s2_ = 0.0;
};

/// Closed-form approximation for exact-LRD sources (paper appendix eq. 11):
/// V(m) ~ sigma^2 g m^{2H}; exact enough even for small m.
double lrd_variance_growth_approx(double variance, double weight, double hurst,
                                  std::size_t m);

}  // namespace cts::core
