// Aggregate variance V(m) = Var(Y_1 + ... + Y_m).
//
// This is the only statistic through which correlations enter the
// Bahadur-Rao rate function (paper eq. 10):
//
//   V(m) = sigma^2 [ m + 2 sum_{i=1..m} (m - i) r(i) ].
//
// The class caches the running sums S1(m) = sum r(i) and S2(m) = sum i r(i)
// so a sweep over m (the CTS search) costs O(1) amortised per step.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cts/core/acf_model.hpp"

namespace cts::core {

/// Incrementally evaluated aggregate variance of a correlated sum.
class VarianceGrowth {
 public:
  /// `acf` must outlive this object (shared ownership).
  VarianceGrowth(std::shared_ptr<const AcfModel> acf, double variance);

  /// V(m) for m >= 1; extends internal caches as needed.
  double at(std::size_t m) const;

  /// Index-of-dispersion-style normalised growth V(m)/(sigma^2 m); tends to
  /// 1 + 2*sum r(i) for SRD and grows like m^{2H-1} for LRD.
  double normalized(std::size_t m) const;

  double variance() const noexcept { return variance_; }
  const AcfModel& acf() const noexcept { return *acf_; }

 private:
  void extend(std::size_t m) const;

  std::shared_ptr<const AcfModel> acf_;
  double variance_;
  // s1_[m] = sum_{i=1..m} r(i), s2_[m] = sum_{i=1..m} i r(i); index 0 unused.
  mutable std::vector<double> s1_{0.0};
  mutable std::vector<double> s2_{0.0};
};

/// Closed-form approximation for exact-LRD sources (paper appendix eq. 11):
/// V(m) ~ sigma^2 g m^{2H}; exact enough even for small m.
double lrd_variance_growth_approx(double variance, double weight, double hurst,
                                  std::size_t m);

}  // namespace cts::core
