// The Bahadur-Rao rate function and the Critical Time Scale (CTS).
//
// For N homogeneous Gaussian sources with per-source buffer b (cells) and
// bandwidth c (cells/frame), the rate function is (paper eq. 8):
//
//   I(c, b) = inf_{m >= 1} [b + m(c - mu)]^2 / (2 V(m)),
//
// and the minimiser m*_b is the Critical Time Scale: the number of frame
// correlations that determine the overflow probability.  Correlations at
// lags beyond m*_b do not influence I -- which is the paper's central
// object.  The paper proves m* < infinity whenever V(m) grows slower than
// m^2 (true for SRD and for LRD with H < 1) and that m*_0 = 1.

#pragma once

#include <cstddef>
#include <memory>

#include "cts/core/variance_growth.hpp"

namespace cts::core {

/// Result of one rate-function evaluation.
struct RateResult {
  double rate = 0.0;            ///< I(c, b)
  std::size_t critical_m = 1;   ///< m*_b, the Critical Time Scale
};

/// Evaluator of I(c, b) for one source model (mu, sigma^2, r(.)).
///
/// The minimisation over m is an exact integer scan with a stopping rule:
/// the scan runs to max(kMinScan, scan_margin * m_best_so_far) and at least
/// to the LRD scaling prediction H b / ((1-H)(c-mu)) padded by the margin,
/// so slowly-varying objectives near H -> 1 cannot stop the scan early.
class RateFunction {
 public:
  /// `acf` must describe a process with variance `variance` and mean `mean`.
  /// `bandwidth` is c (cells/frame) and must exceed `mean` (stability).
  RateFunction(std::shared_ptr<const AcfModel> acf, double mean,
               double variance, double bandwidth);

  /// I(c, b) and m* for per-source buffer b >= 0 (cells).  Throws
  /// util::NumericalError when the required scan horizon (including the
  /// initial LRD-scaling prediction, not just improvement-driven
  /// extensions) would exceed kMaxScan.
  RateResult evaluate(double buffer_per_source) const;

  /// Warm-started evaluation: begins the integer scan at `m_hint` instead
  /// of 1.  The result is bit-identical to the cold scan provided
  /// m_hint <= m*_b (the smallest minimiser): m*_b is non-decreasing in b
  /// at fixed c (decreasing differences of the objective in (m, b)), so a
  /// cached m* from any smaller buffer is always a valid hint.
  /// m_hint = 1 reproduces the cold scan exactly.
  RateResult evaluate(double buffer_per_source, std::size_t m_hint) const;

  double mean() const noexcept { return mean_; }
  double bandwidth() const noexcept { return bandwidth_; }
  const VarianceGrowth& variance_growth() const noexcept { return growth_; }

  /// Upper bound on the scanned m; evaluations requiring more throw
  /// util::NumericalError instead of silently returning a non-minimum.
  static constexpr std::size_t kMaxScan = 1u << 24;

 private:
  VarianceGrowth growth_;
  double mean_;
  double bandwidth_;
};

/// Asymptotic CTS slope for a Gaussian exact-LRD source (paper appendix):
///   m*_b ~ [H / ((1-H)(c-mu))] * b.
double lrd_cts_slope(double hurst, double mean, double bandwidth);

/// Asymptotic CTS slope for a Gaussian AR(1)/Markov source
/// (Courcoubetis & Weber):  m*_b ~ b / (c - mu).
double markov_cts_slope(double mean, double bandwidth);

}  // namespace cts::core
