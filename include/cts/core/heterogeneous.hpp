// Heterogeneous source populations.
//
// The paper's multiplexer is homogeneous (N copies of one model), but real
// links carry mixes.  For independent Gaussian sources the aggregate is
// Gaussian with
//
//   mu_A  = sum_i n_i mu_i,      var_A = sum_i n_i var_i,
//   r_A(k) = sum_i n_i var_i r_i(k) / var_A,
//
// and the Bahadur-Rao machinery applies to the aggregate directly (N = 1).
// For a homogeneous population this reduces EXACTLY to the per-source
// formulation: [Nb + m(Nc - Nmu)]^2 / (2 N V(m)) = N [b + m(c-mu)]^2/(2V(m)).

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/rate_function.hpp"

namespace cts::core {

/// One class of sources in a mixed population.
struct PopulationClass {
  std::shared_ptr<const AcfModel> acf;
  double mean = 0.0;      ///< per-source cells/frame
  double variance = 0.0;  ///< per-source variance
  std::size_t count = 0;  ///< number of sources of this class
};

/// Aggregate statistics of a population (Gaussian superposition).
struct AggregateModel {
  std::shared_ptr<const AcfModel> acf;  ///< variance-weighted mixture
  double mean = 0.0;                    ///< total cells/frame
  double variance = 0.0;                ///< total variance
};

/// Builds the aggregate Gaussian model of a population.  Requires at least
/// one class with count >= 1.
AggregateModel aggregate_population(
    const std::vector<PopulationClass>& classes);

/// log10 Bahadur-Rao BOP of the aggregate population on a link of
/// `total_capacity` cells/frame with `total_buffer` cells.  Requires
/// total_capacity > aggregate mean (stability).
BopPoint heterogeneous_br_log10_bop(
    const std::vector<PopulationClass>& classes, double total_capacity,
    double total_buffer);

}  // namespace cts::core
