// Analytic autocorrelation models.
//
// The Critical Time Scale machinery needs only three ingredients of a
// source: mean mu, variance sigma^2, and the autocorrelation function
// r(k).  AcfModel abstracts r(k); concrete models cover every correlation
// structure used in the paper:
//
//   GeometricAcf     r(k) = a^k                      (DAR(1)/AR(1), SRD)
//   DarAcf           DAR(p) recursion                 (the S models)
//   ExactLrdAcf      r(k) = w (1/2) grad^2(k^{2H})    (FBNDP / FGN, LRD)
//   MixtureAcf       weighted sum of models           (V^v, Z^a, eq. 5)
//   WhiteAcf         r(k) = 0                         (i.i.d. reference)

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace cts::core {

/// Autocorrelation function of a wide-sense-stationary frame process.
/// r(0) = 1 by definition; implementations define k >= 1.
class AcfModel {
 public:
  virtual ~AcfModel() = default;

  /// r(k) for lag k; must return 1 for k = 0.
  virtual double at(std::size_t k) const = 0;

  virtual std::string name() const = 0;
};

/// r(k) = a^k.  The ACF of DAR(1) (a = rho) and of Gaussian AR(1) (a = phi).
class GeometricAcf final : public AcfModel {
 public:
  explicit GeometricAcf(double a);
  double at(std::size_t k) const override;
  std::string name() const override;

 private:
  double a_;
};

/// DAR(p) autocorrelation via the Yule-Walker-shaped recursion, cached and
/// grown on demand.
class DarAcf final : public AcfModel {
 public:
  DarAcf(double rho, std::vector<double> lag_probs);
  double at(std::size_t k) const override;
  std::string name() const override;

 private:
  void extend(std::size_t k) const;

  double rho_;
  std::vector<double> lag_probs_;
  mutable std::vector<double> cache_;  // cache_[k] = r(k)
};

/// Exact-LRD ACF of the paper's eq. (2): r(k) = w * (1/2) grad^2(k^{2H}).
/// w = 1 gives FGN; w = Ts^a/(Ts^a + T0^a) gives the FBNDP frame process
/// (with 2H = alpha + 1).
class ExactLrdAcf final : public AcfModel {
 public:
  ExactLrdAcf(double hurst, double weight);
  double at(std::size_t k) const override;
  std::string name() const override;

  double hurst() const noexcept { return hurst_; }
  double weight() const noexcept { return weight_; }

 private:
  double hurst_;
  double weight_;
};

/// Convex mixture of ACFs: r(k) = sum_i w_i r_i(k), weights summing to 1.
/// This is eq. (5): the ACF of a sum of independent processes is the
/// variance-weighted mixture of the component ACFs.
class MixtureAcf final : public AcfModel {
 public:
  MixtureAcf(std::vector<std::shared_ptr<const AcfModel>> components,
             std::vector<double> weights, std::string name = "mixture");
  double at(std::size_t k) const override;
  std::string name() const override { return name_; }

 private:
  std::vector<std::shared_ptr<const AcfModel>> components_;
  std::vector<double> weights_;
  std::string name_;
};

/// r(k) = 0 for k >= 1 (i.i.d. frames).
class WhiteAcf final : public AcfModel {
 public:
  double at(std::size_t k) const override { return k == 0 ? 1.0 : 0.0; }
  std::string name() const override { return "white"; }
};

/// F-ARIMA(0, d, 0) autocorrelation (fractionally integrated noise), the
/// paper's example of an ASYMPTOTIC LRD process (Section 2):
///   r(k) = r(k-1) * (k - 1 + d) / (k - d),  r(0) = 1,  d = H - 1/2.
/// Unlike the exact-LRD family, the power law only holds in the tail.
class FarimaAcf final : public AcfModel {
 public:
  /// `d` in (0, 1/2); H = d + 1/2.
  explicit FarimaAcf(double d);
  double at(std::size_t k) const override;
  std::string name() const override;

  double d() const noexcept { return d_; }
  double hurst() const noexcept { return d_ + 0.5; }

 private:
  void extend(std::size_t k) const;

  double d_;
  mutable std::vector<double> cache_{1.0};
};

/// ACF given by an explicit table r(0..K); lags beyond the table return 0.
/// Useful for plugging empirical ACFs straight into the CTS machinery.
class TabulatedAcf final : public AcfModel {
 public:
  explicit TabulatedAcf(std::vector<double> values);
  double at(std::size_t k) const override;
  std::string name() const override { return "tabulated"; }

 private:
  std::vector<double> values_;
};

}  // namespace cts::core
