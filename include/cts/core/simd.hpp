// Runtime-dispatched SIMD kernels for the analytic hot paths.
//
// The kernels here back the CTS scan (`RateFunction::evaluate`), the
// Davies-Harte block scaling, and the Hosking/Durbin-Levinson inner
// products.  Dispatch picks the best instruction set the host supports
// (AVX2 > SSE2 > scalar, probed once via cpuid) and can be overridden for
// testing with the `CTS_SIMD=scalar|sse2|avx2` environment variable or the
// `force()` hook.
//
// Bit-identity contract: every kernel produces byte-identical results on
// every dispatch kind.  Element-wise kernels (`scale_pairs`,
// `axpy_reversed`, `scaled_real_stride2`) use only per-element IEEE-754
// mul/add/div (never FMA), which round identically in scalar and vector
// registers.  Reductions cannot reorder floating-point sums freely, so
// `dot_reversed` fixes a "4-lane blocked" summation order -- lane l
// accumulates elements j with j % 4 == l, lanes combine as
// (acc0 + acc2) + (acc1 + acc3), and the tail is added sequentially --
// which all three implementations realise exactly.  `scan_min` is an
// argmin under strict `<` with lowest-m tie-breaking, which is independent
// of evaluation order altogether.  Tests assert the contract kernel-by-
// kernel and end-to-end at the curve level (test_simd_kernels,
// test_curve_bit_identity).

#pragma once

#include <cstddef>
#include <string_view>

namespace cts::core::simd {

/// Available kernel implementations, ordered by preference.
enum class Kind {
  kScalar = 0,  ///< portable fallback, always available
  kSse2 = 1,    ///< 2-wide doubles (baseline on x86-64)
  kAvx2 = 2,    ///< 4-wide doubles
};

/// Short lowercase name ("scalar", "sse2", "avx2") for logs and flags.
const char* kind_name(Kind kind) noexcept;

/// Best kind the host CPU supports (cpuid probe, computed once).
Kind best_supported() noexcept;

/// The kind kernels currently dispatch to: a `force()`d kind if set, else
/// the validated `CTS_SIMD` environment override, else `best_supported()`.
/// Throws util::InvalidArgument on the first call if `CTS_SIMD` is set to
/// an unknown name or to a kind the host cannot execute.
Kind active();

/// Test hook: pin dispatch to `kind` (must be supported by the host;
/// throws util::InvalidArgument otherwise).  Thread-safe.
void force(Kind kind);

/// Test hook: clears a `force()`d kind, restoring env/auto dispatch.
void clear_force() noexcept;

/// Parses "scalar"/"sse2"/"avx2"; throws util::InvalidArgument otherwise.
Kind parse_kind(std::string_view name);

/// Result of a windowed scan: the minimum objective value and its m.
struct ScanPoint {
  double value = 0.0;
  std::size_t m = 0;
};

/// Argmin over m in [m_lo, m_hi] (inclusive, m_lo >= 1, m_lo <= m_hi) of
/// the Bahadur-Rao scan objective
///
///   f(m) = (b + m * drift)^2 * inv2v[m],
///
/// where `inv2v[m]` is the precomputed reciprocal table 1 / (2 V(m))
/// (indexed by m; inv2v[0] unused, entries up to m_hi must be valid and
/// positive).  Hoisting the division into the shared table keeps the hot
/// loop pure mul/add — the per-element divide would otherwise cap the
/// vector win at the divider's throughput.  Ties resolve to the lowest m,
/// so the result equals the first running minimum of a sequential scan.
ScanPoint scan_min(double b, double drift, const double* inv2v,
                   std::size_t m_lo, std::size_t m_hi);

/// sum_{j=0..n-1} a[j] * b_last[-j]  -- a forward vector against a
/// reversed one (`b_last` points at the LAST element of the reversed
/// operand).  Fixed 4-lane blocked summation order (see file comment).
double dot_reversed(const double* a, const double* b_last, std::size_t n);

/// out[j] = a[j] - r * a_last[-j] for j in [0, n).  `out` must not alias
/// `a`/`a_last`.  Element-wise, hence exact on every kind.
void axpy_reversed(const double* a, const double* a_last, double r,
                   double* out, std::size_t n);

/// out[2j] = s[j] * z[2j], out[2j+1] = s[j] * z[2j+1] for j in [0, n):
/// scales interleaved complex pairs by a real per-pair factor
/// (Davies-Harte spectral scaling).  `out` may alias `z`.
void scale_pairs(const double* s, const double* z, double* out,
                 std::size_t n);

/// out[j] = in[2j] * norm for j in [0, n): extracts the real parts of an
/// interleaved complex array and applies the FFT normalisation.
void scaled_real_stride2(const double* in, double norm, double* out,
                         std::size_t n);

}  // namespace cts::core::simd
