// Bahadur-Rao and Large-N buffer-overflow asymptotics.
//
// Paper eq. (7): for N homogeneous Gaussian sources,
//
//   Psi(c, b, N) ~ exp( -N I(c,b) - (1/2) log(4 pi N I(c,b)) ),
//
// which refines the Courcoubetis-Weber "Large N" asymptotic
// Psi ~ exp(-N I).  Both are returned in log10 so wide-buffer sweeps
// (Fig. 7) cannot underflow.

#pragma once

#include <cstddef>

#include "cts/core/rate_function.hpp"

namespace cts::core {

/// One point of a BOP curve.
struct BopPoint {
  double buffer_per_source = 0.0;  ///< b (cells)
  double log10_bop = 0.0;          ///< log10 Psi(c, b, N)
  std::size_t critical_m = 1;      ///< the CTS at this buffer
  double rate = 0.0;               ///< I(c, b)
};

/// log10 of the Bahadur-Rao overflow probability for N sources at
/// per-source buffer b, given an already-constructed rate function.
/// Clamps at 0 (probability 1) for degenerate small-rate corners.
BopPoint br_log10_bop(const RateFunction& rate, double buffer_per_source,
                      std::size_t n_sources);

/// Warm-started variant: forwards `m_hint` to RateFunction::evaluate.
/// Bit-identical to the cold overload whenever m_hint <= m*_b — true for
/// any cached m* from a smaller buffer at the same bandwidth, since m*_b
/// is non-decreasing in b (see RateFunction::evaluate).
BopPoint br_log10_bop(const RateFunction& rate, double buffer_per_source,
                      std::size_t n_sources, std::size_t m_hint);

/// Same, but from an already-evaluated rate-function point: the BR
/// asymptotic is closed-form in (I, N), so a memoized RateResult turns a
/// CTS scan into O(1) work.  Bit-identical to the RateFunction overload
/// for the same (I, m*).
BopPoint br_log10_bop(const RateResult& rate_point, double buffer_per_source,
                      std::size_t n_sources);

}  // namespace cts::core
