// Error handling primitives for the cts library.
//
// The library reports precondition violations and numerical failures with
// exceptions derived from `cts::util::Error`, so callers can distinguish
// library failures from standard-library ones.  Hot paths (per-frame
// generation, queue recursion) never throw; validation happens at
// construction/configuration time.

#pragma once

#include <stdexcept>
#include <string>

namespace cts::util {

/// Base class of all exceptions thrown by the cts library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition (bad parameter, empty input).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// A numerical routine failed to converge or produced a non-finite result.
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Throws InvalidArgument with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace cts::util
