// Random-number substrate.
//
// The simulation experiments in the paper need (a) reproducible streams,
// (b) cheap splitting into per-replication / per-source independent streams
// so multithreaded replication gives results independent of scheduling, and
// (c) a generator fast enough that 10^8+ frame draws per experiment are not
// the bottleneck.  We implement xoshiro256++ (Blackman & Vigna) seeded via
// SplitMix64, both from the public-domain reference algorithms, wrapped as
// a C++ UniformRandomBitGenerator so <random> distributions apply directly.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace cts::util {

/// SplitMix64: a tiny 64-bit generator used to expand one seed word into
/// the xoshiro state and to derive decorrelated child seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 64-bit generator.  Satisfies UniformRandomBitGenerator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state by running SplitMix64 from `seed`.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); yields a stream guaranteed
  /// non-overlapping with the parent for any realistic run length.
  void jump() noexcept;

  /// Returns a child generator whose stream is decorrelated from this one.
  /// Used to hand independent streams to replications and sources; the
  /// derivation is deterministic so experiments are reproducible for any
  /// thread count.
  Xoshiro256pp split() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Standard-normal variate via the polar (Marsaglia) method with one-value
/// caching.  Matches N(0,1) to distribution; faster and allocation-free
/// compared to std::normal_distribution on this generator.
class NormalSampler {
 public:
  double operator()(Xoshiro256pp& rng) noexcept;

 private:
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Poisson variate with mean `mean` >= 0.  Uses inversion for small means
/// and the PTRS transformed-rejection algorithm (Hormann) for large means;
/// exact to distribution in both regimes.  FBNDP frame counts have means of
/// hundreds, so the large-mean path dominates.
std::uint64_t poisson_sample(Xoshiro256pp& rng, double mean);

/// Gamma variate with the given shape and scale (Marsaglia-Tsang squeeze
/// method; the shape < 1 case is boosted via the U^{1/shape} identity).
/// Used by the negative-binomial (gamma-Poisson mixture) marginal.
double gamma_sample(Xoshiro256pp& rng, double shape, double scale);

}  // namespace cts::util
