// Small numerical helpers shared across the library.
//
// Everything here is pure and deterministic: second central differences
// (used by exact-LRD autocorrelation formulas), stable log-space utilities
// for probabilities that underflow double range (BOPs reach 1e-300 in the
// wide-buffer sweeps), bisection/Brent-style root bracketing, and the
// standard normal distribution functions used by quantisers and the
// Kolmogorov-Smirnov test.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace cts::util {

/// Machine-independent value of pi (std::numbers is used internally; this
/// constant exists so headers that predate C++20 adoption elsewhere can
/// still interoperate).
inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// Second central difference of h(k) = k^e evaluated at integer lag k >= 1:
///   grad2(k, e) = (k+1)^e - 2 k^e + (k-1)^e.
/// This is the discrete operator the paper writes as (1/2) * nabla^2(k^{2H});
/// callers multiply by 1/2 themselves.  Exact-LRD autocorrelations are
/// expressed through it (paper eq. 2).
double second_central_difference_pow(std::size_t k, double exponent);

/// log(1 - exp(x)) for x < 0, computed without catastrophic cancellation.
double log1mexp(double x);

/// log(exp(a) + exp(b)) without overflow.
double logaddexp(double a, double b);

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal cumulative distribution function (via std::erfc).
double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; absolute error < 1e-12 over (1e-300, 1-1e-16)).
double normal_quantile(double p);

/// Finds a root of `f` in [lo, hi] by bisection.  Requires f(lo) and f(hi)
/// to have opposite signs (throws InvalidArgument otherwise).  Stops when
/// the bracket is narrower than `tol` or after `max_iter` halvings.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol = 1e-12, int max_iter = 200);

/// Least-squares fit of y = intercept + slope * x.  Returns {slope,
/// intercept}.  Throws InvalidArgument when fewer than two points are given
/// or all x are identical.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination (1 = perfect fit).
  double r_squared = 0.0;
};
LinearFit linear_least_squares(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Kahan-compensated sum of a range of doubles.
double stable_sum(const std::vector<double>& values);

/// True when `value` is finite (not NaN/inf).
bool is_finite(double value);

}  // namespace cts::util
