// Plain-text table rendering for the experiment harness.
//
// Every bench binary prints the rows/series of one table or figure of the
// paper; this module renders them as aligned monospace tables so the output
// is directly comparable to the published plots.

#pragma once

#include <string>
#include <vector>

namespace cts::util {

/// Column-aligned text table.  Cells are strings; numeric helpers format
/// with a chosen precision or scientific notation for probabilities.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; its width must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting ("3.1416" for format_fixed(pi, 4)).
std::string format_fixed(double value, int precision);

/// Scientific formatting suited to probabilities ("1.234e-06").
std::string format_sci(double value, int precision = 3);

/// Formats an integer count with no decimals.
std::string format_int(long long value);

}  // namespace cts::util
