// Dense linear algebra for the model-fitting module.
//
// DAR(p) fitting solves a p-by-p Toeplitz system built from target
// autocorrelations (p <= ~16 in practice), and the tail fit solves small
// normal-equation systems, so a partial-pivoting Gaussian elimination and a
// Levinson-Durbin Toeplitz solver cover every need without an external BLAS.

#pragma once

#include <cstddef>
#include <vector>

namespace cts::util {

/// Minimal dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Matrix-vector product; `v.size()` must equal `cols()`.
  std::vector<double> multiply(const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.  Throws
/// NumericalError when A is singular to working precision, InvalidArgument
/// on shape mismatch.  A is taken by value (the elimination is in-place).
std::vector<double> solve_dense(Matrix a, std::vector<double> b);

/// Solves the symmetric Toeplitz system T x = b where T(i,j) = t[|i-j|],
/// via the Levinson recursion in O(p^2).  `t[0]` must be nonzero and the
/// leading minors nonsingular (throws NumericalError otherwise).  This is
/// the Yule-Walker-shaped system of the DAR(p) fit.
std::vector<double> solve_toeplitz(const std::vector<double>& t,
                                   const std::vector<double>& b);

}  // namespace cts::util
