// Online statistics accumulators.
//
// Replication experiments estimate cell-loss rates as low as 1e-7 from
// billions of samples, so the accumulators must be numerically stable
// (Welford updates, Kahan-compensated totals) and mergeable (per-thread
// accumulation followed by a reduction).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <limits>

namespace cts::util {

/// Welford mean/variance accumulator with O(1) updates and exact merging.
class MomentAccumulator {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator into this one (Chan et al. parallel update).
  void merge(const MomentAccumulator& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two samples were added.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Standard error of the mean; 0 when fewer than two samples were added.
  double standard_error() const noexcept {
    return count_ > 1 ? std::sqrt(variance() / static_cast<double>(count_))
                      : 0.0;
  }

  /// Raw sum of squared deviations (the Welford M2 term), exposed so a
  /// snapshot can serialize the accumulator losslessly and merge it later.
  double m2() const noexcept { return m2_; }

  /// Rebuilds an accumulator from serialized state.  A zero count yields a
  /// default (empty) accumulator regardless of the other fields.
  static MomentAccumulator from_state(std::uint64_t count, double mean,
                                      double m2, double min,
                                      double max) noexcept {
    MomentAccumulator acc;
    if (count == 0) return acc;
    acc.count_ = count;
    acc.mean_ = mean;
    acc.m2_ = m2;
    acc.min_ = min;
    acc.max_ = max;
    return acc;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Kahan-compensated running sum for loss/arrival cell totals whose partial
/// sums span many orders of magnitude.
class CompensatedSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  void merge(const CompensatedSum& other) noexcept {
    add(other.sum_);
    add(-other.compensation_);
  }

  double value() const noexcept { return sum_; }

  /// Running Kahan compensation term, exposed for lossless serialization.
  double compensation() const noexcept { return compensation_; }

  /// Rebuilds a sum from serialized state (exact, including compensation).
  static CompensatedSum from_state(double sum, double compensation) noexcept {
    CompensatedSum out;
    out.sum_ = sum;
    out.compensation_ = compensation;
    return out;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace cts::util
