// Child-process wait helpers with deadlines.
//
// The shard orchestrator (tools/cts_simd) and the network worker daemon
// (tools/cts_shardd) both fork/exec bench shards and must never block in
// waitpid forever on a wedged child: wait_child polls with WNOHANG under a
// monotonic deadline, SIGKILLs a straggler when it expires, and reports
// *how* the child ended — a signal-killed worker is named by its signal
// ("killed by signal 11 (Segmentation fault)"), not folded into a generic
// failure.

#pragma once

#include <sys/types.h>

#include <string>

namespace cts::util {

/// How a waited-on child ended.
struct WaitOutcome {
  enum class Kind {
    kExited,    ///< normal exit; exit_code is valid
    kSignaled,  ///< terminated by a signal; signal is valid
    kTimeout,   ///< deadline expired; the child was SIGKILLed and reaped
    kError,     ///< waitpid itself failed; error is valid
  };

  Kind kind = Kind::kError;
  int exit_code = 0;    ///< kExited
  int signal = 0;       ///< kSignaled
  double waited_s = 0;  ///< wall time spent waiting
  std::string error;    ///< kError

  bool ok() const { return kind == Kind::kExited && exit_code == 0; }

  /// Human-readable account: "exited with status 3", "killed by signal 15
  /// (Terminated)", "timed out after 5.0s (killed)".
  std::string describe() const;
};

/// Waits for `pid`.  timeout_s < 0 blocks indefinitely; otherwise the
/// child is polled until the deadline, then SIGKILLed and reaped (kTimeout).
WaitOutcome wait_child(pid_t pid, double timeout_s);

}  // namespace cts::util
