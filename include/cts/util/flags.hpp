// Tiny command-line / environment flag parser for benches and examples.
//
// Experiments accept overrides like --frames=500000 --reps=60 and honour
// the REPRO_FULL=1 environment switch that selects the paper's full
// simulation scale.  This parser supports only what the harness needs:
// --key=value and --key value pairs plus boolean --key.

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cts::util {

/// Parsed command-line flags with typed accessors and defaults.
class Flags {
 public:
  /// Parses argv; unknown positional arguments are ignored.  Throws
  /// InvalidArgument on a malformed flag token (e.g. "--=3").
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Parsed --key tokens that are not in `known`, sorted.  A typo like
  /// --frmes=500000 is otherwise silently ignored and the run proceeds at
  /// default scale.
  std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

  /// Prints one warning line per unknown key to `os` (listing the known
  /// flags once); returns the number of unknown keys.  When an unknown key
  /// is a near-miss of a known flag the warning names it:
  ///   [warning: unknown flag --metrcs ignored (did you mean --metrics?)]
  std::size_t warn_unknown(std::ostream& os,
                           const std::vector<std::string>& known) const;

  /// The known flag closest to `key` in edit distance, or "" when nothing
  /// is close enough to plausibly be a typo (distance must be <= 2 and
  /// strictly less than half the key length).
  static std::string suggest(const std::string& key,
                             const std::vector<std::string>& known);

 private:
  std::map<std::string, std::string> values_;
};

/// Strict full-string double parse: `text` must be exactly one finite
/// decimal/scientific number ("1.5", "-2e3").  Returns false on empty
/// input, trailing junk ("1.5abc"), or overflow ("1e999").  Underflow to
/// zero/denormal is accepted.  Stores the value in *out on success.
bool try_parse_double(const std::string& text, double* out) noexcept;

/// Strict full-string integer parse (the env_int treatment): `text` must
/// be exactly one base-10 64-bit integer.  Returns false on empty input,
/// trailing junk ("12abc"), or overflow.
bool try_parse_int(const std::string& text, std::int64_t* out) noexcept;

/// True when environment variable `name` is set to a truthy value
/// ("1", "true", "yes", "on", case-insensitive).
bool env_flag(const std::string& name);

/// Reads an integer environment variable, returning `fallback` when unset.
/// A set-but-malformed value (partial parse like "12abc", overflow, empty)
/// throws InvalidArgument naming the variable and the offending value —
/// a typo'd override must never silently run at the wrong scale.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

}  // namespace cts::util
