// Iterative radix-2 complex FFT.
//
// Used by the Davies-Harte exact FGN generator (circulant embedding) and by
// the log-periodogram Hurst estimator.  Power-of-two lengths only; the
// callers pad accordingly.

#pragma once

#include <complex>
#include <vector>

namespace cts::util {

/// In-place forward FFT; `data.size()` must be a power of two (throws
/// InvalidArgument otherwise).
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/N normalisation).
void ifft(std::vector<std::complex<double>>& data);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace cts::util
