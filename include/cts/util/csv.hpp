// CSV output for experiment series.
//
// Each bench binary can mirror its printed table into a CSV file (under
// CTS_OUTPUT_DIR or the working directory) so the figures can be re-plotted
// with external tooling.

#pragma once

#include <string>
#include <vector>

namespace cts::util {

/// Accumulates rows and writes an RFC-4180-style CSV file.  Values
/// containing commas, quotes or newlines are quoted and escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Writes to `path`, overwriting.  Returns false (and leaves no partial
  /// file guarantee) when the file cannot be opened.
  bool write(const std::string& path) const;

  std::string render() const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cts::util
