// Single source of truth for the command-line surface of the harness.
//
// Every bench binary and every tool builds its known-flag list (the one
// Flags::warn_unknown checks and --help prints) from these tables, and
// docs/cli.md documents the same tables — tests/test_cli_docs.cpp asserts
// that every flag and environment variable registered here appears in the
// doc, so the reference cannot drift silently when a flag is added: the
// new entry lands here, the tool picks it up, and the test fails until
// docs/cli.md mentions it.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cts::util::cli {

/// One documented --flag.
struct FlagDoc {
  const char* name;        ///< without the leading "--"
  const char* value_hint;  ///< "" for boolean flags
  const char* doc;         ///< one-line description
};

/// One documented environment variable.
struct EnvDoc {
  const char* name;
  const char* doc;
};

/// Flags every bench binary accepts (parsed by bench::ObsGuard).
inline constexpr FlagDoc kBenchSharedFlags[] = {
    {"csv", "PATH", "mirror the rendered table as CSV"},
    {"trace", "PATH", "write a Chrome-trace span timeline"},
    {"metrics", "PATH",
     "write the JSON run report (config echo + metrics registry)"},
    {"perf", "PATH",
     "write the cts.perf.v1 report (rusage, hw counters, span self-times)"},
    {"profile", "PATH",
     "write a cts.profile.v1 span-stack sampling profile (default "
     "<run_id>_profile.json)"},
    {"profile-folded", "PATH",
     "write the profile as collapsed-stack text (flamegraph.pl ready)"},
    {"profile-hz", "N", "profiler sampling rate in Hz (default 97)"},
    {"profile-backend", "NAME",
     "profiler backend: thread (wall clock) or itimer (SIGPROF, CPU time)"},
    {"shard", "I/N",
     "run only replication shard I of N (REPRO_SHARD equivalent)"},
    {"shard-out", "PATH",
     "write this worker's cts.shard.v1 file (default <run_id>_shard.json)"},
    {"quiet", "",
     "suppress the stderr progress line (CTS_QUIET=1 equivalent)"},
    {"help", "", "print this flag list and exit"},
};

/// tools/cts_benchd.
inline constexpr FlagDoc kBenchdFlags[] = {
    {"suite", "smoke|sim|analytic|full", "bench suite to run (default smoke)"},
    {"filter", "SUBSTR", "only benches whose id contains SUBSTR"},
    {"repeats", "N", "measured runs per bench (default 5)"},
    {"warmup", "N", "unmeasured warmup runs per bench (default 1)"},
    {"out", "PATH", "output document (default BENCH_<date>.json)"},
    {"bench-dir", "DIR",
     "directory with the bench binaries (default: CTS_BENCH_DIR or the "
     "build-tree sibling bench/)"},
    {"reps", "N", "pin REPRO_REPS for every child (default 2)"},
    {"frames", "N", "pin REPRO_FRAMES for every child (default 2000)"},
    {"date", "YYYY-MM-DD", "override the document date (default: today UTC)"},
    {"compare", "BASE.json",
     "one-shot gate: after writing the document, compare it against this "
     "baseline and exit like cts_benchcmp (0 ok, 1 regression, 2 error)"},
    {"k", "K", "--compare noise gate in MAD multiples (default 3)"},
    {"pct", "P", "--compare relative gate in percent (default 5)"},
    {"json-lines", "PATH",
     "stream one RFC 8259 JSON object per run (cts.benchrun.v1) for soak "
     "monitoring"},
    {"log", "PATH",
     "append cts.events.v1 JSONL events (suite/bench lifecycle) to PATH"},
    {"log-level", "LEVEL",
     "event-log sink threshold: debug|info|warn|error (default info)"},
    {"keep-runs", "", "keep the per-run perf reports in the temp run dir"},
    {"list", "", "print the bench registry and exit"},
    {"quiet", "", "suppress progress on stderr"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_benchcmp.
inline constexpr FlagDoc kBenchcmpFlags[] = {
    {"k", "K", "noise gate in MAD multiples (default 3)"},
    {"pct", "P", "relative gate in percent of the baseline (default 5)"},
    {"metrics", "CSV",
     "comma-separated metrics to gate (default wall_s,user_s,sys_s,"
     "max_rss_kb)"},
    {"validate", "FILE.json",
     "only validate FILE: strict RFC 8259 plus the cts.bench.v1 schema tag"},
    {"quiet", "", "suppress the delta table"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_benchtrend.
inline constexpr FlagDoc kBenchtrendFlags[] = {
    {"dir", "DIR",
     "scan DIR for BENCH_*.json when no files are given (default .)"},
    {"metrics", "CSV", "comma-separated metrics to chart (default wall_s)"},
    {"md", "PATH", "write the markdown trend report"},
    {"csv", "PATH", "write the CSV mirror"},
    {"svg", "PATH",
     "write the SVG sparkline chart (per suite: <stem>_<suite>.svg when "
     "baselines span several suites)"},
    {"k", "K", "noise gate in MAD multiples (default 3)"},
    {"pct", "P", "relative gate in percent of the first baseline (default 5)"},
    {"window", "N",
     "trailing baselines that must all sit beyond the band to flag drift "
     "(default 2)"},
    {"gate", "", "exit 1 when any series flags sustained drift"},
    {"validate", "",
     "only validate the given files: strict RFC 8259 plus the cts.bench.v1 "
     "schema tag"},
    {"quiet", "", "suppress the report on stdout"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_simd.
inline constexpr FlagDoc kSimdFlags[] = {
    {"shards", "N", "worker process count for `run` (default 2)"},
    {"out-dir", "DIR", "shard files / logs directory (default simd_out)"},
    {"metrics", "PATH",
     "merged run report path (default simd_metrics.json)"},
    {"keep-shards", "", "keep per-worker shard files after the merge"},
    {"timeout", "SECS",
     "kill and report local workers still running after SECS (default 0 = "
     "no deadline)"},
    {"workers", "HOST:PORT,...",
     "dispatch shards to these cts_shardd workers instead of local "
     "fork/exec (BENCH becomes a registry id)"},
    {"job-timeout", "SECS",
     "per-job network deadline in --workers mode (default 300)"},
    {"retries", "N",
     "max dispatch attempts per shard across workers before local fallback "
     "(default 3)"},
    {"bench-dir", "DIR",
     "bench-binary directory for the local fallback in --workers mode "
     "(default: CTS_BENCH_DIR or the build-tree sibling bench/)"},
    {"dispatch-metrics", "PATH",
     "write the dispatcher's own cts::obs run report (jobs, retries, "
     "per-worker latency) — kept out of the merged report by design"},
    {"trace", "PATH",
     "write a merged Chrome-trace timeline: dispatcher spans plus one "
     "clock-corrected lane per worker (from the jobs' obs captures)"},
    {"profile", "PATH",
     "write the dispatcher's cts.profile.v1 span-stack sampling profile"},
    {"profile-folded", "PATH",
     "write the dispatcher profile as collapsed-stack text"},
    {"profile-hz", "N", "profiler sampling rate in Hz (default 97)"},
    {"profile-backend", "NAME",
     "profiler backend: thread (wall clock) or itimer (SIGPROF, CPU time)"},
    {"log", "PATH",
     "append cts.events.v1 JSONL events (dispatch lifecycle) to PATH"},
    {"log-level", "LEVEL",
     "event-log sink threshold: debug|info|warn|error (default info)"},
    {"quiet", "", "suppress progress"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_shardd.
inline constexpr FlagDoc kShardDFlags[] = {
    {"port", "N", "TCP port to listen on (default 0 = ephemeral, printed)"},
    {"port-file", "PATH", "write the bound port to PATH (for launchers)"},
    {"bench-dir", "DIR",
     "bench-binary directory (default: CTS_BENCH_DIR or the build-tree "
     "sibling bench/)"},
    {"work-dir", "DIR",
     "scratch directory for shard files and job logs (default shardd_work)"},
    {"max-jobs", "N", "exit 0 after serving N jobs (default 0 = forever)"},
    {"fault-exit-after", "N",
     "fault-injection hook: die abruptly (no reply) on the job after N "
     "served — simulates a worker killed mid-shard (default off)"},
    {"profile", "PATH",
     "write a cts.profile.v1 span-stack sampling profile on clean exit"},
    {"profile-folded", "PATH",
     "write the profile as collapsed-stack text on clean exit"},
    {"profile-hz", "N", "profiler sampling rate in Hz (default 97)"},
    {"profile-backend", "NAME",
     "profiler backend: thread (wall clock) or itimer (SIGPROF, CPU time)"},
    {"log", "PATH",
     "append cts.events.v1 JSONL events to PATH instead of stderr"},
    {"log-level", "LEVEL",
     "event-log sink threshold: debug|info|warn|error (default info)"},
    {"quiet", "", "silence the default stderr event sink"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_cacd (all modes: serve, query, eval).
inline constexpr FlagDoc kCacdFlags[] = {
    {"port", "N",
     "serve: TCP port to listen on (default 0 = ephemeral, printed); "
     "query: the daemon's port (required)"},
    {"port-file", "PATH", "serve: write the bound port to PATH"},
    {"max-requests", "N",
     "serve: exit 0 after serving N CAC requests (default 0 = forever)"},
    {"deadline", "SECS",
     "serve: default per-request batch deadline when the request omits "
     "deadline_s (default 30); query: the deadline_s to send (default 0 = "
     "daemon default)"},
    {"host", "H", "query: daemon host (default 127.0.0.1)"},
    {"model", "ID",
     "query/eval: model-zoo id — za:A, vv:V, dar:A:P, l, white, ar1:PHI, "
     "farima:D, mginf:BETA (default za:0.9)"},
    {"capacity", "C",
     "query/eval: link capacity, cells/frame (default 16140)"},
    {"buffer", "B", "query/eval: total buffer, cells (default 4035)"},
    {"clr", "L", "query/eval: log10 CLR target, < 0 (default -6)"},
    {"kind", "K,K,...",
     "query/eval: comma list of query kinds — admit_br, admit_eb, bop "
     "(default admit_br); one query per entry"},
    {"n", "N", "query/eval: connection count for bop queries (default 1)"},
    {"interp", "",
     "query: let bop answers interpolate between cached grid points"},
    {"timeout", "SECS",
     "query: connect/send/receive network deadline (default 30)"},
    {"request-file", "PATH",
     "query: send this file verbatim as the request instead of building "
     "one from flags"},
    {"profile", "PATH",
     "serve: write a cts.profile.v1 span-stack sampling profile on clean "
     "exit"},
    {"profile-folded", "PATH",
     "serve: write the profile as collapsed-stack text on clean exit"},
    {"profile-hz", "N", "profiler sampling rate in Hz (default 97)"},
    {"profile-backend", "NAME",
     "profiler backend: thread (wall clock) or itimer (SIGPROF, CPU time)"},
    {"log", "PATH",
     "append cts.events.v1 JSONL events to PATH instead of stderr"},
    {"log-level", "LEVEL",
     "event-log sink threshold: debug|info|warn|error (default info)"},
    {"quiet", "", "silence the default stderr event sink"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_scenariod (all modes: run, merge, check).
inline constexpr FlagDoc kScenariodFlags[] = {
    {"out", "PATH",
     "run/merge: cts.scenarioresult.v1 output path (default "
     "scenario_result.json)"},
    {"hop-trace", "PATH",
     "run/merge: also write the cts.scenariotrace.v1 per-hop trace (needs "
     "hop_trace_every in the spec, and for run a slice containing "
     "replication 0)"},
    {"shard", "I/N",
     "run: execute only replication shard I of N; the partial merges "
     "bit-identically via `merge`"},
    {"reps", "N", "run: override the spec's replication count"},
    {"frames", "N", "run: override measured frames per replication"},
    {"warmup", "N", "run: override warmup frames per replication"},
    {"seed", "U64", "run: override the master seed (decimal)"},
    {"threads", "N", "run: worker threads (default 0 = hardware concurrency)"},
    {"metrics", "PATH",
     "run: write the JSON run report (config echo + metrics registry)"},
    {"trace", "PATH", "run: write a Chrome-trace span timeline"},
    {"quiet", "", "suppress the stderr progress line"},
    {"help", "", "print usage and exit"},
};

/// tools/cts_obstop.
inline constexpr FlagDoc kObstopFlags[] = {
    {"workers", "HOST:PORT,...",
     "cts_shardd stats endpoints to poll (required unless --validate)"},
    {"json", "",
     "one-shot: print each worker's raw cts.stats.v1 reply (single worker: "
     "the object verbatim; several: a JSON array) and exit"},
    {"openmetrics", "",
     "one-shot: print one worker's OpenMetrics 1.0 exposition verbatim and "
     "exit (exactly one worker)"},
    {"interval", "SECS", "poll period for the live table (default 2)"},
    {"iterations", "N",
     "stop the live table after N polls (default 0 = until interrupted)"},
    {"timeout", "SECS", "per-worker connect/reply deadline (default 5)"},
    {"slo", "METRIC:pQ:MS,...",
     "latency objectives against exported log histograms (e.g. "
     "shardd.job_wall_ms:p99:250); breaching rows turn red"},
    {"check", "",
     "one poll, then gate: exit 3 when any --slo objective is breached"},
    {"validate", "",
     "only validate the given files: .jsonl as cts.events.v1 lines, "
     ".om/.prom/.openmetrics as OpenMetrics 1.0 text, anything else as one "
     "strict RFC 8259 document (trace or stats)"},
    {"quiet", "", "suppress per-worker error lines on stderr"},
    {"help", "", "print usage and exit"},
};

/// Environment variables the harness honours.
inline constexpr EnvDoc kEnvVars[] = {
    {"REPRO_FULL", "run at the paper scale (60 replications x 500k frames)"},
    {"REPRO_REPS", "override the replication count"},
    {"REPRO_FRAMES", "override frames per replication"},
    {"REPRO_SHARD", "run only replication shard I/N (same as --shard)"},
    {"CTS_QUIET", "suppress the stderr progress line (same as --quiet)"},
    {"CTS_BENCH_DIR", "bench-binary directory for cts_benchd"},
    {"CTS_SIMD", "pin the SIMD kernel tier: scalar, sse2, or avx2"},
};

/// One tool's documented surface, for the docs test.
struct ToolDoc {
  const char* tool;
  const FlagDoc* flags;
  std::size_t count;
};

inline constexpr ToolDoc kTools[] = {
    {"bench binaries", kBenchSharedFlags,
     sizeof(kBenchSharedFlags) / sizeof(kBenchSharedFlags[0])},
    {"cts_benchd", kBenchdFlags, sizeof(kBenchdFlags) / sizeof(kBenchdFlags[0])},
    {"cts_benchcmp", kBenchcmpFlags,
     sizeof(kBenchcmpFlags) / sizeof(kBenchcmpFlags[0])},
    {"cts_benchtrend", kBenchtrendFlags,
     sizeof(kBenchtrendFlags) / sizeof(kBenchtrendFlags[0])},
    {"cts_simd", kSimdFlags, sizeof(kSimdFlags) / sizeof(kSimdFlags[0])},
    {"cts_shardd", kShardDFlags,
     sizeof(kShardDFlags) / sizeof(kShardDFlags[0])},
    {"cts_cacd", kCacdFlags, sizeof(kCacdFlags) / sizeof(kCacdFlags[0])},
    {"cts_scenariod", kScenariodFlags,
     sizeof(kScenariodFlags) / sizeof(kScenariodFlags[0])},
    {"cts_obstop", kObstopFlags,
     sizeof(kObstopFlags) / sizeof(kObstopFlags[0])},
};

/// The names of `flags`, for Flags::warn_unknown known-lists.
template <std::size_t N>
inline std::vector<std::string> flag_names(const FlagDoc (&flags)[N]) {
  std::vector<std::string> names;
  names.reserve(N);
  for (const FlagDoc& flag : flags) names.emplace_back(flag.name);
  return names;
}

}  // namespace cts::util::cli
