// Student-t confidence intervals for replication estimates.
//
// The paper reports simulation CLRs from 60 independent replications; we
// attach two-sided confidence intervals to every replicated estimate.  The
// quantile is computed from the incomplete-beta representation of the t CDF
// (no table lookup, valid for any degrees of freedom).

#pragma once

#include <cstddef>

namespace cts::util {

/// Cumulative distribution function of Student's t with `dof` degrees of
/// freedom, evaluated at `t`.
double student_t_cdf(double t, double dof);

/// Two-sided critical value t* with P(|T| <= t*) = confidence for `dof`
/// degrees of freedom.  `confidence` must lie in (0, 1); `dof` must be > 0.
double student_t_critical(double confidence, double dof);

/// Regularised incomplete beta function I_x(a, b) via the Lentz continued
/// fraction.  Exposed because the KS test and the t CDF both need it.
double regularized_incomplete_beta(double a, double b, double x);

/// Natural log of the gamma function (Lanczos approximation).
double log_gamma(double x);

/// Half-width of the two-sided `confidence` interval for a mean estimated
/// from `n` replications with sample standard deviation `stddev`.
/// Returns 0 when n < 2.
double confidence_half_width(double stddev, std::size_t n,
                             double confidence = 0.95);

}  // namespace cts::util
