// Small filesystem helpers shared by the tools.
//
// Every tool used to slurp files with an ifstream + rdbuf idiom that
// returns an empty string for a missing or unreadable path, so a typo'd
// argument surfaced later as a cryptic "json parse error at offset 0"
// instead of the actual problem.  read_text_file fails loudly, naming the
// path and the errno text.  make_dirs is mkdir -p: `cts_simd
// run --out-dir=a/b` must either create the whole chain or fail up front
// naming the path, not let a later open() produce a confusing error.

#pragma once

#include <string>

namespace cts::util {

/// Reads the whole of `path` as text.  Throws InvalidArgument naming the
/// path and the errno text when the file cannot be opened or read; an
/// existing empty file returns "".
std::string read_text_file(const std::string& path);

/// Non-throwing variant: returns false and stores the same message in
/// `*error` (when non-null) instead of throwing.
bool read_text_file(const std::string& path, std::string* out,
                    std::string* error);

/// Creates `path` and any missing parent directories (mkdir -p).  Throws
/// InvalidArgument naming the first component that could not be created;
/// an existing directory is not an error.
void make_dirs(const std::string& path);

}  // namespace cts::util
