// Metrics registry: named counters, gauges, compensated sums and
// fixed-bucket histograms for the simulation/bench pipeline.
//
// Design: the hot loops (per-frame queue recursion, per-frame generation)
// never touch the registry.  Workers accumulate into plain local variables
// or a MetricsShard (no locks, no atomics) and merge the shard into the
// process-wide registry once per run/replication — the same
// accumulate-then-reduce idiom as util::MomentAccumulator /
// util::CompensatedSum, which back the histogram summary statistics and
// the floating-point totals respectively.  Because counter merges are
// integer additions and sum merges are order-insensitive to well below
// measurement precision, registry contents are deterministic for any
// thread count.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "cts/util/accumulator.hpp"

namespace cts::obs {

class JsonWriter;
struct JsonValue;

/// How a gauge combines multiple writes (and shard merges).
enum class GaugeMode {
  kSet,  ///< last write wins (configuration echo: thread count, seed)
  kMax,  ///< maximum over writes (peaks: queue depth, workload)
};

/// Gauge cell: a double with set/max combine semantics.
struct GaugeCell {
  double value = 0.0;
  GaugeMode mode = GaugeMode::kSet;
  bool written = false;

  void update(double v) noexcept {
    if (mode == GaugeMode::kMax && written) {
      if (v > value) value = v;
    } else {
      value = v;
    }
    written = true;
  }

  void merge(const GaugeCell& other) noexcept {
    if (!other.written) return;
    mode = other.mode;
    update(other.value);
  }
};

/// Fixed-bucket histogram with Welford summary statistics.  Bucket i counts
/// observations with value <= edges[i] (upper-inclusive, Prometheus "le"
/// convention); one overflow bucket counts values above the last edge.
class HistogramCell {
 public:
  HistogramCell() = default;
  explicit HistogramCell(std::vector<double> edges);

  void observe(double v) noexcept;

  /// Merges another histogram; throws util::InvalidArgument when the
  /// bucket edges differ.
  void merge(const HistogramCell& other);

  const std::vector<double>& edges() const noexcept { return edges_; }
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  const util::MomentAccumulator& stats() const noexcept { return stats_; }

  /// Default bucket edges: a log ladder suited to wall-clock milliseconds
  /// (0.1 ms .. 100 s).
  static std::vector<double> default_edges();

  /// Rebuilds a histogram from serialized state; throws InvalidArgument
  /// when `buckets` does not have edges.size() + 1 entries or the edges
  /// are invalid.
  static HistogramCell from_state(std::vector<double> edges,
                                  std::vector<std::uint64_t> buckets,
                                  util::MomentAccumulator stats);

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> buckets_;  ///< edges_.size() + 1 entries
  util::MomentAccumulator stats_;
};

/// Log-bucketed latency histogram with percentile estimation (the
/// DDSketch bucket scheme): an observation v > 0 lands in bucket
/// ceil(log(v) / log(gamma)), so bucket i covers (gamma^(i-1), gamma^i]
/// and the bucket's representative value 2*gamma^i/(gamma+1) is within
/// `relative_accuracy` of every value in the bucket.  With the default
/// accuracy of 2%, percentile(q) is guaranteed within 2% relative error
/// of the exact sample quantile for any distribution — exactly the
/// property fixed-edge HistogramCell lacks for tail (p99/p999) latency.
///
/// Merging is lossless like HistogramCell: bucket counts are integer
/// additions (requires equal gamma) and the Welford summary merges with
/// the same parallel update, so snapshot/merge across processes equals a
/// single-process run bit for bit.  Observations <= 0 are counted in a
/// dedicated zero bucket (they have no logarithm) and enter percentiles
/// as 0.
class LogHistogramCell {
 public:
  /// Default relative accuracy of the percentile estimates (2%).
  static constexpr double kDefaultRelativeAccuracy = 0.02;

  LogHistogramCell() : LogHistogramCell(kDefaultRelativeAccuracy) {}
  explicit LogHistogramCell(double relative_accuracy);

  void observe(double v) noexcept;

  /// Merges another log histogram; throws util::InvalidArgument when the
  /// relative accuracies (bucket bases) differ.
  void merge(const LogHistogramCell& other);

  /// Estimated q-quantile (q in [0, 1]) of everything observed, within
  /// relative_accuracy() of the exact sample quantile
  /// sorted[ceil(q * count) - 1].  Returns 0 when empty.
  double percentile(double q) const noexcept;

  double gamma() const noexcept { return gamma_; }
  double relative_accuracy() const noexcept {
    return (gamma_ - 1.0) / (gamma_ + 1.0);
  }
  std::uint64_t zero_count() const noexcept { return zero_count_; }
  const std::map<std::int32_t, std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  const util::MomentAccumulator& stats() const noexcept { return stats_; }

  /// Rebuilds a log histogram from serialized state; throws
  /// InvalidArgument on an invalid gamma.
  static LogHistogramCell from_state(
      double gamma, std::uint64_t zero_count,
      std::map<std::int32_t, std::uint64_t> buckets,
      util::MomentAccumulator stats);

 private:
  double gamma_ = 0.0;
  double inv_log_gamma_ = 0.0;
  std::uint64_t zero_count_ = 0;                   ///< observations <= 0
  std::map<std::int32_t, std::uint64_t> buckets_;  ///< index -> count
  util::MomentAccumulator stats_;
};

/// Lock-free (because thread-local) bundle of metrics, merged into a
/// MetricsRegistry in one locked operation.
class MetricsShard {
 public:
  /// Adds `delta` to counter `name`.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Adds `delta` to the Kahan-compensated sum `name` (floating totals
  /// whose partial sums span many orders of magnitude: cells, losses).
  void add_sum(const std::string& name, double delta);

  /// Writes gauge `name` with the given combine mode.
  void gauge(const std::string& name, double v, GaugeMode mode = GaugeMode::kSet);

  /// Records `v` into histogram `name`; the histogram is created with
  /// `edges` (or default_edges() when empty) on first observation.
  void observe(const std::string& name, double v,
               const std::vector<double>& edges = {});

  /// Records `v` into log-bucketed histogram `name` (created with the
  /// default 2% relative accuracy on first observation).  Use for latency
  /// metrics whose tail percentiles (p99/p999) matter.
  void observe_log(const std::string& name, double v);

  /// Folds `other` into this shard.
  void merge(const MetricsShard& other);

  /// Restore entry points for snapshot import (see
  /// metrics_snapshot_from_json): install a deserialized cell verbatim,
  /// replacing any existing entry of the same name.
  void restore_sum(const std::string& name, util::CompensatedSum sum);
  void restore_gauge(const std::string& name, GaugeCell cell);
  void restore_histogram(const std::string& name, HistogramCell cell);
  void restore_log_histogram(const std::string& name, LogHistogramCell cell);

  bool empty() const noexcept;

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, util::CompensatedSum>& sums() const noexcept {
    return sums_;
  }
  const std::map<std::string, GaugeCell>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, HistogramCell>& histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, LogHistogramCell>& log_histograms()
      const noexcept {
    return log_histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, util::CompensatedSum> sums_;
  std::map<std::string, GaugeCell> gauges_;
  std::map<std::string, HistogramCell> histograms_;
  std::map<std::string, LogHistogramCell> log_histograms_;
};

/// Read-only copy of one histogram's state, for reporting.
struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Thread-safe named-metric registry.  All mutating/reading entry points
/// take an internal mutex; the intended high-rate path is shard merging,
/// one lock per replication, not per-sample calls.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry.  Deliberately leaked so that objects flushing
  /// metrics from destructors (e.g. frame sources) can never outlive it.
  static MetricsRegistry& global();

  void add(const std::string& name, std::uint64_t delta = 1);
  void add_sum(const std::string& name, double delta);
  void gauge(const std::string& name, double v, GaugeMode mode = GaugeMode::kSet);
  void observe(const std::string& name, double v,
               const std::vector<double>& edges = {});
  void observe_log(const std::string& name, double v);

  /// Merges a worker shard under one lock.
  void merge(const MetricsShard& shard);

  /// Copies the full registry contents (for cross-process serialization;
  /// see write_metrics_snapshot / metrics_snapshot_from_json).
  MetricsShard snapshot() const;

  std::uint64_t counter(const std::string& name) const;  ///< 0 when absent
  double sum(const std::string& name) const;             ///< 0 when absent
  double gauge_value(const std::string& name, double fallback = 0.0) const;
  bool has_gauge(const std::string& name) const;

  /// Copies histogram `name` into `out`; false when absent.
  bool histogram(const std::string& name, HistogramSnapshot* out) const;

  /// Copies log-bucketed histogram `name` into `out` (full cell, so the
  /// caller can take percentiles); false when absent.
  bool log_histogram(const std::string& name, LogHistogramCell* out) const;

  /// Emits the full registry as one JSON object:
  ///   {"counters":{...},"sums":{...},"gauges":{...},"histograms":{...},
  ///    "log_histograms":{...}}
  /// (the log_histograms section is omitted when empty, so reports from
  /// code paths that never record one are unchanged).
  void write_json(std::ostream& os) const;

  /// Clears all metrics (tests; between independent bench phases).
  void reset();

 private:
  mutable std::mutex mu_;
  MetricsShard data_;
};

/// Emits `shard` as one JSON object carrying the FULL merge state —
/// Kahan compensation terms, gauge combine modes, histogram moment terms —
/// unlike MetricsRegistry::write_json, which emits the human/report view:
///
///   {"counters":{name:N},
///    "sums":{name:{"value":V,"compensation":C}},
///    "gauges":{name:{"value":V,"mode":"set"|"max"}},
///    "histograms":{name:{"edges":[..],"buckets":[..],
///                        "count":N,"mean":M,"m2":S,"min":L,"max":H}},
///    "log_histograms":{name:{"gamma":G,"zero":Z,
///                            "indexes":[..],"counts":[..],
///                            "count":N,"mean":M,"m2":S,"min":L,"max":H}}}
///
/// The log_histograms section is omitted when empty so documents produced
/// by older writers and by code paths without latency histograms are
/// byte-identical to before; the parser tolerates its absence.
///
/// A snapshot written on one process and imported on another merges
/// exactly as if the two registries had lived in one process (doubles are
/// serialized at full round-trip precision).
void write_metrics_snapshot(JsonWriter& w, const MetricsShard& shard);

/// Parses a snapshot produced by write_metrics_snapshot back into a shard.
/// Throws util::InvalidArgument on schema violations.
MetricsShard metrics_snapshot_from_json(const JsonValue& v);

}  // namespace cts::obs
