// Leveled structured event log (JSONL, schema cts.events.v1) plus a
// fixed-size ring-buffer flight recorder.
//
// The daemons (cts_shardd, cts_simd, cts_benchd) emit one machine-parsable
// line per operational event — job accepted, job done, worker declared
// down — so a distributed run can be reconstructed post-mortem with grep
// and json_parse instead of regexes over free-form stderr:
//
//   {"schema":"cts.events.v1","ts_ms":1754524800123,"pid":4242,
//    "level":"info","event":"job.done",
//    "fields":{"bench":"fig9_sim_markov","shard":"0/2","wall_ms":812.4}}
//
// Two consumers with different needs share one emit path:
//   * the sink (a JSONL file via open(), or an ostream such as stderr)
//     receives events at or above min_level(), flushed per line so a log
//     of a SIGKILLed process is complete up to the last event;
//   * the ring buffer receives EVERY event regardless of level — it is
//     the flight recorder: when a job times out or a child is killed, the
//     last ring_capacity() events (including debug detail that never hit
//     the sink) are dumped via dump_ring(), answering "what was it doing
//     right before it died".
//
// Thread-safe; the global() instance is deliberately leaked like the
// other obs singletons so destructor-order issues cannot lose events.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cts::obs {

inline constexpr char kEventsSchema[] = "cts.events.v1";

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* level_name(LogLevel level) noexcept;

/// Parses a level name, case-insensitively ("INFO" == "info"); throws
/// util::InvalidArgument on anything else, naming the accepted spellings.
LogLevel parse_log_level(const std::string& name);

/// One typed key/value pair of an event's `fields` object.
struct LogField {
  enum class Kind { kString, kInt, kUint, kDouble, kBool };

  LogField(std::string field, std::string value)
      : name(std::move(field)), kind(Kind::kString), s(std::move(value)) {}
  LogField(std::string field, const char* value)
      : name(std::move(field)), kind(Kind::kString), s(value) {}
  LogField(std::string field, std::int64_t value)
      : name(std::move(field)), kind(Kind::kInt), i(value) {}
  LogField(std::string field, int value)
      : name(std::move(field)), kind(Kind::kInt), i(value) {}
  LogField(std::string field, std::uint64_t value)
      : name(std::move(field)), kind(Kind::kUint), u(value) {}
  LogField(std::string field, double value)
      : name(std::move(field)), kind(Kind::kDouble), d(value) {}
  LogField(std::string field, bool value)
      : name(std::move(field)), kind(Kind::kBool), b(value) {}

  std::string name;
  Kind kind;
  std::string s;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
};

/// One structured event.
struct LogEvent {
  LogLevel level = LogLevel::kInfo;
  std::string event;             ///< short dotted name, e.g. "job.done"
  std::vector<LogField> fields;
  std::int64_t ts_ms = 0;        ///< wall clock, milliseconds since epoch
};

/// Leveled JSONL event log + flight-recorder ring buffer.
class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Process-wide log.  Deliberately leaked (see MetricsRegistry).
  static EventLog& global();

  /// Opens `path` (append) as the sink; throws util::InvalidArgument
  /// naming the path when it cannot be opened.  Replaces a stream sink.
  void open(const std::string& path);

  /// Uses `os` as the sink (e.g. &std::cerr); nullptr silences the sink.
  /// Replaces a file sink.
  void to_stream(std::ostream* os);

  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Resizes the flight-recorder ring (default 256); oldest events are
  /// evicted when the new capacity is smaller.  0 disables the ring.
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const;

  /// Records one event: always into the ring, and into the sink when
  /// `level` >= min_level().  Timestamped here.  Never throws — a logging
  /// failure must not take down a daemon.
  void log(LogLevel level, std::string event,
           std::vector<LogField> fields = {}) noexcept;

  /// Copy of the flight-recorder contents, oldest first.
  std::vector<LogEvent> ring() const;

  std::uint64_t recorded() const;  ///< events seen (any level)
  std::uint64_t emitted() const;   ///< lines actually written to the sink

  /// Dumps the ring (oldest first, every level) as JSONL to `os`.
  void dump_ring(std::ostream& os) const;

  /// Dumps the ring to `path`; returns false on I/O failure.
  bool dump_ring_to(const std::string& path) const;

  /// Drops ring contents and counters and detaches the sinks (tests).
  void reset();

  /// One cts.events.v1 JSON line for `e` (no trailing newline).
  static std::string format_line(const LogEvent& e);

 private:
  void emit_locked(const LogEvent& e);

  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kInfo;
  std::unique_ptr<std::ostream> file_;  ///< owning file sink
  std::ostream* stream_ = nullptr;      ///< non-owning stream sink
  std::deque<LogEvent> ring_;
  std::size_t ring_capacity_ = 256;
  std::uint64_t recorded_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Convenience wrappers over EventLog::global().
void log_debug(std::string event, std::vector<LogField> fields = {});
void log_info(std::string event, std::vector<LogField> fields = {});
void log_warn(std::string event, std::vector<LogField> fields = {});
void log_error(std::string event, std::vector<LogField> fields = {});

}  // namespace cts::obs
