// Performance telemetry: per-run resource usage and (on Linux, when the
// kernel permits) hardware performance counters.
//
// ResourceProbe snapshots getrusage(RUSAGE_SELF) plus the monotonic clock
// at construction and reports deltas on sample(), so a bench can attribute
// user/system CPU time, peak RSS and context switches to exactly the
// measured region.  PerfCounterGroup opens perf_event_open counters
// (cycles, instructions, cache and branch events) on the calling process
// with inherit=1 so worker threads spawned later are counted too; when the
// syscall is unavailable (non-Linux build, seccomp filter, missing PMU,
// perf_event_paranoid) the group degrades to available()==false with a
// human-readable reason — telemetry consumers record the reason instead of
// failing.
//
// PerfReport bundles one run's resources + counters + span self-time table
// (see span_stats.hpp) into the cts.perf.v1 JSON document written by the
// bench harness for --perf=<path> and aggregated by tools/cts_benchd.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cts/obs/span_stats.hpp"

namespace cts::obs {

/// Deltas of process resource usage over a measured region.
struct ResourceUsage {
  double wall_s = 0.0;   ///< monotonic wall time
  double user_s = 0.0;   ///< user CPU time (all threads)
  double sys_s = 0.0;    ///< system CPU time (all threads)
  std::int64_t max_rss_kb = 0;  ///< peak RSS of the process (absolute, KiB)
  std::int64_t ctx_voluntary = 0;    ///< voluntary context switches
  std::int64_t ctx_involuntary = 0;  ///< involuntary context switches
};

/// Captures getrusage + monotonic clock at construction; sample() returns
/// the delta since then (max RSS is the absolute process peak: the kernel
/// reports a high-water mark, not a resettable counter).
class ResourceProbe {
 public:
  ResourceProbe();

  /// Re-arms the probe at the current instant.
  void restart();

  ResourceUsage sample() const;

 private:
  std::int64_t wall_start_ns_ = 0;
  double user_start_s_ = 0.0;
  double sys_start_s_ = 0.0;
  std::int64_t vol_start_ = 0;
  std::int64_t invol_start_ = 0;
};

/// One read of the hardware counters.  `values` holds only the counters
/// that actually opened, in a fixed order (cycles, instructions,
/// cache_references, cache_misses, branches, branch_misses).
struct HwCounters {
  bool available = false;
  std::string unavailable_reason;  ///< set when !available
  std::vector<std::pair<std::string, std::uint64_t>> values;

  /// instructions / cycles; 0 when either counter is absent or zero.
  double ipc() const noexcept;
  /// Value of counter `name`; 0 when absent.
  std::uint64_t value(const std::string& name) const noexcept;
};

/// A set of per-process hardware counters (perf_event_open).  Construction
/// opens the counters disabled; start() resets and enables them, stop()
/// disables and reads.  Never throws: failure to open any counter is
/// reported through available()/unavailable_reason().
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const noexcept { return !slots_.empty(); }
  const std::string& unavailable_reason() const noexcept { return reason_; }

  void start() noexcept;
  HwCounters stop() noexcept;

 private:
  struct Slot {
    const char* name;
    int fd;
  };
  std::vector<Slot> slots_;
  std::string reason_;
};

/// One run's perf telemetry, serialised as the cts.perf.v1 JSON schema:
///
///   {"schema":"cts.perf.v1","info":{...},
///    "resources":{"wall_s":...,"user_s":...,"sys_s":...,"max_rss_kb":...,
///                 "ctx_voluntary":...,"ctx_involuntary":...},
///    "hw":{"available":true,"counters":{...},"ipc":...}
///        | {"available":false,"reason":"..."},
///    "spans":[{"name":...,"count":...,"total_us":...,"self_us":...,
///              "min_us":...,"max_us":...},...],
///    "phases":[{"phase":...,"self_us":...,"spans":...},...]}
struct PerfReport {
  static constexpr const char* kSchema = "cts.perf.v1";

  std::vector<std::pair<std::string, std::string>> info;  ///< config echo
  ResourceUsage resources;
  HwCounters hw;
  std::vector<SpanAgg> spans;

  void write_json(std::ostream& os) const;

  /// Writes the report to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;
};

}  // namespace cts::obs
