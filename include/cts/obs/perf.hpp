// Performance telemetry: per-run resource usage and (on Linux, when the
// kernel permits) hardware performance counters.
//
// ResourceProbe snapshots getrusage(RUSAGE_SELF) plus the monotonic clock
// at construction and reports deltas on sample(), so a bench can attribute
// user/system CPU time, peak RSS and context switches to exactly the
// measured region.
//
// Hardware counting goes through the SamplerBackend interface.  The
// preferred backend opens perf_event_open counters (cycles, instructions,
// cache and branch events) on the calling process with inherit=1 so worker
// threads spawned later are counted too.  When that syscall is unavailable
// (non-Linux build, seccomp filter, missing PMU, perf_event_paranoid) the
// PerfCounterGroup facade degrades to the portable tsc backend — a raw
// rdtsc tick count on x86, steady-clock nanoseconds elsewhere, reported as
// the single counter "cycles" — instead of reporting nothing: degraded
// telemetry with a recorded note beats a hole in the data.  HwCounters
// names the backend that produced it ("perf_event" / "tsc") so consumers
// and tests can tell full counters from the degraded single-counter form.
//
// PerfReport bundles one run's resources + counters + span self-time table
// (see span_stats.hpp) into the cts.perf.v1 JSON document written by the
// bench harness for --perf=<path> and aggregated by tools/cts_benchd.

#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cts/obs/span_stats.hpp"

namespace cts::obs {

/// Deltas of process resource usage over a measured region.
struct ResourceUsage {
  double wall_s = 0.0;   ///< monotonic wall time
  double user_s = 0.0;   ///< user CPU time (all threads)
  double sys_s = 0.0;    ///< system CPU time (all threads)
  std::int64_t max_rss_kb = 0;  ///< peak RSS of the process (absolute, KiB)
  std::int64_t ctx_voluntary = 0;    ///< voluntary context switches
  std::int64_t ctx_involuntary = 0;  ///< involuntary context switches
};

/// Captures getrusage + monotonic clock at construction; sample() returns
/// the delta since then (max RSS is the absolute process peak: the kernel
/// reports a high-water mark, not a resettable counter).
class ResourceProbe {
 public:
  ResourceProbe();

  /// Re-arms the probe at the current instant.
  void restart();

  ResourceUsage sample() const;

 private:
  std::int64_t wall_start_ns_ = 0;
  double user_start_s_ = 0.0;
  double sys_start_s_ = 0.0;
  std::int64_t vol_start_ = 0;
  std::int64_t invol_start_ = 0;
};

/// One read of the hardware counters.  With the perf_event backend,
/// `values` holds only the counters that actually opened, in a fixed order
/// (cycles, instructions, cache_references, cache_misses, branches,
/// branch_misses); the degraded tsc backend reports only "cycles".
struct HwCounters {
  bool available = false;
  std::string backend;             ///< "perf_event" / "tsc"; "" if !available
  std::string unavailable_reason;  ///< set when !available
  std::string note;                ///< degradation note (tsc fallback path)
  std::vector<std::pair<std::string, std::uint64_t>> values;

  /// instructions / cycles; 0 when either counter is absent or zero.
  double ipc() const noexcept;
  /// Value of counter `name`; 0 when absent.
  std::uint64_t value(const std::string& name) const noexcept;
};

/// A source of hardware(-ish) counters over a measured region.  start()
/// arms the counters, stop() reads them.  Implementations never throw:
/// failure to open a counter source is reported through
/// available()/unavailable_reason(), and consumers record the reason.
class SamplerBackend {
 public:
  virtual ~SamplerBackend() = default;

  virtual const char* name() const noexcept = 0;  ///< "perf_event", "tsc"
  virtual bool available() const noexcept = 0;
  virtual std::string unavailable_reason() const = 0;
  virtual void start() noexcept = 0;
  virtual HwCounters stop() noexcept = 0;
};

/// The perf_event_open backend.  available()==false (with a reason) on
/// non-Linux builds or when the syscall is denied; never null.
std::unique_ptr<SamplerBackend> make_perf_event_backend();

/// The portable cycles fallback: rdtsc ticks on x86, steady-clock
/// nanoseconds elsewhere, reported as the single counter "cycles".
/// Always available.
std::unique_ptr<SamplerBackend> make_tsc_backend();

/// The backend-selecting facade the bench harness instruments through:
/// perf_event when it opens, otherwise the tsc fallback with the
/// perf_event failure recorded as the HwCounters degradation note.
/// Construction opens the counters disabled; start() resets and enables
/// them, stop() disables and reads.  Never throws.
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const noexcept;
  /// "" while any backend (including the fallback) is delivering counts.
  const std::string& unavailable_reason() const noexcept { return reason_; }
  /// Name of the active backend ("perf_event" / "tsc").
  const char* backend_name() const noexcept;

  void start() noexcept;
  HwCounters stop() noexcept;

 private:
  std::unique_ptr<SamplerBackend> backend_;
  std::string reason_;  ///< only set if no backend could be constructed
  std::string note_;    ///< why perf_event was not used (fallback path)
};

/// One run's perf telemetry, serialised as the cts.perf.v1 JSON schema:
///
///   {"schema":"cts.perf.v1","info":{...},
///    "resources":{"wall_s":...,"user_s":...,"sys_s":...,"max_rss_kb":...,
///                 "ctx_voluntary":...,"ctx_involuntary":...},
///    "hw":{"available":true,"backend":"perf_event"|"tsc",
///          "counters":{...},"ipc":...[,"note":"..."]}
///        | {"available":false,"reason":"..."},
///    "spans":[{"name":...,"count":...,"total_us":...,"self_us":...,
///              "min_us":...,"max_us":...},...],
///    "phases":[{"phase":...,"self_us":...,"spans":...},...]}
struct PerfReport {
  static constexpr const char* kSchema = "cts.perf.v1";

  std::vector<std::pair<std::string, std::string>> info;  ///< config echo
  ResourceUsage resources;
  HwCounters hw;
  std::vector<SpanAgg> spans;

  void write_json(std::ostream& os) const;

  /// Writes the report to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;
};

}  // namespace cts::obs
