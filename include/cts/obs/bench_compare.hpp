// Noise-aware regression comparison of two cts.bench.v1 documents
// (BENCH_*.json emitted by tools/cts_benchd).
//
// A metric flags as a regression only when the candidate median is worse
// than the baseline median by BOTH gates:
//
//   |delta|  >  k_mad * max(MAD_baseline, MAD_candidate, abs_floor)   and
//   |delta|  >  min_rel * baseline_median
//
// so a 2% wobble on a noisy metric and a 20-microsecond jitter on a
// sub-millisecond one both stay quiet, while a real slowdown trips either
// way it manifests.  All gated metrics are higher-is-worse; symmetric
// improvements are reported but never fail.
//
// System CPU time is informational by default, not gating: at the
// tens-of-milliseconds scale it measures kernel scheduling and page-cache
// state rather than the code under test, and a real syscall storm shows
// up in wall time anyway.  Its deltas are still computed and printed
// (verdict "info"); pass an explicit metric list to gate on it.
// tools/cts_benchcmp wraps this into a CLI that exits non-zero on
// regression so CI can gate on it.

#pragma once

#include <string>
#include <vector>

#include "cts/obs/json.hpp"

namespace cts::obs {

/// Schema identifier stamped into BENCH_*.json by cts_benchd.
inline constexpr const char* kBenchSchema = "cts.bench.v1";

/// Throws util::InvalidArgument unless `doc` carries the cts.bench.v1
/// schema tag and a "benches" object.  The message names what was
/// actually found (missing field, non-string, unknown schema string) so
/// a stray JSON file is rejected loudly instead of best-effort parsed.
void require_bench_schema(const JsonValue& doc);

struct CompareOptions {
  double k_mad = 3.0;     ///< noise gate in MAD multiples
  double min_rel = 0.05;  ///< relative gate (fraction of baseline median)
  double abs_floor = 1e-4;  ///< MAD floor so zero-MAD metrics can't hair-trigger
  /// Metrics whose regressions fail the comparison.
  std::vector<std::string> metrics = {"wall_s", "user_s", "max_rss_kb"};
  /// Metrics reported for visibility but never gating (see file comment).
  std::vector<std::string> info_metrics = {"sys_s"};
};

/// One metric compared across the two files.
struct MetricDelta {
  std::string bench;
  std::string metric;
  double baseline_median = 0.0;
  double candidate_median = 0.0;
  double baseline_mad = 0.0;
  double candidate_mad = 0.0;
  double rel = 0.0;  ///< (candidate - baseline) / baseline (0 when baseline 0)
  bool regression = false;
  bool improvement = false;
  bool informational = false;  ///< from info_metrics: never gates
};

struct CompareReport {
  std::vector<MetricDelta> deltas;
  /// Benches/metrics present in only one file (informational, not fatal).
  std::vector<std::string> notes;

  bool has_regression() const noexcept;
};

/// Compares `candidate` against `baseline`; both must satisfy
/// require_bench_schema (throws util::InvalidArgument otherwise).
CompareReport compare_bench_reports(const JsonValue& baseline,
                                    const JsonValue& candidate,
                                    const CompareOptions& options = {});

/// The aligned per-metric delta table plus the [note: ...] lines, exactly
/// as cts_benchcmp prints them — shared with cts_benchd --compare so the
/// one-shot gate renders identically to the standalone tool.
std::string format_compare_report(const CompareReport& report);

/// One "REGRESSION: ..." line per regressed metric (empty string when the
/// candidate holds the baseline), for stderr next to a non-zero exit.
std::string format_regressions(const CompareReport& report,
                               const CompareOptions& options);

}  // namespace cts::obs
