// Robust summary statistics for repeated benchmark measurements.
//
// Bench timings are right-skewed and occasionally contaminated by scheduler
// noise, so cts_benchd reports the median and the MAD (median absolute
// deviation) rather than mean/stddev, plus a 95% confidence interval for
// the median from the normal approximation to its sampling distribution:
//
//   se(median) ~= 1.2533 * sigma / sqrt(n),   sigma ~= 1.4826 * MAD
//
// with a Student-t critical value instead of 1.96 to stay honest at the
// small repeat counts (3-10) a bench suite actually runs.

#pragma once

#include <cstddef>
#include <vector>

namespace cts::obs {

/// Summary of one metric over n repeated runs.
struct RobustSummary {
  std::size_t n = 0;
  double median = 0.0;
  double mad = 0.0;      ///< median absolute deviation (unscaled)
  double ci95_lo = 0.0;  ///< 95% CI for the median; == median when n < 2
  double ci95_hi = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Median of `values` (average of the middle pair for even n).
/// Returns 0 for an empty input.
double median_of(std::vector<double> values);

/// Computes the robust summary; `confidence` is the two-sided CI level.
RobustSummary robust_summary(std::vector<double> values,
                             double confidence = 0.95);

}  // namespace cts::obs
