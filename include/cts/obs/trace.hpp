// Scoped wall-time tracing spans, exportable as Chrome trace format.
//
// Usage on a hot-ish path (per run / per replication, never per frame):
//
//   void FluidMux::run(...) {
//     CTS_TRACE_SPAN("fluid_mux.run");
//     ...
//   }
//
// Spans are no-ops (one relaxed atomic load, no clock read) until the
// recorder is enabled — benches enable it when --trace=<path> is passed.
// Completed spans are appended under a mutex once at scope exit; the
// resulting file loads in chrome://tracing or https://ui.perfetto.dev.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cts::obs {

/// One completed span ("X" complete event in Chrome trace terms).
struct TraceEvent {
  std::string name;
  int tid = 0;               ///< small per-thread ordinal, stable per run
  std::int64_t ts_us = 0;    ///< start, microseconds since recorder epoch
  std::int64_t dur_us = 0;   ///< duration, microseconds
};

/// Process-wide span recorder.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide recorder.  Deliberately leaked (see MetricsRegistry).
  static TraceRecorder& global();

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder's epoch (monotonic clock).
  std::int64_t now_us() const noexcept;

  /// Appends a completed span.  Thread-safe.
  void record(std::string name, std::int64_t ts_us, std::int64_t dur_us);

  std::size_t event_count() const;
  std::vector<TraceEvent> events() const;  ///< copy, for tests

  /// Writes the Chrome trace JSON document ({"traceEvents":[...]}).
  void write_json(std::ostream& os) const;

  /// Writes the trace to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

  /// Drops all recorded events (tests; between bench phases).
  void reset();

 private:
  std::atomic<bool> enabled_{false};
  std::int64_t epoch_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: captures the clock on construction when the global recorder
/// is enabled, records one TraceEvent on destruction.  While the sampling
/// profiler (cts/obs/profiler.hpp) is armed, also pushes the span name
/// onto the per-thread span stack so profiles attribute samples to the
/// active span chain — with or without tracing.  Never throws.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  std::int64_t start_us_ = -1;  ///< -1: recorder was disabled at entry
  bool pushed_ = false;         ///< frame pushed onto the profiler stack
};

}  // namespace cts::obs

#define CTS_OBS_CONCAT_INNER(a, b) a##b
#define CTS_OBS_CONCAT(a, b) CTS_OBS_CONCAT_INNER(a, b)

/// Opens a scoped wall-time span named `name` for the rest of the block.
#define CTS_TRACE_SPAN(name) \
  ::cts::obs::ScopedSpan CTS_OBS_CONCAT(cts_trace_span_, __LINE__)(name)
