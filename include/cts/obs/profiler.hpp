// Always-on span-stack sampling profiler.
//
// ScopedSpan (cts/obs/trace.hpp) pushes its name onto a per-thread stack
// while the profiler is armed; the sampler snapshots those stacks at a
// configurable rate and accumulates folded-stack counts
// ("replication.run;fluid_mux.run" -> samples).  Two backends:
//
//   "thread"  (default) — a dedicated sampler thread walks every
//             registered thread's stack on a wall-clock tick.  Captures
//             blocked/idle-in-span time, works everywhere, TSan-clean
//             (per-thread mutex, try_lock from the sampler).
//   "itimer"  — setitimer(ITIMER_PROF) + SIGPROF: the kernel interrupts
//             whichever thread is on CPU, so counts are proportional to
//             CPU time.  The handler folds the interrupted thread's own
//             stack into a fixed lock-free table (no locks, no
//             allocation: async-signal-safe).
//
// Costs when disarmed: one relaxed atomic load per span (same as the
// trace recorder).  When armed: one uncontended mutex lock + a bounded
// string copy per span entry/exit — spans are per-run/per-replication,
// never per-frame, so this is noise.
//
// Exports: collapsed-stack text ("a;b;c 42" per line, flamegraph.pl /
// speedscope ready) and a `cts.profile.v1` JSON document.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace cts::obs {

/// Span-stack maintenance hooks, called by ScopedSpan.  `name` is copied
/// into a fixed per-thread frame slot (truncated to the slot size), so the
/// caller's buffer need not outlive the span.  pop is safe to call after
/// the profiler disarms mid-span.
void profiler_push_frame(const char* name) noexcept;
void profiler_pop_frame() noexcept;

/// Process-wide sampling profiler.
class Profiler {
 public:
  struct Options {
    /// Samples per second, in [1, 10000].  Default is a prime so the tick
    /// cannot phase-lock with periodic work.
    int hz = 97;
    /// "thread" (wall-clock sampler thread) or "itimer" (SIGPROF, CPU).
    std::string backend = "thread";
  };

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Process-wide profiler.  Deliberately leaked (see MetricsRegistry).
  static Profiler& global();

  /// Arms the profiler and starts the sampling backend.  Throws
  /// util::InvalidArgument on bad options or when already running.
  void start(const Options& opts);

  /// Stops sampling and drains pending per-thread buffers.  Idempotent.
  void stop();

  /// One relaxed load; read by ScopedSpan on every construction.
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Folded stacks ("outer;inner" -> sample count), drained up to now.
  std::map<std::string, std::uint64_t> folded();

  std::uint64_t sample_count();   ///< scheduler ticks / SIGPROF deliveries
  std::uint64_t dropped_count();  ///< samples lost (contention/table full)

  /// Collapsed-stack text, one "stack count" line per folded stack.
  void write_folded(std::ostream& os);
  bool write_folded_file(const std::string& path);

  /// cts.profile.v1 JSON: {"schema","backend","hz","samples","dropped",
  /// "stacks":[{"stack","count"},...]}.
  void write_json(std::ostream& os);
  bool write(const std::string& path);

  /// Drops accumulated samples (tests; between phases).  Keeps running.
  void reset();

 private:
  void sampler_loop();
  void drain_itimer_locked();

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;  ///< folded_/samples_/dropped_/opts_
  Options opts_;
  std::map<std::string, std::uint64_t> folded_;
  std::uint64_t samples_ = 0;
  std::uint64_t dropped_ = 0;

  std::thread sampler_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace cts::obs
