// Span-time attribution: turns the flat Chrome-trace span list recorded by
// TraceRecorder into a per-span-name aggregate table with *self* time, i.e.
// each span's duration minus the time spent in spans nested inside it on
// the same thread.  Self time answers "which phase actually burned the
// wall-clock" — a replication span that spends 95% of its time inside
// fluid_mux.run contributes only 5% self time.
//
// A second rollup groups span names into coarse phases by their prefix up
// to the first '.' ("fluid_mux.run" -> "fluid_mux"), giving the
// generator-vs-mux-vs-stats table embedded in perf reports (--perf=) and
// aggregated by cts_benchd into BENCH_*.json.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cts/obs/trace.hpp"

namespace cts::obs {

/// Aggregate over all spans sharing one name.
struct SpanAgg {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_us = 0;  ///< sum of span durations (inclusive)
  std::int64_t self_us = 0;   ///< total minus time in directly nested spans
  std::int64_t min_us = 0;    ///< shortest single span
  std::int64_t max_us = 0;    ///< longest single span
};

/// Coarse per-phase rollup (phase = span name prefix before the first '.').
struct PhaseSelfTime {
  std::string phase;
  std::int64_t self_us = 0;
  std::uint64_t spans = 0;
};

/// The phase a span name belongs to: everything before the first '.', the
/// whole name when there is no dot ("replication" -> "replication").
std::string span_phase(const std::string& name);

/// Aggregates completed spans into per-name totals with self time.
/// Nesting is inferred per thread from interval containment (RAII spans
/// nest properly by construction).  Result is sorted by self_us descending.
std::vector<SpanAgg> aggregate_spans(const std::vector<TraceEvent>& events);

/// Rolls span aggregates up into phases, sorted by self_us descending.
std::vector<PhaseSelfTime> phase_self_times(const std::vector<SpanAgg>& spans);

}  // namespace cts::obs
