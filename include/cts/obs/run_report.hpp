// Machine-diffable run reports (--metrics=<path>).
//
// A RunReport bundles a config echo (run id, seed, scale, thread count,
// argv) with the full contents of a MetricsRegistry and writes one JSON
// document:
//
//   {"config":{...},"metrics":{"counters":{...},"sums":{...},
//                              "gauges":{...},"histograms":{...}}}
//
// Two bench runs can then be diffed field-by-field (same seed => identical
// counters/sums; wall-time histograms expose perf regressions).

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cts/obs/metrics.hpp"

namespace cts::obs {

/// Config-echo + metrics JSON exporter.
class RunReport {
 public:
  /// Config echo entries; insertion order is preserved in the output.
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  /// Writes the report (config + full registry contents) to `os`.
  void write_json(std::ostream& os,
                  const MetricsRegistry& registry = MetricsRegistry::global())
      const;

  /// Writes the report to `path`; returns false on I/O failure.
  bool write(const std::string& path,
             const MetricsRegistry& registry = MetricsRegistry::global())
      const;

 private:
  enum class Kind { kString, kInt, kUint, kDouble, kBool };
  struct Entry {
    std::string key;
    Kind kind;
    std::string s;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
  };

  Entry& upsert(const std::string& key);

  std::vector<Entry> entries_;
};

}  // namespace cts::obs
