// Perf-trajectory analysis across a chain of BENCH_*.json baselines
// (cts.bench.v1 documents emitted by tools/cts_benchd).
//
// cts_benchcmp answers "did THIS run regress against ONE baseline?".
// This module answers the ROADMAP's trajectory question: order every
// committed baseline by date, build per-bench metric series (median with
// MAD and the t-corrected 95% CI cts_benchd already records), and flag
// *sustained* drift — the last `window` consecutive baselines all beyond
// the noise band around the first baseline — rather than a single noisy
// last-vs-previous delta.  The same gates as bench_compare apply per
// point:
//
//   excess_i = median_i - median_0
//   band_i   = max(k_mad * max(MAD_i, MAD_0, abs_floor),
//                  min_rel * |median_0|)
//
// and a series drifts when excess_i > band_i for every one of the last
// `window` points (an improvement drift, all below -band_i, is reported
// but never gates).  A Theil-Sen slope per series summarises the overall
// direction robustly.  tools/cts_benchtrend renders the result as a
// markdown table, a CSV mirror and a self-contained SVG sparkline chart.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cts/obs/json.hpp"

namespace cts::obs {

/// One parsed baseline document in the trajectory.
struct BaselineDoc {
  std::string path;       ///< file it was loaded from
  std::string label;      ///< short label (file stem, e.g. BENCH_2026-08-05)
  std::string generated;  ///< the document's "generated" ISO date
  std::string suite;
  JsonValue doc;
};

/// Parses one cts.bench.v1 document into a BaselineDoc.  Throws
/// util::InvalidArgument when `text` is not valid JSON or does not carry
/// the cts.bench.v1 schema (missing/unknown "schema" fields are rejected
/// with a message naming what was found — never best-effort parsed).
BaselineDoc parse_baseline(const std::string& path, const std::string& text);

/// Sorts baselines by (generated date, label) so a trajectory reads
/// oldest -> newest even when files are listed in shell-glob order.
void sort_baselines(std::vector<BaselineDoc>& docs);

struct TrendOptions {
  double k_mad = 3.0;       ///< noise gate in MAD multiples
  double min_rel = 0.05;    ///< relative gate (fraction of first median)
  double abs_floor = 1e-4;  ///< MAD floor, as in CompareOptions
  std::size_t window = 2;   ///< trailing points that must all drift
  std::vector<std::string> metrics = {"wall_s"};
};

/// One baseline's contribution to a series.
struct TrendPoint {
  std::string label;      ///< baseline label
  std::string generated;  ///< baseline date
  std::size_t n = 0;      ///< repeats behind the median
  double median = 0.0;
  double mad = 0.0;
  double ci95_lo = 0.0;
  double ci95_hi = 0.0;
  double excess = 0.0;  ///< median - first median
  double band = 0.0;    ///< noise band half-width around the first median
  bool beyond_band = false;  ///< |excess| > band (either direction)
};

/// One bench x metric trajectory over all baselines that carry it.
struct TrendSeries {
  std::string bench;
  std::string metric;
  std::vector<TrendPoint> points;
  double slope = 0.0;  ///< Theil-Sen slope per baseline step
  bool drift_regression = false;  ///< last `window` points all above +band
  bool drift_improvement = false; ///< last `window` points all below -band
  std::string verdict() const;  ///< "DRIFT" | "improvement" | "ok"
};

struct TrendReport {
  std::string suite;
  std::vector<std::string> labels;  ///< baseline labels, oldest first
  std::vector<TrendSeries> series;
  std::vector<std::string> notes;   ///< benches missing from some baselines

  bool has_drift() const noexcept;
};

/// Theil-Sen estimator: the median over i<j of (y_j - y_i)/(j - i).
/// Robust to a single outlier baseline; 0 for fewer than two points.
double theil_sen_slope(const std::vector<double>& y);

/// Builds the trajectory over `docs` (all of one suite; sorted oldest
/// first — see sort_baselines).  Throws util::InvalidArgument when fewer
/// than two baselines are given.
TrendReport build_trend(const std::vector<BaselineDoc>& docs,
                        const TrendOptions& options = {});

/// Renders the report as a GitHub-flavoured markdown section (one table
/// per metric, plus the notes).
std::string trend_markdown(const TrendReport& report,
                           const TrendOptions& options = {});

/// Renders the report as CSV: one row per (metric, bench, baseline).
std::string trend_csv(const TrendReport& report);

}  // namespace cts::obs
