// Minimal JSON emission and validation for the observability exporters.
//
// The run-report (--metrics) and Chrome-trace (--trace) writers need
// well-formed JSON without an external dependency.  JsonWriter tracks the
// container stack and inserts commas/colons itself, so an exporter cannot
// produce structurally invalid output; json_parse_check is a strict
// recursive-descent validator used by the tests and the ctest smoke test
// to confirm the emitted files actually parse.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cts::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).  Control characters are emitted as \u00XX.
std::string json_escape(const std::string& s);

/// Streaming JSON writer with automatic comma/colon placement.
///
/// Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("counters").begin_object(); ... w.end_object();
///   w.end_object();
///
/// Structural misuse (a value where a key is required, unbalanced
/// begin/end) throws util::InvalidArgument via require().
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; the next call must produce its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);  ///< non-finite values are emitted as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices `json` — which must itself be one well-formed JSON value —
  /// into the document as the next value.
  JsonWriter& raw(const std::string& json);

  /// True once the single top-level value is complete and balanced.
  bool complete() const { return top_level_done_; }

 private:
  enum class Frame { kObject, kArray };

  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;     ///< parallel to stack_: no comma needed yet
  bool pending_key_ = false;    ///< key() written, value expected
  bool top_level_done_ = false;
};

/// Strictly validates that `text` is one complete JSON value (RFC 8259
/// grammar, no trailing garbage).  Returns true on success; on failure
/// returns false and, when `error` is non-null, stores a message with the
/// byte offset of the problem.
bool json_parse_check(const std::string& text, std::string* error = nullptr);

}  // namespace cts::obs
