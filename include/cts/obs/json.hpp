// Minimal JSON emission, validation and parsing for the observability
// exporters and the perf-telemetry tools.
//
// The run-report (--metrics) and Chrome-trace (--trace) writers need
// well-formed JSON without an external dependency.  JsonWriter tracks the
// container stack and inserts commas/colons itself, so an exporter cannot
// produce structurally invalid output; json_parse_check is a strict
// recursive-descent validator used by the tests and the ctest smoke test
// to confirm the emitted files actually parse; json_parse builds a small
// DOM (JsonValue) from the same grammar, so cts_benchd can aggregate
// per-run perf reports and cts_benchcmp can diff two BENCH_*.json files.

#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cts::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).  Control characters are emitted as \u00XX.
std::string json_escape(const std::string& s);

/// Streaming JSON writer with automatic comma/colon placement.
///
/// Usage:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("counters").begin_object(); ... w.end_object();
///   w.end_object();
///
/// Structural misuse (a value where a key is required, unbalanced
/// begin/end) throws util::InvalidArgument via require().
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; the next call must produce its value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);  ///< non-finite values are emitted as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices `json` — which must itself be one well-formed JSON value —
  /// into the document as the next value.
  JsonWriter& raw(const std::string& json);

  /// True once the single top-level value is complete and balanced.
  bool complete() const { return top_level_done_; }

 private:
  enum class Frame { kObject, kArray };

  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;     ///< parallel to stack_: no comma needed yet
  bool pending_key_ = false;    ///< key() written, value expected
  bool top_level_done_ = false;
};

/// Strictly validates that `text` is one complete JSON value (RFC 8259
/// grammar, no trailing garbage).  Returns true on success; on failure
/// returns false and, when `error` is non-null, stores a message with the
/// byte offset of the problem.
bool json_parse_check(const std::string& text, std::string* error = nullptr);

/// Parsed JSON value: a small DOM for reading the files this library
/// itself emits (perf reports, BENCH_*.json).  Object member order is
/// preserved.  Accessors with a type precondition throw
/// util::InvalidArgument on mismatch so schema errors surface as one
/// catchable exception rather than silent zeros.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            ///< arrays
  std::vector<std::pair<std::string, JsonValue>> members;  ///< objects

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_bool() const noexcept { return type == Type::kBool; }
  bool is_number() const noexcept { return type == Type::kNumber; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_object() const noexcept { return type == Type::kObject; }

  bool as_bool() const;          ///< requires kBool
  double as_number() const;      ///< requires kNumber
  const std::string& as_string() const;  ///< requires kString

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const noexcept;
  /// Object member lookup; throws InvalidArgument when absent.
  const JsonValue& at(const std::string& key) const;
  /// Array element; throws InvalidArgument when out of range.
  const JsonValue& at(std::size_t index) const;
  /// Array / object element count (0 for scalars).
  std::size_t size() const noexcept;
};

/// Parses `text` (same strict RFC 8259 grammar as json_parse_check) into a
/// DOM.  Throws util::InvalidArgument with the byte offset on failure.
JsonValue json_parse(const std::string& text);

}  // namespace cts::obs
