// Self-contained SVG sparkline chart for the perf trajectory.
//
// One fixed-size document, no external fonts/CSS/scripts, so the file can
// be committed, attached as a CI artifact, or embedded in markdown and
// render identically everywhere.  Each TrendSeries becomes one row: the
// CI band as a translucent polygon, the median polyline on top, a dot on
// the newest point, and the verdict ("DRIFT" rows turn red, improvements
// green).  Rows are normalised independently — a sparkline shows each
// bench's own shape, not cross-bench magnitude (the markdown/CSV tables
// carry the absolute numbers).

#pragma once

#include <string>

#include "cts/obs/bench_trend.hpp"

namespace cts::obs {

/// Renders `report` as one complete SVG document (the string starts with
/// "<svg" and ends with "</svg>\n").  Throws util::InvalidArgument when
/// the report has no series.
std::string trend_svg(const TrendReport& report);

}  // namespace cts::obs
