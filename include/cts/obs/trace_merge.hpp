// Cross-process Chrome-trace merging with clock-offset correction.
//
// TraceRecorder timestamps are microseconds since the *recorder's own*
// construction-time steady_clock epoch (src/obs/trace.cpp), so span times
// from two processes are incomparable as-is.  The dispatcher fixes that
// the way NTP does: for every job it knows four timestamps —
//
//   t0  dispatcher clock, just before the request frame is sent
//   t1  worker clock, request received       (cts.jobresult.v1 obs.recv_us)
//   t2  worker clock, reply about to be sent (cts.jobresult.v1 obs.send_us)
//   t3  dispatcher clock, reply received
//
// and estimates the worker-minus-dispatcher clock offset as
//
//   offset = ((t1 - t0) + (t2 - t3)) / 2
//
// which cancels the network delay when the two directions are symmetric;
// the residual error is bounded by half the round-trip time — far below a
// shard's multi-second runtime on any link worth dispatching over.
// Subtracting the offset from every worker span maps it onto the
// dispatcher's timeline, so worker job spans nest inside the dispatcher's
// dispatch spans in one merged trace with a named process lane per worker.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "cts/obs/trace.hpp"

namespace cts::obs {

class JsonWriter;
struct JsonValue;

/// One process's span timeline inside a merged Chrome trace.
struct ProcessTrace {
  std::string name;            ///< lane label, e.g. "worker 127.0.0.1:9001"
  int pid = 1;                 ///< Chrome trace pid: one lane per process
  std::int64_t offset_us = 0;  ///< subtracted from every ts (clock offset)
  std::vector<TraceEvent> events;
};

/// NTP-style estimate of the remote clock's offset relative to the local
/// clock, from a request/reply exchange (see file comment for t0..t3).
/// Subtract the result from remote timestamps to map them onto the local
/// timeline; the estimation error is bounded by half the round-trip time.
std::int64_t estimate_clock_offset_us(std::int64_t t0_send_us,
                                      std::int64_t t1_recv_us,
                                      std::int64_t t2_reply_us,
                                      std::int64_t t3_done_us);

/// Writes one Chrome-trace document with one named process lane per entry:
/// a "process_name" metadata event plus the lane's spans as "X" events,
/// each timestamp shifted by the lane's offset_us.
void write_merged_trace_json(std::ostream& os,
                             const std::vector<ProcessTrace>& lanes);

/// Writes the merged trace to `path`; returns false on I/O failure.
bool write_merged_trace(const std::string& path,
                        const std::vector<ProcessTrace>& lanes);

/// Emits `events` as a JSON array of {"name","tid","ts_us","dur_us"} —
/// the wire form of TraceEvent used by the cts.jobresult.v1 obs section.
void write_trace_events(JsonWriter& w, const std::vector<TraceEvent>& events);

/// Parses an array written by write_trace_events.  Throws
/// util::InvalidArgument on schema violations.
std::vector<TraceEvent> trace_events_from_json(const JsonValue& v);

}  // namespace cts::obs
