// Throttled progress reporting for long replication runs.
//
// The replication thread pool ticks a ProgressReporter (frames simulated,
// replications finished); the reporter redraws a single stderr status line
//
//   [fig8 Z^0.975] reps 3/12 | 2.1M frames | 1.23M f/s | ETA 0:42
//
// at most every `min_interval_sec`.  Reporting is automatically disabled
// when stderr is not a TTY, when CTS_QUIET=1 is set, or when quiet mode is
// forced programmatically (--quiet) — a REPRO_FULL=1 overnight run stays
// observable without polluting redirected logs.
//
// Tick paths are wait-free (relaxed atomics); the render itself is
// throttled by a CAS on the last-render timestamp so concurrent workers
// never double-draw.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <mutex>
#include <string>

namespace cts::obs {

/// Process-wide quiet override (set by --quiet); combined with the
/// CTS_QUIET environment variable.
void force_quiet(bool quiet) noexcept;

/// True when progress output is suppressed (CTS_QUIET truthy or forced).
bool quiet() noexcept;

class ProgressReporter {
 public:
  struct Options {
    std::string label = "run";
    std::uint64_t total_units = 0;    ///< e.g. replications; 0 = unknown
    std::uint64_t total_frames = 0;   ///< for ETA; 0 = unknown
    double min_interval_sec = 0.25;   ///< minimum delay between redraws
    bool force_enable = false;        ///< tests: render regardless of TTY
    bool force_disable = false;       ///< callers opting out entirely
    std::FILE* sink = nullptr;        ///< render target; nullptr = stderr
  };

  explicit ProgressReporter(Options options);
  ~ProgressReporter();  ///< calls finish()

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Adds simulated frames; may redraw (throttled).  Wait-free when no
  /// redraw is due.
  void add_frames(std::uint64_t n) noexcept;

  /// Marks one work unit (replication) finished; may redraw.
  void unit_done() noexcept;

  /// Final redraw plus newline; idempotent.  Called by the destructor.
  void finish() noexcept;

  // -- introspection (tests) ------------------------------------------------
  std::uint64_t frames() const noexcept {
    return frames_.load(std::memory_order_relaxed);
  }
  std::uint64_t units() const noexcept {
    return units_.load(std::memory_order_relaxed);
  }
  /// Number of redraws so far.
  std::uint64_t render_count() const noexcept {
    return renders_.load(std::memory_order_relaxed);
  }
  /// The most recently rendered status line (without the leading \r).
  std::string last_line() const;

  static bool stderr_is_tty() noexcept;

 private:
  void maybe_render() noexcept;
  void render() noexcept;

  Options options_;
  bool enabled_ = false;
  std::int64_t start_ns_ = 0;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> units_{0};
  /// Sentinel "no render yet": the first tick always draws.
  static constexpr std::int64_t kNeverRendered =
      std::numeric_limits<std::int64_t>::min();
  std::atomic<std::int64_t> last_render_ns_{kNeverRendered};
  std::atomic<std::uint64_t> renders_{0};
  mutable std::mutex render_mu_;
  std::string last_line_;
  bool finished_ = false;
};

}  // namespace cts::obs
