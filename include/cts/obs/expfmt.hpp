// OpenMetrics 1.0 text exposition for metrics snapshots, so any
// Prometheus-family scraper can ingest a daemon's stats endpoint without
// bespoke glue.
//
// Mapping (one metric family per registry entry, names sanitized to the
// OpenMetrics charset):
//   counters        -> counter  (`name_total` sample)
//   sums            -> gauge    (compensated totals can move either way)
//   gauges          -> gauge
//   histograms      -> histogram (cumulative `le` buckets + `+Inf`,
//                                 `_sum`/`_count`)
//   log_histograms  -> summary   (`quantile` samples for p50/p95/p99/p999
//                                 + `_sum`/`_count`)
//
// When a fixed-bucket histogram and a log histogram share a sanitized
// name, the summary family is suffixed `_quantiles` so the exposition
// never declares one family twice.  Output ends with the mandatory
// `# EOF` terminator.

#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cts/obs/metrics.hpp"

namespace cts::obs {

/// Sanitizes a metric name to the OpenMetrics charset: every character
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed
/// with '_'.  Returns "_" for an empty name.
std::string openmetrics_name(const std::string& name);

/// Escapes a label value (backslash, double quote, newline).
std::string openmetrics_label_escape(const std::string& value);

struct OpenMetricsOptions {
  /// Constant labels attached to every sample (e.g. {"worker", "w1"}).
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Renders `shard` as OpenMetrics 1.0 text (terminated by `# EOF`).
void write_openmetrics(std::ostream& os, const MetricsShard& shard,
                       const OpenMetricsOptions& opts = {});

/// Strict OpenMetrics checker for the subset this repo emits.  Verifies:
/// the `# EOF` terminator, `# TYPE` declared once per family and before
/// its samples, sample names consistent with the family type (counter
/// `_total`, histogram `_bucket`/`_sum`/`_count`, summary quantiles),
/// histogram buckets cumulative and monotone with a final `+Inf` equal to
/// `_count`, summary families carrying at least one `quantile` sample,
/// quantiles within [0, 1], parseable values, and no duplicate samples.
/// Returns human-readable problems ("line N: ..."); empty means valid.
std::vector<std::string> validate_openmetrics(const std::string& text);

}  // namespace cts::obs
