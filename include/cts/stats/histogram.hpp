// Fixed-bin histogram used to inspect marginal frame-size distributions.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cts::stats {

/// Uniform-bin histogram over [lo, hi); out-of-range samples are counted in
/// underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Density estimate of the bin (count / total / width); 0 if empty.
  double density(std::size_t bin) const;

  /// Crude terminal rendering (one row per bin with a bar).
  std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace cts::stats
