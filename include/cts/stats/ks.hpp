// One-sample Kolmogorov-Smirnov test against the normal distribution.
//
// Table 1 of the paper hinges on all four models sharing one Gaussian
// marginal; the simulation tests verify this with a KS check on generated
// frame sizes.

#pragma once

#include <cstddef>
#include <vector>

namespace cts::stats {

/// Result of a KS test.
struct KsResult {
  double statistic = 0.0;  ///< sup-norm distance D_n
  double p_value = 1.0;    ///< asymptotic Kolmogorov p-value
};

/// KS statistic of `sample` against N(mean, variance).  The sample is
/// copied and sorted internally.
KsResult ks_test_normal(std::vector<double> sample, double mean,
                        double variance);

/// Asymptotic Kolmogorov distribution complement Q(x) = P(K > x),
/// Q(x) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 x^2).
double kolmogorov_q(double x);

}  // namespace cts::stats
