// Batch-means and replication confidence intervals.
//
// The simulated CLR points in Figs. 8-10 come from independent
// replications; this module turns per-replication estimates into a mean
// with a Student-t confidence interval, and also provides classical
// batch-means intervals for single long runs.

#pragma once

#include <cstddef>
#include <vector>

namespace cts::stats {

/// A point estimate with a symmetric confidence interval.
struct IntervalEstimate {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t samples = 0;

  double low() const noexcept { return mean - half_width; }
  double high() const noexcept { return mean + half_width; }
};

/// Mean and t-interval across independent replication estimates.
IntervalEstimate replication_interval(const std::vector<double>& estimates,
                                      double confidence = 0.95);

/// Batch-means interval: splits `series` into `batches` equal batches, uses
/// the batch means as pseudo-replications.  Requires batches >= 2 and
/// series.size() >= batches.
IntervalEstimate batch_means_interval(const std::vector<double>& series,
                                      std::size_t batches,
                                      double confidence = 0.95);

}  // namespace cts::stats
