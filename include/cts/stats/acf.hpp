// Empirical autocorrelation estimation.
//
// The validation experiments compare analytic ACFs (core/acf_model) against
// sample ACFs of generated traces; the estimators here use the standard
// biased (1/n) normalisation, which is positive semi-definite and the one
// used throughout the LRD literature.

#pragma once

#include <cstddef>
#include <vector>

namespace cts::stats {

/// Sample mean of `series`.
double sample_mean(const std::vector<double>& series);

/// Sample variance (biased, 1/n) of `series`.
double sample_variance(const std::vector<double>& series);

/// Sample autocovariance at lags 0..max_lag (biased normalisation):
///   gamma(k) = (1/n) sum_{t=1}^{n-k} (x_t - m)(x_{t+k} - m).
/// Requires max_lag < series.size().
std::vector<double> autocovariance(const std::vector<double>& series,
                                   std::size_t max_lag);

/// Sample autocorrelation r(0..max_lag) = gamma(k)/gamma(0).
std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag);

/// Aggregates the series over non-overlapping blocks of length m
/// (block means).  Used by the variance-time Hurst estimator.
std::vector<double> aggregate_series(const std::vector<double>& series,
                                     std::size_t m);

}  // namespace cts::stats
