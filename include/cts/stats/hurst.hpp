// Hurst-parameter estimators.
//
// Beran et al. established the LRD of VBR video (H > 0.5) with exactly
// these classical estimators; we implement three independent ones so the
// synthetic models can be verified to carry the Hurst parameter their
// analytics claim:
//
//  * variance-time (aggregated variance):  Var(X^{(m)}) ~ m^{2H-2}
//  * rescaled range (R/S):                 E[R/S](n) ~ n^H
//  * log-periodogram (Geweke/Porter-Hudak): I(w) ~ w^{1-2H} near 0.

#pragma once

#include <cstddef>
#include <vector>

namespace cts::stats {

/// Result of a Hurst estimation: the estimate plus the regression diagnostics.
struct HurstEstimate {
  double hurst = 0.5;
  double slope = 0.0;      ///< fitted log-log slope
  double r_squared = 0.0;  ///< regression fit quality
  std::size_t points = 0;  ///< number of regression points used
};

/// Variance-time estimator.  Aggregation levels are spaced geometrically
/// between `min_m` and series.size()/min_blocks.
HurstEstimate hurst_variance_time(const std::vector<double>& series,
                                  std::size_t min_m = 4,
                                  std::size_t min_blocks = 8);

/// Rescaled-range (R/S) estimator with geometrically spaced block sizes.
HurstEstimate hurst_rescaled_range(const std::vector<double>& series,
                                   std::size_t min_n = 16);

/// Geweke/Porter-Hudak log-periodogram estimator using the lowest
/// floor(series.size()^power) Fourier frequencies (power in (0,1),
/// conventionally 0.5).
HurstEstimate hurst_gph(const std::vector<double>& series,
                        double power = 0.5);

/// Local Whittle estimator (Robinson 1995): minimises
///   R(H) = log( (1/m) sum_j I_j lambda_j^{2H-1} ) - (2H-1) mean(log lambda_j)
/// over the lowest m = floor(n^power) Fourier frequencies.  Semiparametric
/// (no spectral model needed), more efficient than GPH.
HurstEstimate hurst_local_whittle(const std::vector<double>& series,
                                  double power = 0.65);

/// Abry-Veitch-style wavelet (logscale diagram) estimator with the Haar
/// wavelet: detail energies mu_j across dyadic scales j obey
/// log2 mu_j ~ (2H - 1) j + c for LRD processes; weighted regression over
/// scales [min_scale, max usable scale] yields H.
HurstEstimate hurst_wavelet(const std::vector<double>& series,
                            std::size_t min_scale = 3);

}  // namespace cts::stats
