// The cts.cac.v1 / cts.cacresult.v1 wire schema: one admission-control
// request batch and its reply, as framed JSON (see frame.hpp).
//
// Request (client -> cts_cacd):
//
//   {"schema":"cts.cac.v1",
//    "model":{"id":"za:0.9"},                // model-zoo id, OR inline:
//    "model":{"kind":"geometric","mean":500,"variance":5000,"a":0.8},
//    "model":{"kind":"white","mean":500,"variance":5000},
//    "model":{"kind":"lrd","mean":500,"variance":5000,
//             "hurst":0.9,"weight":0.9},
//    "deadline_s":5,                         // 0: daemon default
//    "queries":[
//      {"kind":"admit_br","capacity":16140,"buffer":4035,"log10_clr":-6},
//      {"kind":"admit_eb","capacity":16140,"buffer":4035,"log10_clr":-6},
//      {"kind":"bop","capacity":16140,"buffer":4035,"log10_clr":-6,
//       "n":50,"interp":true}]}
//
// Reply (cts_cacd -> client):
//
//   {"schema":"cts.cacresult.v1","ok":true,"model":"Z^0.9",
//    "elapsed_s":0.012,
//    "answers":[
//      {"ok":true,"admissible":30,"log10_bop":-6.4},
//      {"ok":false,"error":"asymptotic_variance_rate: ..."},
//      {"ok":true,"admissible":0,"log10_bop":-5.9,"interpolated":true}]}
//   {"schema":"cts.cacresult.v1","ok":false,"error":"..."}
//
// "admit_br" / "admit_eb" answer with the paper's Bahadur-Rao rule and the
// classical effective-bandwidth rule (cac.hpp); "bop" reports the log10
// overflow probability for an explicit connection count N, optionally
// allowing interpolation between cached buffer grid points ("interp").
// Admit decisions never interpolate: their numbers are bit-identical to
// direct admissible_connections_br/_eb calls (the %.17g JSON round-trip
// preserves this on the wire).  A query that fails analytically (e.g.
// "admit_eb" on an LRD model, whose variance rate diverges) gets a
// per-query {"ok":false} with the library's error text; a malformed
// document gets a request-level {"ok":false} -- the daemon never crashes
// on bad input.  Parsing is strict and pure (no sockets), hence fully
// unit-testable.

#pragma once

#include <string>
#include <vector>

#include "cts/fit/model_zoo.hpp"

namespace cts::net {

inline constexpr char kCacSchema[] = "cts.cac.v1";
inline constexpr char kCacResultSchema[] = "cts.cacresult.v1";

/// A model reference: exactly one of a zoo id or an inline spec.
struct CacModel {
  std::string zoo_id;  ///< e.g. "za:0.9"; empty for inline specs

  // Inline spec (when zoo_id is empty):
  std::string kind;        ///< "geometric" | "white" | "lrd"
  double mean = 0.0;       ///< cells/frame, > 0
  double variance = 0.0;   ///< (cells/frame)^2, > 0
  double a = 0.0;          ///< geometric: lag-1 correlation in [0, 1)
  double hurst = 0.0;      ///< lrd: H in (0.5, 1)
  double weight = 0.0;     ///< lrd: r(1) weight in (0, 1]
};

/// What a single query asks for.
enum class CacQueryKind { kAdmitBr, kAdmitEb, kBop };

/// One admission/BOP question against one link configuration.
struct CacQuery {
  CacQueryKind kind = CacQueryKind::kAdmitBr;
  double capacity = 0.0;     ///< link capacity C (cells/frame)
  double buffer = 0.0;       ///< total buffer B (cells)
  double log10_clr = 0.0;    ///< QOS target, < 0
  std::size_t n = 0;         ///< bop only: connection count, >= 1
  bool interpolate = false;  ///< bop only: allow grid interpolation
};

/// One request batch: a model plus the queries to answer against it.
struct CacRequest {
  CacModel model;
  double deadline_s = 0.0;  ///< 0: daemon default
  std::vector<CacQuery> queries;
};

std::string write_cac_request_json(const CacRequest& request);

/// Parses and validates a cts.cac.v1 document; throws InvalidArgument on
/// a wrong schema tag, an unknown model/query kind, a non-positive
/// capacity, a non-negative CLR target, an empty batch, etc.  Does NOT
/// resolve the model (see resolve_cac_model).
CacRequest parse_cac_request(const std::string& text);

/// Builds the analytic model a request refers to: zoo ids go through
/// fit::model_from_id; inline specs get a canonical name encoding their
/// parameters (so equal specs share cache entries).  Throws
/// InvalidArgument on out-of-range parameters or an unknown zoo id.
fit::ModelSpec resolve_cac_model(const CacModel& model);

/// Answer to one query.
struct CacAnswer {
  bool ok = false;
  std::string error;            ///< when !ok (analytic failure)
  std::size_t admissible = 0;   ///< admit_br / admit_eb
  double log10_bop = 0.0;       ///< BOP at the answer
  bool interpolated = false;    ///< bop: served by interpolation
};

/// One reply: request-level status plus per-query answers when ok.
struct CacResponse {
  bool ok = false;
  std::string error;       ///< when !ok (malformed request, deadline, ...)
  std::string model_name;  ///< resolved canonical model name
  double elapsed_s = 0.0;
  std::vector<CacAnswer> answers;  ///< one per query, in request order
};

std::string write_cac_response_json(const CacResponse& response);

/// Parses a cts.cacresult.v1 document; throws InvalidArgument on schema
/// violations (an ok reply must answer every query it claims, an error
/// reply must carry a message).
CacResponse parse_cac_response(const std::string& text);

}  // namespace cts::net
