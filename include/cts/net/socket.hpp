// Minimal RAII TCP helpers for the shard-job protocol.
//
// Everything here is deadline-driven: connects, accepts, sends and
// receives all take a timeout and fail with a NetError naming the peer
// and the operation instead of blocking forever — a wedged or vanished
// worker must surface as a retryable error in the dispatcher, never as a
// hung orchestrator.  Sockets are kept non-blocking internally and driven
// with poll(2); frames use the 4-byte length prefix from frame.hpp.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cts/util/error.hpp"

namespace cts::net {

/// A network operation failed (refused, reset, closed, malformed address).
class NetError : public util::Error {
 public:
  using Error::Error;
};

/// A network operation exceeded its deadline.
class NetTimeout : public NetError {
 public:
  using NetError::NetError;
};

/// Move-only owning file-descriptor wrapper.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// One worker address.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string str() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port,host:port,..." (the --workers= value); throws
/// InvalidArgument naming the offending entry on a missing/invalid port.
std::vector<Endpoint> parse_worker_list(const std::string& csv);

/// Opens a listening TCP socket on `port` (0 picks an ephemeral port) on
/// all interfaces; the actually bound port is stored in *actual_port.
/// Throws NetError on failure.
Socket listen_on(std::uint16_t port, std::uint16_t* actual_port);

/// Accepts one connection; an invalid Socket when the deadline passes
/// without one.  Throws NetError on listener failure.
Socket accept_connection(const Socket& listener, double timeout_s);

/// Connects to `ep` within the deadline.  Throws NetTimeout / NetError.
Socket connect_to(const Endpoint& ep, double timeout_s);

/// Sends one framed payload.  Throws NetTimeout / NetError.
void send_frame(const Socket& sock, const std::string& payload,
                double timeout_s);

/// Receives one complete framed payload.  Throws NetTimeout on deadline,
/// NetError on EOF or transport failure.
std::string recv_frame(const Socket& sock, double timeout_s);

}  // namespace cts::net
