// Length-prefixed message framing for the shard-job protocol.
//
// Every message on a cts_shardd connection is one frame: a 4-byte
// big-endian payload length followed by that many bytes of UTF-8 JSON.
// The encoder and the incremental decoder are pure byte-string
// transformations — no sockets — so the framing layer is unit-testable
// byte by byte (partial feeds, concatenated frames, oversized headers).

#pragma once

#include <cstddef>
#include <string>

namespace cts::net {

/// Upper bound on one frame's payload (64 MiB).  A header announcing more
/// is treated as protocol corruption, not an allocation request.
inline constexpr std::size_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Prepends the 4-byte big-endian length header.  Throws InvalidArgument
/// when `payload` exceeds kMaxFrameBytes.
std::string encode_frame(const std::string& payload);

/// Incremental frame decoder: feed() arbitrary byte chunks, next() yields
/// complete payloads in order.
class FrameDecoder {
 public:
  /// Appends `n` bytes to the internal buffer.
  void feed(const char* data, std::size_t n);
  void feed(const std::string& bytes);

  /// Extracts the next complete payload into `*payload`; false when the
  /// buffered bytes do not yet hold a full frame.  Throws InvalidArgument
  /// when a header announces a payload above kMaxFrameBytes.
  bool next(std::string* payload);

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace cts::net
