// The cts.job.v1 / cts.jobresult.v1 wire schema: one shard-execution
// request and its reply, as framed JSON (see frame.hpp).
//
// Request (client -> cts_shardd):
//
//   {"schema":"cts.job.v1",
//    "bench":"fig9_sim_markov",            // bench REGISTRY id, not a path
//    "shard":{"index":0,"count":4},
//    "env":{"REPRO_REPS":"3", ...},        // allowlisted REPRO_* only
//    "timeout_s":300}
//
// Reply (cts_shardd -> client):
//
//   {"schema":"cts.jobresult.v1","ok":true,"elapsed_s":1.2,
//    "shard":"<the worker's verbatim cts.shard.v1 file text>"}
//   {"schema":"cts.jobresult.v1","ok":false,"error":"..."}
//
// The shard payload travels as a JSON *string* (escaped), not a spliced
// object, so the client writes back byte-for-byte what the worker's bench
// process wrote — the %.17g round-trip precision that makes the merge
// bit-identical is never re-serialized in flight.  The bench id is an
// allowlist: the daemon resolves it through its own bench registry and
// refuses anything else, so a client can never make a worker exec an
// arbitrary path.  Parsing is strict and pure (no sockets), hence fully
// unit-testable.

#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cts::net {

inline constexpr char kJobSchema[] = "cts.job.v1";
inline constexpr char kJobResultSchema[] = "cts.jobresult.v1";

/// Environment variables a job may set on the worker (the simulation-scale
/// overrides; anything else is rejected at parse time).
const std::vector<std::string>& job_env_allowlist();

/// One shard-execution request.
struct JobRequest {
  std::string bench_id;        ///< registry id (e.g. "fig9_sim_markov")
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::vector<std::pair<std::string, std::string>> env;  ///< allowlisted
  double timeout_s = 0;        ///< 0: worker default
};

std::string write_job_json(const JobRequest& job);

/// Parses and validates a cts.job.v1 document; throws InvalidArgument on a
/// wrong schema tag, malformed shard spec, or non-allowlisted env key.
JobRequest parse_job(const std::string& text);

/// One shard-execution reply.
struct JobResult {
  bool ok = false;
  std::string error;       ///< when !ok
  std::string shard_json;  ///< verbatim cts.shard.v1 text when ok
  double elapsed_s = 0;
};

std::string write_job_result_json(const JobResult& result);

/// Parses a cts.jobresult.v1 document; throws InvalidArgument on schema
/// violations (an ok reply must carry a shard, an error reply a message).
JobResult parse_job_result(const std::string& text);

}  // namespace cts::net
