// The cts.job.v1 / cts.jobresult.v1 wire schema: one shard-execution
// request and its reply, as framed JSON (see frame.hpp).
//
// Request (client -> cts_shardd):
//
//   {"schema":"cts.job.v1",
//    "bench":"fig9_sim_markov",            // bench REGISTRY id, not a path
//    "shard":{"index":0,"count":4},
//    "env":{"REPRO_REPS":"3", ...},        // allowlisted REPRO_* only
//    "timeout_s":300}
//
// Reply (cts_shardd -> client):
//
//   {"schema":"cts.jobresult.v1","ok":true,"elapsed_s":1.2,
//    "shard":"<the worker's verbatim cts.shard.v1 file text>",
//    "obs":{"recv_us":...,"send_us":...,"metrics":{...},"spans":[...]}}
//   {"schema":"cts.jobresult.v1","ok":false,"error":"..."}
//
// `attempt` (request) is the dispatcher's 1-based attempt counter for the
// shard, so a worker can count retried jobs; absent means 0 (unknown), so
// old clients interoperate.  `obs` (reply, optional) is the worker-side
// observability capture for this one job: the job's metrics shard (NOT the
// worker's cumulative registry — the dispatcher merges per-job shards
// without double counting), its trace spans on the worker's own clock, and
// the request-received / reply-sent timestamps (recv_us/send_us, same
// clock as the spans) the dispatcher needs for NTP-style clock-offset
// correction (see obs/trace_merge.hpp).
//
// The shard payload travels as a JSON *string* (escaped), not a spliced
// object, so the client writes back byte-for-byte what the worker's bench
// process wrote — the %.17g round-trip precision that makes the merge
// bit-identical is never re-serialized in flight.  The bench id is an
// allowlist: the daemon resolves it through its own bench registry and
// refuses anything else, so a client can never make a worker exec an
// arbitrary path.  Parsing is strict and pure (no sockets), hence fully
// unit-testable.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cts/obs/metrics.hpp"
#include "cts/obs/trace.hpp"

namespace cts::net {

inline constexpr char kJobSchema[] = "cts.job.v1";
inline constexpr char kJobResultSchema[] = "cts.jobresult.v1";

/// Environment variables a job may set on the worker (the simulation-scale
/// overrides; anything else is rejected at parse time).
const std::vector<std::string>& job_env_allowlist();

/// One shard-execution request.
struct JobRequest {
  std::string bench_id;        ///< registry id (e.g. "fig9_sim_markov")
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::vector<std::pair<std::string, std::string>> env;  ///< allowlisted
  double timeout_s = 0;        ///< 0: worker default
  int attempt = 0;             ///< dispatcher attempt number, 0 = unknown
};

std::string write_job_json(const JobRequest& job);

/// Parses and validates a cts.job.v1 document; throws InvalidArgument on a
/// wrong schema tag, malformed shard spec, or non-allowlisted env key.
JobRequest parse_job(const std::string& text);

/// Worker-side observability capture for one job (the optional "obs"
/// section of cts.jobresult.v1).
struct JobObs {
  std::int64_t recv_us = 0;  ///< worker clock: request received
  std::int64_t send_us = 0;  ///< worker clock: reply about to be sent
  obs::MetricsShard metrics;           ///< this job's metrics shard
  std::vector<obs::TraceEvent> spans;  ///< this job's spans, worker clock
};

/// One shard-execution reply.
struct JobResult {
  bool ok = false;
  std::string error;       ///< when !ok
  std::string shard_json;  ///< verbatim cts.shard.v1 text when ok
  double elapsed_s = 0;
  bool has_obs = false;    ///< reply carried an obs section
  JobObs obs;
};

std::string write_job_result_json(const JobResult& result);

/// Parses a cts.jobresult.v1 document; throws InvalidArgument on schema
/// violations (an ok reply must carry a shard, an error reply a message).
JobResult parse_job_result(const std::string& text);

}  // namespace cts::net
