// Retry policy for shard dispatch: bounded attempts with exponential
// backoff.  Pure arithmetic — no clocks, no sleeping — so the schedule is
// unit-testable; the dispatcher sleeps for delay_s() itself.

#pragma once

namespace cts::net {

/// Bounded-attempt exponential backoff.  Attempt numbers are 1-based:
/// attempt 1 is the first try (no delay before it), attempt k > 1 waits
/// delay_s(k) after failure k-1.
struct RetryPolicy {
  int max_attempts = 3;
  double base_delay_s = 0.2;  ///< delay before attempt 2
  double multiplier = 2.0;
  double max_delay_s = 5.0;

  /// True while another attempt is allowed after `failures` failures.
  bool should_retry(int failures) const { return failures < max_attempts; }

  /// Backoff before attempt `attempt` (1-based): 0 for the first attempt,
  /// then base * multiplier^(attempt-2), clamped to max_delay_s.
  double delay_s(int attempt) const;
};

}  // namespace cts::net
