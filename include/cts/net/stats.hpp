// The cts.statsreq.v1 / cts.stats.v1 wire schema: a live status query a
// running cts_shardd answers on its job port, over the same length-prefixed
// framing as the job protocol.
//
// Request (client -> cts_shardd):
//
//   {"schema":"cts.statsreq.v1"}                          // cts.stats.v1 JSON
//   {"schema":"cts.statsreq.v1","format":"openmetrics"}   // OpenMetrics text
//
// With format "openmetrics" the reply frame is OpenMetrics 1.0 text (see
// cts/obs/expfmt.hpp) instead of JSON, so a Prometheus-family scraper can
// sit directly on the job port.  Omitted format means "json".
//
// Reply (cts_shardd -> client):
//
//   {"schema":"cts.stats.v1",
//    "worker":"cts_shardd:9001","pid":4242,"uptime_s":12.5,
//    "jobs":{"in_flight":1,"ok":5,"failed":0,"retried":1},
//    "stats_served":3,
//    "metrics":{...},     // lossless snapshot, write_metrics_snapshot form
//    "spans":[{"name":"shardd.exec","count":5,"total_us":...,
//              "self_us":...,"min_us":...,"max_us":...},...]}
//
// The metrics section reuses the lossless snapshot format (Kahan terms,
// gauge modes, histogram moments), so a scraped snapshot merges exactly
// like an in-process registry.  Stats queries are answered concurrently
// with job execution and do not count against --max-jobs — a monitor
// polling a worker must never eat its job budget.  Parsing is strict and
// pure (no sockets) except query_stats, the one-call client convenience.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cts/net/socket.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/obs/span_stats.hpp"

namespace cts::net {

inline constexpr char kStatsRequestSchema[] = "cts.statsreq.v1";
inline constexpr char kStatsSchema[] = "cts.stats.v1";

/// One worker's live status snapshot.
struct WorkerStats {
  std::string worker;               ///< identity, e.g. "cts_shardd:9001"
  std::int64_t pid = 0;
  double uptime_s = 0;
  std::uint64_t jobs_in_flight = 0;  ///< accepted, reply not yet sent
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_retried = 0;    ///< jobs that arrived with attempt > 1
  std::uint64_t stats_served = 0;    ///< stats queries answered (incl. this)
  obs::MetricsShard metrics;         ///< lossless registry snapshot
  std::vector<obs::SpanAgg> spans;   ///< span self-time table
};

/// Reply encoding a stats request asks for.
enum class StatsFormat {
  kJson,         ///< cts.stats.v1 JSON (default)
  kOpenMetrics,  ///< OpenMetrics 1.0 text
};

std::string write_stats_request_json(StatsFormat format = StatsFormat::kJson);

/// Validates a cts.statsreq.v1 document and returns the requested reply
/// format; throws InvalidArgument on a wrong schema tag or unknown format.
StatsFormat parse_stats_request(const std::string& text);

std::string write_stats_json(const WorkerStats& stats);

/// Parses a cts.stats.v1 document; throws InvalidArgument on schema
/// violations.
WorkerStats parse_stats(const std::string& text);

/// One-call client: connects to `ep`, sends a stats request, receives and
/// parses the reply.  Throws NetError / NetTimeout / InvalidArgument.
WorkerStats query_stats(const Endpoint& ep, double timeout_s);

/// Same, but also returns the raw reply text via *raw_reply when non-null
/// (for tools that re-emit the schema-valid document verbatim).
WorkerStats query_stats(const Endpoint& ep, double timeout_s,
                        std::string* raw_reply);

/// One-call OpenMetrics scrape: sends a format:"openmetrics" stats request
/// and returns the reply text verbatim (exposition ends with "# EOF").
std::string query_stats_openmetrics(const Endpoint& ep, double timeout_s);

}  // namespace cts::net
