// Pluggable marginal distributions for frame sizes.
//
// Section 6.1 of the paper discusses non-Gaussian marginals: Heyman &
// Lakshman reached the same conclusions with a NEGATIVE BINOMIAL frame-size
// marginal.  Because DAR(p)'s stationary marginal equals its innovation
// marginal for any distribution, swapping the innovation sampler suffices
// to rerun every experiment with a heavier-tailed marginal -- the ablation
// bench does exactly that.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cts/util/rng.hpp"

namespace cts::proc {

/// A frame-size marginal distribution (sampler + moments).
class MarginalDistribution {
 public:
  virtual ~MarginalDistribution() = default;

  virtual double sample(util::Xoshiro256pp& rng) const = 0;
  virtual double mean() const = 0;
  virtual double variance() const = 0;
  virtual std::string name() const = 0;
};

/// N(mean, variance).
class GaussianMarginal final : public MarginalDistribution {
 public:
  GaussianMarginal(double mean, double variance);
  double sample(util::Xoshiro256pp& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string name() const override;

 private:
  double mean_;
  double variance_;
};

/// Negative binomial with the given mean and variance (variance > mean),
/// realised as a gamma-Poisson mixture:
///   r = mean^2 / (variance - mean),  X | G ~ Poisson(G),
///   G ~ Gamma(shape = r, scale = mean / r).
/// Its tail is heavier than the Gaussian's at equal moments -- the paper's
/// Section 6.1 scenario.
class NegativeBinomialMarginal final : public MarginalDistribution {
 public:
  NegativeBinomialMarginal(double mean, double variance);
  double sample(util::Xoshiro256pp& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string name() const override;

  double shape() const noexcept { return shape_; }

 private:
  double mean_;
  double variance_;
  double shape_;
};

/// Lognormal marginal with the given mean and variance.  Garrett &
/// Willinger found MPEG frame sizes heavier-tailed than Gaussian and
/// well-described by lognormal-type bodies; this marginal lets every
/// experiment rerun under that assumption.  Parameters from moments:
///   sigma_ln^2 = ln(1 + variance/mean^2),  mu_ln = ln(mean) - sigma_ln^2/2.
class LogNormalMarginal final : public MarginalDistribution {
 public:
  LogNormalMarginal(double mean, double variance);
  double sample(util::Xoshiro256pp& rng) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string name() const override;

  double mu_log() const noexcept { return mu_log_; }
  double sigma_log() const noexcept { return sigma_log_; }

 private:
  double mean_;
  double variance_;
  double mu_log_;
  double sigma_log_;
};

}  // namespace cts::proc
