// Fractal-Binomial-Noise-Driven Poisson process (FBNDP), Ryu & Lowen.
//
// A doubly-stochastic Poisson process whose instantaneous rate is
// R * (number of ON sources) where the ON/OFF superposition is fractal
// binomial noise.  Counting the arrivals in consecutive frame windows of
// T_s seconds yields the exact-LRD frame-size process L of the paper:
//
//   mu      = lambda T_s,                lambda = R M / 2
//   sigma^2 = [1 + (T_s/T_0)^alpha] lambda T_s
//   r(k)    = w * (1/2) grad^2(k^{alpha+1}),   w = T_s^alpha/(T_s^alpha+T_0^alpha)
//   H       = (alpha + 1)/2
//
// with T_0 the fractal onset time (closed form below, paper Section 3.2).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cts/proc/fbn.hpp"
#include "cts/proc/frame_source.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Full parameter set of an FBNDP frame source.
struct FbndpParams {
  double alpha = 0.8;  ///< fractal exponent, in (0, 1)
  double A = 1.0;      ///< ON/OFF crossover scale (seconds)
  std::uint32_t M = 15;///< number of superposed ON/OFF processes
  double R = 1.0;      ///< Poisson rate while one source is ON (cells/sec)
  double Ts = 0.04;    ///< frame duration (seconds)

  void validate() const;

  /// Hurst parameter H = (alpha+1)/2.
  double hurst() const noexcept { return (alpha + 1.0) / 2.0; }

  /// Mean arrival rate lambda = R*M/2 (cells/sec).
  double lambda() const noexcept { return R * static_cast<double>(M) / 2.0; }

  /// Fractal onset time T_0 (seconds), closed form of Section 3.2:
  ///   T_0 = { alpha(alpha+1)(2-alpha)^{-1}[(1-alpha)e^{2-alpha}+1]
  ///           * R^{-1} A^{alpha-1} }^{1/alpha}.
  double fractal_onset_time() const;

  /// Mean frame size mu = lambda*Ts (cells/frame).
  double frame_mean() const noexcept { return lambda() * Ts; }

  /// Frame-size variance sigma^2 = [1+(Ts/T0)^alpha] * lambda * Ts.
  double frame_variance() const;

  /// ACF weight w = Ts^alpha / (Ts^alpha + T0^alpha); equals the g(Ts) of
  /// the paper's exact-LRD definition (eq. 2).
  double acf_weight() const;

  /// Analytic frame autocorrelation r(k) = w * (1/2) grad^2(k^{alpha+1}).
  double acf(std::size_t k) const;
};

/// FBNDP frame-size source: Poisson counts per frame window, conditionally
/// on the integrated fractal-binomial rate.
class FbndpSource final : public FrameSource {
 public:
  FbndpSource(const FbndpParams& params, std::uint64_t seed);
  ~FbndpSource() override;  ///< flushes the frame count to the obs registry

  double next_frame() override;
  double mean() const override { return params_.frame_mean(); }
  double variance() const override { return params_.frame_variance(); }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  const FbndpParams& params() const noexcept { return params_; }

 private:
  FbndpParams params_;
  util::Xoshiro256pp rng_;
  FractalBinomialNoise fbn_;
  std::uint64_t frames_generated_ = 0;
};

}  // namespace cts::proc
