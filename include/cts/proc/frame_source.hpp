// Common interface of all VBR video frame-size generators.
//
// A FrameSource emits the size (in ATM cells) of successive video frames of
// one source.  The four paper models (V^v, Z^a, S = DAR(p), L = FBNDP) all
// implement this interface, so multiplexer simulators and estimators are
// written once against it.
//
// Sources own their random stream: the replication harness derives one
// decorrelated seed per (replication, source) pair, so results are
// bit-reproducible and independent of thread scheduling.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace cts::proc {

/// Generator of per-frame cell counts for one VBR video source.
///
/// Frame sizes are returned as doubles: the Gaussian-marginal models of the
/// paper are naturally continuous ("fluid" cells); the cell-level simulator
/// quantises via proc::GaussianQuantizer.
class FrameSource {
 public:
  virtual ~FrameSource() = default;

  /// Size of the next frame in cells.  Never throws; numerically clamped
  /// implementations document their clamping.
  virtual double next_frame() = 0;

  /// Analytic stationary mean frame size (cells/frame).
  virtual double mean() const = 0;

  /// Analytic stationary variance of frame size (cells/frame)^2.
  virtual double variance() const = 0;

  /// Fresh, statistically independent copy whose stream is seeded from
  /// `seed`.  Used by the replication harness.
  virtual std::unique_ptr<FrameSource> clone(std::uint64_t seed) const = 0;

  /// Human-readable model name (e.g. "Z^0.975", "DAR(2)").
  virtual std::string name() const = 0;
};

}  // namespace cts::proc
