// Exact Gaussian sources with an ARBITRARY autocorrelation function.
//
// Generalises the two FGN generators: given any core::AcfModel (analytic,
// fitted, or a raw empirical table), produce a stationary Gaussian process
// with exactly that correlation structure.
//
//  * GaussianAcfHosking     -- Durbin-Levinson conditional sampling; exact
//                              at every prefix, O(n) per step.
//  * GaussianAcfDaviesHarte -- circulant embedding + FFT per block; exact
//                              within a block, requires the embedding to be
//                              non-negative definite (true for FGN and
//                              other convex-decay ACFs; detected and
//                              reported otherwise).
//
// Both inner loops (the Durbin-Levinson inner products and the Davies-
// Harte spectral scaling) run through the runtime-dispatched kernels in
// cts/core/simd.hpp; results are byte-identical on every dispatch kind.
//
// This closes the modelling loop of the paper: measure an ACF from a
// trace, tabulate it, and simulate a Gaussian source carrying exactly the
// measured correlations.

#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cts/core/acf_model.hpp"
#include "cts/proc/frame_source.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Exact incremental Gaussian source for any ACF (Durbin-Levinson).
class GaussianAcfHosking final : public FrameSource {
 public:
  /// `acf` supplies r(k); the source emits N(mean, variance) marginals with
  /// that correlation structure.  `max_order` caps the recursion order
  /// (beyond it a fixed-order AR approximation is used).
  GaussianAcfHosking(std::shared_ptr<const core::AcfModel> acf, double mean,
                     double variance, std::uint64_t seed,
                     std::size_t max_order = 16384);

  double next_frame() override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const core::AcfModel> acf_;
  double mean_;
  double variance_;
  std::size_t max_order_;
  util::Xoshiro256pp rng_;
  util::NormalSampler normal_;
  std::vector<double> phi_;
  std::vector<double> phi_scratch_;
  std::vector<double> history_;
  // acf_table_[k] = acf->at(k) for the lags touched so far: the recursion
  // reads r(1..n) as a contiguous reversed vector each step, so one table
  // lookup replaces n virtual calls.
  std::vector<double> acf_table_;
  double prediction_variance_ = 1.0;
};

/// Exact block Gaussian source for any ACF via circulant embedding.
class GaussianAcfDaviesHarte final : public FrameSource {
 public:
  /// Throws util::NumericalError at construction when the circulant
  /// embedding of the ACF has eigenvalues below -`tolerance` (the ACF is
  /// then not block-embeddable at this length; use the Hosking variant).
  GaussianAcfDaviesHarte(std::shared_ptr<const core::AcfModel> acf,
                         double mean, double variance, std::size_t block_len,
                         std::uint64_t seed, double tolerance = 1e-9);

  double next_frame() override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  std::size_t block_length() const noexcept { return block_len_; }
  double tolerance() const noexcept { return tolerance_; }

 private:
  void refill();

  std::shared_ptr<const core::AcfModel> acf_;
  double mean_;
  double variance_;
  std::size_t block_len_;
  double tolerance_;
  util::Xoshiro256pp rng_;
  util::NormalSampler normal_;
  std::vector<double> eigenvalues_;
  // Spectral scale factors hoisted out of refill(): sqrt(lambda_0),
  // sqrt(lambda_n), and scale_[k-1] = sqrt(lambda_k / 2) for 1 <= k < n.
  double sqrt_ev0_ = 0.0;
  double sqrt_evn_ = 0.0;
  std::vector<double> scale_;
  std::vector<double> normals_;
  std::vector<std::complex<double>> spectrum_;
  std::vector<double> block_;
  std::size_t pos_ = 0;
};

}  // namespace cts::proc
