// Frame-size trace I/O and replay.
//
// The studies this paper argues with (Beran et al., Garrett & Willinger,
// Heyman & Lakshman) all work from captured frame-size traces (Star Wars,
// videoconference recordings).  This module lets users bring their own:
// load a trace file (one frame size per line, '#' comments), replay it as
// a FrameSource (with optional wraparound and a random start phase), and
// write generated traces back out for external analysis.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cts/proc/frame_source.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Loads a whitespace/newline-separated trace of frame sizes.  Lines that
/// are empty or start with '#' are skipped.  Throws util::InvalidArgument
/// on unreadable files or unparsable tokens.
std::vector<double> load_trace(const std::string& path);

/// Writes a trace, one value per line, with an optional header comment.
/// Returns false if the file cannot be written.
bool save_trace(const std::string& path, const std::vector<double>& trace,
                const std::string& comment = "");

/// Replays a recorded trace as a FrameSource.
///
/// `randomize_phase` starts each clone at an independent uniform offset --
/// the standard trick for multiplexing N "independent" sources from one
/// recording (used by Heyman & Lakshman and Elwalid et al.).
class TraceSource final : public FrameSource {
 public:
  TraceSource(std::vector<double> trace, std::uint64_t seed,
              bool randomize_phase = true);

  double next_frame() override;
  /// Sample mean/variance of the recording (the "analytic" moments of a
  /// trace are its empirical ones).
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  std::size_t length() const noexcept { return trace_->size(); }

 private:
  std::shared_ptr<const std::vector<double>> trace_;  ///< shared by clones
  double mean_;
  double variance_;
  bool randomize_phase_;
  std::size_t pos_ = 0;
};

}  // namespace cts::proc
