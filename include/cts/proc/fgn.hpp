// Fractional Gaussian noise (FGN) frame sources.
//
// FGN is the canonical exact-LRD Gaussian process: r(k) =
// (1/2)[ (k+1)^{2H} - 2k^{2H} + (k-1)^{2H} ], i.e. the paper's eq. (2) with
// g(T_s) = 1.  Two generators are provided:
//
//  * FgnHosking     -- exact conditional sampling (Hosking 1984 recursion);
//                      O(n) memory, O(n) work per sample, statistically
//                      exact at every prefix.  Use for tests and moderate n.
//  * FgnDaviesHarte -- exact block sampling via circulant embedding + FFT;
//                      O(n log n) per block.  Successive blocks are
//                      independent (correlation across block boundaries is
//                      truncated), which is the standard trade-off for long
//                      streams; pick the block length >> the lags you care
//                      about.
//
// FGN is not one of the paper's four models but is the reference process of
// its eq. (2) and the natural validation target for the Hurst estimators.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cts/proc/frame_source.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Exact FGN autocorrelation r(k) for Hurst parameter `hurst`; r(0) = 1.
double fgn_acf(std::size_t k, double hurst);

/// Shared FGN parameter set.
struct FgnParams {
  double hurst = 0.8;       ///< Hurst parameter in (0, 1)
  double mean = 500.0;      ///< marginal mean (cells/frame)
  double variance = 5000.0; ///< marginal variance

  void validate() const;
};

/// Hosking-recursion FGN source (exact, incremental).
class FgnHosking final : public FrameSource {
 public:
  FgnHosking(const FgnParams& params, std::uint64_t seed);

  double next_frame() override;
  double mean() const override { return params_.mean; }
  double variance() const override { return params_.variance; }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

 private:
  FgnParams params_;
  util::Xoshiro256pp rng_;
  util::NormalSampler normal_;
  /// Levinson-Durbin state: partial-correlation history.
  std::vector<double> phi_;
  std::vector<double> history_;  ///< past standardized samples, newest last
  double prediction_variance_ = 1.0;
};

/// Davies-Harte block FGN source (exact within each block).
class FgnDaviesHarte final : public FrameSource {
 public:
  /// `block_len` is rounded up to a power of two; must be >= 2.
  FgnDaviesHarte(const FgnParams& params, std::size_t block_len,
                 std::uint64_t seed);

  double next_frame() override;
  double mean() const override { return params_.mean; }
  double variance() const override { return params_.variance; }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  std::size_t block_length() const noexcept { return block_len_; }

 private:
  void refill();

  FgnParams params_;
  std::size_t block_len_;
  util::Xoshiro256pp rng_;
  util::NormalSampler normal_;
  std::vector<double> eigenvalues_;  ///< circulant spectrum, precomputed
  std::vector<double> block_;
  std::size_t pos_ = 0;
};

}  // namespace cts::proc
