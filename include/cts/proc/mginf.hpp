// Discrete-time M/G/infinity input model (Cox 1984).
//
// The model behind the "hyperbolic BOP decay" results the paper contrasts
// itself with (Likhanov et al.; Parulekar & Makowski): sessions arrive as a
// per-frame Poisson stream, each holds for a heavy-tailed number of frames,
// and the frame load is (active sessions) x (cells per session per frame).
//
//   durations:  P(tau > j) = min(1, (x_m / j)^beta),  1 < beta < 2
//   marginal:   Poisson(session_rate * E[tau]), scaled by cells/session
//   ACF:        r(k) = sum_{j >= k} S(j) / sum_{j >= 0} S(j)
//               (S(j) = P(tau > j)), hence r(k) ~ k^{1-beta}: exact LRD
//               with H = (3 - beta) / 2.
//
// The source starts in its stationary regime: Poisson(session_rate E[tau])
// initial sessions with equilibrium residual durations.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cts/core/acf_model.hpp"
#include "cts/proc/frame_source.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Parameters of the M/G/infinity frame source.
struct MgInfParams {
  double session_rate = 1.0;      ///< expected new sessions per frame
  double beta = 1.4;              ///< Pareto exponent of durations, (1, 2)
  double min_duration = 1.0;      ///< x_m (frames), >= 1
  double cells_per_session = 10.0;///< per active session per frame

  void validate() const;

  /// Hurst parameter H = (3 - beta) / 2.
  double hurst() const noexcept { return (3.0 - beta) / 2.0; }

  /// Duration survival S(j) = P(tau > j).
  double duration_survival(std::uint64_t j) const;

  /// Mean duration E[tau] = sum_{j>=0} S(j) (closed tail + finite head).
  double mean_duration() const;

  /// Mean frame size: session_rate * E[tau] * cells_per_session.
  double frame_mean() const;

  /// Frame variance: the active-session count is Poisson, so
  /// variance = cells_per_session^2 * session_rate * E[tau].
  double frame_variance() const;

  /// Convenience: parameters matching a target (mean, variance, beta);
  /// cells_per_session = variance/mean, sessions sized accordingly.
  static MgInfParams for_moments(double mean, double variance, double beta,
                                 double min_duration = 1.0);
};

/// Analytic ACF of the M/G/infinity frame process (cached partial sums of
/// the duration survival; exact up to quadrature of the Pareto tail).
class MgInfAcf final : public core::AcfModel {
 public:
  explicit MgInfAcf(const MgInfParams& params);
  double at(std::size_t k) const override;
  std::string name() const override;

 private:
  void extend(std::size_t k) const;

  MgInfParams params_;
  double mean_duration_;
  /// tail_sum_[k] = sum_{j >= k} S(j); grown on demand.
  mutable std::vector<double> head_cumulative_{0.0};  ///< sum_{j<k} S(j)
};

/// M/G/infinity frame source.
class MgInfSource final : public FrameSource {
 public:
  MgInfSource(const MgInfParams& params, std::uint64_t seed);

  double next_frame() override;
  double mean() const override { return params_.frame_mean(); }
  double variance() const override { return params_.frame_variance(); }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  std::uint64_t active_sessions() const noexcept { return active_; }

 private:
  std::uint64_t sample_duration();
  std::uint64_t sample_equilibrium_residual();
  void schedule(std::uint64_t expiry_frame);

  MgInfParams params_;
  util::Xoshiro256pp rng_;
  std::uint64_t now_ = 0;
  std::uint64_t active_ = 0;
  /// expiry frame -> number of sessions ending at the start of that frame.
  std::unordered_map<std::uint64_t, std::uint32_t> expirations_;
};

}  // namespace cts::proc
