// Fractal ON/OFF renewal process (the atom of the FBNDP model).
//
// ON and OFF sojourns are i.i.d. with the hybrid exponential/Pareto density
// of Ryu & Lowen:
//
//   p(t) = (gamma/A) e^{-gamma t / A}          for t <= A,
//          gamma e^{-gamma} A^gamma t^{-(gamma+1)}  for t >  A,
//
// with gamma = 2 - alpha in (1, 2) so the mean is finite but the variance
// infinite -- the source of long-range dependence.  The process is started
// in its stationary regime: the initial state is ON with probability 1/2
// and the residual sojourn is drawn from the equilibrium (integrated-tail)
// distribution, which keeps count statistics stationary from time zero.

#pragma once

#include <cstdint>

#include "cts/util/rng.hpp"

namespace cts::proc {

/// Parameters of a fractal ON/OFF process.
struct OnOffParams {
  /// Fractal exponent alpha in (0, 1); gamma = 2 - alpha.
  double alpha = 0.8;
  /// Crossover scale A > 0 (seconds) between exponential body and Pareto tail.
  double A = 1.0;

  /// Validates ranges; throws util::InvalidArgument on violation.
  void validate() const;

  double gamma() const noexcept { return 2.0 - alpha; }

  /// Mean sojourn duration E[T] (seconds); closed form.
  double mean_sojourn() const noexcept;

  /// Survival function P(T > t) of a sojourn.
  double sojourn_survival(double t) const noexcept;

  /// Inverse-CDF sample of a sojourn duration.
  double sample_sojourn(util::Xoshiro256pp& rng) const noexcept;

  /// Sample of the *equilibrium residual* sojourn (density S(t)/E[T]);
  /// used for stationary initialisation.
  double sample_equilibrium_residual(util::Xoshiro256pp& rng) const noexcept;
};

/// One fractal ON/OFF source evolving in continuous time.
///
/// The advance loop is the hot path of every FBNDP simulation (the paper's
/// alpha = 0.9 parameterisations produce thousands of transitions per
/// frame), so the distribution constants are precomputed at construction
/// and sojourns are sampled inline.
class FractalOnOff {
 public:
  /// Constructs in the stationary regime using `rng` for initialisation.
  FractalOnOff(const OnOffParams& params, util::Xoshiro256pp rng);

  /// Advances the process by `dt` seconds and returns the total time spent
  /// ON during that window (in [0, dt]).
  double on_time_in(double dt) noexcept;

  bool is_on() const noexcept { return on_; }

  const OnOffParams& params() const noexcept { return params_; }

 private:
  /// Inverse-CDF sojourn sample using the precomputed constants; identical
  /// in distribution to OnOffParams::sample_sojourn.
  double sample_sojourn_fast() noexcept;

  OnOffParams params_;
  util::Xoshiro256pp rng_;
  bool on_ = false;
  /// Remaining time in the current sojourn (seconds).
  double residual_ = 0.0;
  // Precomputed sampling constants.
  double body_mass_ = 0.0;     ///< 1 - e^{-gamma}
  double neg_a_over_g_ = 0.0;  ///< -A / gamma
  double exp_neg_g_ = 0.0;     ///< e^{-gamma}
  double inv_g_ = 0.0;         ///< 1 / gamma
};

}  // namespace cts::proc
