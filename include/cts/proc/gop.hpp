// MPEG-like Group-of-Pictures modulation (extension).
//
// The paper's Section 6.2 flags MPEG-coded video as future work: MPEG
// traffic adds a deterministic periodic I/P/B frame-size pattern on top of
// scene-level correlations.  This wrapper multiplies any base source by a
// periodic pattern of per-frame scale factors whose mean is normalised to
// one, preserving the long-run mean rate while adding the strong periodic
// component characteristic of GoP structures (e.g. IBBPBBPBBPBB).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cts/proc/frame_source.hpp"

namespace cts::proc {

/// Scale factors for one GoP period; mean is normalised to 1 on input.
struct GopPattern {
  std::vector<double> scales;

  void validate() const;

  /// Classic 12-frame IBBPBB... pattern with I:P:B size ratios
  /// roughly 5:3:1 (normalised).
  static GopPattern ibbpbb12();
};

/// Wraps a base source with deterministic periodic GoP modulation.
class GopModulatedSource final : public FrameSource {
 public:
  GopModulatedSource(std::unique_ptr<FrameSource> base, GopPattern pattern,
                     std::uint32_t phase = 0);

  double next_frame() override;
  double mean() const override;
  /// Stationary variance over a uniformly random phase:
  /// Var = E[s^2](sigma_b^2 + mu_b^2) - mu_b^2 (with E[s] = 1).
  double variance() const override;
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

 private:
  std::unique_ptr<FrameSource> base_;
  GopPattern pattern_;
  std::uint32_t phase_;
};

}  // namespace cts::proc
