// Quantisation of continuous frame sizes to whole ATM cells.
//
// The Gaussian-marginal models emit real-valued frame sizes; the cell-level
// simulator and the ATM framing layer need non-negative integer cell
// counts.  Rounding-and-clamping at zero is bias-free to first order when
// mu/sigma is large (mu = 500, sigma = 70.7 in the paper: the mass below
// zero is ~1e-12), and the class reports the exact clamp probability so
// callers can assert it is negligible.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cts/proc/frame_source.hpp"

namespace cts::proc {

/// Wraps any FrameSource, rounding output to non-negative integers.
class GaussianQuantizer final : public FrameSource {
 public:
  explicit GaussianQuantizer(std::unique_ptr<FrameSource> inner);

  double next_frame() override;
  double mean() const override { return inner_->mean(); }
  double variance() const override { return inner_->variance(); }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  /// Probability that a N(mean, variance) sample falls below zero and is
  /// clamped (upper bound on the quantisation bias).
  double clamp_probability() const;

  /// Number of frames clamped to zero so far.
  std::uint64_t clamp_count() const noexcept { return clamp_count_; }

 private:
  std::unique_ptr<FrameSource> inner_;
  std::uint64_t clamp_count_ = 0;
};

}  // namespace cts::proc
