// Discrete AutoRegressive process of order p, DAR(p) (Jacobs & Lewis).
//
//   S_n = V_n * S_{n-A_n} + (1 - V_n) * eps_n,
//
// V_n ~ Bernoulli(rho), A_n picks lag i with probability a_i, eps_n i.i.d.
// with the desired stationary marginal.  The stationary marginal of {S_n}
// equals that of eps_n for ANY innovation distribution, and the ACF obeys
// the Yule-Walker-shaped recursion
//
//   r(k) = rho * sum_{i=1..p} a_i * r(k - i),  k >= 1,  r(0)=1, r(-m)=r(m),
//
// independently of the marginal -- which is exactly why the paper can pin
// the marginal to a common Gaussian and vary only correlations.
// With p = 1, r(k) = rho^k (geometric decay; a Markov chain).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cts/proc/frame_source.hpp"
#include "cts/proc/marginal.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Parameters of a DAR(p) process with Gaussian innovations.
struct DarParams {
  double rho = 0.8;              ///< repeat probability, in [0, 1)
  std::vector<double> lag_probs; ///< a_1..a_p, non-negative, summing to 1
  double mean = 500.0;           ///< marginal mean (cells/frame)
  double variance = 5000.0;      ///< marginal variance

  void validate() const;

  std::size_t order() const noexcept { return lag_probs.size(); }

  /// Analytic autocorrelations r(0..max_lag) via the DAR recursion.
  std::vector<double> acf(std::size_t max_lag) const;
};

/// DAR(p) frame source.  The stationary marginal equals the innovation
/// marginal for ANY distribution; the default is Gaussian (the paper's
/// common marginal), and any MarginalDistribution can be plugged in
/// (Section 6.1's negative binomial, for instance).
class DarSource final : public FrameSource {
 public:
  /// Gaussian marginal from params.mean / params.variance.
  DarSource(const DarParams& params, std::uint64_t seed);

  /// Custom innovation marginal; overrides params.mean / params.variance.
  DarSource(const DarParams& params,
            std::shared_ptr<const MarginalDistribution> marginal,
            std::uint64_t seed);
  ~DarSource() override;  ///< flushes the frame count to the obs registry

  double next_frame() override;
  double mean() const override;
  double variance() const override;
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  const DarParams& params() const noexcept { return params_; }

 private:
  double sample_innovation();

  DarParams params_;
  std::shared_ptr<const MarginalDistribution> marginal_;  ///< may be null
  util::Xoshiro256pp rng_;
  util::NormalSampler normal_;
  /// Ring buffer of the last p values (history_[head_] = S_{n-1}).
  std::vector<double> history_;
  std::size_t head_ = 0;
  /// Cumulative lag-pick probabilities for inverse-CDF lag selection.
  std::vector<double> lag_cdf_;
  std::uint64_t frames_generated_ = 0;
};

}  // namespace cts::proc
