// Gaussian first-order autoregressive frame source.
//
//   X_n = mu + phi (X_{n-1} - mu) + sqrt(1 - phi^2) sigma W_n,  W_n ~ N(0,1)
//
// Marginal N(mu, sigma^2), ACF r(k) = phi^k.  Included as the classical
// Markov reference model: the paper cites the AR(1) CTS scaling
// m*_b ~ b / (c - mu) (Courcoubetis & Weber).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cts/proc/frame_source.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Parameters of a Gaussian AR(1) frame source.
struct Ar1Params {
  double phi = 0.8;        ///< lag-1 autocorrelation, |phi| < 1
  double mean = 500.0;     ///< marginal mean
  double variance = 5000.0;///< marginal variance

  void validate() const;
};

/// Gaussian AR(1) frame source, stationary from the first sample.
class Ar1Source final : public FrameSource {
 public:
  Ar1Source(const Ar1Params& params, std::uint64_t seed);

  double next_frame() override;
  double mean() const override { return params_.mean; }
  double variance() const override { return params_.variance; }
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override;

  const Ar1Params& params() const noexcept { return params_; }

 private:
  Ar1Params params_;
  util::Xoshiro256pp rng_;
  util::NormalSampler normal_;
  double state_;
};

}  // namespace cts::proc
