// Fractal Binomial Noise: the superposition of M i.i.d. fractal ON/OFF
// processes.  At any instant the number of ON sources is Binomial(M, 1/2)
// in equilibrium; the integral of that count over a window is what drives
// the doubly-stochastic Poisson process of the FBNDP model.

#pragma once

#include <cstdint>
#include <vector>

#include "cts/proc/on_off.hpp"
#include "cts/util/rng.hpp"

namespace cts::proc {

/// Sum of M independent fractal ON/OFF processes.
class FractalBinomialNoise {
 public:
  /// Builds M stationary ON/OFF processes; each receives a stream split
  /// from `rng`.
  FractalBinomialNoise(const OnOffParams& params, std::uint32_t m,
                       util::Xoshiro256pp rng);

  /// Advances all M processes by `dt` seconds and returns the aggregate
  /// ON time, i.e. integral over the window of the number of ON sources
  /// (in [0, M*dt]).
  double aggregate_on_time(double dt) noexcept;

  /// Number of sources currently ON.
  std::uint32_t on_count() const noexcept;

  std::uint32_t m() const noexcept {
    return static_cast<std::uint32_t>(sources_.size());
  }

 private:
  std::vector<FractalOnOff> sources_;
};

}  // namespace cts::proc
