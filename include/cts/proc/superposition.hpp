// Superposition of independent frame sources.
//
// The paper's V^v and Z^a models are the sum of an FBNDP component X
// (power-law long-term correlations) and a DAR(1) component Y (geometric
// short-term correlations).  For independent components,
//
//   mu = mu_X + mu_Y,   sigma^2 = sigma_X^2 + sigma_Y^2,
//   r(k) = [sigma_X^2 r_X(k) + sigma_Y^2 r_Y(k)] / (sigma_X^2 + sigma_Y^2)
//        = v/(v+1) r_X(k) + 1/(v+1) r_Y(k),   v = sigma_X^2 / sigma_Y^2,
//
// which is the paper's eq. (5).  This class also models the aggregate of
// N homogeneous sources feeding one multiplexer.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cts/proc/frame_source.hpp"

namespace cts::proc {

/// Sum of an arbitrary number of independent FrameSources.
class SuperposedSource final : public FrameSource {
 public:
  /// Takes ownership of the components; at least one is required.
  explicit SuperposedSource(
      std::vector<std::unique_ptr<FrameSource>> components,
      std::string name = "superposition");

  double next_frame() override;
  double mean() const override;
  double variance() const override;
  std::unique_ptr<FrameSource> clone(std::uint64_t seed) const override;
  std::string name() const override { return name_; }

  std::size_t component_count() const noexcept { return components_.size(); }
  const FrameSource& component(std::size_t i) const { return *components_[i]; }

 private:
  std::vector<std::unique_ptr<FrameSource>> components_;
  std::string name_;
};

}  // namespace cts::proc
