// Space-priority buffer management (CLP-aware partial buffer sharing).
//
// ATM's CLP bit marks low-priority cells; the classic buffer-management
// policy is PARTIAL BUFFER SHARING: low-priority (CLP = 1) cells are
// admitted only while the queue is below a threshold S < B, high-priority
// cells up to the full buffer B.  This module provides the fluid frame-
// level version of that policy for two traffic classes, reporting per-class
// loss -- the mechanism that turns one physical buffer into two QOS
// classes.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cts/proc/frame_source.hpp"

namespace cts::atm {

/// Per-class tallies of a partial-buffer-sharing run.
struct PrioritySharingResult {
  std::uint64_t frames = 0;
  double high_arrived = 0.0;
  double low_arrived = 0.0;
  double high_lost = 0.0;
  double low_lost = 0.0;

  double high_clr() const {
    return high_arrived > 0.0 ? high_lost / high_arrived : 0.0;
  }
  double low_clr() const {
    return low_arrived > 0.0 ? low_lost / low_arrived : 0.0;
  }
};

/// Configuration of the two-class fluid run.
struct PrioritySharingConfig {
  std::uint64_t frames = 100000;
  std::uint64_t warmup_frames = 1000;
  double capacity_cells = 16140.0;  ///< total service, cells/frame
  double buffer_cells = 4000.0;     ///< B
  double threshold_cells = 2000.0;  ///< S: low-priority admission cutoff

  void validate() const;
};

/// Runs the two-class fluid recursion: within each frame, high-priority
/// fluid is admitted up to B and low-priority fluid only while the queue
/// is below S (low-priority fluid is clipped first, matching the
/// cell-level policy where CLP=1 arrivals are dropped at queue >= S).
PrioritySharingResult run_partial_buffer_sharing(
    std::vector<std::unique_ptr<proc::FrameSource>>& high_sources,
    std::vector<std::unique_ptr<proc::FrameSource>>& low_sources,
    const PrioritySharingConfig& config);

}  // namespace cts::atm
