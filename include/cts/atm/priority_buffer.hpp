// Space-priority buffer management (CLP-aware partial buffer sharing).
//
// ATM's CLP bit marks low-priority cells; the classic buffer-management
// policy is PARTIAL BUFFER SHARING: low-priority (CLP = 1) cells are
// admitted only while the queue is below a threshold S < B, high-priority
// cells up to the full buffer B.  This module provides the fluid frame-
// level version of that policy for two traffic classes, reporting per-class
// loss -- the mechanism that turns one physical buffer into two QOS
// classes.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cts/proc/frame_source.hpp"

namespace cts::obs {
class MetricsShard;
}

namespace cts::atm {

/// Per-class tallies of a partial-buffer-sharing run.
struct PrioritySharingResult {
  std::uint64_t frames = 0;
  double high_arrived = 0.0;
  double low_arrived = 0.0;
  double high_lost = 0.0;
  double low_lost = 0.0;

  double high_clr() const {
    return high_arrived > 0.0 ? high_lost / high_arrived : 0.0;
  }
  double low_clr() const {
    return low_arrived > 0.0 ? low_lost / low_arrived : 0.0;
  }
};

/// Configuration of the two-class fluid run.
struct PrioritySharingConfig {
  std::uint64_t frames = 100000;
  std::uint64_t warmup_frames = 1000;
  double capacity_cells = 16140.0;  ///< total service, cells/frame
  double buffer_cells = 4000.0;     ///< B
  double threshold_cells = 2000.0;  ///< S: low-priority admission cutoff

  void validate() const;
};

/// Runs the two-class fluid recursion: within each frame, high-priority
/// fluid is admitted up to B and low-priority fluid only while the queue
/// is below S (low-priority fluid is clipped first, matching the
/// cell-level policy where CLP=1 arrivals are dropped at queue >= S).
PrioritySharingResult run_partial_buffer_sharing(
    std::vector<std::unique_ptr<proc::FrameSource>>& high_sources,
    std::vector<std::unique_ptr<proc::FrameSource>>& low_sources,
    const PrioritySharingConfig& config);

/// Exact within-frame outcome of the two-priority fluid policy.
struct PriorityFrameOutcome {
  double q = 0.0;          ///< end-of-frame queue
  double low_lost = 0.0;   ///< low-priority fluid dropped this frame
  double high_lost = 0.0;  ///< high-priority fluid dropped this frame
};

/// One frame of the two-priority fluid dynamics: starting from queue `q0`
/// with constant high/low arrival rates `ah`/`al` and service rate `c`
/// (cells/frame), low fluid blocked while q >= `s` and high fluid while
/// q >= `b`.  Piecewise-linear evolution with sliding modes at S and B.
/// This is the exact kernel behind run_partial_buffer_sharing, exposed so
/// the scenario executor's priority hops (cts/sim/scenario_run.hpp) share
/// the same dynamics.
PriorityFrameOutcome evolve_priority_frame(double q0, double ah, double al,
                                           double c, double s, double b);

/// Folds per-class arrival/loss tallies into `shard` as atm.priority.*
/// metrics (counter atm.priority.frames, sums atm.priority.high_arrived /
/// high_lost / low_arrived / low_lost, all in cells).  Used by both
/// run_partial_buffer_sharing and the scenario executor's priority hops.
void record_priority_sharing(const PrioritySharingResult& result,
                             obs::MetricsShard& shard);

}  // namespace cts::atm
