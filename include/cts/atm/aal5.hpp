// AAL5 segmentation and reassembly (ITU I.363.5).
//
// The concrete path from "a video frame of X bytes" to the ATM cells the
// multiplexer counts: an AAL5 CPCS-PDU is the payload plus padding and an
// 8-byte trailer (UU, CPI, 16-bit length, CRC-32), segmented into 48-byte
// cell payloads; the final cell of a PDU is marked via the PT field's
// AAU bit (PT = 0b001).  Reassembly verifies length and CRC-32.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cts/atm/cell.hpp"

namespace cts::obs {
class MetricsShard;
}

namespace cts::atm {

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/final 0xFFFFFFFF) as
/// used by the AAL5 trailer.
std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len);

/// Number of cells an AAL5 PDU with `payload_bytes` of user data needs
/// (payload + pad + 8-byte trailer, ceiling to 48-byte cells).
std::uint64_t aal5_cells_for_payload(std::uint64_t payload_bytes);

/// Segments `payload` into ATM cells on the given VPI/VCI.  The last cell
/// carries PT = 0b001 (AAU = 1, "end of CPCS-PDU").
std::vector<Cell> aal5_segment(const std::vector<std::uint8_t>& payload,
                               std::uint8_t vpi, std::uint16_t vci);

/// Reassembles one AAL5 PDU from cells (in order, same VC).  Returns
/// std::nullopt on trailer/CRC/length mismatch or a missing end-of-PDU
/// marker.
std::optional<std::vector<std::uint8_t>> aal5_reassemble(
    const std::vector<Cell>& cells);

/// Frame-level AAL5 overhead accounting for the scenario pipeline
/// (cts/sim/scenario_run.hpp): one frame of X fluid cells is treated as
/// one CPCS-PDU of round(X) * 48 payload bytes, and add() returns the
/// on-the-wire cell count including padding and the 8-byte trailer
/// (aal5_cells_for_payload).
///
/// Obs-aware in the accumulate-then-reduce idiom: add() only updates
/// local tallies; flush() folds them into a MetricsShard as
/// atm.aal5.pdus / atm.aal5.payload_cells / atm.aal5.cells and resets.
class Aal5Framer {
 public:
  /// Consumes one frame's fluid cell count, returns the wire cell count.
  double add(double frame_cells);

  /// Folds and resets the tallies accumulated since the last flush.
  void flush(obs::MetricsShard& shard);

 private:
  std::uint64_t pdus_ = 0;
  std::uint64_t payload_cells_ = 0;
  std::uint64_t wire_cells_ = 0;
};

}  // namespace cts::atm
