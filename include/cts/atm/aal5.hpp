// AAL5 segmentation and reassembly (ITU I.363.5).
//
// The concrete path from "a video frame of X bytes" to the ATM cells the
// multiplexer counts: an AAL5 CPCS-PDU is the payload plus padding and an
// 8-byte trailer (UU, CPI, 16-bit length, CRC-32), segmented into 48-byte
// cell payloads; the final cell of a PDU is marked via the PT field's
// AAU bit (PT = 0b001).  Reassembly verifies length and CRC-32.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cts/atm/cell.hpp"

namespace cts::atm {

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/final 0xFFFFFFFF) as
/// used by the AAL5 trailer.
std::uint32_t crc32_ieee(const std::uint8_t* data, std::size_t len);

/// Number of cells an AAL5 PDU with `payload_bytes` of user data needs
/// (payload + pad + 8-byte trailer, ceiling to 48-byte cells).
std::uint64_t aal5_cells_for_payload(std::uint64_t payload_bytes);

/// Segments `payload` into ATM cells on the given VPI/VCI.  The last cell
/// carries PT = 0b001 (AAU = 1, "end of CPCS-PDU").
std::vector<Cell> aal5_segment(const std::vector<std::uint8_t>& payload,
                               std::uint8_t vpi, std::uint16_t vci);

/// Reassembles one AAL5 PDU from cells (in order, same VC).  Returns
/// std::nullopt on trailer/CRC/length mismatch or a missing end-of-PDU
/// marker.
std::optional<std::vector<std::uint8_t>> aal5_reassemble(
    const std::vector<Cell>& cells);

}  // namespace cts::atm
