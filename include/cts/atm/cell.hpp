// ATM cell framing (UNI format).
//
// A 53-byte ATM cell: 5-byte header (GFC, VPI, VCI, PT, CLP, HEC) plus a
// 48-byte payload.  The HEC byte is CRC-8 over the first four header bytes
// with polynomial x^8 + x^2 + x + 1 and the ITU I.432 coset 0x55.  This is
// the concrete wire substrate under the abstract "cells" counted everywhere
// else in the library.

#pragma once

#include <array>
#include <cstdint>
#include <optional>

namespace cts::atm {

inline constexpr std::size_t kCellBytes = 53;
inline constexpr std::size_t kHeaderBytes = 5;
inline constexpr std::size_t kPayloadBytes = 48;

/// Decoded UNI cell header fields.
struct CellHeader {
  std::uint8_t gfc = 0;    ///< Generic Flow Control, 4 bits
  std::uint8_t vpi = 0;    ///< Virtual Path Identifier, 8 bits (UNI)
  std::uint16_t vci = 0;   ///< Virtual Channel Identifier, 16 bits
  std::uint8_t pt = 0;     ///< Payload Type, 3 bits
  bool clp = false;        ///< Cell Loss Priority bit

  /// Validates field ranges; throws util::InvalidArgument on violation.
  void validate() const;
};

/// CRC-8 with generator x^8 + x^2 + x + 1 over `data`, ITU I.432 variant
/// (initial remainder 0, coset 0x55 XORed into the result).
std::uint8_t hec_crc8(const std::uint8_t* data, std::size_t len);

/// Serialises the header (including computed HEC) into 5 bytes.
std::array<std::uint8_t, kHeaderBytes> encode_header(const CellHeader& header);

/// Parses and HEC-verifies 5 header bytes; std::nullopt on HEC mismatch.
std::optional<CellHeader> decode_header(
    const std::array<std::uint8_t, kHeaderBytes>& bytes);

/// A full cell: header + payload.
struct Cell {
  CellHeader header;
  std::array<std::uint8_t, kPayloadBytes> payload{};
};

/// Serialises a full cell to 53 bytes.
std::array<std::uint8_t, kCellBytes> encode_cell(const Cell& cell);

/// Parses 53 bytes; std::nullopt if the header fails HEC verification.
std::optional<Cell> decode_cell(const std::array<std::uint8_t, kCellBytes>& bytes);

}  // namespace cts::atm
