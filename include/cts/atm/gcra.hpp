// Generic Cell Rate Algorithm (GCRA) -- ATM usage parameter control.
//
// The policing companion of admission control: the network verifies at the
// UNI that a connection keeps the traffic contract its CAC decision was
// based on.  GCRA(T, tau) is the ITU I.371 virtual-scheduling algorithm:
// a cell arriving at time t conforms iff t >= TAT - tau, where TAT is the
// theoretical arrival time; conforming cells advance TAT by T.
//
// Dual leaky buckets (peak rate + sustainable rate with burst tolerance)
// are composed from two GCRA instances, as in the ATM Forum UNI spec.

#pragma once

#include <cstdint>
#include <optional>

namespace cts::obs {
class MetricsShard;
}

namespace cts::atm {

/// One GCRA(T, tau) instance (virtual scheduling formulation).
class Gcra {
 public:
  /// `increment` is T (seconds/cell, the reciprocal contract rate);
  /// `limit` is tau (seconds of tolerance).
  Gcra(double increment, double limit);

  /// Processes a cell arriving at absolute time `t` (seconds, must be
  /// non-decreasing across calls).  Returns true iff the cell conforms;
  /// non-conforming cells do NOT advance the scheduler state.
  bool conforms(double t);

  /// Resets to the initial state (next cell always conforms).
  void reset();

  double increment() const noexcept { return increment_; }
  double limit() const noexcept { return limit_; }

 private:
  double increment_;
  double limit_;
  double tat_ = 0.0;
  bool first_ = true;
};

/// Dual leaky bucket: peak cell rate (PCR, with CDV tolerance) plus
/// sustainable cell rate (SCR, with burst tolerance).  A cell conforms only
/// if it conforms to both buckets; the buckets advance independently per
/// the ATM Forum conformance definition.
class DualLeakyBucket {
 public:
  /// Rates in cells/second; tolerances in seconds.
  DualLeakyBucket(double peak_rate, double cdv_tolerance,
                  double sustainable_rate, double burst_tolerance);

  bool conforms(double t);
  void reset();

  /// Maximum burst size (cells) the SCR bucket admits at peak rate:
  /// MBS = 1 + floor(BT / (1/SCR - 1/PCR)).
  double max_burst_size() const;

 private:
  Gcra peak_;
  Gcra sustainable_;
};

/// Policing statistics for a cell stream.
struct PolicingResult {
  std::uint64_t cells = 0;
  std::uint64_t nonconforming = 0;

  double violation_ratio() const {
    return cells > 0
               ? static_cast<double>(nonconforming) /
                     static_cast<double>(cells)
               : 0.0;
  }
};

/// Frame-level UPC: quantizes a frame's fluid cell count to whole cells,
/// replays them through a GCRA (or dual leaky bucket) at the deterministic
/// smoothing schedule (cell j of frame n at (n + (j + 1/2)/k) Ts), and
/// drops non-conforming cells.  This is the per-source policing stage of
/// the scenario pipeline (cts/sim/scenario_run.hpp).
///
/// Obs-aware in the accumulate-then-reduce idiom: police() only updates a
/// local PolicingResult; flush() folds it into a MetricsShard as
/// atm.gcra.cells / atm.gcra.nonconforming and resets it.
class FramePolicer {
 public:
  /// Single-bucket GCRA(1/sustainable_rate, burst_tolerance); rates in
  /// cells/second, tolerances in seconds, `Ts` the frame duration.
  FramePolicer(double sustainable_rate, double burst_tolerance, double Ts);

  /// Dual leaky bucket: PCR with CDV tolerance plus SCR with burst
  /// tolerance.
  FramePolicer(double peak_rate, double cdv_tolerance,
               double sustainable_rate, double burst_tolerance, double Ts);

  /// Polices frame `frame_index`'s cells; returns the conforming count.
  double police(std::uint64_t frame_index, double frame_cells);

  const PolicingResult& tally() const noexcept { return tally_; }

  /// Folds and resets the tallies accumulated since the last flush.
  void flush(obs::MetricsShard& shard);

 private:
  std::optional<Gcra> single_;
  std::optional<DualLeakyBucket> dual_;
  double Ts_;
  PolicingResult tally_;
};

}  // namespace cts::atm
