// Connection Admission Control (CAC) for homogeneous VBR video sources.
//
// The paper's motivating application (Section 5.4, citing Elwalid et al.):
// how many video connections can a link admit while keeping the cell loss
// rate below a target?  Two admission rules are implemented:
//
//  * B-R rule: the largest N such that the Bahadur-Rao BOP with c = C/N
//    and b = B/N stays below the target.  Uses the full correlation
//    structure through the CTS machinery -- this is the paper's approach.
//  * Effective-bandwidth rule: the classical Markov recipe
//    N = floor(C / EB(delta)), delta = -ln eps / B; exists only for SRD
//    models (the asymptotic variance rate must converge).
//
// The paper's §5.4 observation is reproduced by comparing the counts the
// two rules give for Z^a versus its matched DAR(p): within the practical
// operating region they differ by at most a connection or two.

#pragma once

#include <cstddef>

#include "cts/fit/model_zoo.hpp"

namespace cts::atm {

/// Admission problem statement.
struct CacProblem {
  double capacity_cells_per_frame = 16140.0;  ///< link capacity C
  double buffer_cells = 4035.0;               ///< total buffer B
  double log10_target_clr = -6.0;             ///< QOS target (log10)

  void validate() const;
};

/// Outcome of an admission computation.
struct CacResult {
  std::size_t admissible = 0;   ///< max admitted connections
  double log10_bop_at_max = 0.0;///< predicted log10 BOP at that N
};

/// Largest N with BR-predicted log10 BOP <= target.  Monotonicity of the
/// BOP in N (for fixed C, B) makes this a binary search.
CacResult admissible_connections_br(const fit::ModelSpec& model,
                                    const CacProblem& problem);

/// Classical effective-bandwidth admission count.  Throws
/// util::NumericalError for LRD models (no finite variance rate).
CacResult admissible_connections_eb(const fit::ModelSpec& model,
                                    const CacProblem& problem);

}  // namespace cts::atm
