// ATM link geometry: bit rates, cell rates, buffers and delays.
//
// Converts between the units the paper mixes freely: link bit rate (e.g.
// OC-3 at 155.52 Mb/s), cell rate (cells/s), per-frame capacity (cells per
// Ts), buffer size in cells and the corresponding maximum queueing delay in
// milliseconds.

#pragma once

#include <cstdint>

namespace cts::atm {

/// SONET OC-3 line rate in bits/s.
inline constexpr double kOc3BitsPerSecond = 155.52e6;
/// SONET OC-3 payload rate available to ATM cells (SDH overhead removed).
inline constexpr double kOc3PayloadBitsPerSecond = 149.76e6;
/// DS-3 (44.736 Mb/s) with PLCP framing: ~40.704 Mb/s of cells.
inline constexpr double kDs3CellBitsPerSecond = 40.704e6;

/// A constant-rate ATM link.
class Link {
 public:
  /// `bits_per_second` is the rate available to whole 53-byte cells.
  explicit Link(double bits_per_second);

  double bits_per_second() const noexcept { return bits_per_second_; }

  /// Cells per second (53 bytes each).
  double cells_per_second() const noexcept;

  /// Service capacity in cells per frame of `Ts` seconds.
  double cells_per_frame(double Ts) const;

  /// Maximum queueing delay (msec) of a `buffer_cells` buffer.
  double buffer_delay_ms(double buffer_cells) const;

  /// Buffer size (cells) giving a maximum delay of `ms` milliseconds.
  double buffer_cells_for_delay_ms(double ms) const;

  /// Transmission time of one cell (seconds).
  double cell_time() const noexcept;

 private:
  double bits_per_second_;
};

}  // namespace cts::atm
