// Thread-safe memoization cache for admission-control analytics.
//
// The expensive step of every CAC decision is the CTS scan inside
// RateFunction::evaluate -- the Bahadur-Rao overflow probability is then
// closed-form in (I, N).  The cache therefore memoizes at the rate level,
// keyed on (model name, per-connection bandwidth c, per-connection buffer
// b); every (model, b, c, N) BOP query the daemon serves maps onto one
// such rate point plus O(1) arithmetic, so a single cached scan serves
// all N sharing the same per-connection operating point.
//
// Two analytic facts make the cache more than a lookup table:
//
//  * m*_b is non-decreasing in b at fixed c (decreasing differences of
//    the BR objective in (m, b)), so a cache miss warm-starts its integer
//    scan from the cached m* of the largest b' <= b already present --
//    bit-identical to the cold scan, but skipping the settled prefix.
//  * log10 BOP is smooth in b between grid points, so probe queries may
//    opt into linear interpolation between two cached brackets instead
//    of paying for a fresh scan.  Interpolation is approximate and is
//    never used for admit/reject decisions.
//
// Concurrency: lookups and inserts take a mutex; scans run outside the
// lock.  Two threads missing on the same key compute the same
// deterministic value and the second insert is a no-op.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cts/atm/cac.hpp"
#include "cts/core/rate_function.hpp"

namespace cts::atm {

/// Shared memo of rate-function evaluations plus derived CAC answers.
/// Models are identified by ModelSpec::name -- two specs with the same
/// name MUST describe the same process (true for the model zoo, whose
/// names encode their parameters).
class CacCache {
 public:
  /// Monotone counters plus current size; readable while other threads
  /// query the cache.
  struct Stats {
    std::uint64_t rate_hits = 0;       ///< BOP served from a cached scan
    std::uint64_t rate_misses = 0;     ///< scans actually run
    std::uint64_t warm_starts = 0;     ///< misses started at a cached m*
    std::uint64_t interpolations = 0;  ///< BOPs served by interpolation
    std::uint64_t eb_hits = 0;         ///< variance rates served from cache
    std::uint64_t eb_misses = 0;       ///< variance-rate summations run
    std::uint64_t rate_entries = 0;    ///< cached rate points
  };

  CacCache() = default;
  CacCache(const CacCache&) = delete;
  CacCache& operator=(const CacCache&) = delete;

  /// log10 BOP for N connections of `model` on `problem`'s link
  /// (c = C/N, b = B/N per connection).  Returns 0.0 -- log10 of
  /// probability ~1 -- when N is infeasible (c <= mean); such points are
  /// not cached.  Exact: bit-identical to the uncached computation.
  double log10_bop(const fit::ModelSpec& model, const CacProblem& problem,
                   std::size_t n);

  /// Like log10_bop, but when the exact point is absent and two cached
  /// buffer grid points bracket b at the same (model, c), returns the
  /// linear interpolation of their BOPs instead of running a scan.
  /// Falls back to the exact (caching) path when no bracket exists.
  double log10_bop_interpolated(const fit::ModelSpec& model,
                                const CacProblem& problem, std::size_t n);

  /// admissible_connections_br through the cache: the binary search's
  /// final BOP report is a guaranteed rate_hits increment, never a
  /// re-evaluation.  Bit-identical to atm::admissible_connections_br.
  CacResult admissible_br(const fit::ModelSpec& model,
                          const CacProblem& problem);

  /// admissible_connections_eb with the asymptotic variance rate memoized
  /// per model -- including the LRD failure: a model that failed to
  /// converge throws the cached util::NumericalError immediately on
  /// re-query.  Bit-identical to atm::admissible_connections_eb.
  CacResult admissible_eb(const fit::ModelSpec& model,
                          const CacProblem& problem);

  Stats stats() const;

  /// Drops every cached entry (counters are kept: they are monotone).
  void clear();

 private:
  /// Lexicographic (model, c, b): entries of one (model, c) curve are
  /// contiguous and ordered by b, which is what warm-start hints and
  /// interpolation brackets need.
  struct RateKey {
    std::string model;
    double bandwidth = 0.0;  ///< c, per connection
    double buffer = 0.0;     ///< b, per connection
    bool operator<(const RateKey& o) const {
      if (model != o.model) return model < o.model;
      if (bandwidth != o.bandwidth) return bandwidth < o.bandwidth;
      return buffer < o.buffer;
    }
  };

  /// Cached asymptotic variance rate, or the cached reason there is none.
  struct EbEntry {
    bool converged = false;
    double variance_rate = 0.0;
    std::string error;
  };

  core::RateResult rate_point(const fit::ModelSpec& model, double bandwidth,
                              double buffer);

  mutable std::mutex mutex_;
  std::map<RateKey, core::RateResult> rates_;
  std::map<std::string, EbEntry> eb_;
  Stats stats_;
};

}  // namespace cts::atm
