// Deterministic frame-to-cell smoothing.
//
// Real-time VBR video encoders emit a frame every Ts seconds; the ATM
// adaptation layer spaces its cells evenly across the frame interval
// ("deterministic smoothing", the paper's Section 5.5 assumption).  This
// module computes the exact cell emission schedule used by the cell-level
// simulator and any packetisation layer.

#pragma once

#include <cstdint>
#include <vector>

namespace cts::obs {
class MetricsShard;
}

namespace cts::atm {

/// Emission times (seconds from frame start) for `cells` cells smoothed
/// over a frame of `Ts` seconds: cell j departs at (j + 1/2) Ts / cells.
std::vector<double> smoothing_schedule(std::uint64_t cells, double Ts);

/// Inter-cell gap of the schedule (Ts / cells); 0 when cells == 0.
double smoothing_gap(std::uint64_t cells, double Ts);

/// Number of whole cells needed to carry `payload_bytes` of AAL payload at
/// 48 bytes per cell (ceiling division).
std::uint64_t cells_for_payload(std::uint64_t payload_bytes);

/// Multi-frame traffic shaper: emits the moving average of the last
/// `window` frames' cell counts (fewer while the window fills), spreading
/// bursts across frames — the inter-frame generalisation of the
/// within-frame deterministic smoothing above.  A window of 0 or 1 passes
/// frames through unchanged.
///
/// The smoother is obs-aware in the accumulate-then-reduce idiom: push()
/// never touches a registry; flush() folds the local tallies into a
/// MetricsShard as atm.smoothing.frames / atm.smoothing.cells_in /
/// atm.smoothing.cells_out and resets them.
class FrameSmoother {
 public:
  explicit FrameSmoother(std::size_t window);

  /// Consumes one frame's cell count, returns the smoothed count.
  double push(double frame_cells);

  std::size_t window() const noexcept { return window_; }

  /// Folds and resets the tallies accumulated since the last flush.
  void flush(obs::MetricsShard& shard);

 private:
  std::size_t window_;
  std::vector<double> ring_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t frames_ = 0;
  double cells_in_ = 0.0;
  double cells_out_ = 0.0;
};

}  // namespace cts::atm
