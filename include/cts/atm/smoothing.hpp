// Deterministic frame-to-cell smoothing.
//
// Real-time VBR video encoders emit a frame every Ts seconds; the ATM
// adaptation layer spaces its cells evenly across the frame interval
// ("deterministic smoothing", the paper's Section 5.5 assumption).  This
// module computes the exact cell emission schedule used by the cell-level
// simulator and any packetisation layer.

#pragma once

#include <cstdint>
#include <vector>

namespace cts::atm {

/// Emission times (seconds from frame start) for `cells` cells smoothed
/// over a frame of `Ts` seconds: cell j departs at (j + 1/2) Ts / cells.
std::vector<double> smoothing_schedule(std::uint64_t cells, double Ts);

/// Inter-cell gap of the schedule (Ts / cells); 0 when cells == 0.
double smoothing_gap(std::uint64_t cells, double Ts);

/// Number of whole cells needed to carry `payload_bytes` of AAL payload at
/// 48 bytes per cell (ceiling division).
std::uint64_t cells_for_payload(std::uint64_t payload_bytes);

}  // namespace cts::atm
