// Fitting the pure-LRD model L to the ACF tail of Z^a (Table 1, item 7).
//
// L is an FBNDP whose marginal is pinned to the common N(mu, sigma^2); that
// pins its ACF weight to w = 1 - mu/sigma^2 (independent of alpha!), so the
// only freedom is alpha.  The fit minimises the squared log-distance
//
//   sum_{k in tail} [ log r_L(k; alpha) - log r_target(k) ]^2
//
// over a lag window (default 100..1000, the paper's "tail"), by golden-
// section search.  Because the v/(v+1) factor in eq. (5) halves the target
// amplitude, the best alpha is strictly below the target's own alpha --
// exactly why the paper lands on alpha = 0.72 for L versus 0.8 for Z^a.

#pragma once

#include <cstddef>
#include <functional>

namespace cts::fit {

/// Result of the tail fit.
struct TailFit {
  double alpha = 0.72;        ///< fitted fractal exponent of L
  double hurst = 0.86;        ///< (alpha+1)/2
  double objective = 0.0;     ///< sum of squared log residuals at optimum
};

/// Fits alpha in (alpha_lo, alpha_hi) so that the exact-LRD ACF with weight
/// `weight` best matches `target_acf` over lags [lag_lo, lag_hi] in log
/// space.  `target_acf(k)` must be positive on the window.
TailFit fit_lrd_tail(const std::function<double(std::size_t)>& target_acf,
                     double weight, std::size_t lag_lo = 100,
                     std::size_t lag_hi = 1000, double alpha_lo = 0.05,
                     double alpha_hi = 0.95);

}  // namespace cts::fit
