// Moment calibration of FBNDP parameters (Table 1, items 2 and 8).
//
// The experiments pin the frame-size marginal to N(mu, sigma^2) and the
// fractal exponent alpha; the free FBNDP knobs (R, A, and hence T_0) are
// then determined:
//
//   lambda = mu / T_s                      (mean arrival rate)
//   T_0    = T_s * (sigma^2/mu - 1)^(-1/alpha)   (from the variance formula)
//   R      = 2 lambda / M                  (ON rate; M chosen for CLT)
//   A      from the closed-form T_0 expression, exponent 1/(alpha-1) < 0.
//
// Note sigma^2/mu > 1 is required: FBNDP frame counts are over-dispersed
// Poisson mixtures, so their index of dispersion always exceeds 1.

#pragma once

#include <cstdint>

#include "cts/proc/fbndp.hpp"

namespace cts::fit {

/// Target statistics for an FBNDP component.
struct FbndpTarget {
  double mean = 250.0;      ///< mu_X, cells/frame
  double variance = 2500.0; ///< sigma_X^2
  double alpha = 0.8;       ///< fractal exponent (H = (alpha+1)/2)
  std::uint32_t M = 15;     ///< number of ON/OFF processes (CLT knob)
  double Ts = 0.04;         ///< frame duration (seconds)

  void validate() const;
};

/// Computes the full FBNDP parameter set matching `target` exactly in
/// (mean, variance, alpha).
proc::FbndpParams calibrate_fbndp(const FbndpTarget& target);

/// The fractal onset time implied by the target moments:
/// T_0 = Ts (sigma^2/mu - 1)^{-1/alpha}.
double implied_fractal_onset_time(const FbndpTarget& target);

}  // namespace cts::fit
