// Calibration of the V^v family (Table 1, item 3).
//
// V^v mixes FBNDP (weight v/(v+1)) and DAR(1) (weight 1/(v+1)).  The study
// design requires all v variants to share the SAME first-lag correlation,
// so only the long-term correlations differ.  Given the mixture first lag
// target r1*, the DAR(1) coefficient solves
//
//   a(v) = (v+1) r1* - v rX1,     rX1 = w_X (2^alpha - 1),
//
// where rX1 is the FBNDP lag-1 autocorrelation.  The reference target r1*
// is taken from the v = 1 case with a = 0.8 (the paper's anchor row).

#pragma once

namespace cts::fit {

/// FBNDP lag-1 autocorrelation for ACF weight `weight` and exponent alpha:
/// rX(1) = weight * (2^alpha - 1).
double fbndp_first_lag(double weight, double alpha);

/// DAR(1) coefficient pinning the mixture first lag to `target_r1`:
/// a = (v+1) target_r1 - v * rX1.  Throws util::InvalidArgument when the
/// result falls outside [0, 1) (infeasible pinning).
double calibrate_dar1_coefficient(double v, double fbndp_r1, double target_r1);

}  // namespace cts::fit
