// DAR(p) parameter fitting (the paper's "S" models).
//
// Given the first p target autocorrelations r(1..p) of a trace or model,
// DAR(p) can match them exactly.  Writing c_i = rho * a_i, the DAR
// recursion at lags 1..p becomes the symmetric Toeplitz system
//
//   r(k) = sum_{i=1..p} c_i r(|k - i|),   k = 1..p,
//
// solved by Levinson recursion; then rho = sum c_i and a_i = c_i / rho.
// This is the procedure of Ryu's thesis (chapter 6) the paper cites for
// constructing S from Z^a.

#pragma once

#include <cstddef>
#include <vector>

#include "cts/proc/dar.hpp"

namespace cts::fit {

/// Outcome of a DAR(p) fit.
struct DarFit {
  double rho = 0.0;               ///< repeat probability
  std::vector<double> lag_probs;  ///< a_1..a_p
  /// Max |model r(k) - target r(k)| over k = 1..p (should be ~1e-12).
  double residual = 0.0;
};

/// Fits DAR(p) to match `target_acf` = r(1..p) exactly.
///
/// Throws util::InvalidArgument when the targets are not representable by a
/// DAR(p) process (rho outside [0,1) or any a_i < 0): DAR correlations are
/// mixtures, so not every correlation vector is feasible.
DarFit fit_dar(const std::vector<double>& target_acf);

/// Convenience: fit and package as simulation-ready parameters with the
/// given Gaussian marginal.
proc::DarParams fit_dar_params(const std::vector<double>& target_acf,
                               double mean, double variance);

}  // namespace cts::fit
