// The paper's model zoo: canonical constructions of V^v, Z^a, S, and L.
//
// Central registry used by every bench and example.  All models share one
// Gaussian marginal N(500, 5000) cells/frame at 25 frames/s (T_s = 40 ms),
// per Section 5.1, so any difference in queueing behaviour is attributable
// purely to correlation structure.  Each ModelSpec bundles:
//
//   * the analytic ACF (for the CTS / B-R machinery),
//   * marginal moments,
//   * a factory for simulation-ready FrameSources.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cts/core/acf_model.hpp"
#include "cts/fit/dar_fit.hpp"
#include "cts/proc/frame_source.hpp"

namespace cts::fit {

/// Shared experimental constants of Section 5.1.
struct PaperConstants {
  double mean = 500.0;       ///< cells/frame
  double variance = 5000.0;  ///< (cells/frame)^2
  double frame_rate = 25.0;  ///< frames/sec
  double Ts = 0.04;          ///< frame duration (sec)
  double alpha_v = 0.9;      ///< FBNDP exponent of the V^v family (H=0.95)
  double alpha_z = 0.8;      ///< FBNDP exponent of the Z^a family (H=0.9)
  std::uint32_t M_mixture = 15;  ///< ON/OFF count for V^v / Z^a components
  std::uint32_t M_pure = 30;     ///< ON/OFF count for L
  double anchor_a = 0.8;     ///< DAR(1) coefficient of the v = 1 anchor row
};

/// A fully specified source model: analytics + simulation factory.
struct ModelSpec {
  std::string name;
  double mean = 0.0;
  double variance = 0.0;
  std::shared_ptr<const core::AcfModel> acf;
  std::function<std::unique_ptr<proc::FrameSource>(std::uint64_t seed)>
      make_source;
};

/// The V^v model (FBNDP_alpha=0.9 + DAR(1)), first-lag pinned to the v = 1
/// anchor.  Paper values of v: 0.67, 1, 1.5.
ModelSpec make_vv(double v, const PaperConstants& constants = {});

/// The Z^a model (FBNDP_alpha=0.8 + DAR(1) with coefficient a, v = 1).
/// Paper values of a: 0.7, 0.9, 0.975, 0.99.
ModelSpec make_za(double a, const PaperConstants& constants = {});

/// The S model: DAR(p) exactly matching the first p autocorrelations of
/// Z^a (p = 1, 2, 3 in the paper).
ModelSpec make_dar_matched_to_za(double a, std::size_t p,
                                 const PaperConstants& constants = {});

/// The L model: pure FBNDP with the common marginal and alpha fitted to the
/// ACF tail of Z^a (paper: alpha ~= 0.72, fitted over lags 100..1000
/// against the a = 0.9 variant, where the geometric term is negligible).
ModelSpec make_l(const PaperConstants& constants = {});

/// A white (i.i.d. Gaussian) reference model with the common marginal.
ModelSpec make_white(const PaperConstants& constants = {});

/// A Gaussian AR(1) reference with lag-1 correlation `phi`.
ModelSpec make_ar1(double phi, const PaperConstants& constants = {});

/// Extension: F-ARIMA(0, d, 0) with the common marginal -- the paper's
/// canonical ASYMPTOTIC LRD example (d = H - 1/2), generated exactly via
/// the generic Davies-Harte source.
ModelSpec make_farima(double d, const PaperConstants& constants = {});

/// Extension: discrete M/G/infinity (Cox) source with the common moments
/// (marginal is scaled-Poisson, not Gaussian) -- the model class behind
/// the hyperbolic-decay BOP results the paper contrasts itself with.
/// H = (3 - beta)/2.
ModelSpec make_mginf(double beta, const PaperConstants& constants = {});

/// Extension: DAR(p) matched to Z^a but carrying a NEGATIVE BINOMIAL
/// marginal with the common moments (Section 6.1's heavier-tailed case).
ModelSpec make_dar_negbinom(double a, std::size_t p,
                            const PaperConstants& constants = {});

/// Builds a zoo model from a compact id string, the wire format the
/// admission-control service accepts:
///
///   "za:0.9"       -> make_za(0.9)
///   "vv:1.5"       -> make_vv(1.5)
///   "dar:0.9:2"    -> make_dar_matched_to_za(0.9, 2)
///   "l"            -> make_l()
///   "white"        -> make_white()
///   "ar1:0.8"      -> make_ar1(0.8)
///   "farima:0.3"   -> make_farima(0.3)
///   "mginf:1.4"    -> make_mginf(1.4)
///
/// Numeric fields are parsed strictly (full-string); a malformed or
/// unknown id throws util::InvalidArgument naming the id and the reason.
ModelSpec model_from_id(const std::string& id,
                        const PaperConstants& constants = {});

/// Parameters echoing Table 1 for reporting: the derived lambda (cells/s),
/// T0 (msec), calibrated DAR coefficient, etc., for a mixture model.
struct MixtureReport {
  double v = 1.0;
  double alpha = 0.8;
  double a = 0.8;       ///< DAR(1) coefficient
  double lambda = 0.0;  ///< FBNDP mean rate, cells/sec
  double t0_msec = 0.0; ///< fractal onset time, msec
  std::uint32_t M = 15;
};

/// Reporting helpers used by the Table-1 bench.
MixtureReport report_vv(double v, const PaperConstants& constants = {});
MixtureReport report_za(double a, const PaperConstants& constants = {});
MixtureReport report_l(const PaperConstants& constants = {});

/// The fitted DAR(p) parameters matching Z^a (for the Table-1 S rows).
DarFit report_dar_fit(double a, std::size_t p,
                      const PaperConstants& constants = {});

}  // namespace cts::fit
