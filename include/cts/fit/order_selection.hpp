// Automatic DAR order selection.
//
// The paper closes with "future traffic analysis should focus more on
// finding appropriate time scale at which traffic behavior is to be
// captured, rather than on providing accurate traffic models."  This module
// operationalises that: given a target ACF and an operating point
// (bandwidth, buffer, N), it finds the smallest DAR order p whose B-R BOP
// prediction has converged -- i.e. the number of correlations actually
// worth modelling, which tracks the CTS.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "cts/core/acf_model.hpp"

namespace cts::fit {

/// Operating point for order selection.
struct OrderSelectionProblem {
  double mean = 500.0;
  double variance = 5000.0;
  double bandwidth = 538.0;        ///< c, cells/frame per source
  double buffer_per_source = 0.0;  ///< b, cells
  std::size_t n_sources = 30;
  /// Convergence criterion: |log10 BOP(p) - log10 BOP(p+1)| below this.
  double tolerance_decades = 0.1;
  std::size_t max_order = 64;

  void validate() const;
};

/// Result of an order selection.
struct OrderSelection {
  std::size_t order = 1;          ///< selected p
  double log10_bop = 0.0;         ///< prediction at that order
  double target_log10_bop = 0.0;  ///< prediction using the full target ACF
  /// log10 BOP at each tried order (index 0 <-> p = 1).
  std::vector<double> trace;
};

/// Selects the smallest DAR order whose BOP prediction is stable, fitting
/// DAR(p) to the first p lags of `target` for p = 1, 2, ....  Throws
/// util::NumericalError if no order below max_order converges (shouldn't
/// happen while the CTS is finite) and util::InvalidArgument if some
/// prefix is not DAR-representable.
OrderSelection select_dar_order(const core::AcfModel& target,
                                const OrderSelectionProblem& problem);

}  // namespace cts::fit
