# Empty dependencies file for bench_fig4_cts.
# This may be replaced when dependencies are built.
