file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cts.dir/bench_fig4_cts.cpp.o"
  "CMakeFiles/bench_fig4_cts.dir/bench_fig4_cts.cpp.o.d"
  "bench_fig4_cts"
  "bench_fig4_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
