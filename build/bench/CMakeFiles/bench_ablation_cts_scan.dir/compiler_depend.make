# Empty compiler generated dependencies file for bench_ablation_cts_scan.
# This may be replaced when dependencies are built.
