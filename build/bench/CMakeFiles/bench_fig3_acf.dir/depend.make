# Empty dependencies file for bench_fig3_acf.
# This may be replaced when dependencies are built.
