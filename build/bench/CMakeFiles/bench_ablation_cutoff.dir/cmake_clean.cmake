file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cutoff.dir/bench_ablation_cutoff.cpp.o"
  "CMakeFiles/bench_ablation_cutoff.dir/bench_ablation_cutoff.cpp.o.d"
  "bench_ablation_cutoff"
  "bench_ablation_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
