file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_acf_concept.dir/bench_fig1_acf_concept.cpp.o"
  "CMakeFiles/bench_fig1_acf_concept.dir/bench_fig1_acf_concept.cpp.o.d"
  "bench_fig1_acf_concept"
  "bench_fig1_acf_concept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_acf_concept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
