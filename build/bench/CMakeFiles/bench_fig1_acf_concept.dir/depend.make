# Empty dependencies file for bench_fig1_acf_concept.
# This may be replaced when dependencies are built.
