# Empty compiler generated dependencies file for bench_fig5_bop.
# This may be replaced when dependencies are built.
