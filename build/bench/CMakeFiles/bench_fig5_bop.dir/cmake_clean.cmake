file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bop.dir/bench_fig5_bop.cpp.o"
  "CMakeFiles/bench_fig5_bop.dir/bench_fig5_bop.cpp.o.d"
  "bench_fig5_bop"
  "bench_fig5_bop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
