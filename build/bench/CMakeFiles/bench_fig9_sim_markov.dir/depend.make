# Empty dependencies file for bench_fig9_sim_markov.
# This may be replaced when dependencies are built.
