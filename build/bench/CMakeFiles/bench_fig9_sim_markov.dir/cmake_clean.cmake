file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sim_markov.dir/bench_fig9_sim_markov.cpp.o"
  "CMakeFiles/bench_fig9_sim_markov.dir/bench_fig9_sim_markov.cpp.o.d"
  "bench_fig9_sim_markov"
  "bench_fig9_sim_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sim_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
