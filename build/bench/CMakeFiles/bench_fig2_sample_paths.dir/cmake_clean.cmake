file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sample_paths.dir/bench_fig2_sample_paths.cpp.o"
  "CMakeFiles/bench_fig2_sample_paths.dir/bench_fig2_sample_paths.cpp.o.d"
  "bench_fig2_sample_paths"
  "bench_fig2_sample_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sample_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
