# Empty compiler generated dependencies file for bench_fig8_sim_clr.
# This may be replaced when dependencies are built.
