file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sim_clr.dir/bench_fig8_sim_clr.cpp.o"
  "CMakeFiles/bench_fig8_sim_clr.dir/bench_fig8_sim_clr.cpp.o.d"
  "bench_fig8_sim_clr"
  "bench_fig8_sim_clr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sim_clr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
