# Empty compiler generated dependencies file for bench_fig6_markov_efficacy.
# This may be replaced when dependencies are built.
