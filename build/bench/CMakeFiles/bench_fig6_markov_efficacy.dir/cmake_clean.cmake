file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_markov_efficacy.dir/bench_fig6_markov_efficacy.cpp.o"
  "CMakeFiles/bench_fig6_markov_efficacy.dir/bench_fig6_markov_efficacy.cpp.o.d"
  "bench_fig6_markov_efficacy"
  "bench_fig6_markov_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_markov_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
