# Empty compiler generated dependencies file for bench_fig7_wide_range.
# This may be replaced when dependencies are built.
