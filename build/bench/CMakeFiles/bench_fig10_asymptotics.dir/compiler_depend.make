# Empty compiler generated dependencies file for bench_fig10_asymptotics.
# This may be replaced when dependencies are built.
