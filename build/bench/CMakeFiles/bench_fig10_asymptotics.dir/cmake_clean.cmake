file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_asymptotics.dir/bench_fig10_asymptotics.cpp.o"
  "CMakeFiles/bench_fig10_asymptotics.dir/bench_fig10_asymptotics.cpp.o.d"
  "bench_fig10_asymptotics"
  "bench_fig10_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
