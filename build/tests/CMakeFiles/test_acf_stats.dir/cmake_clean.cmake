file(REMOVE_RECURSE
  "CMakeFiles/test_acf_stats.dir/test_acf_stats.cpp.o"
  "CMakeFiles/test_acf_stats.dir/test_acf_stats.cpp.o.d"
  "test_acf_stats"
  "test_acf_stats.pdb"
  "test_acf_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
