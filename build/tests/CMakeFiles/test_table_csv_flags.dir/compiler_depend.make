# Empty compiler generated dependencies file for test_table_csv_flags.
# This may be replaced when dependencies are built.
