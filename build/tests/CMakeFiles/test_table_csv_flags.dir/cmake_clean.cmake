file(REMOVE_RECURSE
  "CMakeFiles/test_table_csv_flags.dir/test_table_csv_flags.cpp.o"
  "CMakeFiles/test_table_csv_flags.dir/test_table_csv_flags.cpp.o.d"
  "test_table_csv_flags"
  "test_table_csv_flags.pdb"
  "test_table_csv_flags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_csv_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
