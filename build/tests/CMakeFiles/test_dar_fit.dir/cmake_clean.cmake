file(REMOVE_RECURSE
  "CMakeFiles/test_dar_fit.dir/test_dar_fit.cpp.o"
  "CMakeFiles/test_dar_fit.dir/test_dar_fit.cpp.o.d"
  "test_dar_fit"
  "test_dar_fit.pdb"
  "test_dar_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dar_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
