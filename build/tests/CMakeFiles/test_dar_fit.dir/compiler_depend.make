# Empty compiler generated dependencies file for test_dar_fit.
# This may be replaced when dependencies are built.
