# Empty compiler generated dependencies file for test_marginal.
# This may be replaced when dependencies are built.
