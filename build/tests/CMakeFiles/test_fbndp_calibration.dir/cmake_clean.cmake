file(REMOVE_RECURSE
  "CMakeFiles/test_fbndp_calibration.dir/test_fbndp_calibration.cpp.o"
  "CMakeFiles/test_fbndp_calibration.dir/test_fbndp_calibration.cpp.o.d"
  "test_fbndp_calibration"
  "test_fbndp_calibration.pdb"
  "test_fbndp_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fbndp_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
