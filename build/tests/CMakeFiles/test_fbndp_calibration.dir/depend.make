# Empty dependencies file for test_fbndp_calibration.
# This may be replaced when dependencies are built.
