file(REMOVE_RECURSE
  "CMakeFiles/test_whittle_wavelet.dir/test_whittle_wavelet.cpp.o"
  "CMakeFiles/test_whittle_wavelet.dir/test_whittle_wavelet.cpp.o.d"
  "test_whittle_wavelet"
  "test_whittle_wavelet.pdb"
  "test_whittle_wavelet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whittle_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
