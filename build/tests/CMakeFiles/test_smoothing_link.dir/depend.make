# Empty dependencies file for test_smoothing_link.
# This may be replaced when dependencies are built.
