file(REMOVE_RECURSE
  "CMakeFiles/test_smoothing_link.dir/test_smoothing_link.cpp.o"
  "CMakeFiles/test_smoothing_link.dir/test_smoothing_link.cpp.o.d"
  "test_smoothing_link"
  "test_smoothing_link.pdb"
  "test_smoothing_link[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoothing_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
