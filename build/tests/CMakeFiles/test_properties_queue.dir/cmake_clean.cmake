file(REMOVE_RECURSE
  "CMakeFiles/test_properties_queue.dir/test_properties_queue.cpp.o"
  "CMakeFiles/test_properties_queue.dir/test_properties_queue.cpp.o.d"
  "test_properties_queue"
  "test_properties_queue.pdb"
  "test_properties_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
