# Empty compiler generated dependencies file for test_properties_queue.
# This may be replaced when dependencies are built.
