# Empty compiler generated dependencies file for test_farima_mginf.
# This may be replaced when dependencies are built.
