file(REMOVE_RECURSE
  "CMakeFiles/test_farima_mginf.dir/test_farima_mginf.cpp.o"
  "CMakeFiles/test_farima_mginf.dir/test_farima_mginf.cpp.o.d"
  "test_farima_mginf"
  "test_farima_mginf.pdb"
  "test_farima_mginf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_farima_mginf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
