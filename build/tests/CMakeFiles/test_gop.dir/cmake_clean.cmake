file(REMOVE_RECURSE
  "CMakeFiles/test_gop.dir/test_gop.cpp.o"
  "CMakeFiles/test_gop.dir/test_gop.cpp.o.d"
  "test_gop"
  "test_gop.pdb"
  "test_gop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
