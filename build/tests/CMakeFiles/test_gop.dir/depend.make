# Empty dependencies file for test_gop.
# This may be replaced when dependencies are built.
