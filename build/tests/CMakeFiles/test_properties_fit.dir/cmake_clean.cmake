file(REMOVE_RECURSE
  "CMakeFiles/test_properties_fit.dir/test_properties_fit.cpp.o"
  "CMakeFiles/test_properties_fit.dir/test_properties_fit.cpp.o.d"
  "test_properties_fit"
  "test_properties_fit.pdb"
  "test_properties_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
