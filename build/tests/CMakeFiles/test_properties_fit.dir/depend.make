# Empty dependencies file for test_properties_fit.
# This may be replaced when dependencies are built.
