file(REMOVE_RECURSE
  "CMakeFiles/test_integration_table1.dir/test_integration_table1.cpp.o"
  "CMakeFiles/test_integration_table1.dir/test_integration_table1.cpp.o.d"
  "test_integration_table1"
  "test_integration_table1.pdb"
  "test_integration_table1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
