file(REMOVE_RECURSE
  "CMakeFiles/test_gcra.dir/test_gcra.cpp.o"
  "CMakeFiles/test_gcra.dir/test_gcra.cpp.o.d"
  "test_gcra"
  "test_gcra.pdb"
  "test_gcra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
