# Empty dependencies file for test_gcra.
# This may be replaced when dependencies are built.
