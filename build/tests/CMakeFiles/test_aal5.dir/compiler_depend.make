# Empty compiler generated dependencies file for test_aal5.
# This may be replaced when dependencies are built.
