file(REMOVE_RECURSE
  "CMakeFiles/test_aal5.dir/test_aal5.cpp.o"
  "CMakeFiles/test_aal5.dir/test_aal5.cpp.o.d"
  "test_aal5"
  "test_aal5.pdb"
  "test_aal5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aal5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
