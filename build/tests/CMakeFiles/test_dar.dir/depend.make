# Empty dependencies file for test_dar.
# This may be replaced when dependencies are built.
