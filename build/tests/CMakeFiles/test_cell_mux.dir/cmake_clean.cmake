file(REMOVE_RECURSE
  "CMakeFiles/test_cell_mux.dir/test_cell_mux.cpp.o"
  "CMakeFiles/test_cell_mux.dir/test_cell_mux.cpp.o.d"
  "test_cell_mux"
  "test_cell_mux.pdb"
  "test_cell_mux[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_mux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
