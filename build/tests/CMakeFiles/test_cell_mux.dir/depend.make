# Empty dependencies file for test_cell_mux.
# This may be replaced when dependencies are built.
