# Empty dependencies file for test_order_selection.
# This may be replaced when dependencies are built.
