file(REMOVE_RECURSE
  "CMakeFiles/test_order_selection.dir/test_order_selection.cpp.o"
  "CMakeFiles/test_order_selection.dir/test_order_selection.cpp.o.d"
  "test_order_selection"
  "test_order_selection.pdb"
  "test_order_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_order_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
