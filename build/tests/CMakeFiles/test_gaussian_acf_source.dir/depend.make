# Empty dependencies file for test_gaussian_acf_source.
# This may be replaced when dependencies are built.
