file(REMOVE_RECURSE
  "CMakeFiles/test_gaussian_acf_source.dir/test_gaussian_acf_source.cpp.o"
  "CMakeFiles/test_gaussian_acf_source.dir/test_gaussian_acf_source.cpp.o.d"
  "test_gaussian_acf_source"
  "test_gaussian_acf_source.pdb"
  "test_gaussian_acf_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gaussian_acf_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
