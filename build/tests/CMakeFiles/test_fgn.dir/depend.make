# Empty dependencies file for test_fgn.
# This may be replaced when dependencies are built.
