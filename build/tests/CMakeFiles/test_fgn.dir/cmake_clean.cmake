file(REMOVE_RECURSE
  "CMakeFiles/test_fgn.dir/test_fgn.cpp.o"
  "CMakeFiles/test_fgn.dir/test_fgn.cpp.o.d"
  "test_fgn"
  "test_fgn.pdb"
  "test_fgn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fgn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
