# Empty compiler generated dependencies file for test_effective_bandwidth.
# This may be replaced when dependencies are built.
