file(REMOVE_RECURSE
  "CMakeFiles/test_effective_bandwidth.dir/test_effective_bandwidth.cpp.o"
  "CMakeFiles/test_effective_bandwidth.dir/test_effective_bandwidth.cpp.o.d"
  "test_effective_bandwidth"
  "test_effective_bandwidth.pdb"
  "test_effective_bandwidth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_effective_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
