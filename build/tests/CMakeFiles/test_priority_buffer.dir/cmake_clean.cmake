file(REMOVE_RECURSE
  "CMakeFiles/test_priority_buffer.dir/test_priority_buffer.cpp.o"
  "CMakeFiles/test_priority_buffer.dir/test_priority_buffer.cpp.o.d"
  "test_priority_buffer"
  "test_priority_buffer.pdb"
  "test_priority_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
