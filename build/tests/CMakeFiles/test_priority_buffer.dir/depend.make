# Empty dependencies file for test_priority_buffer.
# This may be replaced when dependencies are built.
