file(REMOVE_RECURSE
  "CMakeFiles/test_on_off.dir/test_on_off.cpp.o"
  "CMakeFiles/test_on_off.dir/test_on_off.cpp.o.d"
  "test_on_off"
  "test_on_off.pdb"
  "test_on_off[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_on_off.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
