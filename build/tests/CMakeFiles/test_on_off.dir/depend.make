# Empty dependencies file for test_on_off.
# This may be replaced when dependencies are built.
