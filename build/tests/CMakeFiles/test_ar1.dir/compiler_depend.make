# Empty compiler generated dependencies file for test_ar1.
# This may be replaced when dependencies are built.
