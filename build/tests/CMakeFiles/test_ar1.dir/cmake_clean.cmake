file(REMOVE_RECURSE
  "CMakeFiles/test_ar1.dir/test_ar1.cpp.o"
  "CMakeFiles/test_ar1.dir/test_ar1.cpp.o.d"
  "test_ar1"
  "test_ar1.pdb"
  "test_ar1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ar1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
