file(REMOVE_RECURSE
  "CMakeFiles/test_curves.dir/test_curves.cpp.o"
  "CMakeFiles/test_curves.dir/test_curves.cpp.o.d"
  "test_curves"
  "test_curves.pdb"
  "test_curves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
