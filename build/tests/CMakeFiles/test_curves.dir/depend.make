# Empty dependencies file for test_curves.
# This may be replaced when dependencies are built.
