file(REMOVE_RECURSE
  "CMakeFiles/test_fbndp.dir/test_fbndp.cpp.o"
  "CMakeFiles/test_fbndp.dir/test_fbndp.cpp.o.d"
  "test_fbndp"
  "test_fbndp.pdb"
  "test_fbndp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fbndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
