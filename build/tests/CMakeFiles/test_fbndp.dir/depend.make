# Empty dependencies file for test_fbndp.
# This may be replaced when dependencies are built.
