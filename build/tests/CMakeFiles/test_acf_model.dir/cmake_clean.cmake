file(REMOVE_RECURSE
  "CMakeFiles/test_acf_model.dir/test_acf_model.cpp.o"
  "CMakeFiles/test_acf_model.dir/test_acf_model.cpp.o.d"
  "test_acf_model"
  "test_acf_model.pdb"
  "test_acf_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
