# Empty dependencies file for test_atm_cell.
# This may be replaced when dependencies are built.
