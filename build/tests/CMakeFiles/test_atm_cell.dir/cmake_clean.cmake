file(REMOVE_RECURSE
  "CMakeFiles/test_atm_cell.dir/test_atm_cell.cpp.o"
  "CMakeFiles/test_atm_cell.dir/test_atm_cell.cpp.o.d"
  "test_atm_cell"
  "test_atm_cell.pdb"
  "test_atm_cell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atm_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
