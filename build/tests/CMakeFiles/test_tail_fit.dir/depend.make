# Empty dependencies file for test_tail_fit.
# This may be replaced when dependencies are built.
