file(REMOVE_RECURSE
  "CMakeFiles/test_tail_fit.dir/test_tail_fit.cpp.o"
  "CMakeFiles/test_tail_fit.dir/test_tail_fit.cpp.o.d"
  "test_tail_fit"
  "test_tail_fit.pdb"
  "test_tail_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tail_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
