# Empty compiler generated dependencies file for test_variance_growth.
# This may be replaced when dependencies are built.
