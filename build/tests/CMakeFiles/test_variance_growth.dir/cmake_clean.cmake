file(REMOVE_RECURSE
  "CMakeFiles/test_variance_growth.dir/test_variance_growth.cpp.o"
  "CMakeFiles/test_variance_growth.dir/test_variance_growth.cpp.o.d"
  "test_variance_growth"
  "test_variance_growth.pdb"
  "test_variance_growth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variance_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
