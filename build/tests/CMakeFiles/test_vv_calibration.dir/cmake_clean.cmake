file(REMOVE_RECURSE
  "CMakeFiles/test_vv_calibration.dir/test_vv_calibration.cpp.o"
  "CMakeFiles/test_vv_calibration.dir/test_vv_calibration.cpp.o.d"
  "test_vv_calibration"
  "test_vv_calibration.pdb"
  "test_vv_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vv_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
