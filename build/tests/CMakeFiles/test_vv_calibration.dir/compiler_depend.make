# Empty compiler generated dependencies file for test_vv_calibration.
# This may be replaced when dependencies are built.
