file(REMOVE_RECURSE
  "CMakeFiles/test_fluid_mux.dir/test_fluid_mux.cpp.o"
  "CMakeFiles/test_fluid_mux.dir/test_fluid_mux.cpp.o.d"
  "test_fluid_mux"
  "test_fluid_mux.pdb"
  "test_fluid_mux[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluid_mux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
