# Empty dependencies file for test_fluid_mux.
# This may be replaced when dependencies are built.
