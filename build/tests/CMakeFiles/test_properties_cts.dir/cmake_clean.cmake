file(REMOVE_RECURSE
  "CMakeFiles/test_properties_cts.dir/test_properties_cts.cpp.o"
  "CMakeFiles/test_properties_cts.dir/test_properties_cts.cpp.o.d"
  "test_properties_cts"
  "test_properties_cts.pdb"
  "test_properties_cts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
