# Empty compiler generated dependencies file for test_histogram_ks.
# This may be replaced when dependencies are built.
