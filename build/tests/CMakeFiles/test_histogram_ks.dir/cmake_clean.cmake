file(REMOVE_RECURSE
  "CMakeFiles/test_histogram_ks.dir/test_histogram_ks.cpp.o"
  "CMakeFiles/test_histogram_ks.dir/test_histogram_ks.cpp.o.d"
  "test_histogram_ks"
  "test_histogram_ks.pdb"
  "test_histogram_ks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_histogram_ks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
