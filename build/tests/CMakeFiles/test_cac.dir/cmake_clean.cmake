file(REMOVE_RECURSE
  "CMakeFiles/test_cac.dir/test_cac.cpp.o"
  "CMakeFiles/test_cac.dir/test_cac.cpp.o.d"
  "test_cac"
  "test_cac.pdb"
  "test_cac[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
