# Empty dependencies file for test_cac.
# This may be replaced when dependencies are built.
