# Empty compiler generated dependencies file for test_br_weibull.
# This may be replaced when dependencies are built.
