file(REMOVE_RECURSE
  "CMakeFiles/test_br_weibull.dir/test_br_weibull.cpp.o"
  "CMakeFiles/test_br_weibull.dir/test_br_weibull.cpp.o.d"
  "test_br_weibull"
  "test_br_weibull.pdb"
  "test_br_weibull[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_br_weibull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
