# Empty compiler generated dependencies file for cts.
# This may be replaced when dependencies are built.
