file(REMOVE_RECURSE
  "libcts.a"
)
