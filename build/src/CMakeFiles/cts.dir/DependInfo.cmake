
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/aal5.cpp" "src/CMakeFiles/cts.dir/atm/aal5.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/aal5.cpp.o.d"
  "/root/repo/src/atm/cac.cpp" "src/CMakeFiles/cts.dir/atm/cac.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/cac.cpp.o.d"
  "/root/repo/src/atm/cell.cpp" "src/CMakeFiles/cts.dir/atm/cell.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/cell.cpp.o.d"
  "/root/repo/src/atm/gcra.cpp" "src/CMakeFiles/cts.dir/atm/gcra.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/gcra.cpp.o.d"
  "/root/repo/src/atm/link.cpp" "src/CMakeFiles/cts.dir/atm/link.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/link.cpp.o.d"
  "/root/repo/src/atm/priority_buffer.cpp" "src/CMakeFiles/cts.dir/atm/priority_buffer.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/priority_buffer.cpp.o.d"
  "/root/repo/src/atm/smoothing.cpp" "src/CMakeFiles/cts.dir/atm/smoothing.cpp.o" "gcc" "src/CMakeFiles/cts.dir/atm/smoothing.cpp.o.d"
  "/root/repo/src/core/acf_model.cpp" "src/CMakeFiles/cts.dir/core/acf_model.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/acf_model.cpp.o.d"
  "/root/repo/src/core/br_asymptotic.cpp" "src/CMakeFiles/cts.dir/core/br_asymptotic.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/br_asymptotic.cpp.o.d"
  "/root/repo/src/core/effective_bandwidth.cpp" "src/CMakeFiles/cts.dir/core/effective_bandwidth.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/effective_bandwidth.cpp.o.d"
  "/root/repo/src/core/heterogeneous.cpp" "src/CMakeFiles/cts.dir/core/heterogeneous.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/heterogeneous.cpp.o.d"
  "/root/repo/src/core/large_n.cpp" "src/CMakeFiles/cts.dir/core/large_n.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/large_n.cpp.o.d"
  "/root/repo/src/core/rate_function.cpp" "src/CMakeFiles/cts.dir/core/rate_function.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/rate_function.cpp.o.d"
  "/root/repo/src/core/spectrum.cpp" "src/CMakeFiles/cts.dir/core/spectrum.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/spectrum.cpp.o.d"
  "/root/repo/src/core/variance_growth.cpp" "src/CMakeFiles/cts.dir/core/variance_growth.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/variance_growth.cpp.o.d"
  "/root/repo/src/core/weibull_lrd.cpp" "src/CMakeFiles/cts.dir/core/weibull_lrd.cpp.o" "gcc" "src/CMakeFiles/cts.dir/core/weibull_lrd.cpp.o.d"
  "/root/repo/src/fit/dar_fit.cpp" "src/CMakeFiles/cts.dir/fit/dar_fit.cpp.o" "gcc" "src/CMakeFiles/cts.dir/fit/dar_fit.cpp.o.d"
  "/root/repo/src/fit/fbndp_calibration.cpp" "src/CMakeFiles/cts.dir/fit/fbndp_calibration.cpp.o" "gcc" "src/CMakeFiles/cts.dir/fit/fbndp_calibration.cpp.o.d"
  "/root/repo/src/fit/model_zoo.cpp" "src/CMakeFiles/cts.dir/fit/model_zoo.cpp.o" "gcc" "src/CMakeFiles/cts.dir/fit/model_zoo.cpp.o.d"
  "/root/repo/src/fit/order_selection.cpp" "src/CMakeFiles/cts.dir/fit/order_selection.cpp.o" "gcc" "src/CMakeFiles/cts.dir/fit/order_selection.cpp.o.d"
  "/root/repo/src/fit/tail_fit.cpp" "src/CMakeFiles/cts.dir/fit/tail_fit.cpp.o" "gcc" "src/CMakeFiles/cts.dir/fit/tail_fit.cpp.o.d"
  "/root/repo/src/fit/vv_calibration.cpp" "src/CMakeFiles/cts.dir/fit/vv_calibration.cpp.o" "gcc" "src/CMakeFiles/cts.dir/fit/vv_calibration.cpp.o.d"
  "/root/repo/src/proc/ar1.cpp" "src/CMakeFiles/cts.dir/proc/ar1.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/ar1.cpp.o.d"
  "/root/repo/src/proc/dar.cpp" "src/CMakeFiles/cts.dir/proc/dar.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/dar.cpp.o.d"
  "/root/repo/src/proc/fbn.cpp" "src/CMakeFiles/cts.dir/proc/fbn.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/fbn.cpp.o.d"
  "/root/repo/src/proc/fbndp.cpp" "src/CMakeFiles/cts.dir/proc/fbndp.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/fbndp.cpp.o.d"
  "/root/repo/src/proc/fgn.cpp" "src/CMakeFiles/cts.dir/proc/fgn.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/fgn.cpp.o.d"
  "/root/repo/src/proc/gaussian_acf_source.cpp" "src/CMakeFiles/cts.dir/proc/gaussian_acf_source.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/gaussian_acf_source.cpp.o.d"
  "/root/repo/src/proc/gaussian_quantizer.cpp" "src/CMakeFiles/cts.dir/proc/gaussian_quantizer.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/gaussian_quantizer.cpp.o.d"
  "/root/repo/src/proc/gop.cpp" "src/CMakeFiles/cts.dir/proc/gop.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/gop.cpp.o.d"
  "/root/repo/src/proc/marginal.cpp" "src/CMakeFiles/cts.dir/proc/marginal.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/marginal.cpp.o.d"
  "/root/repo/src/proc/mginf.cpp" "src/CMakeFiles/cts.dir/proc/mginf.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/mginf.cpp.o.d"
  "/root/repo/src/proc/on_off.cpp" "src/CMakeFiles/cts.dir/proc/on_off.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/on_off.cpp.o.d"
  "/root/repo/src/proc/superposition.cpp" "src/CMakeFiles/cts.dir/proc/superposition.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/superposition.cpp.o.d"
  "/root/repo/src/proc/trace.cpp" "src/CMakeFiles/cts.dir/proc/trace.cpp.o" "gcc" "src/CMakeFiles/cts.dir/proc/trace.cpp.o.d"
  "/root/repo/src/sim/cell_mux.cpp" "src/CMakeFiles/cts.dir/sim/cell_mux.cpp.o" "gcc" "src/CMakeFiles/cts.dir/sim/cell_mux.cpp.o.d"
  "/root/repo/src/sim/curves.cpp" "src/CMakeFiles/cts.dir/sim/curves.cpp.o" "gcc" "src/CMakeFiles/cts.dir/sim/curves.cpp.o.d"
  "/root/repo/src/sim/fluid_mux.cpp" "src/CMakeFiles/cts.dir/sim/fluid_mux.cpp.o" "gcc" "src/CMakeFiles/cts.dir/sim/fluid_mux.cpp.o.d"
  "/root/repo/src/sim/replication.cpp" "src/CMakeFiles/cts.dir/sim/replication.cpp.o" "gcc" "src/CMakeFiles/cts.dir/sim/replication.cpp.o.d"
  "/root/repo/src/stats/acf.cpp" "src/CMakeFiles/cts.dir/stats/acf.cpp.o" "gcc" "src/CMakeFiles/cts.dir/stats/acf.cpp.o.d"
  "/root/repo/src/stats/batch.cpp" "src/CMakeFiles/cts.dir/stats/batch.cpp.o" "gcc" "src/CMakeFiles/cts.dir/stats/batch.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/cts.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/cts.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/hurst.cpp" "src/CMakeFiles/cts.dir/stats/hurst.cpp.o" "gcc" "src/CMakeFiles/cts.dir/stats/hurst.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/CMakeFiles/cts.dir/stats/ks.cpp.o" "gcc" "src/CMakeFiles/cts.dir/stats/ks.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/cts.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/fft.cpp" "src/CMakeFiles/cts.dir/util/fft.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/fft.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/cts.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/linalg.cpp" "src/CMakeFiles/cts.dir/util/linalg.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/linalg.cpp.o.d"
  "/root/repo/src/util/math.cpp" "src/CMakeFiles/cts.dir/util/math.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/cts.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/student_t.cpp" "src/CMakeFiles/cts.dir/util/student_t.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/student_t.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/cts.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/cts.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
