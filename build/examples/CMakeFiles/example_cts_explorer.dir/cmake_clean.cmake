file(REMOVE_RECURSE
  "CMakeFiles/example_cts_explorer.dir/cts_explorer.cpp.o"
  "CMakeFiles/example_cts_explorer.dir/cts_explorer.cpp.o.d"
  "example_cts_explorer"
  "example_cts_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cts_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
