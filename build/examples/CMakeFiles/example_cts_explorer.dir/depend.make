# Empty dependencies file for example_cts_explorer.
# This may be replaced when dependencies are built.
