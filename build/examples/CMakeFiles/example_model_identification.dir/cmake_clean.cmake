file(REMOVE_RECURSE
  "CMakeFiles/example_model_identification.dir/model_identification.cpp.o"
  "CMakeFiles/example_model_identification.dir/model_identification.cpp.o.d"
  "example_model_identification"
  "example_model_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
