# Empty dependencies file for example_model_identification.
# This may be replaced when dependencies are built.
