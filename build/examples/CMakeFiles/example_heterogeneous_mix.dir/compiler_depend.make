# Empty compiler generated dependencies file for example_heterogeneous_mix.
# This may be replaced when dependencies are built.
