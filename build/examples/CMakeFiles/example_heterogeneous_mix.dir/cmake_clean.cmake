file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_mix.dir/heterogeneous_mix.cpp.o"
  "CMakeFiles/example_heterogeneous_mix.dir/heterogeneous_mix.cpp.o.d"
  "example_heterogeneous_mix"
  "example_heterogeneous_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
