# Empty compiler generated dependencies file for example_admission_control.
# This may be replaced when dependencies are built.
