file(REMOVE_RECURSE
  "CMakeFiles/example_admission_control.dir/admission_control.cpp.o"
  "CMakeFiles/example_admission_control.dir/admission_control.cpp.o.d"
  "example_admission_control"
  "example_admission_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_admission_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
