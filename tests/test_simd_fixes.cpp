// Regression tests for the cts_simd robustness fixes.  Each test encodes
// the pre-fix failure mode and fails against the old behaviour:
//
//   * `diff` against an unreadable path exits 2 naming the path and the
//     errno text (was: silent empty read, then "json parse error");
//   * a report missing a whole metrics section is a reported difference
//     (exit 1; was: JsonValue::at threw and the comparison exited 2);
//   * `run --timeout=` kills a wedged worker and reports it, naming the
//     terminating signal for signalled workers (was: waitpid blocked
//     forever);
//   * `run --out-dir=a/b/c` creates the whole directory chain up front
//     (was: a single-level ::mkdir, and workers died writing shards).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/stat.h>
#include <sys/wait.h>

#include "cts/util/file.hpp"

namespace cu = cts::util;

namespace {

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// Runs `command` through the shell and returns the child's exit code.
int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR)

std::string simd() { return std::string(CTS_TOOLS_BIN_DIR) + "/cts_simd"; }

std::string report_with(const std::string& metrics_body) {
  return R"({"config":{"run_id":"x"},"metrics":{)" + metrics_body + "}}";
}

TEST(SimdFixes, DiffNamesUnreadablePathAndErrno) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/fix_diff_good.json";
  const std::string missing = dir + "/fix_diff_missing.json";
  write_file(good, report_with(
      R"("counters":{},"sums":{},"gauges":{},"histograms":{})"));
  const std::string err = dir + "/fix_diff_err.txt";
  EXPECT_EQ(shell("'" + simd() + "' diff '" + good + "' '" + missing +
                  "' 2> '" + err + "'"),
            2);
  const std::string text = cu::read_text_file(err);
  EXPECT_NE(text.find(missing), std::string::npos) << text;
  EXPECT_NE(text.find("No such file"), std::string::npos) << text;
}

TEST(SimdFixes, MissingMetricsSectionIsADifferenceNotAParseError) {
  const std::string dir = ::testing::TempDir();
  const std::string full = dir + "/fix_section_full.json";
  const std::string bare = dir + "/fix_section_bare.json";
  write_file(full, report_with(
      R"("counters":{"sim.replications":3},"sums":{},"gauges":{},)"
      R"("histograms":{})"));
  // No "counters" (or any other) section at all: pre-fix, at("counters")
  // threw and the comparison died with exit 2.
  write_file(bare, R"({"config":{"run_id":"x"},"metrics":{}})");
  const std::string out = dir + "/fix_section_out.txt";
  EXPECT_EQ(shell("'" + simd() + "' diff '" + full + "' '" + bare + "' > '" +
                  out + "' 2>&1"),
            1);
  const std::string text = cu::read_text_file(out);
  EXPECT_NE(text.find("sim.replications"), std::string::npos) << text;
  EXPECT_NE(text.find("only one report"), std::string::npos) << text;
}

TEST(SimdFixes, TimeoutKillsAndReportsAWedgedWorker) {
  const std::string dir = ::testing::TempDir() + "/simd_fix_timeout";
  ASSERT_EQ(shell("mkdir -p '" + dir + "'"), 0);
  // A "bench binary" that wedges: ignores its arguments and sleeps far
  // beyond the deadline.  Pre-fix, cts_simd sat in waitpid forever.
  const std::string fake = dir + "/fake_bench";
  write_file(fake, "#!/bin/sh\nsleep 600\n");
  ASSERT_EQ(shell("chmod +x '" + fake + "'"), 0);
  const std::string err = dir + "/err.txt";
  EXPECT_EQ(shell("'" + simd() + "' run '" + fake +
                  "' --shards=2 --timeout=0.5 --out-dir='" + dir +
                  "/out' --metrics='" + dir + "/m.json' --quiet 2> '" + err +
                  "'"),
            1);
  const std::string text = cu::read_text_file(err);
  EXPECT_NE(text.find("timed out"), std::string::npos) << text;
}

TEST(SimdFixes, SignalledWorkerIsReportedByName) {
  const std::string dir = ::testing::TempDir() + "/simd_fix_signal";
  ASSERT_EQ(shell("mkdir -p '" + dir + "'"), 0);
  const std::string fake = dir + "/fake_bench";
  write_file(fake, "#!/bin/sh\nkill -TERM $$\n");
  ASSERT_EQ(shell("chmod +x '" + fake + "'"), 0);
  const std::string err = dir + "/err.txt";
  EXPECT_EQ(shell("'" + simd() + "' run '" + fake +
                  "' --shards=1 --out-dir='" + dir + "/out' --metrics='" +
                  dir + "/m.json' --quiet 2> '" + err + "'"),
            1);
  const std::string text = cu::read_text_file(err);
  EXPECT_NE(text.find("signal"), std::string::npos) << text;
  EXPECT_NE(text.find("Terminated"), std::string::npos) << text;
}

TEST(SimdFixes, NestedOutDirIsCreatedLikeMkdirP) {
  const std::string dir = ::testing::TempDir() + "/simd_fix_nested";
  ASSERT_EQ(shell("mkdir -p '" + dir + "'"), 0);
  // A fake bench that honours --shard-out well enough for the merge to be
  // attempted: the run must get past out-dir creation and actually spawn
  // workers (pre-fix it failed with a bare ::mkdir and a later ENOENT).
  const std::string fake = dir + "/fake_bench";
  write_file(fake,
             "#!/bin/sh\nfor a in \"$@\"; do case $a in --shard-out=*)\n"
             "echo x > \"${a#--shard-out=}\";; esac; done\n");
  ASSERT_EQ(shell("chmod +x '" + fake + "'"), 0);
  const std::string nested = dir + "/a/b/c";
  // The run still fails overall (the fake shard file does not parse in the
  // merge), but the nested chain must exist and hold the worker output —
  // the pre-fix code never created a/b and failed before any shard
  // appeared.
  EXPECT_NE(shell("'" + simd() + "' run '" + fake +
                  "' --shards=1 --out-dir='" + nested + "' --metrics='" +
                  dir + "/m.json' --quiet > /dev/null 2>&1"),
            0);
  struct stat st{};
  ASSERT_EQ(::stat(nested.c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  EXPECT_EQ(::stat((nested + "/shard_0.json").c_str(), &st), 0);
}

TEST(SimdFixes, UnwritableOutDirFailsUpFrontNamingThePath) {
  const std::string dir = ::testing::TempDir() + "/simd_fix_unwritable";
  ASSERT_EQ(shell("mkdir -p '" + dir + "'"), 0);
  const std::string file_in_the_way = dir + "/blocked";
  write_file(file_in_the_way, "not a directory");
  const std::string err = dir + "/err.txt";
  EXPECT_EQ(shell("'" + simd() + "' run /bin/true --shards=1 --out-dir='" +
                  file_in_the_way + "/out' --metrics='" + dir +
                  "/m.json' --quiet 2> '" + err + "'"),
            2);
  EXPECT_NE(cu::read_text_file(err).find(file_in_the_way),
            std::string::npos);
}

#endif  // CTS_TOOLS_BIN_DIR

}  // namespace
