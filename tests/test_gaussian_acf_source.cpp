// Unit tests for the generic exact-Gaussian sources (arbitrary ACF).

#include "cts/proc/gaussian_acf_source.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/simd.hpp"
#include "cts/proc/fgn.hpp"
#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

TEST(GaussianAcfHosking, GeometricAcfReproduced) {
  auto acf = std::make_shared<cc::GeometricAcf>(0.8);
  cp::GaussianAcfHosking source(acf, 0.0, 1.0, 11);
  std::vector<double> trace(60000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 6);
  for (std::size_t k = 1; k <= 6; ++k) {
    EXPECT_NEAR(r[k], std::pow(0.8, static_cast<double>(k)), 0.03)
        << "lag " << k;
  }
}

TEST(GaussianAcfHosking, MatchesDedicatedFgnGenerator) {
  // With the FGN ACF this generic source IS the Hosking FGN generator;
  // statistics must agree (same algorithm, different code path).
  auto acf = std::make_shared<cc::ExactLrdAcf>(0.8, 1.0);
  cp::GaussianAcfHosking generic(acf, 0.0, 1.0, 21);
  std::vector<double> trace(8192);
  for (auto& x : trace) x = generic.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 4);
  for (std::size_t k = 1; k <= 4; ++k) {
    EXPECT_NEAR(r[k], cp::fgn_acf(k, 0.8), 0.08) << "lag " << k;
  }
}

TEST(GaussianAcfHosking, TabulatedEmpiricalAcfRoundTrip) {
  // The modelling loop of the paper: tabulate an ACF, simulate from it,
  // re-measure, and recover the table.
  const std::vector<double> table = {1.0, 0.6, 0.45, 0.3, 0.2, 0.1};
  auto acf = std::make_shared<cc::TabulatedAcf>(table);
  cp::GaussianAcfHosking source(acf, 500.0, 5000.0, 31);
  std::vector<double> trace(120000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(r[k], table[k], 0.03) << "lag " << k;
  }
}

TEST(GaussianAcfDaviesHarte, FgnBlockGeneration) {
  auto acf = std::make_shared<cc::ExactLrdAcf>(0.85, 0.9);
  cp::GaussianAcfDaviesHarte source(acf, 500.0, 5000.0, 4096, 41);
  EXPECT_EQ(source.block_length(), 4096u);
  cu::MomentAccumulator acc;
  std::vector<double> trace(32768);
  for (auto& x : trace) {
    x = source.next_frame();
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), 500.0, 15.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 700.0);
  const std::vector<double> r = cs::autocorrelation(trace, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(r[k], acf->at(k), 0.06) << "lag " << k;
  }
}

TEST(GaussianAcfDaviesHarte, RejectsNonEmbeddableAcf) {
  // An ACF that is not positive semi-definite cannot be embedded: r(1)
  // close to -1 at lag 1 but 0 elsewhere violates PSD-ness of the circulant
  // for moderate block lengths.
  auto bad = std::make_shared<cc::TabulatedAcf>(
      std::vector<double>{1.0, -0.9});
  EXPECT_THROW(cp::GaussianAcfDaviesHarte(bad, 0.0, 1.0, 64, 1),
               cu::NumericalError);
}

TEST(GaussianAcfSources, CloneDeterminism) {
  auto acf = std::make_shared<cc::GeometricAcf>(0.5);
  cp::GaussianAcfHosking hosking(acf, 0.0, 1.0, 1);
  auto a = hosking.clone(7);
  auto b = hosking.clone(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
  cp::GaussianAcfDaviesHarte dh(acf, 0.0, 1.0, 256, 1);
  auto c = dh.clone(7);
  auto d = dh.clone(7);
  for (int i = 0; i < 600; ++i) {
    EXPECT_DOUBLE_EQ(c->next_frame(), d->next_frame());
  }
}

TEST(GaussianAcfDaviesHarte, ClonePreservesEmbeddingTolerance) {
  // Regression: clone() used to rebuild the embedding with the DEFAULT
  // tolerance, so per-replication clones of a source admitted under a
  // loosened tolerance threw NumericalError.  r = {1, -0.55} has circulant
  // eigenvalue sum 1 - 2*0.55 = -0.1 < 0: embeddable only when the
  // tolerance admits -0.1.
  auto acf =
      std::make_shared<cc::TabulatedAcf>(std::vector<double>{1.0, -0.55});
  EXPECT_THROW(cp::GaussianAcfDaviesHarte(acf, 0.0, 1.0, 64, 1),
               cu::NumericalError);  // default tolerance rejects it
  cp::GaussianAcfDaviesHarte source(acf, 0.0, 1.0, 64, 1, 0.2);
  EXPECT_DOUBLE_EQ(source.tolerance(), 0.2);
  std::unique_ptr<cp::FrameSource> copy;
  ASSERT_NO_THROW(copy = source.clone(9));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(std::isfinite(copy->next_frame()));
  }
}

TEST(GaussianAcfSources, DispatchKindsProduceIdenticalStreams) {
  // The batched Davies-Harte refill and the Hosking inner products run
  // through the SIMD dispatch layer; every kind must emit the exact same
  // frame stream.
  namespace cds = cts::core::simd;
  struct Guard {
    ~Guard() { cds::clear_force(); }
  } guard;
  std::vector<cds::Kind> kinds{cds::Kind::kScalar};
  if (cds::best_supported() >= cds::Kind::kSse2)
    kinds.push_back(cds::Kind::kSse2);
  if (cds::best_supported() >= cds::Kind::kAvx2)
    kinds.push_back(cds::Kind::kAvx2);

  auto acf = std::make_shared<cc::ExactLrdAcf>(0.85, 0.9);
  std::vector<double> dh_ref, hosking_ref;
  for (const cds::Kind kind : kinds) {
    cds::force(kind);
    cp::GaussianAcfDaviesHarte dh(acf, 500.0, 5000.0, 256, 7);
    cp::GaussianAcfHosking hosking(acf, 500.0, 5000.0, 7, 128);
    std::vector<double> dh_got(1024), hosking_got(512);
    for (auto& x : dh_got) x = dh.next_frame();
    for (auto& x : hosking_got) x = hosking.next_frame();
    if (kind == cds::Kind::kScalar) {
      dh_ref = dh_got;
      hosking_ref = hosking_got;
      continue;
    }
    ASSERT_EQ(dh_got.size(), dh_ref.size());
    for (std::size_t i = 0; i < dh_got.size(); ++i) {
      ASSERT_EQ(dh_got[i], dh_ref[i])
          << "dh kind=" << cds::kind_name(kind) << " frame " << i;
    }
    for (std::size_t i = 0; i < hosking_got.size(); ++i) {
      ASSERT_EQ(hosking_got[i], hosking_ref[i])
          << "hosking kind=" << cds::kind_name(kind) << " frame " << i;
    }
  }
}

TEST(GaussianAcfSources, RejectBadConstruction) {
  auto acf = std::make_shared<cc::GeometricAcf>(0.5);
  EXPECT_THROW(cp::GaussianAcfHosking(nullptr, 0.0, 1.0, 1),
               cu::InvalidArgument);
  EXPECT_THROW(cp::GaussianAcfHosking(acf, 0.0, 0.0, 1),
               cu::InvalidArgument);
  EXPECT_THROW(cp::GaussianAcfDaviesHarte(acf, 0.0, 1.0, 1, 1),
               cu::InvalidArgument);
}
