// Unit tests for replication / batch-means confidence intervals.

#include "cts/stats/batch.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cs = cts::stats;
namespace cu = cts::util;

TEST(ReplicationInterval, MeanAndWidth) {
  const std::vector<double> estimates = {1.0, 1.2, 0.8, 1.1, 0.9};
  const cs::IntervalEstimate est = cs::replication_interval(estimates);
  EXPECT_NEAR(est.mean, 1.0, 1e-12);
  EXPECT_GT(est.half_width, 0.0);
  EXPECT_EQ(est.samples, 5u);
  EXPECT_LT(est.low(), est.mean);
  EXPECT_GT(est.high(), est.mean);
}

TEST(ReplicationInterval, SingleSampleHasZeroWidth) {
  const cs::IntervalEstimate est = cs::replication_interval({2.5});
  EXPECT_DOUBLE_EQ(est.mean, 2.5);
  EXPECT_DOUBLE_EQ(est.half_width, 0.0);
}

TEST(ReplicationInterval, RejectsEmpty) {
  EXPECT_THROW(cs::replication_interval({}), cu::InvalidArgument);
}

TEST(ReplicationInterval, CoversTrueMeanAtNominalRate) {
  // Frequentist sanity: 95% intervals built from N(0,1) replication means
  // should cover 0 about 95% of the time.
  cu::Xoshiro256pp rng(7);
  cu::NormalSampler normal;
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> reps(10);
    for (auto& r : reps) r = normal(rng);
    const cs::IntervalEstimate est = cs::replication_interval(reps, 0.95);
    if (est.low() <= 0.0 && 0.0 <= est.high()) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.02);
}

TEST(BatchMeans, SplitsAndEstimates) {
  std::vector<double> series(1000);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<double>(i % 10);  // mean 4.5
  }
  const cs::IntervalEstimate est = cs::batch_means_interval(series, 10);
  EXPECT_NEAR(est.mean, 4.5, 1e-12);
  EXPECT_EQ(est.samples, 10u);
}

TEST(BatchMeans, RejectsBadBatching) {
  EXPECT_THROW(cs::batch_means_interval({1.0, 2.0}, 1), cu::InvalidArgument);
  EXPECT_THROW(cs::batch_means_interval({1.0}, 2), cu::InvalidArgument);
}
