// Regression tests for strict --slo threshold parsing in cts_obstop: a
// malformed threshold must exit 2 with an error naming the entry and the
// offending value.  Before the fix, std::stod silently accepted trailing
// junk ("250abc" gated at 250 ms) -- a typo'd objective then passed or
// failed CI on the wrong number.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <sys/wait.h>

#include "cts/util/file.hpp"

namespace cu = cts::util;

namespace {

/// Runs `command` through the shell and returns the child's exit code.
int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR)

std::string obstop() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_obstop";
}

/// Runs cts_obstop with `args`, captures stderr, and returns the exit
/// code; the captured stderr is stored in *err.
int run_obstop(const std::string& args, std::string* err) {
  const std::string err_path = ::testing::TempDir() + "/obstop_cli_err.txt";
  const int rc = shell("'" + obstop() + "' " + args + " > /dev/null 2>'" +
                       err_path + "'");
  *err = cu::read_text_file(err_path);
  return rc;
}

TEST(ObstopCli, TrailingJunkThresholdExitsTwoNamingEntryAndValue) {
  std::string err;
  const int rc = run_obstop(
      "--workers=127.0.0.1:1 --slo=shardd.job_wall_ms:p99:250abc --check "
      "--quiet",
      &err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("shardd.job_wall_ms:p99:250abc"), std::string::npos)
      << err;
  EXPECT_NE(err.find("250abc"), std::string::npos) << err;
  EXPECT_NE(err.find("threshold"), std::string::npos) << err;
}

TEST(ObstopCli, NonNumericAndEmptyThresholdsExitTwo) {
  std::string err;
  EXPECT_EQ(run_obstop("--workers=127.0.0.1:1 "
                       "--slo=shardd.job_wall_ms:p99:abc --check --quiet",
                       &err),
            2);
  EXPECT_NE(err.find("abc"), std::string::npos) << err;

  EXPECT_EQ(run_obstop("--workers=127.0.0.1:1 "
                       "--slo=shardd.job_wall_ms:p99: --check --quiet",
                       &err),
            2);
  EXPECT_NE(err.find("threshold"), std::string::npos) << err;
}

TEST(ObstopCli, WellFormedSloPassesParsingAndFailsOnlyOnTheQuery) {
  // Nothing listens on port 1, so a valid objective gets past parsing and
  // fails with the query exit code 1 -- NOT the usage error 2.
  std::string err;
  EXPECT_EQ(run_obstop("--workers=127.0.0.1:1 "
                       "--slo=shardd.job_wall_ms:p99:250 --check --quiet",
                       &err),
            1);
}

#endif  // CTS_TOOLS_BIN_DIR

}  // namespace
