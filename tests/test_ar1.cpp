// Unit tests for the Gaussian AR(1) source.

#include "cts/proc/ar1.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

TEST(Ar1Params, Validation) {
  cp::Ar1Params p;
  p.phi = 0.9;
  EXPECT_NO_THROW(p.validate());
  p.phi = 1.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p.phi = 0.5;
  p.variance = 0.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
}

TEST(Ar1Source, StationaryMoments) {
  cp::Ar1Params p;
  p.phi = 0.8;
  p.mean = 500.0;
  p.variance = 5000.0;
  cp::Ar1Source source(p, 17);
  cu::MomentAccumulator acc;
  for (int i = 0; i < 300000; ++i) acc.add(source.next_frame());
  EXPECT_NEAR(acc.mean(), 500.0, 3.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 300.0);
}

TEST(Ar1Source, AcfIsGeometric) {
  cp::Ar1Params p;
  p.phi = 0.7;
  p.mean = 0.0;
  p.variance = 1.0;
  cp::Ar1Source source(p, 29);
  std::vector<double> trace(200000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 8);
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_NEAR(r[k], std::pow(0.7, static_cast<double>(k)), 0.02)
        << "lag " << k;
  }
}

TEST(Ar1Source, NegativePhiAlternates) {
  cp::Ar1Params p;
  p.phi = -0.6;
  p.mean = 0.0;
  p.variance = 1.0;
  cp::Ar1Source source(p, 41);
  std::vector<double> trace(100000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 2);
  EXPECT_NEAR(r[1], -0.6, 0.02);
  EXPECT_NEAR(r[2], 0.36, 0.02);
}

TEST(Ar1Source, CloneDeterminism) {
  cp::Ar1Params p;
  p.phi = 0.5;
  cp::Ar1Source source(p, 1);
  auto a = source.clone(77);
  auto b = source.clone(77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
}
