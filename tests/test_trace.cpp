// Unit tests for trace I/O and replay.

#include "cts/proc/trace.hpp"

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cu = cts::util;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

}  // namespace

TEST(TraceIo, SaveLoadRoundTrip) {
  const std::vector<double> trace = {500.0, 512.5, 488.0, 555.0};
  const std::string path = temp_path("trace_roundtrip.txt");
  ASSERT_TRUE(cp::save_trace(path, trace, "unit test"));
  const std::vector<double> loaded = cp::load_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], trace[i]);
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  const std::string path = temp_path("trace_comments.txt");
  {
    std::ofstream f(path);
    f << "# header\n\n100 200\n# mid comment\n300  # trailing comment\n";
  }
  const std::vector<double> loaded = cp::load_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0], 100.0);
  EXPECT_DOUBLE_EQ(loaded[2], 300.0);
}

TEST(TraceIo, RejectsMissingFileAndBadTokens) {
  EXPECT_THROW(cp::load_trace(temp_path("nonexistent_trace.txt")),
               cu::InvalidArgument);
  const std::string path = temp_path("trace_bad.txt");
  {
    std::ofstream f(path);
    f << "100 abc 200\n";
  }
  EXPECT_THROW(cp::load_trace(path), cu::InvalidArgument);
  const std::string empty = temp_path("trace_empty.txt");
  {
    std::ofstream f(empty);
    f << "# only comments\n";
  }
  EXPECT_THROW(cp::load_trace(empty), cu::InvalidArgument);
}

TEST(TraceSource, ReplaysCyclically) {
  cp::TraceSource source({1.0, 2.0, 3.0}, 0, /*randomize_phase=*/false);
  EXPECT_DOUBLE_EQ(source.next_frame(), 1.0);
  EXPECT_DOUBLE_EQ(source.next_frame(), 2.0);
  EXPECT_DOUBLE_EQ(source.next_frame(), 3.0);
  EXPECT_DOUBLE_EQ(source.next_frame(), 1.0);  // wraps
  EXPECT_EQ(source.length(), 3u);
}

TEST(TraceSource, ReportsEmpiricalMoments) {
  cp::TraceSource source({1.0, 2.0, 3.0, 4.0}, 0, false);
  EXPECT_DOUBLE_EQ(source.mean(), 2.5);
  EXPECT_DOUBLE_EQ(source.variance(), 1.25);  // biased 1/n
}

TEST(TraceSource, ClonesGetIndependentPhases) {
  std::vector<double> trace(1000);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i] = static_cast<double>(i);
  }
  cp::TraceSource source(std::move(trace), 1, true);
  auto a = source.clone(100);
  auto b = source.clone(200);
  // Different seeds -> almost surely different phases.
  EXPECT_NE(a->next_frame(), b->next_frame());
  // Same seed -> identical replay.
  auto c = source.clone(100);
  auto d = source.clone(100);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(c->next_frame(), d->next_frame());
  }
}

TEST(TraceSource, RejectsEmptyTrace) {
  EXPECT_THROW(cp::TraceSource({}, 0), cu::InvalidArgument);
}
