// Unit tests for the local Whittle and wavelet Hurst estimators.

#include <gtest/gtest.h>

#include "cts/proc/fgn.hpp"
#include "cts/stats/hurst.hpp"
#include "cts/util/error.hpp"
#include "cts/util/rng.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  cu::Xoshiro256pp rng(seed);
  cu::NormalSampler normal;
  std::vector<double> x(n);
  for (auto& v : x) v = normal(rng);
  return x;
}

std::vector<double> fgn_trace(double h, std::size_t n, std::uint64_t seed) {
  cp::FgnParams p;
  p.hurst = h;
  p.mean = 0.0;
  p.variance = 1.0;
  cp::FgnDaviesHarte source(p, 1 << 14, seed);
  std::vector<double> x(n);
  for (auto& v : x) v = source.next_frame();
  return x;
}

}  // namespace

TEST(LocalWhittle, WhiteNoiseGivesHalf) {
  const auto x = white_noise(1 << 14, 301);
  const cs::HurstEstimate est = cs::hurst_local_whittle(x);
  EXPECT_NEAR(est.hurst, 0.5, 0.06);
  EXPECT_GT(est.points, 100u);
}

TEST(LocalWhittle, RecoversFgnHurst) {
  for (const double h : {0.7, 0.85}) {
    const auto x = fgn_trace(h, 1 << 15,
                             static_cast<std::uint64_t>(1000 * h));
    const cs::HurstEstimate est = cs::hurst_local_whittle(x);
    EXPECT_NEAR(est.hurst, h, 0.06) << "H=" << h;
  }
}

TEST(LocalWhittle, RejectsBadArguments) {
  EXPECT_THROW(cs::hurst_local_whittle(white_noise(64, 1)),
               cu::InvalidArgument);
  EXPECT_THROW(cs::hurst_local_whittle(white_noise(1024, 1), 0.0),
               cu::InvalidArgument);
}

TEST(Wavelet, WhiteNoiseGivesHalf) {
  const auto x = white_noise(1 << 15, 303);
  const cs::HurstEstimate est = cs::hurst_wavelet(x);
  EXPECT_NEAR(est.hurst, 0.5, 0.08);
  EXPECT_GE(est.points, 3u);
}

TEST(Wavelet, RecoversFgnHurst) {
  const auto x = fgn_trace(0.8, 1 << 16, 77);
  const cs::HurstEstimate est = cs::hurst_wavelet(x);
  EXPECT_NEAR(est.hurst, 0.8, 0.08);
  EXPECT_GT(est.r_squared, 0.9);
}

TEST(Wavelet, RejectsShortSeries) {
  EXPECT_THROW(cs::hurst_wavelet(white_noise(64, 1)), cu::InvalidArgument);
  EXPECT_THROW(cs::hurst_wavelet(white_noise(1024, 1), 0),
               cu::InvalidArgument);
}

class EstimatorAgreementTest : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorAgreementTest, AllFiveEstimatorsAgreeOnFgn) {
  // The full estimator battery (the toolset of Beran et al.'s LRD analysis
  // plus the modern semiparametric ones) must agree on synthetic FGN.
  const double h = GetParam();
  const auto x = fgn_trace(h, 1 << 16, static_cast<std::uint64_t>(h * 1e4));
  EXPECT_NEAR(cs::hurst_variance_time(x).hurst, h, 0.09) << "vt";
  EXPECT_NEAR(cs::hurst_gph(x).hurst, h, 0.13) << "gph";
  EXPECT_NEAR(cs::hurst_local_whittle(x).hurst, h, 0.06) << "lw";
  EXPECT_NEAR(cs::hurst_wavelet(x).hurst, h, 0.09) << "wav";
  // R/S is biased but must point the same direction.
  const double rs = cs::hurst_rescaled_range(x).hurst;
  EXPECT_GT(rs, h - 0.15);
  EXPECT_LT(rs, h + 0.15);
}

INSTANTIATE_TEST_SUITE_P(HurstGrid, EstimatorAgreementTest,
                         ::testing::Values(0.6, 0.75, 0.9));
