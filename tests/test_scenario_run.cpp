// Scenario executor (cts/sim/scenario_run.hpp): per-hop cell
// conservation holds exactly by construction, shard layout and thread
// count never change the samples (bit-identical doubles), the serialized
// merge of partials equals the single-process document byte for byte,
// and the dormant ATM components (smoothing, GCRA, AAL5, priority
// buffer) wired into the pipeline publish their cts::obs metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cts/obs/metrics.hpp"
#include "cts/sim/scenario.hpp"
#include "cts/sim/scenario_run.hpp"

namespace sim = cts::sim;
namespace obs = cts::obs;

namespace {

// A small but full-featured scenario: a smoothed + AAL5 + policed group
// and a plain group into a priority tandem head, cross traffic into the
// FIFO tail.  Capacities are tight so losses actually occur.
const char* kSpec =
    "cts.scenario.v1\n"
    "[scenario]\n"
    "name = run_test\n"
    "frames = 400\n"
    "warmup = 50\n"
    "replications = 6\n"
    "seed = 12345\n"
    "[source video]\n"
    "kind = geometric\n"
    "mean = 200\n"
    "variance = 4000\n"
    "a = 0.8\n"
    "count = 3\n"
    "smooth = 4\n"
    "aal5 = on\n"
    "police_scr = 5200\n"
    "police_bt = 0.05\n"
    "police_pcr = 9000\n"
    "police_cdvt = 0.002\n"
    "[source bulk]\n"
    "kind = white\n"
    "mean = 200\n"
    "variance = 3000\n"
    "count = 2\n"
    "priority = low\n"
    "[source bg]\n"
    "kind = lrd\n"
    "mean = 150\n"
    "variance = 2000\n"
    "hurst = 0.85\n"
    "weight = 0.5\n"
    "[hop head]\n"
    "input = video, bulk\n"
    "capacity = 1030\n"
    "buffer = 260\n"
    "threshold = 160\n"
    "[hop tail]\n"
    "input = head, bg\n"
    "capacity = 1180\n"
    "buffer = 220\n"
    "[output]\n"
    "occupancy_buckets = 8\n"
    "hop_trace_every = 20\n";

sim::ScenarioRunResult run_slice(const sim::Scenario& sc, std::size_t index,
                                 std::size_t count, unsigned threads = 1) {
  sim::ScenarioRunOptions options;
  options.shard_index = index;
  options.shard_count = count;
  options.threads = threads;
  options.progress = false;
  return sim::run_scenario(sc, options);
}

TEST(ScenarioRun, PerHopCellConservationIsExact) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  const sim::ScenarioRunResult result = run_slice(sc, 0, 1);
  ASSERT_EQ(result.samples.size(), 6u);
  bool any_loss = false;
  for (const sim::ScenarioRepSample& sample : result.samples) {
    ASSERT_EQ(sample.hops.size(), 2u);
    for (const sim::ScenarioHopTally& hop : sample.hops) {
      const double growth = hop.final_workload - hop.initial_workload;
      const double balance = hop.departed + hop.lost() + growth;
      EXPECT_NEAR(hop.arrived(), balance,
                  1e-9 * std::max(1.0, hop.arrived()))
          << "rep " << sample.rep;
      EXPECT_GE(hop.peak_workload, hop.final_workload);
      if (hop.lost() > 0.0) any_loss = true;
      // Occupancy histogram counts every measured frame exactly once.
      std::uint64_t frames = 0;
      for (std::uint64_t c : hop.occupancy) frames += c;
      EXPECT_EQ(frames, sample.frames);
    }
  }
  EXPECT_TRUE(any_loss) << "capacities too loose: conservation untested "
                           "under loss";
}

TEST(ScenarioRun, PriorityHopSplitsClassesAndFifoFoldsThem) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  const sim::ScenarioRunResult result = run_slice(sc, 0, 1);
  for (const sim::ScenarioRepSample& sample : result.samples) {
    const sim::ScenarioHopTally& head = sample.hops[0];  // priority
    const sim::ScenarioHopTally& tail = sample.hops[1];  // FIFO
    EXPECT_GT(head.arrived_low, 0.0);   // bulk is low priority
    EXPECT_GT(head.arrived_high, 0.0);  // video is high priority
    // FIFO hops are class-blind: everything is tallied as high.
    EXPECT_EQ(tail.arrived_low, 0.0);
    EXPECT_EQ(tail.lost_low, 0.0);
  }
}

TEST(ScenarioRun, ShardLayoutsAndThreadsAreBitIdentical) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  const sim::ScenarioRunResult single = run_slice(sc, 0, 1, 2);

  for (std::size_t shards : {2u, 3u}) {
    std::vector<sim::ScenarioRepSample> stitched;
    for (std::size_t i = 0; i < shards; ++i) {
      const sim::ScenarioRunResult part =
          run_slice(sc, i, shards, i % 2 ? 2 : 1);
      stitched.insert(stitched.end(), part.samples.begin(),
                      part.samples.end());
    }
    ASSERT_EQ(stitched.size(), single.samples.size()) << shards;
    for (std::size_t r = 0; r < stitched.size(); ++r) {
      const sim::ScenarioRepSample& a = single.samples[r];
      const sim::ScenarioRepSample& b = stitched[r];
      ASSERT_EQ(a.rep, b.rep);
      ASSERT_EQ(a.hops.size(), b.hops.size());
      for (std::size_t h = 0; h < a.hops.size(); ++h) {
        // Exact equality: same seeds, same order, same arithmetic.
        EXPECT_EQ(a.hops[h].arrived_high, b.hops[h].arrived_high);
        EXPECT_EQ(a.hops[h].arrived_low, b.hops[h].arrived_low);
        EXPECT_EQ(a.hops[h].lost_high, b.hops[h].lost_high);
        EXPECT_EQ(a.hops[h].lost_low, b.hops[h].lost_low);
        EXPECT_EQ(a.hops[h].departed, b.hops[h].departed);
        EXPECT_EQ(a.hops[h].final_workload, b.hops[h].final_workload);
        EXPECT_EQ(a.hops[h].occupancy, b.hops[h].occupancy);
      }
      for (std::size_t s = 0; s < a.sources.size(); ++s) {
        EXPECT_EQ(a.sources[s].offered, b.sources[s].offered);
        EXPECT_EQ(a.sources[s].policed, b.sources[s].policed);
      }
    }
  }
}

TEST(ScenarioRun, MergedDocumentIsByteIdenticalToSingleProcess) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  const std::string single =
      sim::write_scenario_result_json(sc, run_slice(sc, 0, 1));

  std::vector<sim::ScenarioResultDoc> parts;
  for (std::size_t i = 0; i < 2; ++i) {
    sim::ScenarioRunResult part = run_slice(sc, i, 2);
    parts.push_back(sim::parse_scenario_result(
        sim::write_scenario_result_json(sc, part)));
  }
  EXPECT_EQ(sim::merge_scenario_result_json(parts), single);
}

TEST(ScenarioRun, TraceOnlyInSliceContainingReplicationZero) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  const sim::ScenarioRunResult with = run_slice(sc, 0, 2);
  const sim::ScenarioRunResult without = run_slice(sc, 1, 2);
  ASSERT_EQ(with.traces.size(), 2u);
  EXPECT_FALSE(with.traces[0].empty());
  EXPECT_TRUE(without.traces.empty());
  // Rows are sampled from measured frames of replication 0 only.
  EXPECT_EQ(with.traces[0].size(), 400u / 20u);
}

TEST(ScenarioRun, AtmComponentsPublishObsMetrics) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  (void)run_slice(sc, 0, 1);
  const obs::MetricsShard snap = obs::MetricsRegistry::global().snapshot();

  for (const char* counter :
       {"atm.smoothing.frames", "atm.gcra.cells", "atm.aal5.pdus",
        "atm.aal5.cells", "atm.priority.frames",
        "scenario.replications"}) {
    auto it = snap.counters().find(counter);
    ASSERT_NE(it, snap.counters().end()) << counter;
    EXPECT_GT(it->second, 0u) << counter;
  }
  for (const char* sum :
       {"atm.smoothing.cells_in", "atm.smoothing.cells_out",
        "atm.priority.high_arrived", "atm.priority.low_arrived",
        "scenario.arrived_cells", "scenario.lost_cells",
        "scenario.departed_cells"}) {
    auto it = snap.sums().find(sum);
    ASSERT_NE(it, snap.sums().end()) << sum;
    EXPECT_GT(it->second.value(), 0.0) << sum;
  }
  // The policer saw non-conforming cells in this tight configuration.
  auto nc = snap.counters().find("atm.gcra.nonconforming");
  ASSERT_NE(nc, snap.counters().end());
  EXPECT_GT(nc->second, 0u);
}

TEST(ScenarioRun, AnalyticsOnlyForUnshapedSourceFedFifoHops) {
  const sim::Scenario sc = sim::parse_scenario(kSpec);
  const std::vector<sim::ScenarioHopAnalytic> analytics =
      sim::scenario_analytics(sc);
  ASSERT_EQ(analytics.size(), 2u);
  EXPECT_FALSE(analytics[0].available);  // priority hop
  EXPECT_FALSE(analytics[1].available);  // fed by an upstream hop

  const sim::Scenario plain = sim::parse_scenario(
      "cts.scenario.v1\n"
      "[source a]\n"
      "kind = geometric\n"
      "mean = 500\n"
      "variance = 5000\n"
      "a = 0.8\n"
      "count = 4\n"
      "[hop m]\n"
      "input = a\n"
      "capacity = 2400\n"
      "buffer = 600\n");
  const std::vector<sim::ScenarioHopAnalytic> ok =
      sim::scenario_analytics(plain);
  ASSERT_EQ(ok.size(), 1u);
  ASSERT_TRUE(ok[0].available);
  EXPECT_LT(ok[0].log10_bop, 0.0);
  EXPECT_GE(ok[0].critical_m, 1u);
}

}  // namespace
