// Unit tests for the cts::net layer behind cts_shardd / `cts_simd run
// --workers=`: length-prefixed framing (pure byte-string decoder), the
// retry/backoff schedule, the cts.job.v1 / cts.jobresult.v1 wire schema,
// worker-list parsing, and a loopback socket round trip with deadlines.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cts/net/frame.hpp"
#include "cts/net/job.hpp"
#include "cts/net/retry.hpp"
#include "cts/net/socket.hpp"
#include "cts/util/error.hpp"

namespace net = cts::net;
namespace cu = cts::util;

namespace {

// ---------------------------------------------------------------- framing

TEST(Frame, RoundTripsThroughTheDecoder) {
  net::FrameDecoder decoder;
  decoder.feed(net::encode_frame("hello"));
  std::string payload;
  ASSERT_TRUE(decoder.next(&payload));
  EXPECT_EQ(payload, "hello");
  EXPECT_FALSE(decoder.next(&payload));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, DecodesBytewisePartialFeeds) {
  const std::string wire = net::encode_frame("ab") + net::encode_frame("");
  net::FrameDecoder decoder;
  std::vector<std::string> payloads;
  for (const char c : wire) {
    decoder.feed(&c, 1);
    std::string payload;
    while (decoder.next(&payload)) payloads.push_back(payload);
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "ab");
  EXPECT_EQ(payloads[1], "");
}

TEST(Frame, DecodesConcatenatedFramesInOrder) {
  net::FrameDecoder decoder;
  decoder.feed(net::encode_frame("one") + net::encode_frame("two"));
  std::string payload;
  ASSERT_TRUE(decoder.next(&payload));
  EXPECT_EQ(payload, "one");
  ASSERT_TRUE(decoder.next(&payload));
  EXPECT_EQ(payload, "two");
}

TEST(Frame, OversizedHeaderIsProtocolCorruptionNotAnAllocation) {
  net::FrameDecoder decoder;
  const char header[4] = {'\x7f', '\x00', '\x00', '\x00'};  // ~2 GiB
  decoder.feed(header, sizeof(header));
  std::string payload;
  EXPECT_THROW(decoder.next(&payload), cu::InvalidArgument);
}

TEST(Frame, EncodeRejectsOversizedPayloads) {
  std::string big;
  big.resize(net::kMaxFrameBytes + 1);
  EXPECT_THROW(net::encode_frame(big), cu::InvalidArgument);
}

// ------------------------------------------------------------------ retry

TEST(RetryPolicy, ExponentialScheduleWithClamp) {
  net::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_s = 0.2;
  policy.multiplier = 2.0;
  policy.max_delay_s = 0.5;
  EXPECT_DOUBLE_EQ(policy.delay_s(1), 0.0);  // first try is immediate
  EXPECT_DOUBLE_EQ(policy.delay_s(2), 0.2);
  EXPECT_DOUBLE_EQ(policy.delay_s(3), 0.4);
  EXPECT_DOUBLE_EQ(policy.delay_s(4), 0.5);  // clamped
  EXPECT_DOUBLE_EQ(policy.delay_s(5), 0.5);
}

TEST(RetryPolicy, BoundsAttempts) {
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.should_retry(0));
  EXPECT_TRUE(policy.should_retry(2));
  EXPECT_FALSE(policy.should_retry(3));
}

// -------------------------------------------------------------- job schema

TEST(JobSchema, RequestRoundTrips) {
  net::JobRequest job;
  job.bench_id = "fig9_sim_markov";
  job.shard_index = 2;
  job.shard_count = 4;
  job.env = {{"REPRO_REPS", "3"}, {"REPRO_FRAMES", "500"}};
  job.timeout_s = 120;
  const net::JobRequest parsed = net::parse_job(net::write_job_json(job));
  EXPECT_EQ(parsed.bench_id, job.bench_id);
  EXPECT_EQ(parsed.shard_index, 2u);
  EXPECT_EQ(parsed.shard_count, 4u);
  EXPECT_EQ(parsed.env, job.env);
  EXPECT_DOUBLE_EQ(parsed.timeout_s, 120);
}

TEST(JobSchema, RejectsWrongSchemaTag) {
  EXPECT_THROW(net::parse_job(R"({"schema":"cts.job.v2","bench":"x",)"
                              R"("shard":{"index":0,"count":1},"env":{},)"
                              R"("timeout_s":1})"),
               cu::InvalidArgument);
}

TEST(JobSchema, RejectsNonAllowlistedEnv) {
  net::JobRequest job;
  job.bench_id = "table1";
  job.env = {{"LD_PRELOAD", "/tmp/evil.so"}};
  EXPECT_THROW(net::parse_job(net::write_job_json(job)),
               cu::InvalidArgument);
}

TEST(JobSchema, RejectsShardIndexOutOfRange) {
  EXPECT_THROW(net::parse_job(R"({"schema":"cts.job.v1","bench":"x",)"
                              R"("shard":{"index":3,"count":2},"env":{},)"
                              R"("timeout_s":1})"),
               cu::InvalidArgument);
}

TEST(JobSchema, ResultRoundTripsShardTextVerbatim) {
  net::JobResult result;
  result.ok = true;
  // The shard payload must survive as exact bytes — quotes, newlines and
  // %.17g doubles included — because the client writes it back untouched.
  result.shard_json =
      "{\"schema\":\"cts.shard.v1\",\n \"x\":0.10000000000000001}\n";
  result.elapsed_s = 1.5;
  const net::JobResult parsed =
      net::parse_job_result(net::write_job_result_json(result));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.shard_json, result.shard_json);
  EXPECT_DOUBLE_EQ(parsed.elapsed_s, 1.5);
}

TEST(JobSchema, ResultErrorRoundTrips) {
  net::JobResult result;
  result.ok = false;
  result.error = "bench binary missing";
  const net::JobResult parsed =
      net::parse_job_result(net::write_job_result_json(result));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.error, "bench binary missing");
}

TEST(JobSchema, OkResultWithoutShardIsInvalid) {
  EXPECT_THROW(net::parse_job_result(
                   R"({"schema":"cts.jobresult.v1","ok":true,)"
                   R"("elapsed_s":0,"shard":""})"),
               cu::InvalidArgument);
}

TEST(JobSchema, AttemptRoundTripsAndDefaultsToZero) {
  net::JobRequest job;
  job.bench_id = "fig9_sim_markov";
  job.shard_count = 2;
  job.attempt = 3;
  EXPECT_EQ(net::parse_job(net::write_job_json(job)).attempt, 3);

  // A request from an older client has no attempt member at all.
  const net::JobRequest parsed = net::parse_job(
      R"({"schema":"cts.job.v1","bench":"x",)"
      R"("shard":{"index":0,"count":1},"env":{},"timeout_s":1})");
  EXPECT_EQ(parsed.attempt, 0);
  EXPECT_THROW(net::parse_job(
                   R"({"schema":"cts.job.v1","bench":"x",)"
                   R"("shard":{"index":0,"count":1},"env":{},)"
                   R"("timeout_s":1,"attempt":-1})"),
               cu::InvalidArgument);
}

TEST(JobSchema, ResultObsSectionRoundTrips) {
  net::JobResult result;
  result.ok = true;
  result.shard_json = "{\"schema\":\"cts.shard.v1\"}\n";
  result.elapsed_s = 0.8;
  result.has_obs = true;
  result.obs.recv_us = 1'000'000;
  result.obs.send_us = 1'800'000;
  result.obs.metrics.add("shardd.jobs_ok");
  result.obs.metrics.observe("shardd.job_wall_ms", 812.5);
  result.obs.spans = {{"shardd.job", 0, 1'000'100, 799'000},
                      {"shardd.exec", 0, 1'000'200, 780'000}};

  const net::JobResult parsed =
      net::parse_job_result(net::write_job_result_json(result));
  ASSERT_TRUE(parsed.has_obs);
  EXPECT_EQ(parsed.obs.recv_us, 1'000'000);
  EXPECT_EQ(parsed.obs.send_us, 1'800'000);
  EXPECT_EQ(parsed.obs.metrics.counters().at("shardd.jobs_ok"), 1u);
  EXPECT_EQ(parsed.obs.metrics.histograms()
                .at("shardd.job_wall_ms")
                .stats()
                .count(),
            1u);
  ASSERT_EQ(parsed.obs.spans.size(), 2u);
  EXPECT_EQ(parsed.obs.spans[0].name, "shardd.job");
  EXPECT_EQ(parsed.obs.spans[1].dur_us, 780'000);
}

TEST(JobSchema, ResultWithoutObsParsesAsHasObsFalse) {
  net::JobResult result;
  result.ok = false;
  result.error = "no obs here";
  const net::JobResult parsed =
      net::parse_job_result(net::write_job_result_json(result));
  EXPECT_FALSE(parsed.has_obs);

  // A reply-sent timestamp before the request-received timestamp is
  // corrupt, not merely odd.
  EXPECT_THROW(net::parse_job_result(
                   R"({"schema":"cts.jobresult.v1","ok":false,"error":"e",)"
                   R"("elapsed_s":0,"obs":{"recv_us":100,"send_us":50,)"
                   R"("metrics":{"counters":{},"sums":{},"gauges":{},)"
                   R"("histograms":{}},"spans":[]}})"),
               cu::InvalidArgument);
}

// ------------------------------------------------------------ worker list

TEST(WorkerList, ParsesHostsAndPorts) {
  const std::vector<net::Endpoint> workers =
      net::parse_worker_list("127.0.0.1:9000,node-b:1234");
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].host, "127.0.0.1");
  EXPECT_EQ(workers[0].port, 9000);
  EXPECT_EQ(workers[1].str(), "node-b:1234");
}

TEST(WorkerList, RejectsMalformedEntriesNamingThem) {
  EXPECT_THROW(net::parse_worker_list(""), cu::InvalidArgument);
  EXPECT_THROW(net::parse_worker_list("localhost"), cu::InvalidArgument);
  EXPECT_THROW(net::parse_worker_list("host:0"), cu::InvalidArgument);
  EXPECT_THROW(net::parse_worker_list("host:70000"), cu::InvalidArgument);
  EXPECT_THROW(net::parse_worker_list("host:12x"), cu::InvalidArgument);
}

// --------------------------------------------------------- loopback socket

TEST(SocketLoopback, FramedRequestReplyRoundTrip) {
  std::uint16_t port = 0;
  net::Socket listener = net::listen_on(0, &port);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(port, 0);

  std::thread server([&] {
    net::Socket conn = net::accept_connection(listener, 10.0);
    ASSERT_TRUE(conn.valid());
    const std::string request = net::recv_frame(conn, 10.0);
    net::send_frame(conn, "echo:" + request, 10.0);
  });

  net::Socket client = net::connect_to({"127.0.0.1", port}, 10.0);
  net::send_frame(client, "ping", 10.0);
  EXPECT_EQ(net::recv_frame(client, 10.0), "echo:ping");
  server.join();
}

TEST(SocketLoopback, RecvTimesOutWhenNothingArrives) {
  std::uint16_t port = 0;
  net::Socket listener = net::listen_on(0, &port);
  std::thread server([&] {
    net::Socket conn = net::accept_connection(listener, 10.0);
    // Hold the connection open without sending: the client must time out
    // rather than block forever.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  });
  net::Socket client = net::connect_to({"127.0.0.1", port}, 10.0);
  EXPECT_THROW(net::recv_frame(client, 0.1), net::NetTimeout);
  server.join();
}

TEST(SocketLoopback, PeerClosingMidFrameIsANetError) {
  std::uint16_t port = 0;
  net::Socket listener = net::listen_on(0, &port);
  std::thread server([&] {
    net::Socket conn = net::accept_connection(listener, 10.0);
    // One good frame, then a hard close — a worker dying between replies.
    net::send_frame(conn, "", 10.0);
  });
  net::Socket client = net::connect_to({"127.0.0.1", port}, 10.0);
  EXPECT_EQ(net::recv_frame(client, 10.0), "");
  // Server closed after one frame: the next recv sees EOF, not a timeout.
  EXPECT_THROW(net::recv_frame(client, 2.0), net::NetError);
  server.join();
}

TEST(SocketLoopback, ConnectToClosedPortFails) {
  std::uint16_t port = 0;
  {
    net::Socket listener = net::listen_on(0, &port);
  }  // listener closed: the port is (briefly) known-dead
  EXPECT_THROW(net::connect_to({"127.0.0.1", port}, 2.0), net::NetError);
}

}  // namespace
