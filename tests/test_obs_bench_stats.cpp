// Robust summary statistics used by cts_benchd: median, MAD and the
// t-corrected normal-approximation CI for the median.

#include <gtest/gtest.h>

#include <vector>

#include "cts/obs/bench_stats.hpp"

namespace obs = cts::obs;

namespace {

TEST(MedianOf, OddEvenEmpty) {
  EXPECT_DOUBLE_EQ(obs::median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(obs::median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(obs::median_of({7.5}), 7.5);
  EXPECT_DOUBLE_EQ(obs::median_of({}), 0.0);
}

TEST(RobustSummary, KnownValues) {
  // median 3, deviations {2,1,0,1,2} -> MAD 1.
  const obs::RobustSummary s = obs::robust_summary({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_LT(s.ci95_lo, 3.0);
  EXPECT_GT(s.ci95_hi, 3.0);
  EXPECT_DOUBLE_EQ(s.ci95_hi - s.median, s.median - s.ci95_lo);
}

TEST(RobustSummary, MedianResistsOutliers) {
  const obs::RobustSummary s =
      obs::robust_summary({1.0, 1.1, 0.9, 1.0, 100.0});
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_LE(s.mad, 0.2);
  EXPECT_GT(s.mean, 10.0);  // the mean does not
}

TEST(RobustSummary, SingleSampleHasDegenerateCi) {
  const obs::RobustSummary s = obs::robust_summary({4.2});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.median, 4.2);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_lo, 4.2);
  EXPECT_DOUBLE_EQ(s.ci95_hi, 4.2);
}

TEST(RobustSummary, ZeroSpreadHasZeroWidthCi) {
  const obs::RobustSummary s = obs::robust_summary({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_lo, 2.0);
  EXPECT_DOUBLE_EQ(s.ci95_hi, 2.0);
}

TEST(RobustSummary, CiShrinksWithMoreRepeats) {
  // Same alternating spread, more samples -> tighter interval.
  std::vector<double> few;
  std::vector<double> many;
  for (int i = 0; i < 4; ++i) few.push_back(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 64; ++i) many.push_back(i % 2 == 0 ? 1.0 : 2.0);
  const obs::RobustSummary a = obs::robust_summary(few);
  const obs::RobustSummary b = obs::robust_summary(many);
  EXPECT_LT(b.ci95_hi - b.ci95_lo, a.ci95_hi - a.ci95_lo);
}

}  // namespace
