// Unit tests for the superposition source (and eq. 5 of the paper).

#include "cts/proc/superposition.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/ar1.hpp"
#include "cts/proc/dar.hpp"
#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

namespace {

std::unique_ptr<cp::FrameSource> ar1(double phi, double mean, double variance,
                                     std::uint64_t seed) {
  cp::Ar1Params p;
  p.phi = phi;
  p.mean = mean;
  p.variance = variance;
  return std::make_unique<cp::Ar1Source>(p, seed);
}

}  // namespace

TEST(SuperposedSource, MomentsAdd) {
  std::vector<std::unique_ptr<cp::FrameSource>> parts;
  parts.push_back(ar1(0.5, 200.0, 2000.0, 1));
  parts.push_back(ar1(0.9, 300.0, 3000.0, 2));
  cp::SuperposedSource source(std::move(parts), "test");
  EXPECT_DOUBLE_EQ(source.mean(), 500.0);
  EXPECT_DOUBLE_EQ(source.variance(), 5000.0);
  EXPECT_EQ(source.component_count(), 2u);
}

TEST(SuperposedSource, EmpiricalMomentsMatch) {
  std::vector<std::unique_ptr<cp::FrameSource>> parts;
  parts.push_back(ar1(0.3, 100.0, 1000.0, 5));
  parts.push_back(ar1(0.6, 400.0, 4000.0, 6));
  cp::SuperposedSource source(std::move(parts), "test");
  cu::MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(source.next_frame());
  EXPECT_NEAR(acc.mean(), 500.0, 3.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 300.0);
}

TEST(SuperposedSource, AcfIsVarianceWeightedMixture) {
  // Eq. (5): r(k) = [v1 rX(k) + v2 rY(k)] / (v1 + v2).
  const double phi_x = 0.9;
  const double phi_y = 0.2;
  const double var_x = 3000.0;
  const double var_y = 1000.0;
  std::vector<std::unique_ptr<cp::FrameSource>> parts;
  parts.push_back(ar1(phi_x, 0.0, var_x, 11));
  parts.push_back(ar1(phi_y, 0.0, var_y, 12));
  cp::SuperposedSource source(std::move(parts), "mix");
  std::vector<double> trace(400000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 6);
  for (std::size_t k = 1; k <= 6; ++k) {
    const double expected =
        (var_x * std::pow(phi_x, static_cast<double>(k)) +
         var_y * std::pow(phi_y, static_cast<double>(k))) /
        (var_x + var_y);
    EXPECT_NEAR(r[k], expected, 0.02) << "lag " << k;
  }
}

TEST(SuperposedSource, RejectsEmptyAndNull) {
  std::vector<std::unique_ptr<cp::FrameSource>> empty;
  EXPECT_THROW(cp::SuperposedSource(std::move(empty), "x"),
               cu::InvalidArgument);
  std::vector<std::unique_ptr<cp::FrameSource>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(cp::SuperposedSource(std::move(with_null), "x"),
               cu::InvalidArgument);
}

TEST(SuperposedSource, CloneIsDeterministicAndDeep) {
  std::vector<std::unique_ptr<cp::FrameSource>> parts;
  parts.push_back(ar1(0.5, 100.0, 1000.0, 1));
  parts.push_back(ar1(0.7, 200.0, 2000.0, 2));
  cp::SuperposedSource source(std::move(parts), "orig");
  auto a = source.clone(42);
  auto b = source.clone(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
  EXPECT_EQ(a->name(), "orig");
  EXPECT_DOUBLE_EQ(a->mean(), 300.0);
}
