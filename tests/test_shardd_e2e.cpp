// End-to-end tests for the networked shard execution layer: cts_shardd
// workers on loopback driven by `cts_simd run --workers=`.
//
//   * a 2-worker loopback run must produce a merged report that passes
//     `cts_simd diff` against a single-process run of the same bench at
//     the same seed and scale (the bit-identity guarantee survives the
//     network hop);
//   * when a worker dies mid-job (--fault-exit-after), its shard must be
//     retried on the other worker and the merged report still diff clean;
//   * when every worker is down, the dispatcher falls back to local
//     fork/exec and still completes;
//   * --trace produces ONE merged Chrome trace with a named lane per
//     worker whose clock-corrected job spans nest inside the dispatcher's
//     dispatch windows, --log produces valid cts.events.v1 JSONL, and
//     cts_obstop can query a live daemon's cts.stats.v1 endpoint.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

#include "cts/obs/json.hpp"
#include "cts/util/file.hpp"

namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

/// Runs `command` through the shell and returns the child's exit code.
int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR) && defined(CTS_BENCH_BIN_DIR)

const char* kScale = "REPRO_REPS=3 REPRO_FRAMES=400 ";
const char* kBench = "fig9_sim_markov";

std::string simd() { return std::string(CTS_TOOLS_BIN_DIR) + "/cts_simd"; }
std::string shardd() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_shardd";
}
std::string obstop() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_obstop";
}

/// Starts a cts_shardd in the background and returns its bound port.
/// `extra` carries --max-jobs / --fault-exit-after.
int start_worker(const std::string& dir, const std::string& tag,
                 const std::string& extra) {
  const std::string port_file = dir + "/" + tag + ".port";
  // A port file left behind by a previous invocation would be read as the
  // new daemon's port before the daemon overwrites it — and may even point
  // at a still-running stale daemon.  Remove it so any content we poll up
  // below is from the daemon we just launched.
  shell("rm -f '" + port_file + "'");
  const std::string command = "'" + shardd() + "' --port=0 --port-file='" +
                              port_file + "' --bench-dir='" +
                              CTS_BENCH_BIN_DIR + "' --work-dir='" + dir +
                              "/" + tag + "_work' " + extra + " --quiet > '" +
                              dir + "/" + tag + ".log' 2>&1 &";
  if (shell(command) != 0) return -1;
  // The daemon writes the ephemeral port once it is listening.
  for (int i = 0; i < 100; ++i) {
    std::string text;
    if (cu::read_text_file(port_file, &text, nullptr) && !text.empty()) {
      return std::atoi(text.c_str());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

/// Wipes and recreates the test's scratch directory: state left by a
/// previous invocation (port files, shard outputs, daemon logs) must never
/// leak into this run.
int fresh_dir(const std::string& dir) {
  return shell("rm -rf '" + dir + "' && mkdir -p '" + dir + "'");
}

/// The single-process reference report for the diff, produced once.
std::string reference_metrics(const std::string& dir) {
  const std::string path = dir + "/single_metrics.json";
  const std::string bench =
      std::string(CTS_BENCH_BIN_DIR) + "/bench_" + kBench;
  EXPECT_EQ(shell(kScale + ("'" + bench + "' --quiet --metrics='" + path +
                            "' > '" + dir + "/single.log' 2>&1")),
            0);
  return path;
}

TEST(ShardDE2E, LoopbackTwoWorkerRunDiffsCleanAgainstSingleProcess) {
  const std::string dir = ::testing::TempDir() + "/shardd_loopback";
  ASSERT_EQ(fresh_dir(dir), 0);
  const std::string single = reference_metrics(dir);

  const int p1 = start_worker(dir, "w1", "--max-jobs=1");
  const int p2 = start_worker(dir, "w2", "--max-jobs=1");
  ASSERT_GT(p1, 0);
  ASSERT_GT(p2, 0);

  const std::string merged = dir + "/net_metrics.json";
  const std::string dispatch = dir + "/dispatch.json";
  ASSERT_EQ(
      shell(kScale +
            ("'" + simd() + "' run " + kBench + " --workers=127.0.0.1:" +
             std::to_string(p1) + ",127.0.0.1:" + std::to_string(p2) +
             " --shards=2 --out-dir='" + dir + "/net_out' --metrics='" +
             merged + "' --dispatch-metrics='" + dispatch +
             "' --bench-dir='" + CTS_BENCH_BIN_DIR + "' --quiet > '" + dir +
             "/net.log' 2>&1")),
      0);

  EXPECT_EQ(
      shell("'" + simd() + "' diff '" + single + "' '" + merged + "' --quiet"),
      0);

  // Both workers actually served a job, and nothing fell back to local
  // execution — this was a genuinely networked run.
  const obs::JsonValue doc =
      obs::json_parse(cu::read_text_file(dispatch));
  const obs::JsonValue& counters = doc.at("metrics").at("counters");
  EXPECT_EQ(counters.at("simd.net.jobs_ok").as_number(), 2.0);
  EXPECT_EQ(counters.at("simd.net.worker.0.ok").as_number(), 1.0);
  EXPECT_EQ(counters.at("simd.net.worker.1.ok").as_number(), 1.0);
  EXPECT_EQ(counters.find("simd.net.local_fallback_shards"), nullptr);
}

TEST(ShardDE2E, MergedTraceHasClockCorrectedWorkerLanesAndValidEventLog) {
  const std::string dir = ::testing::TempDir() + "/shardd_trace";
  ASSERT_EQ(fresh_dir(dir), 0);
  const std::string single = reference_metrics(dir);

  const int p1 = start_worker(dir, "w1", "--max-jobs=1");
  const int p2 = start_worker(dir, "w2", "--max-jobs=1");
  ASSERT_GT(p1, 0);
  ASSERT_GT(p2, 0);

  const std::string merged = dir + "/net_metrics.json";
  const std::string trace = dir + "/trace.json";
  const std::string events = dir + "/events.jsonl";
  ASSERT_EQ(
      shell(kScale +
            ("'" + simd() + "' run " + kBench + " --workers=127.0.0.1:" +
             std::to_string(p1) + ",127.0.0.1:" + std::to_string(p2) +
             " --shards=2 --out-dir='" + dir + "/net_out' --metrics='" +
             merged + "' --trace='" + trace + "' --log='" + events +
             "' --bench-dir='" + CTS_BENCH_BIN_DIR + "' --quiet > '" + dir +
             "/net.log' 2>&1")),
      0);

  // Observability must not perturb the result: the merged report is still
  // bit-identical to the single-process reference.
  EXPECT_EQ(
      shell("'" + simd() + "' diff '" + single + "' '" + merged + "' --quiet"),
      0);

  // One strict-JSON Chrome trace, one named lane per process: the
  // dispatcher (pid 1) plus each worker (pids 2 and 3).
  const std::string trace_text = cu::read_text_file(trace);
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(trace_text, &error)) << error;
  const obs::JsonValue doc = obs::json_parse(trace_text);
  const obs::JsonValue& trace_events = doc.at("traceEvents");

  std::set<double> lane_pids;
  struct Window {
    double start;
    double end;
  };
  std::vector<Window> dispatch_windows;  // dispatcher "simd.net.job" spans
  std::vector<Window> worker_spans;      // every span in a worker lane
  std::set<double> worker_span_pids;
  for (std::size_t i = 0; i < trace_events.size(); ++i) {
    const obs::JsonValue& e = trace_events.at(i);
    if (e.at("ph").as_string() == "M") {
      EXPECT_EQ(e.at("name").as_string(), "process_name");
      lane_pids.insert(e.at("pid").as_number());
      continue;
    }
    ASSERT_EQ(e.at("ph").as_string(), "X");
    const double pid = e.at("pid").as_number();
    const double ts = e.at("ts").as_number();
    const double dur = e.at("dur").as_number();
    if (pid == 1.0 && e.at("name").as_string() == "simd.net.job") {
      dispatch_windows.push_back({ts, ts + dur});
    } else if (pid >= 2.0) {
      worker_spans.push_back({ts, ts + dur});
      worker_span_pids.insert(pid);
    }
  }
  EXPECT_EQ(lane_pids, (std::set<double>{1.0, 2.0, 3.0}));
  ASSERT_EQ(dispatch_windows.size(), 2u);  // one dispatched job per shard
  // Both workers served a job, so both lanes carry spans.
  EXPECT_EQ(worker_span_pids, (std::set<double>{2.0, 3.0}));
  ASSERT_FALSE(worker_spans.empty());

  // The offset correction must map every worker span INSIDE one of the
  // dispatcher's job windows.  The estimation error is bounded by half the
  // loopback round-trip; 50 ms of slack is orders of magnitude above it.
  const double slack_us = 50'000.0;
  for (const Window& span : worker_spans) {
    bool nested = false;
    for (const Window& window : dispatch_windows) {
      nested = nested || (span.start >= window.start - slack_us &&
                          span.end <= window.end + slack_us);
    }
    EXPECT_TRUE(nested) << "worker span [" << span.start << ", " << span.end
                        << "] outside every dispatch window";
  }

  // The event log: strict cts.events.v1 JSONL covering the run lifecycle.
  std::ifstream in(events);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(obs::json_parse_check(line, &error)) << error << "\n" << line;
    const obs::JsonValue event = obs::json_parse(line);
    EXPECT_EQ(event.at("schema").as_string(), "cts.events.v1");
    seen.insert(event.at("event").as_string());
  }
  EXPECT_TRUE(seen.count("run.start"));
  EXPECT_TRUE(seen.count("job.ok"));
  EXPECT_TRUE(seen.count("run.done"));

  // The shipped validator agrees with the asserts above.
  EXPECT_EQ(shell("'" + obstop() + "' --validate '" + trace + "' '" + events +
                  "' --quiet > /dev/null 2>&1"),
            0);
}

TEST(ShardDE2E, ObstopQueriesTheLiveStatsEndpoint) {
  const std::string dir = ::testing::TempDir() + "/shardd_stats";
  ASSERT_EQ(fresh_dir(dir), 0);
  const int p1 = start_worker(dir, "w1", "--max-jobs=1");
  ASSERT_GT(p1, 0);

  // Query the live daemon BEFORE any job: stats must not consume the
  // --max-jobs budget (the job dispatched below still gets served).
  const std::string stats_path = dir + "/stats.json";
  ASSERT_EQ(shell("'" + obstop() + "' --json --workers=127.0.0.1:" +
                  std::to_string(p1) + " > '" + stats_path + "' 2>'" + dir +
                  "/obstop.log'"),
            0);
  const std::string text = cu::read_text_file(stats_path);
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(text, &error)) << error << text;
  const obs::JsonValue stats = obs::json_parse(text);
  EXPECT_EQ(stats.at("schema").as_string(), "cts.stats.v1");
  EXPECT_EQ(stats.at("worker").as_string(),
            "cts_shardd:" + std::to_string(p1));
  EXPECT_GT(stats.at("pid").as_number(), 0.0);
  EXPECT_GE(stats.at("uptime_s").as_number(), 0.0);
  const obs::JsonValue& jobs = stats.at("jobs");
  EXPECT_EQ(jobs.at("in_flight").as_number(), 0.0);
  EXPECT_EQ(jobs.at("ok").as_number(), 0.0);
  EXPECT_EQ(jobs.at("failed").as_number(), 0.0);
  EXPECT_GE(stats.at("stats_served").as_number(), 1.0);
  // The lossless metrics snapshot and the span table are present even on
  // an idle daemon (both empty, but structurally valid).
  EXPECT_NE(stats.at("metrics").find("counters"), nullptr);
  EXPECT_NE(stats.find("spans"), nullptr);

  // The stats file itself passes the shipped validator.
  EXPECT_EQ(shell("'" + obstop() + "' --validate '" + stats_path +
                  "' --quiet > /dev/null 2>&1"),
            0);

  // Drain the worker (--max-jobs=1) so the daemon exits: the stats query
  // above must not have eaten the job budget.
  const std::string merged = dir + "/net_metrics.json";
  EXPECT_EQ(shell(kScale + ("'" + simd() + "' run " + kBench +
                            " --workers=127.0.0.1:" + std::to_string(p1) +
                            " --shards=1 --out-dir='" + dir +
                            "/out' --metrics='" + merged + "' --bench-dir='" +
                            CTS_BENCH_BIN_DIR + "' --quiet > /dev/null 2>&1")),
            0);
}

TEST(ShardDE2E, WorkerKilledMidShardIsRetriedOnTheOtherWorker) {
  const std::string dir = ::testing::TempDir() + "/shardd_fault";
  ASSERT_EQ(fresh_dir(dir), 0);
  const std::string single = reference_metrics(dir);

  // Worker 1 dies abruptly on its first job (after reading the request,
  // before any reply): from the dispatcher's side, a machine lost
  // mid-shard.  Worker 2 is healthy and must absorb both shards — a
  // --max-jobs budget of exactly 2 also makes it exit when the test is
  // done instead of lingering as a stale daemon.
  const int p1 = start_worker(dir, "w1", "--fault-exit-after=0");
  const int p2 = start_worker(dir, "w2", "--max-jobs=2");
  ASSERT_GT(p1, 0);
  ASSERT_GT(p2, 0);

  const std::string merged = dir + "/net_metrics.json";
  const std::string dispatch = dir + "/dispatch.json";
  ASSERT_EQ(
      shell(kScale +
            ("'" + simd() + "' run " + kBench + " --workers=127.0.0.1:" +
             std::to_string(p1) + ",127.0.0.1:" + std::to_string(p2) +
             " --shards=2 --out-dir='" + dir + "/net_out' --metrics='" +
             merged + "' --dispatch-metrics='" + dispatch +
             "' --bench-dir='" + CTS_BENCH_BIN_DIR + "' --quiet > '" + dir +
             "/net.log' 2>&1")),
      0);

  // The run survived the killed worker and still merges bit-identically.
  EXPECT_EQ(
      shell("'" + simd() + "' diff '" + single + "' '" + merged + "' --quiet"),
      0);

  // The dispatch record shows the reassignment: failures on worker 0, all
  // successful jobs on worker 1, no local fallback.
  const obs::JsonValue doc =
      obs::json_parse(cu::read_text_file(dispatch));
  const obs::JsonValue& counters = doc.at("metrics").at("counters");
  EXPECT_GE(counters.at("simd.net.jobs_failed").as_number(), 1.0);
  EXPECT_GE(counters.at("simd.net.worker.0.fail").as_number(), 1.0);
  EXPECT_EQ(counters.at("simd.net.worker.1.ok").as_number(), 2.0);
  EXPECT_EQ(counters.find("simd.net.worker.0.ok"), nullptr);
  EXPECT_EQ(counters.find("simd.net.local_fallback_shards"), nullptr);
}

TEST(ShardDE2E, AllWorkersDownFallsBackToLocalExecution) {
  const std::string dir = ::testing::TempDir() + "/shardd_down";
  ASSERT_EQ(fresh_dir(dir), 0);
  const std::string single = reference_metrics(dir);

  // Nothing listens on these ports (1 and 2 are privileged and unbound in
  // the test environment): every connect is refused immediately.
  const std::string merged = dir + "/net_metrics.json";
  const std::string dispatch = dir + "/dispatch.json";
  ASSERT_EQ(
      shell(kScale +
            ("'" + simd() + "' run " + kBench +
             " --workers=127.0.0.1:1,127.0.0.1:2 --shards=2 --out-dir='" +
             dir + "/net_out' --metrics='" + merged +
             "' --dispatch-metrics='" + dispatch + "' --bench-dir='" +
             CTS_BENCH_BIN_DIR + "' --quiet > '" + dir + "/net.log' 2>&1")),
      0);
  EXPECT_EQ(
      shell("'" + simd() + "' diff '" + single + "' '" + merged + "' --quiet"),
      0);

  const obs::JsonValue doc =
      obs::json_parse(cu::read_text_file(dispatch));
  const obs::JsonValue& counters = doc.at("metrics").at("counters");
  EXPECT_EQ(counters.at("simd.net.local_fallback_shards").as_number(), 2.0);
  EXPECT_EQ(counters.at("simd.net.workers_down").as_number(), 2.0);
  EXPECT_EQ(counters.find("simd.net.jobs_ok"), nullptr);
}

// The always-on profiling & SLO layer end to end: a loopback run with the
// profiler armed on both sides must still merge bit-identically to a
// profiler-off single-process run, the worker must answer latency-SLO
// queries (pass AND breach) from its log-bucketed histograms, the
// OpenMetrics exposition must pass the shipped strict validator, and both
// processes must emit cts.profile.v1 documents on clean exit.
TEST(ShardDE2E, ProfiledRunWithSloGateEmitsValidArtifacts) {
  const std::string dir = ::testing::TempDir() + "/shardd_profile";
  ASSERT_EQ(fresh_dir(dir), 0);
  const std::string single = reference_metrics(dir);

  // --max-jobs=2: one profiled job now, one later to drain the daemon —
  // between them the daemon stays alive for the SLO and scrape queries.
  const std::string worker_profile = dir + "/w1_profile.json";
  const int p1 = start_worker(
      dir, "w1", "--max-jobs=2 --profile='" + worker_profile + "'");
  ASSERT_GT(p1, 0);
  const std::string worker = "127.0.0.1:" + std::to_string(p1);

  const std::string merged = dir + "/net_metrics.json";
  const std::string dispatch_profile = dir + "/dispatch_profile.json";
  const std::string dispatch_folded = dir + "/dispatch.folded";
  ASSERT_EQ(
      shell(kScale +
            ("'" + simd() + "' run " + kBench + " --workers=" + worker +
             " --shards=1 --out-dir='" + dir + "/net_out' --metrics='" +
             merged + "' --profile='" + dispatch_profile +
             "' --profile-folded='" + dispatch_folded + "' --bench-dir='" +
             CTS_BENCH_BIN_DIR + "' --quiet > '" + dir + "/net.log' 2>&1")),
      0);

  // Profiling must not perturb the physics: the merged report still diffs
  // clean against the profiler-off single-process reference.
  EXPECT_EQ(
      shell("'" + simd() + "' diff '" + single + "' '" + merged + "' --quiet"),
      0);

  // SLO gate, pass side: one job has been observed, and its p99 sits far
  // below a 600 s objective.
  EXPECT_EQ(shell("'" + obstop() + "' --workers=" + worker +
                  " --slo=shardd.job_wall_ms:p99:600000 --check --quiet "
                  "> /dev/null 2>&1"),
            0);
  // Breach side: no real job finishes in a microsecond, so --check must
  // exit 3 (distinct from query failure's 1).
  EXPECT_EQ(shell("'" + obstop() + "' --workers=" + worker +
                  " --slo=shardd.job_wall_ms:p50:0.001 --check --quiet "
                  "> /dev/null 2>&1"),
            3);

  // The OpenMetrics scrape: non-empty, mentions the job-latency summary
  // with the worker label, and passes the shipped strict validator.
  const std::string scrape = dir + "/scrape.om";
  ASSERT_EQ(shell("'" + obstop() + "' --workers=" + worker +
                  " --openmetrics > '" + scrape + "' 2>/dev/null"),
            0);
  const std::string text = cu::read_text_file(scrape);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
  EXPECT_NE(text.find("shardd_job_wall_ms"), std::string::npos);
  EXPECT_NE(text.find("quantile="), std::string::npos);
  EXPECT_NE(text.find("worker=\"cts_shardd:" + std::to_string(p1) + "\""),
            std::string::npos);
  EXPECT_EQ(shell("'" + obstop() + "' --validate '" + scrape +
                  "' --quiet > /dev/null 2>&1"),
            0);

  // Drain the worker's second job so the daemon exits and flushes its
  // profile.
  EXPECT_EQ(shell(kScale + ("'" + simd() + "' run " + kBench +
                            " --workers=" + worker + " --shards=1 --out-dir='" +
                            dir + "/out2' --metrics='" + dir +
                            "/net2_metrics.json' --bench-dir='" +
                            CTS_BENCH_BIN_DIR + "' --quiet > /dev/null 2>&1")),
            0);
  std::string profile_text;
  for (int i = 0; i < 100; ++i) {
    if (cu::read_text_file(worker_profile, &profile_text, nullptr) &&
        !profile_text.empty()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_FALSE(profile_text.empty()) << "worker never wrote its profile";

  // Both profiles are strict-JSON cts.profile.v1 documents with the
  // sampler having actually ticked.
  for (const std::string& path : {worker_profile, dispatch_profile}) {
    const std::string doc_text = cu::read_text_file(path);
    std::string error;
    ASSERT_TRUE(obs::json_parse_check(doc_text, &error)) << path << ": "
                                                         << error;
    const obs::JsonValue doc = obs::json_parse(doc_text);
    EXPECT_EQ(doc.at("schema").as_string(), "cts.profile.v1") << path;
    EXPECT_GT(doc.at("samples").as_number(), 0.0) << path;
    EXPECT_TRUE(doc.at("stacks").is_array()) << path;
    EXPECT_EQ(shell("'" + obstop() + "' --validate '" + path +
                    "' --quiet > /dev/null 2>&1"),
              0);
  }
  // The dispatcher's folded export exists alongside the JSON document.
  std::string folded_text;
  EXPECT_TRUE(cu::read_text_file(dispatch_folded, &folded_text, nullptr));
}

TEST(ShardDE2E, DaemonRejectsAnUnknownBenchId) {
  const std::string dir = ::testing::TempDir() + "/shardd_reject";
  ASSERT_EQ(fresh_dir(dir), 0);
  const int p1 = start_worker(dir, "w1", "--max-jobs=1");
  ASSERT_GT(p1, 0);
  // An id outside the registry: the daemon must refuse (never exec), and
  // the client side must fail with exit 2 before even dispatching.
  EXPECT_EQ(shell("'" + simd() +
                  "' run ../../bin/evil --workers=127.0.0.1:" +
                  std::to_string(p1) + " --shards=1 --out-dir='" + dir +
                  "/out' --quiet > /dev/null 2>&1"),
            2);
  // Drain the worker so the background daemon exits (--max-jobs=1): send
  // one well-formed run so it serves its job and terminates.
  const std::string merged = dir + "/net_metrics.json";
  EXPECT_EQ(shell(kScale + ("'" + simd() + "' run " + kBench +
                            " --workers=127.0.0.1:" + std::to_string(p1) +
                            " --shards=1 --out-dir='" + dir +
                            "/out' --metrics='" + merged +
                            "' --bench-dir='" + CTS_BENCH_BIN_DIR +
                            "' --quiet > /dev/null 2>&1")),
            0);
}

#endif  // CTS_TOOLS_BIN_DIR && CTS_BENCH_BIN_DIR

}  // namespace
