// Unit tests for the MPEG GoP modulation extension.

#include "cts/proc/gop.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/ar1.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cu = cts::util;

namespace {

std::unique_ptr<cp::FrameSource> base(std::uint64_t seed) {
  cp::Ar1Params p;
  p.phi = 0.0;
  p.mean = 500.0;
  p.variance = 5000.0;
  return std::make_unique<cp::Ar1Source>(p, seed);
}

}  // namespace

TEST(GopPattern, Ibbpbb12NormalisedToUnitMean) {
  const cp::GopPattern pattern = cp::GopPattern::ibbpbb12();
  ASSERT_EQ(pattern.scales.size(), 12u);
  double mean = 0.0;
  for (const double s : pattern.scales) mean += s;
  EXPECT_NEAR(mean / 12.0, 1.0, 1e-12);
  // I frame is the largest.
  for (std::size_t i = 1; i < 12; ++i) {
    EXPECT_GE(pattern.scales[0], pattern.scales[i]);
  }
}

TEST(GopPattern, RejectsBadScales) {
  cp::GopPattern empty;
  EXPECT_THROW(empty.validate(), cu::InvalidArgument);
  cp::GopPattern negative{{1.0, -0.5}};
  EXPECT_THROW(negative.validate(), cu::InvalidArgument);
}

TEST(GopModulatedSource, PreservesMeanRate) {
  cp::GopModulatedSource source(base(3), cp::GopPattern::ibbpbb12());
  cu::MomentAccumulator acc;
  for (int i = 0; i < 240000; ++i) acc.add(source.next_frame());
  EXPECT_NEAR(acc.mean(), 500.0, 4.0);
  EXPECT_DOUBLE_EQ(source.mean(), 500.0);
}

TEST(GopModulatedSource, VarianceMatchesPhaseAveragedFormula) {
  cp::GopModulatedSource source(base(7), cp::GopPattern::ibbpbb12());
  cu::MomentAccumulator acc;
  for (int i = 0; i < 480000; ++i) acc.add(source.next_frame());
  EXPECT_NEAR(acc.variance(), source.variance(), 0.05 * source.variance());
  // Modulation inflates variance beyond the base.
  EXPECT_GT(source.variance(), 5000.0);
}

TEST(GopModulatedSource, PeriodicityVisibleInISpikes) {
  cp::GopModulatedSource source(base(9), cp::GopPattern::ibbpbb12(), 0);
  // Frame 0, 12, 24, ... are I frames (scale ~2.7x): their average must be
  // far above the B frames'.
  double i_sum = 0.0, b_sum = 0.0;
  int i_n = 0, b_n = 0;
  for (int t = 0; t < 12000; ++t) {
    const double x = source.next_frame();
    if (t % 12 == 0) {
      i_sum += x;
      ++i_n;
    } else if (t % 12 == 1) {
      b_sum += x;
      ++b_n;
    }
  }
  EXPECT_GT(i_sum / i_n, 2.0 * (b_sum / b_n));
}

TEST(GopModulatedSource, CloneKeepsPhase) {
  cp::GopModulatedSource source(base(1), cp::GopPattern::ibbpbb12(), 5);
  auto a = source.clone(321);
  auto b = source.clone(321);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
}
