// Unit tests for the DAR(p) process.

#include "cts/proc/dar.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

namespace {

cp::DarParams dar1(double rho) {
  cp::DarParams p;
  p.rho = rho;
  p.lag_probs = {1.0};
  p.mean = 500.0;
  p.variance = 5000.0;
  return p;
}

}  // namespace

TEST(DarParams, Validation) {
  EXPECT_NO_THROW(dar1(0.8).validate());
  EXPECT_THROW(dar1(1.0).validate(), cu::InvalidArgument);
  EXPECT_THROW(dar1(-0.1).validate(), cu::InvalidArgument);
  cp::DarParams p = dar1(0.5);
  p.lag_probs = {0.5, 0.4};  // does not sum to 1
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p.lag_probs.clear();
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
}

TEST(DarParams, Dar1AcfIsGeometric) {
  const cp::DarParams p = dar1(0.8);
  const std::vector<double> r = p.acf(10);
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_NEAR(r[k], std::pow(0.8, static_cast<double>(k)), 1e-12);
  }
}

TEST(DarParams, DarPAcfSatisfiesRecursionBeyondP) {
  cp::DarParams p;
  p.rho = 0.87;
  p.lag_probs = {0.7, 0.3};
  p.mean = 0.0;
  p.variance = 1.0;
  const std::vector<double> r = p.acf(50);
  for (std::size_t k = 3; k <= 50; ++k) {
    EXPECT_NEAR(r[k], p.rho * (0.7 * r[k - 1] + 0.3 * r[k - 2]), 1e-12);
  }
  // And the implicit first lags satisfy it too (with symmetric extension).
  EXPECT_NEAR(r[1], p.rho * (0.7 * r[0] + 0.3 * r[1]), 1e-10);
  EXPECT_NEAR(r[2], p.rho * (0.7 * r[1] + 0.3 * r[0]), 1e-10);
}

TEST(DarSource, MarginalMatchesInnovations) {
  const cp::DarParams p = dar1(0.9);
  cp::DarSource source(p, 11);
  cu::MomentAccumulator acc;
  for (int i = 0; i < 300000; ++i) acc.add(source.next_frame());
  // DAR marginal equals the innovation marginal; strong correlation slows
  // convergence, hence the loose-ish tolerances.
  EXPECT_NEAR(acc.mean(), 500.0, 5.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 500.0);
}

TEST(DarSource, EmpiricalAcfMatchesAnalytic) {
  const cp::DarParams p = dar1(0.7);
  cp::DarSource source(p, 23);
  std::vector<double> trace(200000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 10);
  const std::vector<double> expected = p.acf(10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(r[k], expected[k], 0.02) << "lag " << k;
  }
}

TEST(DarSource, Dar2EmpiricalAcfMatchesAnalytic) {
  cp::DarParams p;
  p.rho = 0.87;
  p.lag_probs = {0.7, 0.3};
  p.mean = 500.0;
  p.variance = 5000.0;
  cp::DarSource source(p, 37);
  std::vector<double> trace(300000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 6);
  const std::vector<double> expected = p.acf(6);
  for (std::size_t k = 1; k <= 6; ++k) {
    EXPECT_NEAR(r[k], expected[k], 0.03) << "lag " << k;
  }
}

TEST(DarSource, RepeatsComeFromHistory) {
  // With rho = 1 - epsilon the process should hold values for long runs.
  const cp::DarParams p = dar1(0.99);
  cp::DarSource source(p, 3);
  int repeats = 0;
  double prev = source.next_frame();
  for (int i = 0; i < 10000; ++i) {
    const double x = source.next_frame();
    if (x == prev) ++repeats;
    prev = x;
  }
  EXPECT_GT(repeats, 9500);
}

TEST(DarSource, CloneDeterminism) {
  const cp::DarParams p = dar1(0.8);
  cp::DarSource source(p, 1);
  auto a = source.clone(1234);
  auto b = source.clone(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
}

TEST(DarSource, NameReportsOrder) {
  cp::DarParams p;
  p.rho = 0.5;
  p.lag_probs = {0.5, 0.3, 0.2};
  cp::DarSource source(p, 1);
  EXPECT_EQ(source.name(), "DAR(3)");
}
