// Unit tests for the dense/Toeplitz linear solvers.

#include "cts/util/linalg.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cu = cts::util;

TEST(Matrix, MultiplyBasics) {
  cu::Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> v = {1.0, 1.0, 1.0};
  const std::vector<double> out = a.multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Matrix, MultiplyRejectsShapeMismatch) {
  cu::Matrix a(2, 3);
  EXPECT_THROW(a.multiply({1.0, 2.0}), cu::InvalidArgument);
}

TEST(SolveDense, KnownSystem) {
  cu::Matrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = -1;
  a(1, 0) = -3; a(1, 1) = -1; a(1, 2) = 2;
  a(2, 0) = -2; a(2, 1) = 1; a(2, 2) = 2;
  const std::vector<double> b = {8, -11, -3};
  const std::vector<double> x = cu::solve_dense(a, b);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(SolveDense, RequiresPivoting) {
  // Zero on the diagonal: solvable only with row exchange.
  cu::Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const std::vector<double> x = cu::solve_dense(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(SolveDense, DetectsSingularity) {
  cu::Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(cu::solve_dense(a, {1.0, 2.0}), cu::NumericalError);
}

TEST(SolveDense, RejectsShapeMismatch) {
  cu::Matrix a(2, 3);
  EXPECT_THROW(cu::solve_dense(a, {1.0, 2.0}), cu::InvalidArgument);
}

TEST(SolveToeplitz, MatchesDenseSolveOnRandomSpdSystems) {
  // Symmetric Toeplitz with decaying off-diagonals (diagonally dominant,
  // hence well-conditioned), vs. the dense solver.
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::vector<double> t(n, 0.0);
    t[0] = 1.0;
    for (std::size_t i = 1; i < n; ++i) {
      t[i] = 0.5 / static_cast<double>(i + 1);
    }
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = std::sin(static_cast<double>(i) + 1.0);
    }
    cu::Matrix full(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        full(r, c) = t[r > c ? r - c : c - r];
      }
    }
    const std::vector<double> dense = cu::solve_dense(full, b);
    const std::vector<double> toeplitz = cu::solve_toeplitz(t, b);
    ASSERT_EQ(toeplitz.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(toeplitz[i], dense[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SolveToeplitz, ResidualIsSmall) {
  const std::vector<double> t = {1.0, 0.8, 0.64, 0.512};
  const std::vector<double> b = {0.8, 0.64, 0.512, 0.4096};
  const std::vector<double> x = cu::solve_toeplitz(t, b);
  cu::Matrix full(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      full(r, c) = t[r > c ? r - c : c - r];
    }
  }
  const std::vector<double> residual = full.multiply(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(residual[i], b[i], 1e-10);
  }
}

TEST(SolveToeplitz, GeometricAcfHasLagOneSolution) {
  // For r(k) = a^k the Yule-Walker solution is AR(1): c = (a, 0, 0).
  const double a = 0.8;
  const std::vector<double> t = {1.0, a, a * a};
  const std::vector<double> b = {a, a * a, a * a * a};
  const std::vector<double> x = cu::solve_toeplitz(t, b);
  EXPECT_NEAR(x[0], a, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
  EXPECT_NEAR(x[2], 0.0, 1e-12);
}

TEST(SolveToeplitz, RejectsBadInput) {
  EXPECT_THROW(cu::solve_toeplitz({}, {}), cu::InvalidArgument);
  EXPECT_THROW(cu::solve_toeplitz({0.0}, {1.0}), cu::NumericalError);
  EXPECT_THROW(cu::solve_toeplitz({1.0}, {1.0, 2.0}), cu::InvalidArgument);
}
