// Loopback end-to-end tests for the cts_cacd admission-control daemon:
//
//   * a served batch's answers must be bit-identical to direct
//     admissible_connections_br/_eb library calls (the %.17g JSON
//     round-trip preserves equality on the wire), and must match the
//     `cts_cacd eval` golden document field for field;
//   * malformed requests get structured {"ok":false} replies with named
//     errors -- the daemon keeps serving, it never crashes;
//   * the cts.statsreq.v1 endpoint exposes the cacd.query_wall_ms
//     histogram and the admission-cache hit/miss counters, queryable by
//     the shipped cts_obstop;
//   * an exhausted request deadline answers per-query with a named error.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <thread>

#include <sys/wait.h>

#include "cts/atm/cac.hpp"
#include "cts/atm/cac_cache.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/net/cac.hpp"
#include "cts/obs/json.hpp"
#include "cts/util/file.hpp"

namespace ca = cts::atm;
namespace cf = cts::fit;
namespace cn = cts::net;
namespace obs = cts::obs;
namespace cu = cts::util;

namespace {

/// Runs `command` through the shell and returns the child's exit code.
int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

#if defined(CTS_TOOLS_BIN_DIR)

std::string cacd() { return std::string(CTS_TOOLS_BIN_DIR) + "/cts_cacd"; }
std::string obstop() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_obstop";
}

/// Wipes and recreates the test's scratch directory.
int fresh_dir(const std::string& dir) {
  return shell("rm -rf '" + dir + "' && mkdir -p '" + dir + "'");
}

/// Starts a cts_cacd daemon in the background and returns its bound port.
/// `extra` carries --max-requests / --log.
int start_daemon(const std::string& dir, const std::string& extra) {
  const std::string port_file = dir + "/cacd.port";
  shell("rm -f '" + port_file + "'");
  const std::string command = "'" + cacd() + "' --port=0 --port-file='" +
                              port_file + "' " + extra + " --quiet > '" + dir +
                              "/cacd.log' 2>&1 &";
  if (shell(command) != 0) return -1;
  for (int i = 0; i < 100; ++i) {
    std::string text;
    if (cu::read_text_file(port_file, &text, nullptr) && !text.empty()) {
      return std::atoi(text.c_str());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

/// Runs the one-shot client, captures its stdout reply, and returns the
/// parsed response.  `expected_exit` asserts the client's exit code.
cn::CacResponse query_daemon(const std::string& dir, int port,
                             const std::string& flags, int expected_exit) {
  const std::string reply_path = dir + "/reply.json";
  const int rc =
      shell("'" + cacd() + "' query --port=" + std::to_string(port) + " " +
            flags + " > '" + reply_path + "' 2>'" + dir + "/query.log'");
  EXPECT_EQ(rc, expected_exit);
  return cn::parse_cac_response(cu::read_text_file(reply_path));
}

TEST(CacdE2E, BatchAnswersAreBitIdenticalToDirectLibraryCalls) {
  const std::string dir = ::testing::TempDir() + "/cacd_identity";
  ASSERT_EQ(fresh_dir(dir), 0);
  const std::string events = dir + "/events.jsonl";
  const int port = start_daemon(dir, "--max-requests=2 --log='" + events + "'");
  ASSERT_GT(port, 0);

  ca::CacProblem problem;  // the client's defaults: the paper's link
  problem.capacity_cells_per_frame = 16140.0;
  problem.buffer_cells = 4035.0;
  problem.log10_target_clr = -6.0;

  // Batch 1: an LRD zoo model.  admit_br and the explicit-N probe answer;
  // admit_eb must fail per-query (no finite variance rate), not kill the
  // batch.
  {
    const cn::CacResponse reply = query_daemon(
        dir, port, "--model=za:0.9 --kind=admit_br,admit_eb,bop --n=25", 0);
    const cf::ModelSpec model = cf::make_za(0.9);
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.model_name, model.name);
    ASSERT_EQ(reply.answers.size(), 3u);

    const ca::CacResult br = ca::admissible_connections_br(model, problem);
    ASSERT_TRUE(reply.answers[0].ok) << reply.answers[0].error;
    EXPECT_EQ(reply.answers[0].admissible, br.admissible);
    EXPECT_EQ(reply.answers[0].log10_bop, br.log10_bop_at_max);

    EXPECT_FALSE(reply.answers[1].ok);
    EXPECT_FALSE(reply.answers[1].error.empty());

    ca::CacCache local;
    ASSERT_TRUE(reply.answers[2].ok) << reply.answers[2].error;
    EXPECT_EQ(reply.answers[2].log10_bop,
              local.log10_bop(model, problem, 25));
  }

  // Batch 2: the matched Markov model, where both admission rules exist.
  {
    const cn::CacResponse reply =
        query_daemon(dir, port, "--model=dar:0.9:1 --kind=admit_br,admit_eb",
                     0);
    const cf::ModelSpec model = cf::make_dar_matched_to_za(0.9, 1);
    ASSERT_TRUE(reply.ok) << reply.error;
    ASSERT_EQ(reply.answers.size(), 2u);
    const ca::CacResult br = ca::admissible_connections_br(model, problem);
    const ca::CacResult eb = ca::admissible_connections_eb(model, problem);
    ASSERT_TRUE(reply.answers[0].ok);
    EXPECT_EQ(reply.answers[0].admissible, br.admissible);
    EXPECT_EQ(reply.answers[0].log10_bop, br.log10_bop_at_max);
    ASSERT_TRUE(reply.answers[1].ok);
    EXPECT_EQ(reply.answers[1].admissible, eb.admissible);
    EXPECT_EQ(reply.answers[1].log10_bop, eb.log10_bop_at_max);
  }

  // --max-requests=2 is spent: the daemon exits and flushes its event log,
  // strict cts.events.v1 JSONL covering the request lifecycle.
  std::string log_text;
  for (int i = 0; i < 100; ++i) {
    if (cu::read_text_file(events, &log_text, nullptr) &&
        log_text.find("daemon.exit") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::ifstream in(events);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::string error;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ASSERT_TRUE(obs::json_parse_check(line, &error)) << error << "\n" << line;
    const obs::JsonValue event = obs::json_parse(line);
    EXPECT_EQ(event.at("schema").as_string(), "cts.events.v1");
    seen.insert(event.at("event").as_string());
  }
  EXPECT_TRUE(seen.count("daemon.start"));
  EXPECT_TRUE(seen.count("request.done"));
  EXPECT_TRUE(seen.count("daemon.exit"));
}

TEST(CacdE2E, MalformedRequestsGetStructuredErrorsNotACrash) {
  const std::string dir = ::testing::TempDir() + "/cacd_malformed";
  ASSERT_EQ(fresh_dir(dir), 0);
  const int port = start_daemon(dir, "--max-requests=3");
  ASSERT_GT(port, 0);

  // Not JSON at all.
  const std::string garbage = dir + "/garbage.txt";
  ASSERT_TRUE(write_file(garbage, "this is not json\n"));
  const cn::CacResponse r1 =
      query_daemon(dir, port, "--request-file='" + garbage + "'", 1);
  EXPECT_FALSE(r1.ok);
  EXPECT_FALSE(r1.error.empty());

  // Valid JSON, wrong schema: the error names the expected tag.
  const std::string wrong = dir + "/wrong_schema.json";
  ASSERT_TRUE(write_file(
      wrong, R"({"schema":"cts.job.v1","bench":"bench_table1"})"));
  const cn::CacResponse r2 =
      query_daemon(dir, port, "--request-file='" + wrong + "'", 1);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("cts.cac.v1"), std::string::npos);

  // The daemon survived both and still answers a well-formed batch.
  const cn::CacResponse r3 =
      query_daemon(dir, port, "--model=ar1:0.8 --kind=admit_br", 0);
  ASSERT_TRUE(r3.ok) << r3.error;
  ASSERT_EQ(r3.answers.size(), 1u);
  EXPECT_TRUE(r3.answers[0].ok);
  EXPECT_GT(r3.answers[0].admissible, 0u);
}

TEST(CacdE2E, StatsEndpointExposesLatencyHistogramAndCacheCounters) {
  const std::string dir = ::testing::TempDir() + "/cacd_stats";
  ASSERT_EQ(fresh_dir(dir), 0);
  const int port = start_daemon(dir, "--max-requests=2");
  ASSERT_GT(port, 0);

  const cn::CacResponse warmup =
      query_daemon(dir, port, "--model=za:0.9 --kind=admit_br", 0);
  ASSERT_TRUE(warmup.ok) << warmup.error;

  // Stats queries ride the same port but do not consume the request
  // budget.
  const std::string stats_path = dir + "/stats.json";
  ASSERT_EQ(shell("'" + obstop() + "' --json --workers=127.0.0.1:" +
                  std::to_string(port) + " > '" + stats_path + "' 2>'" + dir +
                  "/obstop.log'"),
            0);
  const std::string text = cu::read_text_file(stats_path);
  std::string error;
  ASSERT_TRUE(obs::json_parse_check(text, &error)) << error << text;
  const obs::JsonValue stats = obs::json_parse(text);
  EXPECT_EQ(stats.at("schema").as_string(), "cts.stats.v1");
  EXPECT_EQ(stats.at("worker").as_string(),
            "cts_cacd:" + std::to_string(port));
  EXPECT_EQ(stats.at("jobs").at("ok").as_number(), 1.0);
  EXPECT_EQ(stats.at("jobs").at("failed").as_number(), 0.0);

  const obs::JsonValue& metrics = stats.at("metrics");
  EXPECT_EQ(metrics.at("counters").at("cacd.queries_ok").as_number(), 1.0);
  // Both the linear and the log-bucketed latency histograms are live; the
  // log twin is what cts_obstop percentiles and SLO-gates.
  EXPECT_NE(metrics.at("histograms").find("cacd.query_wall_ms"), nullptr);
  EXPECT_NE(metrics.at("log_histograms").find("cacd.query_wall_ms"), nullptr);
  // Admission-cache effectiveness rides along as gauges.  The binary
  // search's final BOP report is the guaranteed reuse: at least one hit
  // even on a cold daemon.
  const obs::JsonValue& gauges = metrics.at("gauges");
  EXPECT_GE(gauges.at("cacd.cache_rate_hits").at("value").as_number(), 1.0);
  EXPECT_GE(gauges.at("cacd.cache_rate_misses").at("value").as_number(), 1.0);
  EXPECT_GE(gauges.at("cacd.cache_entries").at("value").as_number(), 1.0);

  // The snapshot passes the shipped validator.
  EXPECT_EQ(shell("'" + obstop() + "' --validate '" + stats_path +
                  "' --quiet > /dev/null 2>&1"),
            0);

  // Drain the second request so the daemon exits.
  (void)query_daemon(dir, port, "--model=za:0.9 --kind=admit_br", 0);
}

TEST(CacdE2E, ServedAnswersMatchTheEvalGolden) {
  const std::string dir = ::testing::TempDir() + "/cacd_golden";
  ASSERT_EQ(fresh_dir(dir), 0);
  const int port = start_daemon(dir, "--max-requests=1");
  ASSERT_GT(port, 0);

  const std::string flags =
      "--model=dar:0.9:1 --kind=admit_br,admit_eb,bop --n=10 "
      "--capacity=16140 --buffer=4035 --clr=-6";
  const cn::CacResponse served = query_daemon(dir, port, flags, 0);

  // The golden: the same flags answered locally by direct library calls.
  const std::string golden_path = dir + "/golden.json";
  ASSERT_EQ(shell("'" + cacd() + "' eval " + flags + " > '" + golden_path +
                  "' 2>/dev/null"),
            0);
  const cn::CacResponse golden =
      cn::parse_cac_response(cu::read_text_file(golden_path));

  ASSERT_TRUE(served.ok) << served.error;
  ASSERT_TRUE(golden.ok) << golden.error;
  EXPECT_EQ(served.model_name, golden.model_name);
  ASSERT_EQ(served.answers.size(), golden.answers.size());
  for (std::size_t i = 0; i < served.answers.size(); ++i) {
    EXPECT_EQ(served.answers[i].ok, golden.answers[i].ok) << "answer " << i;
    EXPECT_EQ(served.answers[i].admissible, golden.answers[i].admissible)
        << "answer " << i;
    // Bit-identical through the daemon, its cache, and the JSON hop.
    EXPECT_EQ(served.answers[i].log10_bop, golden.answers[i].log10_bop)
        << "answer " << i;
  }
}

TEST(CacdE2E, ExhaustedDeadlineAnswersPerQueryWithANamedError) {
  const std::string dir = ::testing::TempDir() + "/cacd_deadline";
  ASSERT_EQ(fresh_dir(dir), 0);
  const int port = start_daemon(dir, "--max-requests=1");
  ASSERT_GT(port, 0);

  // A deadline no batch can meet: parsing alone takes longer than a
  // nanosecond, so every query must answer with the deadline error rather
  // than stall or drop the connection.
  const std::string request = dir + "/request.json";
  ASSERT_TRUE(write_file(
      request,
      R"({"schema":"cts.cac.v1","model":{"id":"za:0.9"},"deadline_s":1e-9,)"
      R"("queries":[)"
      R"({"kind":"admit_br","capacity":16140,"buffer":4035,"log10_clr":-6},)"
      R"({"kind":"admit_br","capacity":16140,"buffer":8070,"log10_clr":-6}]})"));
  const cn::CacResponse reply =
      query_daemon(dir, port, "--request-file='" + request + "'", 0);
  ASSERT_TRUE(reply.ok) << reply.error;  // the batch itself was accepted
  ASSERT_EQ(reply.answers.size(), 2u);
  for (const cn::CacAnswer& answer : reply.answers) {
    EXPECT_FALSE(answer.ok);
    EXPECT_NE(answer.error.find("deadline"), std::string::npos);
    EXPECT_NE(answer.error.find("exceeded"), std::string::npos);
  }
}

#endif  // CTS_TOOLS_BIN_DIR

}  // namespace
