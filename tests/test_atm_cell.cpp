// Unit tests for ATM cell framing and HEC protection.

#include "cts/atm/cell.hpp"

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace ca = cts::atm;
namespace cu = cts::util;

TEST(CellHeader, ValidationBounds) {
  ca::CellHeader h;
  h.gfc = 0x0F;
  h.pt = 0x07;
  EXPECT_NO_THROW(h.validate());
  h.gfc = 0x10;
  EXPECT_THROW(h.validate(), cu::InvalidArgument);
  h.gfc = 0;
  h.pt = 0x08;
  EXPECT_THROW(h.validate(), cu::InvalidArgument);
}

TEST(HecCrc8, ZeroInputGivesCoset) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(ca::hec_crc8(zeros, 4), 0x55);
}

TEST(HeaderCodec, RoundTripsAllFields) {
  ca::CellHeader h;
  h.gfc = 0x5;
  h.vpi = 0xAB;
  h.vci = 0x1234;
  h.pt = 0x3;
  h.clp = true;
  const auto bytes = ca::encode_header(h);
  const auto decoded = ca::decode_header(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->gfc, h.gfc);
  EXPECT_EQ(decoded->vpi, h.vpi);
  EXPECT_EQ(decoded->vci, h.vci);
  EXPECT_EQ(decoded->pt, h.pt);
  EXPECT_EQ(decoded->clp, h.clp);
}

TEST(HeaderCodec, DetectsAnySingleBitCorruption) {
  ca::CellHeader h;
  h.vpi = 0x42;
  h.vci = 0x0F0F;
  auto bytes = ca::encode_header(h);
  for (std::size_t byte = 0; byte < 4; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = bytes;
      corrupted[byte] = static_cast<std::uint8_t>(corrupted[byte] ^
                                                  (1u << bit));
      EXPECT_FALSE(ca::decode_header(corrupted).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

class HeaderSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HeaderSweepTest, RoundTripAcrossFieldGrid) {
  const auto [vpi, vci, pt] = GetParam();
  ca::CellHeader h;
  h.vpi = static_cast<std::uint8_t>(vpi);
  h.vci = static_cast<std::uint16_t>(vci);
  h.pt = static_cast<std::uint8_t>(pt);
  h.clp = (vci % 2) == 0;
  const auto decoded = ca::decode_header(ca::encode_header(h));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->vpi, h.vpi);
  EXPECT_EQ(decoded->vci, h.vci);
  EXPECT_EQ(decoded->pt, h.pt);
  EXPECT_EQ(decoded->clp, h.clp);
}

INSTANTIATE_TEST_SUITE_P(
    FieldGrid, HeaderSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 127, 255),
                       ::testing::Values(0, 32, 4095, 65535),
                       ::testing::Values(0, 3, 7)));

TEST(CellCodec, FullCellRoundTrip) {
  ca::Cell cell;
  cell.header.vpi = 7;
  cell.header.vci = 77;
  for (std::size_t i = 0; i < ca::kPayloadBytes; ++i) {
    cell.payload[i] = static_cast<std::uint8_t>(i * 3);
  }
  const auto bytes = ca::encode_cell(cell);
  ASSERT_EQ(bytes.size(), ca::kCellBytes);
  const auto decoded = ca::decode_cell(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.vci, 77);
  EXPECT_EQ(decoded->payload, cell.payload);
}

TEST(CellCodec, CorruptHeaderRejectsWholeCell) {
  ca::Cell cell;
  auto bytes = ca::encode_cell(cell);
  bytes[2] ^= 0x01;
  EXPECT_FALSE(ca::decode_cell(bytes).has_value());
}
