// Unit tests for the classical effective-bandwidth module.

#include "cts/core/effective_bandwidth.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

TEST(AsymptoticVarianceRate, WhiteNoiseIsMarginalVariance) {
  const cc::WhiteAcf acf;
  EXPECT_NEAR(cc::asymptotic_variance_rate(acf, 5000.0), 5000.0, 1e-6);
}

TEST(AsymptoticVarianceRate, GeometricClosedForm) {
  // v_inf = sigma^2 (1 + 2 a/(1-a)) = sigma^2 (1+a)/(1-a).
  for (const double a : {0.3, 0.8, 0.975}) {
    const cc::GeometricAcf acf(a);
    const double expected = 5000.0 * (1.0 + a) / (1.0 - a);
    EXPECT_NEAR(cc::asymptotic_variance_rate(acf, 5000.0), expected,
                1e-6 * expected)
        << "a=" << a;
  }
}

TEST(AsymptoticVarianceRate, DivergesForLrd) {
  const cc::ExactLrdAcf acf(0.9, 0.9);
  EXPECT_THROW(cc::asymptotic_variance_rate(acf, 5000.0),
               cu::NumericalError);
}

TEST(EffectiveBandwidth, LinearInDelta) {
  EXPECT_DOUBLE_EQ(cc::effective_bandwidth(500.0, 45000.0, 0.0), 500.0);
  EXPECT_DOUBLE_EQ(cc::effective_bandwidth(500.0, 45000.0, 0.002),
                   500.0 + 0.002 * 45000.0 / 2.0);
}

TEST(EffectiveBandwidth, RejectsNegativeInputs) {
  EXPECT_THROW(cc::effective_bandwidth(500.0, -1.0, 0.1),
               cu::InvalidArgument);
  EXPECT_THROW(cc::effective_bandwidth(500.0, 1.0, -0.1),
               cu::InvalidArgument);
}

TEST(DecayRateForTarget, ClosedForm) {
  // delta = -ln(eps)/B with eps = 10^{-6}, B = 4035 cells.
  EXPECT_NEAR(cc::decay_rate_for_target(-6.0, 4035.0),
              6.0 * std::log(10.0) / 4035.0, 1e-12);
  EXPECT_THROW(cc::decay_rate_for_target(0.0, 100.0), cu::InvalidArgument);
  EXPECT_THROW(cc::decay_rate_for_target(-6.0, 0.0), cu::InvalidArgument);
}

namespace {

/// Alternating +/-0.4 up to lag 64, then a slowly-decaying LRD tail.  The
/// partial sum is EXACTLY zero at the k = 64 checkpoint: an unseeded
/// convergence probe (prev_tail_probe starting at 0.0) sees |sum - 0| = 0
/// and wrongly declares convergence at the very first checkpoint, even
/// though the tail sum diverges.
class OscillatingThenLrdAcf final : public cc::AcfModel {
 public:
  double at(std::size_t k) const override {
    if (k == 0) return 1.0;
    if (k <= 64) return (k % 2 == 1) ? 0.4 : -0.4;
    return 0.5 * std::pow(static_cast<double>(k) / 65.0, -0.3);
  }
  std::string name() const override { return "oscillating-then-lrd"; }
};

/// r(k) = (-0.9)^k: a legitimately convergent oscillating ACF with the
/// closed-form sum -0.9/1.9.
class AlternatingGeometricAcf final : public cc::AcfModel {
 public:
  double at(std::size_t k) const override {
    return std::pow(-0.9, static_cast<double>(k));
  }
  std::string name() const override { return "alternating-geometric"; }
};

}  // namespace

TEST(AsymptoticVarianceRate, ProbeMustBeSeededBeforeConvergenceIsDeclared) {
  // Regression: the first power-of-two checkpoint must SEED the tail
  // probe, not compare against the 0.0 initializer.  This ACF's partial
  // sum is exactly zero at k = 64, so the unseeded compare declared
  // convergence and returned the bare marginal variance for a divergent
  // (LRD-tailed) sum.
  const OscillatingThenLrdAcf acf;
  EXPECT_THROW(cc::asymptotic_variance_rate(acf, 5000.0, 1e-12, 1u << 16),
               cu::NumericalError);
}

TEST(AsymptoticVarianceRate, ConvergentOscillatingAcfStillConverges) {
  // The seeding fix must not break genuinely convergent oscillating sums:
  // sum_{k>=1} (-0.9)^k = -0.9/1.9.
  const AlternatingGeometricAcf acf;
  const double expected = 5000.0 * (1.0 + 2.0 * (-0.9 / 1.9));
  EXPECT_NEAR(cc::asymptotic_variance_rate(acf, 5000.0), expected,
              1e-6 * std::abs(expected));
}

TEST(EffectiveBandwidth, TighterQosNeedsMoreBandwidth) {
  const cc::GeometricAcf acf(0.9);
  const double v_rate = cc::asymptotic_variance_rate(acf, 5000.0);
  const double eb_loose = cc::effective_bandwidth(
      500.0, v_rate, cc::decay_rate_for_target(-4.0, 4035.0));
  const double eb_tight = cc::effective_bandwidth(
      500.0, v_rate, cc::decay_rate_for_target(-8.0, 4035.0));
  EXPECT_GT(eb_tight, eb_loose);
  EXPECT_GT(eb_loose, 500.0);
}
