// Property tests on the queueing recursion: conservation and monotonicity
// across the model zoo under randomised workloads.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/fit/model_zoo.hpp"
#include "cts/sim/fluid_mux.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cp = cts::proc;

namespace {

/// Wraps a FrameSource to record the total cells emitted.
class MeteredSource final : public cp::FrameSource {
 public:
  MeteredSource(std::unique_ptr<cp::FrameSource> inner, double* total)
      : inner_(std::move(inner)), total_(total) {}
  double next_frame() override {
    const double x = inner_->next_frame();
    *total_ += x;
    return x;
  }
  double mean() const override { return inner_->mean(); }
  double variance() const override { return inner_->variance(); }
  std::unique_ptr<cp::FrameSource> clone(std::uint64_t seed) const override {
    return inner_->clone(seed);
  }
  std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<cp::FrameSource> inner_;
  double* total_;
};

}  // namespace

class QueuePropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  cf::ModelSpec model() const {
    const std::string name = std::get<0>(GetParam());
    if (name == "Z^0.9") return cf::make_za(0.9);
    if (name == "V^1") return cf::make_vv(1.0);
    if (name == "L") return cf::make_l();
    return cf::make_dar_matched_to_za(0.975, 2);
  }
  std::uint64_t seed() const {
    return 1000 + static_cast<std::uint64_t>(std::get<1>(GetParam()));
  }
};

TEST_P(QueuePropertyTest, ArrivalsAreConservedAcrossBufferSizes) {
  // arrivals = lost + served + final queue for every tracked buffer, where
  // served is implied; we verify the invariant lost <= arrivals and that
  // losses decrease monotonically with buffer on the SAME sample path.
  const cf::ModelSpec spec = model();
  double emitted = 0.0;
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(std::make_unique<MeteredSource>(
        spec.make_source(seed() + static_cast<std::uint64_t>(i)), &emitted));
  }
  cm::FluidRunConfig config;
  config.frames = 12000;
  config.warmup_frames = 0;
  config.capacity_cells = 10 * 515.0;
  config.buffer_sizes_cells = {0.0, 100.0, 500.0, 2000.0, 8000.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);

  EXPECT_NEAR(result.arrived_cells, emitted, 1e-6 * emitted);
  for (std::size_t i = 0; i < result.clr.size(); ++i) {
    EXPECT_GE(result.clr[i].lost_cells, 0.0);
    EXPECT_LE(result.clr[i].lost_cells, result.arrived_cells);
    if (i > 0) {
      EXPECT_LE(result.clr[i].lost_cells, result.clr[i - 1].lost_cells)
          << spec.name << " buffer index " << i;
    }
  }
}

TEST_P(QueuePropertyTest, MoreCapacityNeverIncreasesLoss) {
  const cf::ModelSpec spec = model();
  double prev_loss = -1.0;
  for (const double c_per_source : {530.0, 520.0, 510.0}) {
    std::vector<std::unique_ptr<cp::FrameSource>> sources;
    for (int i = 0; i < 10; ++i) {
      sources.push_back(
          spec.make_source(seed() + static_cast<std::uint64_t>(i)));
    }
    cm::FluidRunConfig config;
    config.frames = 12000;
    config.warmup_frames = 0;
    config.capacity_cells = 10 * c_per_source;
    config.buffer_sizes_cells = {500.0};
    const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
    // Iterating capacity downward: loss must not decrease (same seeds =>
    // identical sample paths).
    EXPECT_GE(result.clr[0].lost_cells, prev_loss) << spec.name;
    prev_loss = result.clr[0].lost_cells;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, QueuePropertyTest,
    ::testing::Combine(::testing::Values("Z^0.9", "V^1", "L", "DAR2"),
                       ::testing::Values(0, 1)));

TEST(QueueScaling, MoreSourcesSmoothTraffic) {
  // Statistical multiplexing: at equal per-source bandwidth and buffer,
  // doubling N reduces the CLR (the large-deviations rate is ~N I).
  const cf::ModelSpec spec = cf::make_za(0.9);
  auto run_for = [&](int n) {
    std::vector<std::unique_ptr<cp::FrameSource>> sources;
    for (int i = 0; i < n; ++i) {
      sources.push_back(spec.make_source(77 + static_cast<std::uint64_t>(i)));
    }
    cm::FluidRunConfig config;
    config.frames = 25000;
    config.warmup_frames = 500;
    config.capacity_cells = n * 525.0;
    config.buffer_sizes_cells = {n * 50.0};
    const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
    return result.clr[0].clr(result.arrived_cells);
  };
  const double clr_small = run_for(5);
  const double clr_large = run_for(30);
  EXPECT_GT(clr_small, clr_large);
}
