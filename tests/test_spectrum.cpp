// Unit tests for the spectral density module (Section 6.2's cutoff link).

#include "cts/core/spectrum.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/rate_function.hpp"
#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cc = cts::core;
namespace cu = cts::util;

TEST(Spectrum, WhiteNoiseIsFlat) {
  auto acf = std::make_shared<cc::WhiteAcf>();
  const cc::Spectrum spectrum(acf, 2.0);
  for (const double w : {0.01, 0.5, 1.5, 3.0}) {
    EXPECT_NEAR(spectrum.density(w), 2.0, 1e-9) << "w=" << w;
  }
}

TEST(Spectrum, GeometricMatchesClosedForm) {
  // AR(1)/DAR(1) spectral density:
  //   S(w) = sigma^2 (1 - a^2) / (1 - 2 a cos w + a^2).
  const double a = 0.8;
  const double sigma2 = 5000.0;
  auto acf = std::make_shared<cc::GeometricAcf>(a);
  const cc::Spectrum spectrum(acf, sigma2, 1u << 12);
  for (const double w : {0.1, 0.5, 1.0, 2.0, 3.0}) {
    const double expected = sigma2 * (1.0 - a * a) /
                            (1.0 - 2.0 * a * std::cos(w) + a * a);
    EXPECT_NEAR(spectrum.density(w) / expected, 1.0, 0.02) << "w=" << w;
  }
}

TEST(Spectrum, LrdDivergesAtZero) {
  auto acf = std::make_shared<cc::ExactLrdAcf>(0.9, 0.9);
  const cc::Spectrum spectrum(acf, 5000.0, 1u << 15);
  // S(w) ~ w^{1-2H} = w^{-0.8}: density grows steeply toward w = 0.
  // Probe a decade well inside the truncation's resolution (1/w << N).
  const double s_small = spectrum.density(0.01);
  const double s_smaller = spectrum.density(0.001);
  EXPECT_GT(s_smaller, 3.0 * s_small);
  // And the growth exponent is roughly 1 - 2H.
  EXPECT_NEAR(std::log(s_smaller / s_small) / std::log(10.0), 0.8, 0.3);
}

TEST(Spectrum, TotalPowerIsParseval) {
  // integral_0^pi S = pi sigma^2 (one-sided, r(0) term) for white noise.
  auto acf = std::make_shared<cc::WhiteAcf>();
  const cc::Spectrum spectrum(acf, 3.0);
  EXPECT_NEAR(spectrum.integrated(cu::kPi), cu::kPi * 3.0, 0.02 * cu::kPi);
}

TEST(Spectrum, CutoffOrderingAcrossModels) {
  // More low-frequency power => smaller cutoff.  Within the geometric
  // family the cutoff is monotone in a; any correlated model sits below
  // white noise.  (LRD with H < 1 has an INTEGRABLE w^{1-2H} divergence,
  // so a narrow a = 0.95 Lorentzian can still concentrate more power near
  // zero than H = 0.9 LRD -- cross-family order is not determined by H.)
  const double sigma2 = 1.0;
  const cc::Spectrum white(std::make_shared<cc::WhiteAcf>(), sigma2);
  const cc::Spectrum weak(std::make_shared<cc::GeometricAcf>(0.5), sigma2);
  const cc::Spectrum strong(std::make_shared<cc::GeometricAcf>(0.95),
                            sigma2);
  const cc::Spectrum lrd(std::make_shared<cc::ExactLrdAcf>(0.9, 0.9),
                         sigma2, 1u << 15);
  const double wc_white = white.cutoff_frequency();
  const double wc_weak = weak.cutoff_frequency();
  const double wc_strong = strong.cutoff_frequency();
  const double wc_lrd = lrd.cutoff_frequency();
  EXPECT_GT(wc_white, wc_weak);
  EXPECT_GT(wc_weak, wc_strong);
  EXPECT_GT(wc_white, wc_lrd);
  // White noise: flat spectrum -> median frequency at pi/2.
  EXPECT_NEAR(wc_white, cu::kPi / 2.0, 0.05);
}

TEST(Spectrum, CutoffTimeScaleTracksCts) {
  // Section 6.2: the CTS is "closely related" to the cutoff's time scale.
  // Check the correlation qualitatively: a model with 4x the CTS has a
  // clearly larger cutoff time scale.
  const double sigma2 = 5000.0;
  auto weak_acf = std::make_shared<cc::GeometricAcf>(0.7);
  auto strong_acf = std::make_shared<cc::GeometricAcf>(0.975);
  const cc::Spectrum weak(weak_acf, sigma2);
  const cc::Spectrum strong(strong_acf, sigma2);
  const double ts_weak = cc::cutoff_time_scale(weak.cutoff_frequency());
  const double ts_strong = cc::cutoff_time_scale(strong.cutoff_frequency());
  cc::RateFunction weak_rate(weak_acf, 500.0, sigma2, 526.0);
  cc::RateFunction strong_rate(strong_acf, 500.0, sigma2, 526.0);
  const double b = 300.0;
  const auto m_weak = weak_rate.evaluate(b).critical_m;
  const auto m_strong = strong_rate.evaluate(b).critical_m;
  EXPECT_GT(m_strong, m_weak);
  EXPECT_GT(ts_strong, ts_weak);
}

TEST(Spectrum, RejectsBadArguments) {
  auto acf = std::make_shared<cc::WhiteAcf>();
  EXPECT_THROW(cc::Spectrum(nullptr, 1.0), cu::InvalidArgument);
  EXPECT_THROW(cc::Spectrum(acf, 0.0), cu::InvalidArgument);
  const cc::Spectrum spectrum(acf, 1.0);
  EXPECT_THROW(spectrum.density(0.0), cu::InvalidArgument);
  EXPECT_THROW(spectrum.density(4.0), cu::InvalidArgument);
  EXPECT_THROW(spectrum.cutoff_frequency(0.0), cu::InvalidArgument);
  EXPECT_THROW(cc::cutoff_time_scale(0.0), cu::InvalidArgument);
}
