// Docs-drift guard: docs/cli.md documents the CLI registry
// (cts/util/cli_registry.hpp), which is also what every tool's --help and
// warn_unknown use.  A flag added to the registry without a docs/cli.md
// mention fails here, so the reference cannot rot silently.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "cts/util/cli_registry.hpp"

namespace cli = cts::util::cli;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string cli_doc() {
  return read_file(std::string(CTS_DOCS_DIR) + "/cli.md");
}

TEST(CliDocs, DocExistsAndNamesEveryTool) {
  const std::string doc = cli_doc();
  ASSERT_FALSE(doc.empty()) << "docs/cli.md missing or unreadable";
  for (const cli::ToolDoc& tool : cli::kTools) {
    EXPECT_NE(doc.find(std::string("## ") + tool.tool), std::string::npos)
        << "docs/cli.md does not have a section heading for '" << tool.tool
        << "'";
  }
}

TEST(CliDocs, EveryRegisteredFlagIsDocumented) {
  const std::string doc = cli_doc();
  ASSERT_FALSE(doc.empty());
  for (const cli::ToolDoc& tool : cli::kTools) {
    // Flags must be documented inside their tool's section, not just
    // anywhere: shared names like --quiet appear under several tools.
    const std::size_t section = doc.find(std::string("## ") + tool.tool);
    ASSERT_NE(section, std::string::npos) << tool.tool;
    std::size_t section_end = doc.find("\n## ", section);
    if (section_end == std::string::npos) section_end = doc.size();
    const std::string body = doc.substr(section, section_end - section);
    for (std::size_t i = 0; i < tool.count; ++i) {
      const std::string needle = std::string("--") + tool.flags[i].name;
      EXPECT_NE(body.find(needle), std::string::npos)
          << "docs/cli.md section '" << tool.tool << "' is missing " << needle
          << " — update the doc to match cli_registry.hpp";
    }
  }
}

TEST(CliDocs, EveryEnvironmentVariableIsDocumented) {
  const std::string doc = cli_doc();
  ASSERT_FALSE(doc.empty());
  for (const cli::EnvDoc& env : cli::kEnvVars) {
    EXPECT_NE(doc.find(env.name), std::string::npos)
        << "docs/cli.md is missing environment variable " << env.name;
  }
}

}  // namespace
