// Perf-trajectory analysis across BENCH_*.json baselines: ordering,
// Theil-Sen slopes, sustained-drift gating (not last-vs-previous), and
// the markdown / CSV / SVG renderers.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cts/obs/bench_trend.hpp"
#include "cts/obs/svg.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

/// A minimal cts.bench.v1 document with one bench and a full wall_s
/// summary block (the trend builder reads n/median/mad/ci95_lo/ci95_hi).
std::string doc(const std::string& generated, double median, double mad) {
  return std::string(R"({"schema":"cts.bench.v1","suite":"smoke",)") +
         R"("generated":")" + generated + R"(","benches":{"fig9":)" +
         R"({"metrics":{"wall_s":{"n":5,"median":)" + std::to_string(median) +
         R"(,"mad":)" + std::to_string(mad) +
         R"(,"ci95_lo":0.9,"ci95_hi":1.1}}}}})";
}

std::vector<obs::BaselineDoc> chain(const std::vector<double>& medians,
                                    double mad = 0.01) {
  std::vector<obs::BaselineDoc> docs;
  for (std::size_t i = 0; i < medians.size(); ++i) {
    const std::string date = "2026-08-0" + std::to_string(i + 1);
    docs.push_back(
        obs::parse_baseline("BENCH_" + date + ".json", doc(date, medians[i], mad)));
  }
  return docs;
}

TEST(ParseBaseline, ExtractsLabelSuiteAndDate) {
  const obs::BaselineDoc b =
      obs::parse_baseline("perf/BENCH_2026-08-05.json",
                          doc("2026-08-05", 1.0, 0.01));
  EXPECT_EQ(b.label, "BENCH_2026-08-05");
  EXPECT_EQ(b.suite, "smoke");
  EXPECT_EQ(b.generated, "2026-08-05");
}

TEST(ParseBaseline, RejectsInvalidJsonAndWrongSchema) {
  EXPECT_THROW(obs::parse_baseline("x.json", "{nope"),
               cts::util::InvalidArgument);
  // A document without a "schema" field must not be best-effort parsed.
  EXPECT_THROW(obs::parse_baseline("x.json", R"({"benches":{}})"),
               cts::util::InvalidArgument);
  try {
    obs::parse_baseline("x.json", R"({"schema":"cts.perf.v1","benches":{}})");
    FAIL() << "unknown schema must throw";
  } catch (const cts::util::InvalidArgument& e) {
    // The message must name the offending schema so the fix is obvious.
    EXPECT_NE(std::string(e.what()).find("cts.perf.v1"), std::string::npos);
  }
}

TEST(SortBaselines, OrdersByDateThenLabel) {
  std::vector<obs::BaselineDoc> docs;
  docs.push_back(obs::parse_baseline("b2.json", doc("2026-08-02", 1, 0.01)));
  docs.push_back(obs::parse_baseline("a1.json", doc("2026-08-01", 1, 0.01)));
  docs.push_back(obs::parse_baseline("a2.json", doc("2026-08-02", 1, 0.01)));
  obs::sort_baselines(docs);
  EXPECT_EQ(docs[0].label, "a1");
  EXPECT_EQ(docs[1].label, "a2");
  EXPECT_EQ(docs[2].label, "b2");
}

TEST(TheilSen, ExactOnLinearSeriesRobustToOutlier) {
  EXPECT_DOUBLE_EQ(obs::theil_sen_slope({1.0, 2.0, 3.0, 4.0}), 1.0);
  // One wild outlier must not drag the slope (an OLS fit would).
  EXPECT_NEAR(obs::theil_sen_slope({1.0, 2.0, 100.0, 4.0, 5.0}), 1.0, 0.5);
  EXPECT_DOUBLE_EQ(obs::theil_sen_slope({42.0}), 0.0);
}

TEST(BuildTrend, NeedsTwoBaselines) {
  EXPECT_THROW(obs::build_trend(chain({1.0})), cts::util::InvalidArgument);
}

TEST(BuildTrend, StableSeriesIsOk) {
  const obs::TrendReport report = obs::build_trend(chain({1.0, 1.001, 0.999}));
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_EQ(report.series[0].verdict(), "ok");
  EXPECT_FALSE(report.has_drift());
}

TEST(BuildTrend, SustainedDriftTripsTheGate) {
  // Last two points both +50% over the first with tiny MAD: sustained.
  const obs::TrendReport report =
      obs::build_trend(chain({1.0, 1.0, 1.5, 1.55}));
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_TRUE(report.series[0].drift_regression);
  EXPECT_EQ(report.series[0].verdict(), "DRIFT");
  EXPECT_TRUE(report.has_drift());
  EXPECT_GT(report.series[0].slope, 0.0);
}

TEST(BuildTrend, SingleSpikeIsNotSustainedDrift) {
  // Only the LAST point is beyond the band; the default window of 2
  // requires the previous point to be out too — one noisy baseline must
  // not page anyone.
  const obs::TrendReport report =
      obs::build_trend(chain({1.0, 1.0, 1.0, 1.5}));
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_FALSE(report.series[0].drift_regression);
  EXPECT_TRUE(report.series[0].points.back().beyond_band);
  EXPECT_FALSE(report.has_drift());
}

TEST(BuildTrend, ImprovementIsReportedButNeverGates) {
  const obs::TrendReport report =
      obs::build_trend(chain({1.0, 1.0, 0.5, 0.45}));
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_TRUE(report.series[0].drift_improvement);
  EXPECT_EQ(report.series[0].verdict(), "improvement");
  EXPECT_FALSE(report.has_drift());
}

TEST(BuildTrend, DriftWithinNoiseBandStaysQuiet) {
  // +8% everywhere but MAD 0.1 -> 3*MAD = 0.3 band: not significant.
  const obs::TrendReport report =
      obs::build_trend(chain({1.0, 1.08, 1.08}, 0.1));
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_EQ(report.series[0].verdict(), "ok");
}

TEST(BuildTrend, BenchMissingFromSomeBaselinesIsNoted) {
  std::vector<obs::BaselineDoc> docs = chain({1.0, 1.0});
  docs.push_back(obs::parse_baseline(
      "BENCH_2026-08-03.json",
      R"({"schema":"cts.bench.v1","suite":"smoke","generated":"2026-08-03",)"
      R"("benches":{"table1":{"metrics":{"wall_s":)"
      R"({"n":5,"median":2.0,"mad":0.01,"ci95_lo":1.9,"ci95_hi":2.1}}}}})"));
  const obs::TrendReport report = obs::build_trend(docs);
  // fig9 appears in 2 of 3 baselines -> still a series, plus a note;
  // table1 appears once -> no series at all.
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_EQ(report.series[0].bench, "fig9");
  ASSERT_EQ(report.notes.size(), 2u);
  EXPECT_NE(report.notes[0].find("fig9"), std::string::npos);
  EXPECT_NE(report.notes[1].find("table1"), std::string::npos);
}

TEST(TrendRenderers, MarkdownCsvAndSvgCarryTheSeries) {
  const obs::TrendReport report =
      obs::build_trend(chain({1.0, 1.0, 1.5, 1.55}));

  const std::string md = obs::trend_markdown(report);
  EXPECT_NE(md.find("| fig9 |"), std::string::npos);
  EXPECT_NE(md.find("DRIFT"), std::string::npos);
  EXPECT_NE(md.find("‡"), std::string::npos);  // beyond-band marker

  const std::string csv = obs::trend_csv(report);
  // Header + one row per (bench, baseline) point.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
  EXPECT_NE(csv.find("metric,bench,index"), std::string::npos);
  EXPECT_NE(csv.find("DRIFT"), std::string::npos);

  const std::string svg = obs::trend_svg(report);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("fig9"), std::string::npos);
  EXPECT_NE(svg.find("DRIFT"), std::string::npos);
  // Self-contained: no external references of any kind.
  EXPECT_EQ(svg.find("http://www.w3.org/2000/svg"),
            svg.rfind("http"));  // the xmlns is the only URL
}

TEST(TrendSvg, RejectsEmptyReport) {
  obs::TrendReport empty;
  EXPECT_THROW(obs::trend_svg(empty), cts::util::InvalidArgument);
}

}  // namespace
