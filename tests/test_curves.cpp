// Unit tests for the experiment-curve helpers.

#include "cts/sim/curves.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cu = cts::util;

TEST(MuxGeometry, BufferConversionsRoundTrip) {
  cm::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = 538.0;
  g.Ts = 0.04;
  // 30 * 538 cells per 40 ms -> 403.5 cells/ms.
  EXPECT_NEAR(g.buffer_ms_to_cells(1.0), 403.5, 1e-9);
  for (const double ms : {0.5, 2.0, 30.0}) {
    EXPECT_NEAR(g.buffer_cells_to_ms(g.buffer_ms_to_cells(ms)), ms, 1e-12);
  }
  EXPECT_DOUBLE_EQ(g.total_capacity(), 16140.0);
}

TEST(BufferGrids, GeometricAndLinear) {
  const std::vector<double> geo = cm::buffer_grid_ms(1.0, 100.0, 5);
  ASSERT_EQ(geo.size(), 5u);
  EXPECT_DOUBLE_EQ(geo.front(), 1.0);
  EXPECT_DOUBLE_EQ(geo.back(), 100.0);
  EXPECT_NEAR(geo[1] / geo[0], geo[2] / geo[1], 1e-9);

  const std::vector<double> lin = cm::linear_grid_ms(0.0, 10.0, 6);
  ASSERT_EQ(lin.size(), 6u);
  EXPECT_DOUBLE_EQ(lin[1] - lin[0], 2.0);

  EXPECT_THROW(cm::buffer_grid_ms(0.0, 10.0, 5), cu::InvalidArgument);
  EXPECT_THROW(cm::linear_grid_ms(5.0, 1.0, 5), cu::InvalidArgument);
}

TEST(BufferGrids, GeometricGridStaysMonotoneUnderUlpRounding) {
  // Regression: pow() rounding can push the running product past hi before
  // the final point, so pinning grid.back() = hi used to produce a
  // NON-monotone grid (penultimate point above hi).  These constants
  // reproduce the overshoot; the fix clamps every point at hi.
  for (const std::size_t points : {17u, 33u}) {
    const std::vector<double> grid =
        cm::buffer_grid_ms(1.0, 1.0000000000000064, points);
    ASSERT_EQ(grid.size(), points);
    EXPECT_DOUBLE_EQ(grid.front(), 1.0);
    EXPECT_DOUBLE_EQ(grid.back(), 1.0000000000000064);
    EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()))
        << "points=" << points;
  }
}

TEST(BrCurve, MonotoneDecreasingInBuffer) {
  const cf::ModelSpec model = cf::make_za(0.9);
  cm::MuxGeometry g;
  const std::vector<double> grid = cm::linear_grid_ms(0.5, 20.0, 8);
  const cm::AnalyticCurve curve = cm::br_curve(model, g, grid);
  ASSERT_EQ(curve.log10_bop.size(), grid.size());
  for (std::size_t i = 1; i < curve.log10_bop.size(); ++i) {
    EXPECT_LT(curve.log10_bop[i], curve.log10_bop[i - 1]);
  }
  // CTS column populated and non-decreasing.
  for (std::size_t i = 1; i < curve.critical_m.size(); ++i) {
    EXPECT_GE(curve.critical_m[i], curve.critical_m[i - 1]);
  }
}

TEST(LargeNCurve, AlwaysAboveBr) {
  const cf::ModelSpec model = cf::make_dar_matched_to_za(0.975, 1);
  cm::MuxGeometry g;
  const std::vector<double> grid = cm::linear_grid_ms(1.0, 10.0, 4);
  const cm::AnalyticCurve br = cm::br_curve(model, g, grid);
  const cm::AnalyticCurve ln = cm::large_n_curve(model, g, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GT(ln.log10_bop[i], br.log10_bop[i]);
  }
}

TEST(SimulatedClrCurve, RunsAndIsMonotoneOnAverage) {
  const cf::ModelSpec model = cf::make_ar1(0.9);
  cm::MuxGeometry g;
  g.n_sources = 10;
  g.bandwidth_per_source = 520.0;
  cm::ReplicationConfig scale;
  scale.replications = 3;
  scale.frames_per_replication = 8000;
  scale.warmup_frames = 200;
  const std::vector<double> grid = {0.1, 5.0};
  const cm::SimulatedCurve curve =
      cm::simulated_clr_curve(model, g, grid, scale);
  ASSERT_EQ(curve.clr.size(), 2u);
  EXPECT_GT(curve.clr[0], 0.0);
  EXPECT_GE(curve.clr[0], curve.clr[1]);
  EXPECT_EQ(curve.total_frames, 3u * 8000u);
  EXPECT_LE(curve.ci_low[0], curve.clr[0] + 1e-12);
}
