// Unit tests for the LRD tail fit (the construction of model L).

#include "cts/fit/tail_fit.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/acf_model.hpp"
#include "cts/util/error.hpp"
#include "cts/util/math.hpp"

namespace cf = cts::fit;
namespace cc = cts::core;
namespace cu = cts::util;

TEST(TailFit, RecoversExactAlphaOnPureTarget) {
  // Target IS an exact-LRD ACF with the same weight: the fit must recover
  // alpha nearly exactly.
  const double true_alpha = 0.8;
  const double weight = 0.9;
  const cc::ExactLrdAcf target((true_alpha + 1.0) / 2.0, weight);
  const cf::TailFit fit = cf::fit_lrd_tail(
      [&](std::size_t k) { return target.at(k); }, weight);
  EXPECT_NEAR(fit.alpha, true_alpha, 1e-6);
  EXPECT_LT(fit.objective, 1e-10);
}

TEST(TailFit, HalvedAmplitudeLowersAlpha) {
  // The paper's situation: the target tail is v/(v+1) = 1/2 of a pure LRD
  // ACF with alpha = 0.8, but the fit weight is pinned at 0.9.  The
  // compromise alpha must come out clearly below 0.8 (paper: ~0.72).
  const double weight = 0.9;
  const cc::ExactLrdAcf component(0.9, weight);  // H = 0.9 <=> alpha = 0.8
  const cf::TailFit fit = cf::fit_lrd_tail(
      [&](std::size_t k) { return 0.5 * component.at(k); }, weight);
  EXPECT_LT(fit.alpha, 0.78);
  EXPECT_GT(fit.alpha, 0.6);
  EXPECT_NEAR(fit.hurst, (fit.alpha + 1.0) / 2.0, 1e-12);
}

TEST(TailFit, FittedCurvePassesThroughTargetWindow) {
  const double weight = 0.9;
  const cc::ExactLrdAcf component(0.9, weight);
  const auto target = [&](std::size_t k) { return 0.5 * component.at(k); };
  const cf::TailFit fit = cf::fit_lrd_tail(target, weight, 100, 1000);
  // Log-space residual at the window centre should be small (< 15%).
  const double model =
      weight * 0.5 * cu::second_central_difference_pow(300, fit.alpha + 1.0);
  EXPECT_NEAR(std::log(model), std::log(target(300)), 0.15);
}

TEST(TailFit, RejectsBadArguments) {
  const auto ok = [](std::size_t) { return 0.1; };
  EXPECT_THROW(cf::fit_lrd_tail(ok, 0.0), cu::InvalidArgument);
  EXPECT_THROW(cf::fit_lrd_tail(ok, 0.9, 0, 10), cu::InvalidArgument);
  EXPECT_THROW(cf::fit_lrd_tail(ok, 0.9, 100, 100), cu::InvalidArgument);
  EXPECT_THROW(cf::fit_lrd_tail(ok, 0.9, 100, 1000, 0.5, 0.4),
               cu::InvalidArgument);
}

TEST(TailFit, RejectsNonPositiveTarget) {
  const auto bad = [](std::size_t) { return -0.1; };
  EXPECT_THROW(cf::fit_lrd_tail(bad, 0.9), cu::InvalidArgument);
}

class TailFitSweep : public ::testing::TestWithParam<double> {};

TEST_P(TailFitSweep, RecoversAlphaAcrossRange) {
  const double alpha = GetParam();
  const double weight = 0.85;
  const cc::ExactLrdAcf target((alpha + 1.0) / 2.0, weight);
  const cf::TailFit fit = cf::fit_lrd_tail(
      [&](std::size_t k) { return target.at(k); }, weight, 50, 2000);
  EXPECT_NEAR(fit.alpha, alpha, 1e-5) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, TailFitSweep,
                         ::testing::Values(0.3, 0.5, 0.72, 0.8, 0.9));
