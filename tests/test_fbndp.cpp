// Unit tests for the FBNDP frame source.

#include "cts/proc/fbndp.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/fit/fbndp_calibration.hpp"
#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cf = cts::fit;
namespace cu = cts::util;

namespace {

/// The Z^a FBNDP component of the paper (Table 1): mu = 250, sigma^2 = 2500,
/// alpha = 0.8, M = 15, Ts = 40 ms.
cp::FbndpParams paper_component() {
  cf::FbndpTarget target;
  target.mean = 250.0;
  target.variance = 2500.0;
  target.alpha = 0.8;
  target.M = 15;
  target.Ts = 0.04;
  return cf::calibrate_fbndp(target);
}

}  // namespace

TEST(FbndpParams, ValidatesRanges) {
  cp::FbndpParams p = paper_component();
  EXPECT_NO_THROW(p.validate());
  p.alpha = 1.5;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p = paper_component();
  p.M = 0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
  p = paper_component();
  p.R = -1.0;
  EXPECT_THROW(p.validate(), cu::InvalidArgument);
}

TEST(FbndpParams, DerivedStatisticsMatchPaper) {
  const cp::FbndpParams p = paper_component();
  EXPECT_NEAR(p.hurst(), 0.9, 1e-12);
  EXPECT_NEAR(p.lambda(), 6250.0, 1e-6);            // Table 1 row Z^a
  EXPECT_NEAR(p.fractal_onset_time() * 1000.0, 2.57, 0.01);  // T0 ~ 2.57 ms
  EXPECT_NEAR(p.frame_mean(), 250.0, 1e-9);
  EXPECT_NEAR(p.frame_variance(), 2500.0, 1e-6);
}

TEST(FbndpParams, AcfWeightIsOneMinusMeanOverVariance) {
  // w = Ts^a/(Ts^a + T0^a) with T0 from the moment calibration collapses
  // to 1 - mu/sigma^2 -- a nontrivial identity worth pinning down.
  const cp::FbndpParams p = paper_component();
  EXPECT_NEAR(p.acf_weight(), 1.0 - 250.0 / 2500.0, 1e-9);
}

TEST(FbndpParams, AcfDecaysAsPowerLaw) {
  const cp::FbndpParams p = paper_component();
  // r(k) ~ w H(2H-1) k^{2H-2}; ratio test at large lags.
  const double r100 = p.acf(100);
  const double r400 = p.acf(400);
  EXPECT_NEAR(r400 / r100, std::pow(4.0, 2.0 * p.hurst() - 2.0), 1e-3);
  EXPECT_DOUBLE_EQ(p.acf(0), 1.0);
  EXPECT_GT(p.acf(1), p.acf(2));
  EXPECT_GT(p.acf(2), p.acf(10));
}

TEST(FbndpSource, FrameMomentsMatchAnalytic) {
  // LRD sample means converge at rate n^{H-1} (n^{-0.1} here!), so one long
  // run cannot pin the mean: pool 32 independent sources instead, which
  // divides the standard error by sqrt(32).  Expected sd of the pooled mean
  // ~ sqrt(w sigma^2) * frames^{H-1} / sqrt(sources) ~ 2.7 cells.
  const cp::FbndpParams p = paper_component();
  cu::MomentAccumulator acc;
  const int frames = 40000;
  for (int s = 0; s < 24; ++s) {
    cp::FbndpSource source(p, 42 + static_cast<std::uint64_t>(s));
    for (int i = 0; i < frames; ++i) acc.add(source.next_frame());
  }
  EXPECT_NEAR(acc.mean(), p.frame_mean(), 14.0);  // ~4 sigma
  EXPECT_NEAR(acc.variance(), p.frame_variance(),
              0.25 * p.frame_variance());
}

TEST(FbndpSource, EmpiricalAcfMatchesAnalytic) {
  // The deepest link in the model chain: the simulated FBNDP frame counts
  // must carry the analytic ACF r(k) = w * (1/2) grad^2(k^{alpha+1}).
  // Average the ACF estimate over independent sources (single-path LRD
  // estimates are biased low by the unknown-mean correction).
  const cp::FbndpParams p = paper_component();
  const int sources = 12;
  const int frames = 30000;
  std::vector<double> mean_acf(9, 0.0);
  for (int s = 0; s < sources; ++s) {
    cp::FbndpSource source(p, 900 + static_cast<std::uint64_t>(s));
    std::vector<double> trace(frames);
    for (auto& x : trace) x = source.next_frame();
    const std::vector<double> r = cts::stats::autocorrelation(trace, 8);
    for (std::size_t k = 0; k <= 8; ++k) mean_acf[k] += r[k];
  }
  for (auto& r : mean_acf) r /= sources;
  // The unknown-mean ACF estimator carries a common negative bias of order
  // n^{2H-2} (~0.05-0.1 at this length for H = 0.9) at every lag; allow it
  // in the absolute check and verify the lag-to-lag SHAPE tightly.
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_NEAR(mean_acf[k], p.acf(k), 0.09) << "lag " << k;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    const double shape = mean_acf[k] - mean_acf[k + 1];
    const double expected = p.acf(k) - p.acf(k + 1);
    EXPECT_NEAR(shape, expected, 0.02) << "lag step " << k;
  }
}

TEST(FbndpSource, FramesAreNonNegativeCounts) {
  cp::FbndpSource source(paper_component(), 7);
  for (int i = 0; i < 10000; ++i) {
    const double x = source.next_frame();
    ASSERT_GE(x, 0.0);
    ASSERT_DOUBLE_EQ(x, std::floor(x));  // integer counts
  }
}

TEST(FbndpSource, CloneIsIndependentAndDeterministic) {
  const cp::FbndpParams p = paper_component();
  cp::FbndpSource source(p, 1);
  auto clone_a = source.clone(99);
  auto clone_b = source.clone(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(clone_a->next_frame(), clone_b->next_frame());
  }
}

TEST(FbndpSource, ReportsAnalyticMoments) {
  const cp::FbndpParams p = paper_component();
  cp::FbndpSource source(p, 3);
  EXPECT_DOUBLE_EQ(source.mean(), p.frame_mean());
  EXPECT_DOUBLE_EQ(source.variance(), p.frame_variance());
  EXPECT_NE(source.name().find("FBNDP"), std::string::npos);
}
