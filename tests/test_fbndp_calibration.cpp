// Unit tests for FBNDP moment calibration -- pinned to Table 1 values.

#include "cts/fit/fbndp_calibration.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/util/error.hpp"

namespace cf = cts::fit;
namespace cu = cts::util;

TEST(FbndpTarget, Validation) {
  cf::FbndpTarget t;
  EXPECT_NO_THROW(t.validate());
  t.variance = t.mean;  // not over-dispersed
  EXPECT_THROW(t.validate(), cu::InvalidArgument);
  t = cf::FbndpTarget{};
  t.alpha = 0.0;
  EXPECT_THROW(t.validate(), cu::InvalidArgument);
  t = cf::FbndpTarget{};
  t.M = 0;
  EXPECT_THROW(t.validate(), cu::InvalidArgument);
}

TEST(ImpliedT0, MatchesTable1ZaRow) {
  // Z^a FBNDP component: mu = 250, sigma^2 = 2500, alpha = 0.8 -> 2.57 ms.
  cf::FbndpTarget t;
  t.mean = 250.0;
  t.variance = 2500.0;
  t.alpha = 0.8;
  t.Ts = 0.04;
  EXPECT_NEAR(cf::implied_fractal_onset_time(t) * 1000.0, 2.57, 0.01);
}

TEST(ImpliedT0, MatchesTable1VvRow) {
  // V^v FBNDP component: alpha = 0.9, dispersion ratio 10 -> 3.48 ms,
  // independent of v (the paper's shared T0 for all three rows).
  for (const double v : {0.67, 1.0, 1.5}) {
    const double var_x = 5000.0 * v / (v + 1.0);
    cf::FbndpTarget t;
    t.mean = var_x / 10.0;
    t.variance = var_x;
    t.alpha = 0.9;
    t.Ts = 0.04;
    EXPECT_NEAR(cf::implied_fractal_onset_time(t) * 1000.0, 3.48, 0.01)
        << "v=" << v;
  }
}

TEST(ImpliedT0, MatchesTable1LRow) {
  // L: mu = 500, sigma^2 = 5000, alpha ~ 0.72 -> T0 ~ 1.83-1.89 ms.
  cf::FbndpTarget t;
  t.mean = 500.0;
  t.variance = 5000.0;
  t.alpha = 0.72;
  t.Ts = 0.04;
  const double t0_ms = cf::implied_fractal_onset_time(t) * 1000.0;
  EXPECT_NEAR(t0_ms, 1.83, 0.08);
}

TEST(CalibrateFbndp, RoundTripsMoments) {
  cf::FbndpTarget t;
  t.mean = 250.0;
  t.variance = 2500.0;
  t.alpha = 0.8;
  t.M = 15;
  t.Ts = 0.04;
  const auto params = cf::calibrate_fbndp(t);
  EXPECT_NEAR(params.frame_mean(), 250.0, 1e-6);
  EXPECT_NEAR(params.frame_variance(), 2500.0, 1e-3);
  EXPECT_NEAR(params.lambda(), 6250.0, 1e-6);
  EXPECT_EQ(params.M, 15u);
  // R = 2 lambda / M.
  EXPECT_NEAR(params.R, 2.0 * 6250.0 / 15.0, 1e-9);
  // T0 from the closed form equals the implied T0.
  EXPECT_NEAR(params.fractal_onset_time(),
              cf::implied_fractal_onset_time(t), 1e-9);
}

class CalibrationSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(CalibrationSweepTest, RoundTripAcrossParameterSpace) {
  const auto [alpha, dispersion, m] = GetParam();
  cf::FbndpTarget t;
  t.mean = 300.0;
  t.variance = dispersion * t.mean;
  t.alpha = alpha;
  t.M = static_cast<std::uint32_t>(m);
  t.Ts = 0.04;
  const auto params = cf::calibrate_fbndp(t);
  EXPECT_NEAR(params.frame_mean(), t.mean, 1e-6 * t.mean);
  EXPECT_NEAR(params.frame_variance(), t.variance, 1e-6 * t.variance);
  EXPECT_NEAR(params.hurst(), (alpha + 1.0) / 2.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, CalibrationSweepTest,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.72, 0.8, 0.9),
                       ::testing::Values(2.0, 5.0, 10.0, 20.0),
                       ::testing::Values(5, 15, 30)));
