// Unit tests for the file helpers (read_text_file / make_dirs) and the
// deadline child-waiter (wait_child) that back the cts_simd / cts_shardd
// robustness fixes: unreadable paths must fail naming the path and errno,
// nested --out-dir chains must be created like mkdir -p, and a wedged
// child must be killed and reported with the terminating signal named.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cts/util/error.hpp"
#include "cts/util/file.hpp"
#include "cts/util/subprocess.hpp"

namespace cu = cts::util;

namespace {

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "/" + leaf;
}

TEST(ReadTextFile, ReadsContents) {
  const std::string path = temp_path("read_ok.txt");
  std::ofstream(path) << "hello\nworld\n";
  EXPECT_EQ(cu::read_text_file(path), "hello\nworld\n");
}

TEST(ReadTextFile, EmptyExistingFileIsEmptyStringNotError) {
  const std::string path = temp_path("read_empty.txt");
  std::ofstream(path).flush();
  EXPECT_EQ(cu::read_text_file(path), "");
}

TEST(ReadTextFile, MissingFileThrowsNamingPathAndErrno) {
  const std::string path = temp_path("no_such_file.json");
  try {
    cu::read_text_file(path);
    FAIL() << "expected InvalidArgument";
  } catch (const cu::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(ReadTextFile, NonThrowingVariantReportsTheSameMessage) {
  const std::string path = temp_path("no_such_file_2.json");
  std::string out = "unchanged";
  std::string error;
  EXPECT_FALSE(cu::read_text_file(path, &out, &error));
  EXPECT_EQ(out, "unchanged");
  EXPECT_NE(error.find(path), std::string::npos) << error;

  EXPECT_TRUE(cu::read_text_file(__FILE__, &out, &error));
  EXPECT_NE(out.find("NonThrowingVariantReportsTheSameMessage"),
            std::string::npos);
}

TEST(MakeDirs, CreatesNestedChain) {
  const std::string root = temp_path("mkdirs_a");
  const std::string nested = root + "/b/c/d";
  cu::make_dirs(nested);
  struct stat st{};
  ASSERT_EQ(::stat(nested.c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  cu::make_dirs(nested);  // idempotent: an existing chain is not an error
}

TEST(MakeDirs, ExistingFileInTheChainThrowsNamingComponent) {
  const std::string root = temp_path("mkdirs_file");
  std::ofstream(root) << "not a directory";
  try {
    cu::make_dirs(root + "/sub");
    FAIL() << "expected InvalidArgument";
  } catch (const cu::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(root), std::string::npos)
        << e.what();
  }
}

TEST(MakeDirs, PathThatIsAFileThrows) {
  const std::string path = temp_path("mkdirs_leaf_file");
  std::ofstream(path) << "x";
  EXPECT_THROW(cu::make_dirs(path), cu::InvalidArgument);
}

TEST(WaitChild, ReportsCleanExit) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ::_exit(0);
  const cu::WaitOutcome outcome = cu::wait_child(pid, 10.0);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.kind, cu::WaitOutcome::Kind::kExited);
}

TEST(WaitChild, ReportsNonZeroExitStatus) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ::_exit(7);
  const cu::WaitOutcome outcome = cu::wait_child(pid, 10.0);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.kind, cu::WaitOutcome::Kind::kExited);
  EXPECT_EQ(outcome.exit_code, 7);
  EXPECT_NE(outcome.describe().find("status 7"), std::string::npos)
      << outcome.describe();
}

TEST(WaitChild, NamesTheTerminatingSignal) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::raise(SIGTERM);
    ::_exit(0);  // not reached
  }
  const cu::WaitOutcome outcome = cu::wait_child(pid, 10.0);
  EXPECT_EQ(outcome.kind, cu::WaitOutcome::Kind::kSignaled);
  EXPECT_EQ(outcome.signal, SIGTERM);
  const std::string text = outcome.describe();
  EXPECT_NE(text.find("signal"), std::string::npos) << text;
  EXPECT_NE(text.find("Terminated"), std::string::npos) << text;
}

TEST(WaitChild, KillsAndReportsAStragglerPastTheDeadline) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // A worker that would block the orchestrator forever without the
    // deadline (pre-fix cts_simd sat in waitpid indefinitely).
    for (;;) ::pause();
  }
  const cu::WaitOutcome outcome = cu::wait_child(pid, 0.2);
  EXPECT_EQ(outcome.kind, cu::WaitOutcome::Kind::kTimeout);
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.describe().find("timed out"), std::string::npos)
      << outcome.describe();
  // The child is reaped (kill + blocking wait), not leaked: a second wait
  // on the pid fails because it no longer exists.
  EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
}

}  // namespace
