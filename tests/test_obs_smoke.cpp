// End-to-end observability smoke test: runs a real bench binary at a tiny
// REPRO scale with --metrics/--trace/--quiet and validates that the run
// report and Chrome trace parse and carry the acceptance-critical fields
// (total frames, arrived/lost cells, per-replication wall-time stats, seed,
// thread count; one span per replication).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cts/obs/json.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ObsSmoke, BenchFig8EmitsParsableMetricsAndTrace) {
#ifndef CTS_BENCH_BIN_DIR
  GTEST_SKIP() << "bench harness not built";
#else
  const std::string bench =
      std::string(CTS_BENCH_BIN_DIR) + "/bench_fig8_sim_clr";
  {
    std::ifstream exists(bench);
    if (!exists.good()) {
      GTEST_SKIP() << "bench binary not found: " << bench;
    }
  }
  const std::string metrics_path = ::testing::TempDir() + "/smoke_metrics.json";
  const std::string trace_path = ::testing::TempDir() + "/smoke_trace.json";
  const std::string command =
      "REPRO_REPS=2 REPRO_FRAMES=800 CTS_QUIET=1 '" + bench +
      "' --quiet --metrics=" + metrics_path + " --trace=" + trace_path +
      " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::string metrics = read_file(metrics_path);
  ASSERT_FALSE(metrics.empty());
  std::string error;
  ASSERT_TRUE(cts::obs::json_parse_check(metrics, &error))
      << error << "\n" << metrics;
  // Config echo: seed, scale, threads.
  EXPECT_NE(metrics.find("\"master_seed\""), std::string::npos);
  EXPECT_NE(metrics.find("\"replications\":2"), std::string::npos);
  EXPECT_NE(metrics.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(metrics.find("\"sim.threads\""), std::string::npos);
  // Tallies: frames, arrived cells, lost cells, per-replication wall time.
  EXPECT_NE(metrics.find("\"sim.frames_total\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fluid_mux.frames\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fluid_mux.arrived_cells\""), std::string::npos);
  EXPECT_NE(metrics.find("\"fluid_mux.lost_cells\""), std::string::npos);
  EXPECT_NE(metrics.find("\"sim.replication.wall_ms\""), std::string::npos);
  // Generator sample counts (fig8 simulates V^v and Z^a = DAR models).
  EXPECT_NE(metrics.find("\"proc.dar.frames\""), std::string::npos);
  EXPECT_NE(metrics.find("\"proc.fbndp.frames\""), std::string::npos);

  const std::string trace = read_file(trace_path);
  ASSERT_FALSE(trace.empty());
  ASSERT_TRUE(cts::obs::json_parse_check(trace, &error)) << error;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"replication\""), std::string::npos);
  EXPECT_NE(trace.find("\"fluid_mux.run\""), std::string::npos);
#endif
}

}  // namespace
