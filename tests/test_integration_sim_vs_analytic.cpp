// Integration tests: simulation versus large-deviations analytics.
//
// These reproduce the qualitative content of Figs. 5/6/8/9/10 at CI scale.
// The paper's own operating point (c = 538) pushes CLRs to 1e-6 and below,
// which needs its 60 x 500k-frame budget to resolve; since the paper notes
// that "other choices of N and c show qualitatively the same results"
// (Section 5.5), the shape assertions here run at higher utilisation
// (c = 515 cells/frame), where loss events are plentiful at a 3 x 10k-frame
// budget.  The zero-buffer marginal check stays at the paper's c = 538.

#include <cmath>

#include <gtest/gtest.h>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/large_n.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/sim/curves.hpp"
#include "cts/util/math.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cm = cts::sim;

namespace {

cm::MuxGeometry geometry(double c) {
  cm::MuxGeometry g;
  g.n_sources = 30;
  g.bandwidth_per_source = c;
  g.Ts = 0.04;
  return g;
}

// CI scale, tuned for a single-core runner: FBNDP-based sources cost
// ~4 us/frame, so each simulated curve below is a few seconds.
cm::ReplicationConfig test_scale() {
  cm::ReplicationConfig scale;
  scale.replications = 3;
  scale.frames_per_replication = 10000;
  scale.warmup_frames = 500;
  return scale;
}

}  // namespace

TEST(SimVsAnalytic, ZeroBufferClrMatchesGaussianFluidLoss) {
  // At B = 0 the fluid CLR is E[(X - C)^+]/E[X] with X ~ N(N mu, N sigma^2);
  // the paper observes "slightly above 1e-5" and all models must coincide.
  const cm::MuxGeometry g = geometry(538.0);
  const double n = 30.0;
  const double mean = n * 500.0;
  const double sd = std::sqrt(n * 5000.0);
  const double z = (g.total_capacity() - mean) / sd;
  // E[(X-C)^+] = sd [phi(z) - z (1 - Phi(z))].
  const double expected =
      sd *
      (cts::util::normal_pdf(z) - z * (1.0 - cts::util::normal_cdf(z))) /
      mean;
  ASSERT_GT(expected, 0.0);
  for (const auto& model : {cf::make_za(0.9), cf::make_vv(1.0)}) {
    const cm::SimulatedCurve curve =
        cm::simulated_clr_curve(model, g, {1e-9}, test_scale());
    // The aggregate marginal is CLT-Gaussian but slightly right-skewed
    // (Poisson-mixture components), so allow a one-decade band.
    EXPECT_GT(curve.clr[0], expected / 8.0) << model.name;
    EXPECT_LT(curve.clr[0], 8.0 * expected) << model.name;
  }
}

TEST(SimVsAnalytic, VvCurvesBundleZaCurvesFan) {
  // Fig. 8's shape at CI scale: V^v CLRs stay within a small factor of
  // each other while Z^a CLRs spread by a decade or more.  The V bundle is
  // checked at B = 6 ms (where both V levels are well above the CI
  // measurement floor); the Z fan at B = 12 ms, where Z^0.7 has already
  // decayed past Z^0.99 by over a decade.
  const cm::MuxGeometry g = geometry(520.0);
  const std::vector<double> buffer = {6.0};  // msec

  // V^1 instead of V^1.5 keeps runtime sane (the alpha = 0.9 family's
  // ON/OFF crossover scale shrinks like R^{-10}); the bundling claim is
  // unchanged.
  cm::ReplicationConfig v_scale = test_scale();
  v_scale.replications = 2;
  v_scale.frames_per_replication = 6000;
  const double v_lo =
      cm::simulated_clr_curve(cf::make_vv(0.67), g, buffer, v_scale).clr[0];
  const double v_hi =
      cm::simulated_clr_curve(cf::make_vv(1.0), g, buffer, v_scale).clr[0];
  ASSERT_GT(v_lo, 0.0);
  ASSERT_GT(v_hi, 0.0);
  EXPECT_LT(std::abs(std::log10(v_hi) - std::log10(v_lo)), 0.9);

  const std::vector<double> fan_buffer = {12.0};  // msec
  const double z_lo =
      cm::simulated_clr_curve(cf::make_za(0.7), g, fan_buffer, test_scale())
          .clr[0];
  const double z_hi =
      cm::simulated_clr_curve(cf::make_za(0.99), g, fan_buffer, test_scale())
          .clr[0];
  ASSERT_GT(z_hi, 0.0);
  // Z^0.7 typically decays below the measurement floor at this buffer;
  // require the fan to exceed a decade against a conservative floor.
  const double z_lo_floor = std::max(z_lo, 1e-7);
  EXPECT_GT(std::log10(z_hi) - std::log10(z_lo_floor), 1.0);
}

TEST(SimVsAnalytic, DarTracksZaWhileLDoesNot) {
  // Fig. 9's shape: the matched DAR(1) stays within a fraction of a decade
  // of Z^0.975; the pure-LRD L (which misses the strong short-term
  // correlations) errs far more.
  const cm::MuxGeometry g = geometry(515.0);
  const std::vector<double> buffer = {6.0};
  const double z =
      cm::simulated_clr_curve(cf::make_za(0.975), g, buffer, test_scale())
          .clr[0];
  const double dar = cm::simulated_clr_curve(
                         cf::make_dar_matched_to_za(0.975, 1), g, buffer,
                         test_scale())
                         .clr[0];
  const double l =
      cm::simulated_clr_curve(cf::make_l(), g, buffer, test_scale()).clr[0];
  ASSERT_GT(z, 0.0);
  ASSERT_GT(dar, 0.0);
  const double dar_error = std::abs(std::log10(dar) - std::log10(z));
  const double l_error =
      std::abs(std::log10(std::max(l, 1e-8)) - std::log10(z));
  EXPECT_LT(dar_error, 0.8);
  EXPECT_GT(l_error, dar_error);
}

TEST(SimVsAnalytic, AsymptoticsAreConservativeAndOrdered) {
  // Fig. 10's shape: CLR_sim <= BOP_BR <= BOP_largeN at the operating point.
  const cf::ModelSpec dar = cf::make_dar_matched_to_za(0.975, 1);
  const cm::MuxGeometry g = geometry(515.0);
  const double ms = 6.0;
  const double b =
      g.buffer_ms_to_cells(ms) / static_cast<double>(g.n_sources);
  cc::RateFunction rate(dar.acf, dar.mean, dar.variance,
                        g.bandwidth_per_source);
  const double br = cc::br_log10_bop(rate, b, g.n_sources).log10_bop;
  const double ln = cc::large_n_log10_bop(rate, b, g.n_sources).log10_bop;
  const double sim = cm::simulated_clr_curve(dar, g, {ms}, test_scale())
                         .clr[0];
  ASSERT_GT(sim, 0.0);
  EXPECT_LT(std::log10(sim), br);
  EXPECT_LT(br, ln);
  // The infinite-buffer asymptotic over-estimates the finite-buffer CLR
  // (paper: ~2 orders at its operating point); just require a real gap
  // that stays bounded.
  EXPECT_GT(br - std::log10(sim), 0.2);
  EXPECT_LT(br - std::log10(sim), 5.0);
}
