// Unit tests for pluggable marginal distributions (Section 6.1).

#include "cts/proc/marginal.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/dar.hpp"
#include "cts/stats/acf.hpp"
#include "cts/util/accumulator.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cs = cts::stats;
namespace cu = cts::util;

TEST(GammaSample, MomentsMatch) {
  cu::Xoshiro256pp rng(5);
  for (const auto& [shape, scale] : {std::pair{0.5, 2.0}, {2.0, 3.0},
                                     {10.0, 0.5}}) {
    cu::MomentAccumulator acc;
    for (int i = 0; i < 200000; ++i) {
      acc.add(cu::gamma_sample(rng, shape, scale));
    }
    EXPECT_NEAR(acc.mean(), shape * scale, 0.03 * shape * scale)
        << "shape=" << shape;
    EXPECT_NEAR(acc.variance(), shape * scale * scale,
                0.06 * shape * scale * scale)
        << "shape=" << shape;
  }
}

TEST(GammaSample, RejectsBadParameters) {
  cu::Xoshiro256pp rng(1);
  EXPECT_THROW(cu::gamma_sample(rng, 0.0, 1.0), cu::InvalidArgument);
  EXPECT_THROW(cu::gamma_sample(rng, 1.0, 0.0), cu::InvalidArgument);
}

TEST(GaussianMarginal, MomentsAndSamples) {
  const cp::GaussianMarginal marginal(500.0, 5000.0);
  EXPECT_DOUBLE_EQ(marginal.mean(), 500.0);
  EXPECT_DOUBLE_EQ(marginal.variance(), 5000.0);
  cu::Xoshiro256pp rng(7);
  cu::MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(marginal.sample(rng));
  EXPECT_NEAR(acc.mean(), 500.0, 1.5);
  EXPECT_NEAR(acc.variance(), 5000.0, 150.0);
}

TEST(NegativeBinomialMarginal, MomentsMatch) {
  const cp::NegativeBinomialMarginal marginal(500.0, 5000.0);
  // r = mean^2/(var - mean) = 250000/4500 ~ 55.6.
  EXPECT_NEAR(marginal.shape(), 500.0 * 500.0 / 4500.0, 1e-9);
  cu::Xoshiro256pp rng(11);
  cu::MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(marginal.sample(rng));
  EXPECT_NEAR(acc.mean(), 500.0, 2.0);
  EXPECT_NEAR(acc.variance(), 5000.0, 200.0);
}

TEST(NegativeBinomialMarginal, HeavierUpperTailThanGaussian) {
  // At matched moments the NB right tail dominates: count exceedances of
  // mean + 4 sd.
  const cp::GaussianMarginal gauss(500.0, 5000.0);
  const cp::NegativeBinomialMarginal nb(500.0, 5000.0);
  cu::Xoshiro256pp rng(13);
  const double threshold = 500.0 + 4.0 * std::sqrt(5000.0);
  int g_exceed = 0;
  int nb_exceed = 0;
  for (int i = 0; i < 400000; ++i) {
    if (gauss.sample(rng) > threshold) ++g_exceed;
    if (nb.sample(rng) > threshold) ++nb_exceed;
  }
  EXPECT_GT(nb_exceed, g_exceed);
}

TEST(NegativeBinomialMarginal, RejectsUnderdispersion) {
  EXPECT_THROW(cp::NegativeBinomialMarginal(500.0, 400.0),
               cu::InvalidArgument);
  EXPECT_THROW(cp::NegativeBinomialMarginal(0.0, 10.0), cu::InvalidArgument);
}

TEST(DarWithNegBinomial, KeepsCorrelationStructure) {
  // DAR's ACF is marginal-independent: the NB-marginal DAR(1) must show the
  // same geometric ACF as the Gaussian one.
  cp::DarParams params;
  params.rho = 0.8;
  params.lag_probs = {1.0};
  params.mean = 500.0;
  params.variance = 5000.0;
  auto marginal =
      std::make_shared<cp::NegativeBinomialMarginal>(500.0, 5000.0);
  cp::DarSource source(params, marginal, 17);
  EXPECT_DOUBLE_EQ(source.mean(), 500.0);
  EXPECT_DOUBLE_EQ(source.variance(), 5000.0);
  EXPECT_NE(source.name().find("negbinom"), std::string::npos);

  std::vector<double> trace(200000);
  for (auto& x : trace) x = source.next_frame();
  const std::vector<double> r = cs::autocorrelation(trace, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(r[k], std::pow(0.8, static_cast<double>(k)), 0.02)
        << "lag " << k;
  }
}

TEST(DarWithNegBinomial, CloneKeepsMarginal) {
  cp::DarParams params;
  params.rho = 0.5;
  params.lag_probs = {1.0};
  auto marginal =
      std::make_shared<cp::NegativeBinomialMarginal>(500.0, 5000.0);
  cp::DarSource source(params, marginal, 1);
  auto a = source.clone(23);
  auto b = source.clone(23);
  EXPECT_DOUBLE_EQ(a->mean(), 500.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->next_frame(), b->next_frame());
  }
}
