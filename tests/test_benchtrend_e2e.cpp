// End-to-end cts_benchtrend tests: a synthetic three-baseline chain with
// injected drift must produce the markdown/CSV/SVG artefacts and trip the
// --gate exit code, a stable chain must stay green, and --validate must
// accept only cts.bench.v1 documents.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

int shell(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

#if defined(CTS_TOOLS_BIN_DIR)

std::string benchtrend() {
  return std::string(CTS_TOOLS_BIN_DIR) + "/cts_benchtrend";
}

/// A cts.bench.v1 baseline with one bench and a full wall_s summary.
std::string baseline_doc(const std::string& date, double median) {
  std::ostringstream os;
  os << R"({"schema":"cts.bench.v1","suite":"smoke","generated":")" << date
     << R"(","benches":{"fig9_sim_markov":{"metrics":{"wall_s":{)"
     << R"("n":5,"median":)" << median
     << R"(,"mad":0.01,"ci95_lo":0.9,"ci95_hi":1.1}}}}})";
  return os.str();
}

/// Writes a three-baseline chain into `dir` and returns the file list.
std::string write_chain(const std::string& dir, double m1, double m2,
                        double m3) {
  const std::string f1 = dir + "/BENCH_2026-08-01.json";
  const std::string f2 = dir + "/BENCH_2026-08-02.json";
  const std::string f3 = dir + "/BENCH_2026-08-03.json";
  write_file(f1, baseline_doc("2026-08-01", m1));
  write_file(f2, baseline_doc("2026-08-02", m2));
  write_file(f3, baseline_doc("2026-08-03", m3));
  // Deliberately out of date order: the tool must sort by "generated".
  return "'" + f3 + "' '" + f1 + "' '" + f2 + "'";
}

TEST(CtsBenchtrend, InjectedDriftProducesArtifactsAndTripsGate) {
  const std::string dir = ::testing::TempDir();
  // Last two baselines +50% over the first: sustained drift.
  const std::string files = write_chain(dir, 1.0, 1.5, 1.55);
  const std::string md = dir + "/trend_drift.md";
  const std::string csv = dir + "/trend_drift.csv";
  const std::string svg = dir + "/trend_drift.svg";
  const std::string cmd = "'" + benchtrend() + "' " + files + " --md='" + md +
                          "' --csv='" + csv + "' --svg='" + svg +
                          "' --gate --quiet 2>/dev/null";
  EXPECT_EQ(shell(cmd), 1) << cmd;

  const std::string md_text = read_file(md);
  EXPECT_NE(md_text.find("DRIFT"), std::string::npos);
  // Sorted oldest first despite shuffled argv order.
  EXPECT_LT(md_text.find("BENCH_2026-08-01"), md_text.find("BENCH_2026-08-03"));

  const std::string csv_text = read_file(csv);
  EXPECT_NE(csv_text.find("metric,bench,index"), std::string::npos);
  EXPECT_NE(csv_text.find("fig9_sim_markov"), std::string::npos);

  const std::string svg_text = read_file(svg);
  EXPECT_EQ(svg_text.rfind("<svg", 0), 0u);
  EXPECT_NE(svg_text.find("</svg>"), std::string::npos);
  EXPECT_NE(svg_text.find("DRIFT"), std::string::npos);
}

TEST(CtsBenchtrend, StableChainStaysGreenEvenWithGate) {
  const std::string dir = ::testing::TempDir();
  const std::string files = write_chain(dir, 1.0, 1.001, 0.999);
  EXPECT_EQ(shell("'" + benchtrend() + "' " + files +
                  " --gate --quiet >/dev/null"),
            0);
}

TEST(CtsBenchtrend, ValidateAcceptsOnlyBenchDocuments) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/trend_validate_good.json";
  const std::string bad = dir + "/trend_validate_bad.json";
  write_file(good, baseline_doc("2026-08-01", 1.0));
  write_file(bad, R"({"schema":"cts.perf.v1"})");
  EXPECT_EQ(shell("'" + benchtrend() + "' --validate '" + good +
                  "' --quiet >/dev/null"),
            0);
  EXPECT_EQ(shell("'" + benchtrend() + "' --validate '" + bad +
                  "' --quiet 2>/dev/null"),
            2);
}

TEST(CtsBenchtrend, UsageErrorsExitTwo) {
  const std::string dir = ::testing::TempDir();
  const std::string lone = dir + "/trend_lone.json";
  write_file(lone, baseline_doc("2026-08-01", 1.0));
  // A trajectory needs at least two baselines.
  EXPECT_EQ(shell("'" + benchtrend() + "' '" + lone + "' 2>/dev/null"), 2);
  // An empty directory scan is an error, not silent success.
  EXPECT_EQ(shell("'" + benchtrend() + "' --dir='" + dir +
                  "/no_such_dir' 2>/dev/null"),
            2);
  EXPECT_EQ(shell("'" + benchtrend() + "' --help >/dev/null"), 0);
}

#else

TEST(BenchtrendE2e, DISABLED_ToolsNotBuilt) {}

#endif  // CTS_TOOLS_BIN_DIR

}  // namespace
