// Unit tests for the fluid frame-level multiplexer.

#include "cts/sim/fluid_mux.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "cts/proc/ar1.hpp"
#include "cts/util/error.hpp"

namespace cp = cts::proc;
namespace cm = cts::sim;
namespace cu = cts::util;

namespace {

/// Deterministic source emitting a fixed frame size.
class ConstantSource final : public cp::FrameSource {
 public:
  explicit ConstantSource(double value) : value_(value) {}
  double next_frame() override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::unique_ptr<cp::FrameSource> clone(std::uint64_t) const override {
    return std::make_unique<ConstantSource>(value_);
  }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

/// Source cycling through a fixed pattern of frame sizes.
class PatternSource final : public cp::FrameSource {
 public:
  explicit PatternSource(std::vector<double> pattern)
      : pattern_(std::move(pattern)) {}
  double next_frame() override {
    const double x = pattern_[pos_];
    pos_ = (pos_ + 1) % pattern_.size();
    return x;
  }
  double mean() const override { return 0.0; }
  double variance() const override { return 0.0; }
  std::unique_ptr<cp::FrameSource> clone(std::uint64_t) const override {
    return std::make_unique<PatternSource>(pattern_);
  }
  std::string name() const override { return "pattern"; }

 private:
  std::vector<double> pattern_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<cp::FrameSource>> one_source(
    std::unique_ptr<cp::FrameSource> s) {
  std::vector<std::unique_ptr<cp::FrameSource>> v;
  v.push_back(std::move(s));
  return v;
}

}  // namespace

TEST(FluidMux, UnderloadedConstantTrafficLosesNothing) {
  auto sources = one_source(std::make_unique<ConstantSource>(400.0));
  cm::FluidRunConfig config;
  config.frames = 1000;
  config.warmup_frames = 0;
  config.capacity_cells = 500.0;
  config.buffer_sizes_cells = {0.0, 100.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  EXPECT_DOUBLE_EQ(result.arrived_cells, 400.0 * 1000);
  for (const auto& tally : result.clr) {
    EXPECT_DOUBLE_EQ(tally.lost_cells, 0.0);
    EXPECT_EQ(tally.loss_frames, 0u);
  }
}

TEST(FluidMux, OverloadedTrafficLosesExactExcess) {
  // 600 cells/frame into a 500-capacity, zero-buffer queue: lose 100/frame.
  auto sources = one_source(std::make_unique<ConstantSource>(600.0));
  cm::FluidRunConfig config;
  config.frames = 100;
  config.warmup_frames = 0;
  config.capacity_cells = 500.0;
  config.buffer_sizes_cells = {0.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  EXPECT_DOUBLE_EQ(result.clr[0].lost_cells, 100.0 * 100);
  EXPECT_NEAR(result.clr[0].clr(result.arrived_cells), 1.0 / 6.0, 1e-12);
}

TEST(FluidMux, BufferAbsorbsBurstsExactly) {
  // Alternating 600/400 at capacity 500: a 100-cell buffer absorbs the
  // burst fully, a 50-cell buffer loses 50 on every burst frame.
  auto sources = one_source(
      std::make_unique<PatternSource>(std::vector<double>{600.0, 400.0}));
  cm::FluidRunConfig config;
  config.frames = 1000;
  config.warmup_frames = 0;
  config.capacity_cells = 500.0;
  config.buffer_sizes_cells = {50.0, 100.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  EXPECT_DOUBLE_EQ(result.clr[1].lost_cells, 0.0);
  EXPECT_DOUBLE_EQ(result.clr[0].lost_cells, 50.0 * 500);
  EXPECT_EQ(result.clr[0].loss_frames, 500u);
}

TEST(FluidMux, ClrIsNonIncreasingInBufferSize) {
  cp::Ar1Params p;
  p.phi = 0.9;
  p.mean = 500.0;
  p.variance = 5000.0;
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(std::make_unique<cp::Ar1Source>(p, 100 + i));
  }
  cm::FluidRunConfig config;
  config.frames = 50000;
  config.warmup_frames = 100;
  config.capacity_cells = 10 * 530.0;
  config.buffer_sizes_cells = {0.0, 200.0, 1000.0, 4000.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  for (std::size_t i = 1; i < result.clr.size(); ++i) {
    EXPECT_LE(result.clr[i].lost_cells, result.clr[i - 1].lost_cells);
  }
  EXPECT_GT(result.clr[0].lost_cells, 0.0);  // zero buffer must lose
}

TEST(FluidMux, BopIsNonIncreasingInThreshold) {
  cp::Ar1Params p;
  p.phi = 0.9;
  p.mean = 500.0;
  p.variance = 5000.0;
  std::vector<std::unique_ptr<cp::FrameSource>> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back(std::make_unique<cp::Ar1Source>(p, 200 + i));
  }
  cm::FluidRunConfig config;
  config.frames = 50000;
  config.warmup_frames = 100;
  config.capacity_cells = 10 * 530.0;
  config.bop_thresholds_cells = {0.0, 100.0, 500.0, 2000.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  for (std::size_t i = 1; i < result.bop.size(); ++i) {
    EXPECT_LE(result.bop[i].exceed_frames, result.bop[i - 1].exceed_frames);
  }
}

TEST(FluidMux, InfiniteBufferSeesMoreLossOpportunityThanFinite) {
  // Workload conservation: with a finite buffer, queue <= B always; the
  // infinite-buffer workload dominates the finite one pointwise, so
  // P(W_inf > B) >= CLR events.  Spot-check via loss_frames <= exceed.
  auto sources = one_source(
      std::make_unique<PatternSource>(std::vector<double>{700.0, 300.0}));
  cm::FluidRunConfig config;
  config.frames = 100;
  config.warmup_frames = 0;
  config.capacity_cells = 500.0;
  config.buffer_sizes_cells = {150.0};
  config.bop_thresholds_cells = {150.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  EXPECT_GE(result.bop[0].exceed_frames, result.clr[0].loss_frames);
}

TEST(FluidMux, WarmupFramesAreExcludedFromTallies) {
  auto sources = one_source(std::make_unique<ConstantSource>(600.0));
  cm::FluidRunConfig config;
  config.frames = 10;
  config.warmup_frames = 5;
  config.capacity_cells = 500.0;
  config.buffer_sizes_cells = {0.0};
  const cm::FluidRunResult result = cm::FluidMux::run(sources, config);
  EXPECT_DOUBLE_EQ(result.arrived_cells, 600.0 * 10);
  EXPECT_DOUBLE_EQ(result.clr[0].lost_cells, 100.0 * 10);
}

TEST(FluidMux, RejectsBadConfig) {
  auto sources = one_source(std::make_unique<ConstantSource>(1.0));
  cm::FluidRunConfig config;
  config.capacity_cells = 0.0;
  EXPECT_THROW(cm::FluidMux::run(sources, config), cu::InvalidArgument);
  config.capacity_cells = 10.0;
  config.buffer_sizes_cells = {-1.0};
  EXPECT_THROW(cm::FluidMux::run(sources, config), cu::InvalidArgument);
  std::vector<std::unique_ptr<cp::FrameSource>> empty;
  cm::FluidRunConfig ok;
  EXPECT_THROW(cm::FluidMux::run(empty, ok), cu::InvalidArgument);
}
