// Curve-level bit-identity for the warm-started, SIMD-dispatched analytic
// path: for every zoo model and fig operating point, the AnalyticCurve
// computed with warm-started scans under the best dispatch kind must be
// byte-identical to (a) per-point cold scans and (b) the forced-scalar
// path.  Plus a threads x shards matrix proving the batched Davies-Harte
// generation preserves the replication layout invariance.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cts/core/br_asymptotic.hpp"
#include "cts/core/large_n.hpp"
#include "cts/core/rate_function.hpp"
#include "cts/core/simd.hpp"
#include "cts/fit/model_zoo.hpp"
#include "cts/sim/curves.hpp"

namespace cc = cts::core;
namespace cf = cts::fit;
namespace cm = cts::sim;
namespace cs = cts::core::simd;

namespace {

struct ForceGuard {
  ~ForceGuard() { cs::clear_force(); }
};

const std::vector<std::string>& zoo_ids() {
  static const std::vector<std::string> ids = {
      "za:0.9",  "vv:1",       "l",          "white",
      "ar1:0.975", "dar:0.9:2", "farima:0.3", "mginf:1.4"};
  return ids;
}

std::vector<cm::MuxGeometry> fig_operating_points() {
  cm::MuxGeometry fig2;  // N = 30, c = 538 (Fig. 2/5 point)
  fig2.n_sources = 30;
  fig2.bandwidth_per_source = 538.0;
  cm::MuxGeometry fig9;  // N = 100, c = 526 (Fig. 9 point)
  fig9.n_sources = 100;
  fig9.bandwidth_per_source = 526.0;
  return {fig2, fig9};
}

/// Full-precision JSON serialization: byte-equal strings iff every field
/// of the two curves is bit-identical.
std::string curve_json(const cm::AnalyticCurve& curve) {
  std::string out = "{\"model\":\"" + curve.model + "\",\"points\":[";
  char buf[128];
  for (std::size_t i = 0; i < curve.buffer_ms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s[%.17g,%.17g,%zu]", i ? "," : "",
                  curve.buffer_ms[i], curve.log10_bop[i],
                  curve.critical_m[i]);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace

TEST(CurveBitIdentity, WarmStartMatchesColdScanEverywhere) {
  const std::vector<double> grid = cm::buffer_grid_ms(0.5, 100.0, 30);
  for (const cm::MuxGeometry& g : fig_operating_points()) {
    for (const std::string& id : zoo_ids()) {
      const cf::ModelSpec model = cf::model_from_id(id);
      const cm::AnalyticCurve br = cm::br_curve(model, g, grid);
      const cm::AnalyticCurve ln = cm::large_n_curve(model, g, grid);
      // Cold reference: a fresh rate function evaluated per point with no
      // hint threading.
      cc::RateFunction rate(model.acf, model.mean, model.variance,
                            g.bandwidth_per_source);
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const double b = g.buffer_ms_to_cells(grid[i]) /
                         static_cast<double>(g.n_sources);
        const cc::RateResult cold = rate.evaluate(b);
        const cc::BopPoint br_ref = cc::br_log10_bop(cold, b, g.n_sources);
        const cc::BopPoint ln_ref =
            cc::large_n_log10_bop(cold, b, g.n_sources);
        EXPECT_EQ(br.critical_m[i], cold.critical_m)
            << id << " N=" << g.n_sources << " i=" << i;
        EXPECT_EQ(br.log10_bop[i], br_ref.log10_bop)
            << id << " N=" << g.n_sources << " i=" << i;
        EXPECT_EQ(ln.critical_m[i], cold.critical_m)
            << id << " N=" << g.n_sources << " i=" << i;
        EXPECT_EQ(ln.log10_bop[i], ln_ref.log10_bop)
            << id << " N=" << g.n_sources << " i=" << i;
      }
    }
  }
}

TEST(CurveBitIdentity, DispatchedCurveJsonMatchesForcedScalar) {
  ForceGuard guard;
  const std::vector<double> grid = cm::buffer_grid_ms(0.5, 100.0, 30);
  for (const cm::MuxGeometry& g : fig_operating_points()) {
    for (const std::string& id : zoo_ids()) {
      const cf::ModelSpec model = cf::model_from_id(id);
      cs::force(cs::best_supported());
      const std::string br_simd = curve_json(cm::br_curve(model, g, grid));
      const std::string ln_simd =
          curve_json(cm::large_n_curve(model, g, grid));
      const std::string cts_simd = curve_json(cm::cts_curve(model, g, grid));
      cs::force(cs::Kind::kScalar);
      EXPECT_EQ(curve_json(cm::br_curve(model, g, grid)), br_simd)
          << id << " N=" << g.n_sources;
      EXPECT_EQ(curve_json(cm::large_n_curve(model, g, grid)), ln_simd)
          << id << " N=" << g.n_sources;
      EXPECT_EQ(curve_json(cm::cts_curve(model, g, grid)), cts_simd)
          << id << " N=" << g.n_sources;
      cs::clear_force();
    }
  }
}

TEST(CurveBitIdentity, ThreadsAndShardsMatrixIsInvariant) {
  // The batched Davies-Harte refill sits on the per-replication hot path;
  // seeds key off the global replication index, so any threads x shards
  // layout must merge byte-identically.
  const cf::ModelSpec model = cf::model_from_id("farima:0.3");
  cm::MuxGeometry g;
  g.n_sources = 5;
  g.bandwidth_per_source = 520.0;
  cm::ReplicationConfig scale;
  scale.replications = 4;
  scale.frames_per_replication = 2000;
  scale.warmup_frames = 100;
  scale.progress = false;
  const std::vector<double> grid = {0.5, 5.0};
  const cm::ReplicationConfig config =
      cm::replication_config_for_grid(model, g, grid, scale);

  cm::ReplicationConfig single = config;
  single.threads = 1;
  const cm::ReplicationResult reference = cm::run_replicated(model, single);

  for (const unsigned threads : {2u, 4u}) {
    cm::ReplicationConfig multi = config;
    multi.threads = threads;
    const cm::ReplicationResult got = cm::run_replicated(model, multi);
    ASSERT_EQ(got.clr.size(), reference.clr.size());
    for (std::size_t i = 0; i < got.clr.size(); ++i) {
      EXPECT_EQ(got.clr[i].pooled_clr, reference.clr[i].pooled_clr)
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(got.clr[i].clr.low(), reference.clr[i].clr.low());
      EXPECT_EQ(got.clr[i].clr.high(), reference.clr[i].clr.high());
    }
    EXPECT_EQ(got.total_frames, reference.total_frames);
  }

  for (const std::size_t shards : {2u, 3u}) {
    std::vector<cm::ReplicationSample> samples;
    for (std::size_t s = 0; s < shards; ++s) {
      cm::ReplicationConfig shard = config;
      shard.threads = 2;
      shard.shard_index = s;
      shard.shard_count = shards;
      const cm::ReplicationResult part = cm::run_replicated(model, shard);
      samples.insert(samples.end(), part.samples.begin(),
                     part.samples.end());
    }
    const cm::ReplicationResult merged = cm::aggregate_replications(
        config.buffer_sizes_cells, config.bop_thresholds_cells,
        std::move(samples));
    ASSERT_EQ(merged.clr.size(), reference.clr.size());
    for (std::size_t i = 0; i < merged.clr.size(); ++i) {
      EXPECT_EQ(merged.clr[i].pooled_clr, reference.clr[i].pooled_clr)
          << "shards=" << shards << " i=" << i;
    }
    EXPECT_EQ(merged.total_frames, reference.total_frames);
  }
}
