#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include "cts/obs/json.hpp"
#include "cts/obs/metrics.hpp"
#include "cts/util/error.hpp"

namespace obs = cts::obs;

namespace {

// Exact sample quantile with the matching-rank convention the cell
// documents: sorted[ceil(q * n) - 1] (0-based).
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  if (rank == 0) rank = 1;
  return xs[rank - 1];
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  obs::LogHistogramCell h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.stats().count(), 0u);
  // relative_accuracy() is recomputed from gamma, so it round-trips to
  // within an ulp or two of the requested alpha, not bit-exactly.
  EXPECT_NEAR(h.relative_accuracy(),
              obs::LogHistogramCell::kDefaultRelativeAccuracy, 1e-12);
}

TEST(LogHistogram, SingleValueAllPercentilesWithinAccuracy) {
  obs::LogHistogramCell h;
  h.observe(12.5);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(h.percentile(q), 12.5, 12.5 * h.relative_accuracy()) << q;
  }
}

TEST(LogHistogram, RejectsInvalidAccuracy) {
  EXPECT_THROW(obs::LogHistogramCell(0.0), cts::util::InvalidArgument);
  EXPECT_THROW(obs::LogHistogramCell(1.0), cts::util::InvalidArgument);
  EXPECT_THROW(obs::LogHistogramCell(-0.1), cts::util::InvalidArgument);
}

// The documented guarantee: every percentile of every (positive)
// distribution within 2% relative error of the exact sample quantile.
// Log-normal latencies are the adversarial case for fixed-edge
// histograms — the tail spans orders of magnitude.
TEST(LogHistogram, PercentilesWithinTwoPercentOfExactLogNormal) {
  std::mt19937_64 rng(20260807);
  std::lognormal_distribution<double> lat(1.5, 1.2);
  obs::LogHistogramCell h;
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double v = lat(rng);
    xs.push_back(v);
    h.observe(v);
  }
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_quantile(xs, q);
    const double est = h.percentile(q);
    EXPECT_LE(std::abs(est - exact) / exact, 0.0201)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(LogHistogram, PercentilesWithinTwoPercentOfExactUniform) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> lat(0.05, 900.0);
  obs::LogHistogramCell h;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double v = lat(rng);
    xs.push_back(v);
    h.observe(v);
  }
  for (const double q : {0.05, 0.50, 0.95, 0.99}) {
    const double exact = exact_quantile(xs, q);
    EXPECT_LE(std::abs(h.percentile(q) - exact) / exact, 0.0201) << q;
  }
}

TEST(LogHistogram, ZeroAndNegativeObservationsLandInZeroBucket) {
  obs::LogHistogramCell h;
  h.observe(0.0);
  h.observe(-3.0);
  h.observe(10.0);
  EXPECT_EQ(h.zero_count(), 2u);
  EXPECT_EQ(h.stats().count(), 3u);
  // Ranks 1 and 2 are the non-positive observations; rank 3 is 10.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_NEAR(h.percentile(1.0), 10.0, 10.0 * h.relative_accuracy());
}

// Merging shards must be lossless: merged percentiles/buckets identical to
// a single cell fed the union of the observations.
TEST(LogHistogram, MergeIsLossless) {
  std::mt19937_64 rng(99);
  std::lognormal_distribution<double> lat(0.0, 2.0);
  obs::LogHistogramCell whole, a, b;
  for (int i = 0; i < 4000; ++i) {
    const double v = lat(rng);
    whole.observe(v);
    (i % 2 == 0 ? a : b).observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.buckets(), whole.buckets());
  EXPECT_EQ(a.zero_count(), whole.zero_count());
  EXPECT_EQ(a.stats().count(), whole.stats().count());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), whole.percentile(q)) << q;
  }
}

TEST(LogHistogram, MergeRejectsDifferentAccuracy) {
  obs::LogHistogramCell fine(0.01), coarse(0.05);
  fine.observe(1.0);
  coarse.observe(1.0);
  EXPECT_THROW(fine.merge(coarse), cts::util::InvalidArgument);
}

TEST(LogHistogram, MergeFromEmptyIsNoop) {
  obs::LogHistogramCell h, empty;
  h.observe(5.0);
  h.merge(empty);
  EXPECT_EQ(h.stats().count(), 1u);
}

TEST(LogHistogram, ShardRegistryRoundTrip) {
  obs::MetricsShard shard;
  std::mt19937_64 rng(41);
  std::lognormal_distribution<double> lat(2.0, 0.7);
  for (int i = 0; i < 1000; ++i) shard.observe_log("rpc.ms", lat(rng));
  shard.observe_log("rpc.ms", 0.0);

  obs::MetricsRegistry reg;
  reg.merge(shard);
  obs::LogHistogramCell cell;
  ASSERT_TRUE(reg.log_histogram("rpc.ms", &cell));
  EXPECT_FALSE(reg.log_histogram("missing", nullptr));
  EXPECT_EQ(cell.stats().count(), 1001u);
  EXPECT_EQ(cell.buckets(), shard.log_histograms().at("rpc.ms").buckets());
}

// Snapshot JSON round-trip must preserve the full merge state — a cell
// restored on another process merges exactly like the original.
TEST(LogHistogram, SnapshotJsonRoundTripIsExact) {
  obs::MetricsShard shard;
  std::mt19937_64 rng(5);
  std::lognormal_distribution<double> lat(1.0, 1.5);
  for (int i = 0; i < 3000; ++i) shard.observe_log("svc.ms", lat(rng));
  shard.observe_log("svc.ms", -1.0);
  shard.add("jobs", 3);

  std::ostringstream os;
  obs::JsonWriter w(os);
  obs::write_metrics_snapshot(w, shard);
  const obs::JsonValue doc = obs::json_parse(os.str());
  const obs::MetricsShard back = obs::metrics_snapshot_from_json(doc);

  const obs::LogHistogramCell& orig = shard.log_histograms().at("svc.ms");
  const obs::LogHistogramCell& rest = back.log_histograms().at("svc.ms");
  EXPECT_DOUBLE_EQ(rest.gamma(), orig.gamma());
  EXPECT_EQ(rest.zero_count(), orig.zero_count());
  EXPECT_EQ(rest.buckets(), orig.buckets());
  EXPECT_EQ(rest.stats().count(), orig.stats().count());
  EXPECT_DOUBLE_EQ(rest.stats().mean(), orig.stats().mean());
  EXPECT_DOUBLE_EQ(rest.stats().m2(), orig.stats().m2());
  EXPECT_DOUBLE_EQ(rest.stats().min(), orig.stats().min());
  EXPECT_DOUBLE_EQ(rest.stats().max(), orig.stats().max());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(rest.percentile(q), orig.percentile(q)) << q;
  }

  // A restored cell must merge with a live one (same default gamma).
  obs::LogHistogramCell live;
  live.observe(4.2);
  obs::LogHistogramCell merged = rest;
  EXPECT_NO_THROW(merged.merge(live));
  EXPECT_EQ(merged.stats().count(), orig.stats().count() + 1);
}

// Snapshots without the section (older writers) still parse.
TEST(LogHistogram, SnapshotWithoutSectionParses) {
  obs::MetricsShard shard;
  shard.add("jobs", 1);
  std::ostringstream os;
  obs::JsonWriter w(os);
  obs::write_metrics_snapshot(w, shard);
  EXPECT_EQ(os.str().find("log_histograms"), std::string::npos);
  const obs::MetricsShard back =
      obs::metrics_snapshot_from_json(obs::json_parse(os.str()));
  EXPECT_TRUE(back.log_histograms().empty());
  EXPECT_EQ(back.counters().at("jobs"), 1u);
}

TEST(LogHistogram, RegistryWriteJsonEmitsPercentileSection) {
  obs::MetricsRegistry reg;
  reg.observe_log("rpc.ms", 10.0);
  reg.observe_log("rpc.ms", 20.0);
  std::ostringstream os;
  reg.write_json(os);
  const obs::JsonValue doc = obs::json_parse(os.str());
  const obs::JsonValue& h = doc.at("log_histograms").at("rpc.ms");
  EXPECT_EQ(h.at("count").as_number(), 2.0);
  EXPECT_NEAR(h.at("p50").as_number(), 10.0, 10.0 * 0.02);
  EXPECT_NEAR(h.at("p99").as_number(), 20.0, 20.0 * 0.02);
}

TEST(LogHistogram, FromStateRejectsBadGamma) {
  EXPECT_THROW(obs::LogHistogramCell::from_state(
                   1.0, 0, {}, cts::util::MomentAccumulator()),
               cts::util::InvalidArgument);
}

}  // namespace
